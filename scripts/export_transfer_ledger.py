#!/usr/bin/env python
"""Export the per-phase transfer ledger (resident vs non-resident) as a
JSON artifact.

Runs the quick transfer-gate configuration (small TPC-C, mockgpu) both
with and without ``device_resident`` and dumps each path's steady-state
per-phase ledger deltas plus the final-state digests.  mockgpu's ledger
is deterministic, so the artifact is byte-stable for a given tree —
CI uploads it next to the kernellint SARIF so a reviewer can see
exactly where residency moved the bytes without rerunning anything.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

WAREHOUSES = 4
BATCH_SIZE = 4096
BATCHES = 3


def measure(device_resident: bool, backend: str) -> dict:
    from repro.bench.common import ltpg_config, tpcc_bench

    bench = tpcc_bench(
        WAREHOUSES, neworder_pct=50, batch_size=BATCH_SIZE, seed=7
    )
    config = dataclasses.replace(
        ltpg_config(BATCH_SIZE),
        columnar_ops=True, batched_exec=True, array_backend=backend,
        device_resident=device_resident,
    )
    engine = bench.engine(config)
    try:
        per_batch = []
        for _ in range(BATCHES):
            engine.run_batch(bench.generator.make_batch(BATCH_SIZE))
            per_batch.append(engine.last_phase_transfers)
        if engine._residency is not None:
            engine._residency.sync_all_to_host()
        digest = bench.database.state_digest()
    finally:
        engine.close()
    return {
        "device_resident": device_resident,
        "phase_deltas_per_batch": per_batch,
        "steady_state": engine.last_transfers,
        "state_digest": digest,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--out", default="transfer_ledger.json")
    parser.add_argument("--backend", default="mockgpu")
    args = parser.parse_args(argv)

    from repro.xp import available_backends

    if args.backend not in available_backends() or args.backend == "numpy":
        print(f"skipped: backend {args.backend!r} has no transfer ledger")
        return 0
    doc = {
        "config": {
            "workload": "tpcc neworder=50%",
            "warehouses": WAREHOUSES,
            "batch_size": BATCH_SIZE,
            "batches": BATCHES,
            "backend": args.backend,
            "seed": 7,
        },
        "paths": {
            "resident": measure(True, args.backend),
            "baseline": measure(False, args.backend),
        },
    }
    r = doc["paths"]["resident"]["steady_state"]
    b = doc["paths"]["baseline"]["steady_state"]
    doc["summary"] = {
        "steady_h2d_reduction_x": round(
            b["h2d_bytes"] / max(r["h2d_bytes"], 1), 2
        ),
        "steady_total_reduction_x": round(
            (b["h2d_bytes"] + b["d2h_bytes"])
            / max(r["h2d_bytes"] + r["d2h_bytes"], 1),
            2,
        ),
        "digests_identical": (
            doc["paths"]["resident"]["state_digest"]
            == doc["paths"]["baseline"]["state_digest"]
        ),
    }
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(
        f"wrote {args.out}: steady H2D reduction "
        f"{doc['summary']['steady_h2d_reduction_x']}x, total "
        f"{doc['summary']['steady_total_reduction_x']}x, digests "
        f"identical={doc['summary']['digests_identical']}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Analysis gate: run the GPU sanitizer and determinism linter.

Thin wrapper over ``python -m repro.analysis`` that works from a source
checkout without installing the package.  By default runs every pass
(racecheck, memcheck, detlint, kernellint) over every workload and
fails if any finding surfaces.

Exit codes (shared with ``python -m repro.analysis``):

* ``0`` — every pass on every workload reported zero findings.
* ``1`` — at least one finding (race, OOB/uninit access, determinism
  hazard).
* ``2`` — usage error.

Examples::

    python scripts/run_analysis.py                      # everything
    python scripts/run_analysis.py racecheck            # one pass, all workloads
    python scripts/run_analysis.py all --workload tpcc  # one workload
    python scripts/run_analysis.py --pass kernellint --sarif-out lint.sarif
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)


def main(argv: list[str] | None = None) -> int:
    from repro.analysis.cli import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE
    from repro.analysis.passes import run_pass
    from repro.analysis.workload import (
        DEFAULT_BATCH_SIZE,
        DEFAULT_BATCHES,
        WORKLOAD_NAMES,
    )

    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    pass_choices = ("racecheck", "memcheck", "detlint", "kernellint", "all")
    parser.add_argument(
        "pass_name",
        metavar="pass",
        nargs="?",
        default=None,
        choices=pass_choices,
        help="which analysis to run (default: all)",
    )
    parser.add_argument(
        "--pass",
        dest="pass_opt",
        metavar="PASS",
        choices=pass_choices,
        default=None,
        help="alias for the positional pass argument (CI convenience)",
    )
    parser.add_argument(
        "--workload",
        choices=WORKLOAD_NAMES,
        default=None,
        help="restrict to one workload (default: run every workload)",
    )
    parser.add_argument("--batches", type=int, default=DEFAULT_BATCHES)
    parser.add_argument("--batch-size", type=int, default=DEFAULT_BATCH_SIZE)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--json-out",
        metavar="PATH",
        default=None,
        help="write every run's findings as one JSON document",
    )
    parser.add_argument(
        "--sarif-out",
        metavar="PATH",
        default=None,
        help="write every run's findings as one SARIF 2.1.0 log",
    )
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return int(exc.code or 0)
    if args.pass_name and args.pass_opt and args.pass_name != args.pass_opt:
        print(
            "error: positional pass and --pass disagree",
            file=sys.stderr,
        )
        return EXIT_USAGE
    pass_name = args.pass_name or args.pass_opt or "all"
    if args.batches <= 0 or args.batch_size <= 0:
        print(
            "error: --batches and --batch-size must be positive",
            file=sys.stderr,
        )
        return EXIT_USAGE

    workloads = (args.workload,) if args.workload else WORKLOAD_NAMES
    findings = 0
    all_results = []
    for workload in workloads:
        for result in run_pass(
            pass_name,
            workload=workload,
            batches=args.batches,
            batch_size=args.batch_size,
            seed=args.seed,
        ):
            print(result.render())
            findings += len(result.report)
            all_results.append(result)
    if args.json_out or args.sarif_out:
        from repro.analysis import emit

        if args.json_out:
            emit.write_json(args.json_out, all_results)
        if args.sarif_out:
            emit.write_sarif(args.sarif_out, all_results)
    return EXIT_FINDINGS if findings else EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())

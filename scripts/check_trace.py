#!/usr/bin/env python
"""Schema gate for Chrome ``trace_event`` JSON emitted by repro.trace.

Validates a trace file written by ``python -m repro.trace`` (or any
:meth:`Tracer.write` call) without importing the package, so CI can
check the artifact the same way Perfetto would load it:

* ``traceEvents`` exists and is non-empty;
* every complete ("X") event has a name, a numeric ``ts`` and a
  non-negative ``dur``;
* per track (``tid``), complete events form a proper span tree — a
  span overlapping an open span must be fully contained in it;
* spans cover at least ``--min-tracks`` distinct stream tracks;
* all three engine phases (``phase:execute``, ``phase:conflict``,
  ``phase:writeback``) appear as spans;
* async begin/end ("b"/"e") events pair up id-for-id, and flow
  start/finish ("s"/"f") events pair up likewise.

Exit codes: 0 — trace is well-formed; 1 — validation failed;
2 — usage error (missing/unreadable file).
"""

from __future__ import annotations

import argparse
import json
import sys

REQUIRED_PHASES = ("phase:execute", "phase:conflict", "phase:writeback")

#: Nesting tolerance in µs.  Timestamps are simulated nanoseconds
#: divided by 1e3, so adjacent spans can disagree by float-rounding
#: (~1e-13 µs); 1e-6 µs (a picosecond) is far above that noise and far
#: below the 1 ns trace resolution.
EPS_US = 1e-6


def check_complete_events(events: list[dict], errors: list[str]) -> dict[int, list]:
    """Field checks on "X" events; returns spans grouped by tid."""
    by_tid: dict[int, list] = {}
    for i, ev in enumerate(events):
        name = ev.get("name")
        ts, dur = ev.get("ts"), ev.get("dur")
        if not name:
            errors.append(f"X event #{i} has no name")
            continue
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"span {name!r}: bad ts {ts!r}")
            continue
        if not isinstance(dur, (int, float)) or dur < 0:
            errors.append(f"span {name!r}: bad dur {dur!r}")
            continue
        by_tid.setdefault(ev.get("tid", 0), []).append((ts, ts + dur, name))
    return by_tid


def check_nesting(by_tid: dict[int, list], errors: list[str]) -> None:
    """Spans on one track must nest: contained or disjoint, never partial."""
    for tid, spans in sorted(by_tid.items()):
        spans.sort(key=lambda s: (s[0], -s[1]))
        stack: list[tuple] = []
        for start, end, name in spans:
            while stack and stack[-1][1] <= start + EPS_US:
                stack.pop()
            if stack and end > stack[-1][1] + EPS_US:
                errors.append(
                    f"track {tid}: span {name!r} [{start}, {end}] escapes "
                    f"open span {stack[-1][2]!r} [{stack[-1][0]}, {stack[-1][1]}]"
                )
                continue
            stack.append((start, end, name))


def check_pairs(events: list[dict], begin: str, end: str, kind: str,
                errors: list[str]) -> None:
    """Events of phase ``begin`` and ``end`` must pair up id-for-id."""
    opens: dict[object, int] = {}
    for ev in events:
        key = (ev.get("cat"), ev.get("id"))
        if ev.get("ph") == begin:
            opens[key] = opens.get(key, 0) + 1
        elif ev.get("ph") == end:
            if opens.get(key, 0) <= 0:
                errors.append(f"{kind} end without begin: {key}")
            else:
                opens[key] -= 1
    for key, count in opens.items():
        if count:
            errors.append(f"{kind} begin without end: {key} (x{count})")


def validate(trace: dict, min_tracks: int = 2) -> list[str]:
    errors: list[str] = []
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        return ["traceEvents missing or empty"]
    by_ph: dict[str, list] = {}
    for ev in events:
        by_ph.setdefault(ev.get("ph", "?"), []).append(ev)

    complete = by_ph.get("X", [])
    if not complete:
        errors.append("no complete (X) span events")
    by_tid = check_complete_events(complete, errors)
    check_nesting(by_tid, errors)
    if len(by_tid) < min_tracks:
        errors.append(
            f"spans cover {len(by_tid)} track(s), expected >= {min_tracks}"
        )
    names = {ev.get("name") for ev in complete}
    for phase in REQUIRED_PHASES:
        if phase not in names:
            errors.append(f"missing phase span {phase!r}")
    check_pairs(events, "b", "e", "async span", errors)
    check_pairs(events, "s", "f", "flow", errors)
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="trace_event JSON file to validate")
    parser.add_argument(
        "--min-tracks", type=int, default=2,
        help="minimum distinct stream tracks carrying spans (default: 2)",
    )
    args = parser.parse_args(argv)
    try:
        with open(args.trace) as fh:
            trace = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot load {args.trace}: {exc}", file=sys.stderr)
        return 2
    errors = validate(trace, min_tracks=args.min_tracks)
    if errors:
        for err in errors:
            print(f"FAIL: {err}", file=sys.stderr)
        return 1
    events = trace["traceEvents"]
    spans = sum(1 for e in events if e.get("ph") == "X")
    tracks = len({e.get("tid") for e in events if e.get("ph") == "X"})
    print(f"OK: {args.trace}: {spans} spans on {tracks} tracks, "
          f"{len(events)} events total")
    return 0


if __name__ == "__main__":
    sys.exit(main())

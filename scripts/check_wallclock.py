#!/usr/bin/env python
"""Perf gate: fail if the execute phase regressed vs BENCH_wallclock.json.

Measures the columnar path's execute-phase host time at batch 2^12
(full-scale TPC-C 50/50, the committed baseline's configuration) and
exits non-zero if it exceeds the committed number by more than the
allowed factor (default 1.30, i.e. a >30%% regression).  The conflict
phase rides along informationally but only the execute phase gates —
it is the phase the columnar op path exists to accelerate.

Wall-clock gates are machine-dependent; the committed baseline and a CI
runner differ in absolute speed, so the gate can also be pointed at a
locally regenerated baseline::

    python benchmarks/bench_wallclock.py          # rewrite the baseline
    python scripts/check_wallclock.py             # gate against it

Opt-in from pytest via the ``perf`` marker: ``pytest -m perf``.

``--backend NAME`` additionally runs the array-backend gate: the
batched path is measured through the named ``repro.xp`` backend
(informational) and one batch's transfer ledger is checked for
contract violations (zero implicit host round-trips inside kernel
phases, zero float upcasts — this part gates).  Backends that are not
constructible on this host auto-skip; ``--quick`` drops the
machine-dependent wall-clock gates and runs only the backend gate,
which is what CI uses (``--quick --backend mockgpu``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

GATE_BATCH = 4096  # 2^12
DEFAULT_ALLOWED_FACTOR = 1.30

#: Batch size for the batched-executor gate (the paper's headline 2^14).
BATCHED_GATE_BATCH = 16_384

#: Batched execute+writeback must beat columnar by at least this factor
#: at the headline batch.  The committed baseline shows ~3x on execute
#: and ~3x on writeback; 1.5x is a conservative floor that survives a
#: noisy shared host without ever letting the batched path quietly decay
#: to parity.
BATCHED_FLOOR = 1.5

#: Measured batches per check; the per-phase minimum over them is the
#: estimator.  On a busy shared host three rounds is not enough for the
#: min to converge (identical code has been observed spanning 290-410 ms
#: round to round), so the gate takes more samples rather than a wider
#: allowed factor — the limit stays equally strict on the true cost.
DEFAULT_ROUNDS = 8

#: Worker count and speedup floor for the process-parallel execute gate:
#: at the headline batch, 4 workers must beat the in-process batched
#: path by 1.5x on the execute phase.  Hosts with fewer than
#: PARALLEL_MIN_CORES cores cannot meaningfully run 4 workers, so the
#: gate auto-skips there (exit 0 with a message) instead of failing on
#: honest scheduling contention.
PARALLEL_WORKERS = 4
PARALLEL_FLOOR = 1.5
PARALLEL_MIN_CORES = 4

#: Shard count and speedup floor for the multi-shard gate: at the
#: headline batch, 4 shards driving 4 process workers must beat the
#: in-process batched path by 1.5x on the detection pipeline
#: (execute+conflict+writeback).  Same auto-skip as the parallel gate:
#: below PARALLEL_MIN_CORES cores the measurement would only time the
#: OS scheduler, so the gate skips (exit 0) with the reason recorded.
SHARDED_SHARDS = 4
SHARDED_FLOOR = 1.5


def check(
    baseline_path: str,
    allowed_factor: float = DEFAULT_ALLOWED_FACTOR,
    rounds: int = DEFAULT_ROUNDS,
) -> int:
    from repro.bench import wallclock

    with open(baseline_path) as fh:
        baseline = json.load(fh)
    try:
        base = baseline["seconds_per_batch"]["columnar"][str(GATE_BATCH)]
    except KeyError:
        print(
            f"error: {baseline_path} has no columnar batch-{GATE_BATCH} entry; "
            "regenerate it with: python benchmarks/bench_wallclock.py"
        )
        return 2
    measured = wallclock.measure_path(
        columnar=True, batch_size=GATE_BATCH, scale=1.0, rounds=rounds
    )
    limit = base["execute"] * allowed_factor
    status = "OK" if measured["execute"] <= limit else "FAIL"
    print(
        f"execute phase @ batch {GATE_BATCH}: measured "
        f"{measured['execute'] * 1e3:.1f} ms, baseline "
        f"{base['execute'] * 1e3:.1f} ms, limit {limit * 1e3:.1f} ms "
        f"(x{allowed_factor:.2f}) -> {status}"
    )
    print(
        f"conflict phase (informational): measured "
        f"{measured['conflict'] * 1e3:.2f} ms, baseline "
        f"{base['conflict'] * 1e3:.2f} ms"
    )
    if status == "FAIL":
        print(
            "execute-phase host time regressed by more than "
            f"{(allowed_factor - 1) * 100:.0f}% over the committed baseline"
        )
        return 1
    return 0


def check_batched(rounds: int = DEFAULT_ROUNDS, floor: float = BATCHED_FLOOR) -> int:
    """Gate the batched executor: at the headline batch size, batched
    execute+writeback must beat columnar by at least ``floor``.

    Both paths are measured fresh on this host (a ratio of two local
    measurements, unlike the columnar gate's comparison against the
    committed baseline), so the gate is machine-independent.
    """
    from repro.bench import wallclock

    columnar = wallclock.measure_path(
        columnar=True, batch_size=BATCHED_GATE_BATCH, scale=1.0, rounds=rounds
    )
    batched = wallclock.measure_path(
        columnar=True, batch_size=BATCHED_GATE_BATCH, scale=1.0, rounds=rounds,
        batched=True,
    )
    col = columnar["execute"] + columnar["writeback"]
    bat = batched["execute"] + batched["writeback"]
    ratio = col / max(bat, 1e-12)
    status = "OK" if ratio >= floor else "FAIL"
    print(
        f"batched execute+writeback @ batch {BATCHED_GATE_BATCH}: "
        f"columnar {col * 1e3:.1f} ms, batched {bat * 1e3:.1f} ms, "
        f"speedup {ratio:.2f}x (floor {floor:.2f}x) -> {status}"
    )
    if status == "FAIL":
        print(
            "batched executor no longer beats the columnar path by the "
            f"required {floor:.2f}x on execute+writeback"
        )
        return 1
    return 0


def check_parallel(
    rounds: int = DEFAULT_ROUNDS,
    floor: float = PARALLEL_FLOOR,
    workers: int = PARALLEL_WORKERS,
) -> int:
    """Gate the process-parallel executor: at the headline batch,
    ``workers`` workers must beat the in-process batched path by at
    least ``floor`` on the execute phase.

    Like the batched gate this is a ratio of two fresh local
    measurements.  On hosts without enough cores to actually run the
    workers side by side the gate skips (exit 0): a 1-core container
    would only be measuring the OS scheduler.
    """
    cores = os.cpu_count() or 1
    if cores < PARALLEL_MIN_CORES:
        print(
            f"parallel gate skipped: host has {cores} core(s), "
            f"need >= {PARALLEL_MIN_CORES} to run {workers} workers "
            "side by side"
        )
        return 0
    from repro.bench import wallclock

    batched = wallclock.measure_path(
        columnar=True, batch_size=BATCHED_GATE_BATCH, scale=1.0, rounds=rounds,
        batched=True,
    )
    parallel = wallclock.measure_path(
        columnar=True, batch_size=BATCHED_GATE_BATCH, scale=1.0, rounds=rounds,
        batched=True, parallel=workers,
    )
    ratio = batched["execute"] / max(parallel["execute"], 1e-12)
    status = "OK" if ratio >= floor else "FAIL"
    print(
        f"parallel execute @ batch {BATCHED_GATE_BATCH} ({workers} workers): "
        f"batched {batched['execute'] * 1e3:.1f} ms, parallel "
        f"{parallel['execute'] * 1e3:.1f} ms, speedup {ratio:.2f}x "
        f"(floor {floor:.2f}x) -> {status}"
    )
    if status == "FAIL":
        print(
            f"{workers} parallel workers no longer beat the in-process "
            f"batched path by the required {floor:.2f}x on execute"
        )
        return 1
    return 0


def check_sharded(
    rounds: int = DEFAULT_ROUNDS,
    floor: float = SHARDED_FLOOR,
    shards: int = SHARDED_SHARDS,
) -> int:
    """Gate the multi-shard engine: at the headline batch, ``shards``
    shards driving ``shards`` process workers must beat the in-process
    batched path by at least ``floor`` on the detection pipeline
    (execute+conflict+writeback — the phases the shard split
    parallelizes; the router's sequencer cost is reported alongside).

    Same skip rule as the parallel gate: below PARALLEL_MIN_CORES cores
    the ratio would only measure scheduler contention, so the gate
    records the reason and exits 0.
    """
    cores = os.cpu_count() or 1
    if cores < PARALLEL_MIN_CORES:
        print(
            f"sharded gate skipped: host has {cores} core(s), "
            f"need >= {PARALLEL_MIN_CORES} to run {shards} shard workers "
            "side by side"
        )
        return 0
    from repro.bench import wallclock

    batched = wallclock.measure_path(
        columnar=True, batch_size=BATCHED_GATE_BATCH, scale=1.0, rounds=rounds,
        batched=True,
    )
    sharded = wallclock.measure_path(
        columnar=True, batch_size=BATCHED_GATE_BATCH, scale=1.0, rounds=rounds,
        batched=True, parallel=shards, shards=shards,
    )
    pipeline = ("execute", "conflict", "writeback")
    bat = sum(batched[p] for p in pipeline)
    sha = sum(sharded[p] for p in pipeline)
    ratio = bat / max(sha, 1e-12)
    status = "OK" if ratio >= floor else "FAIL"
    print(
        f"sharded execute+conflict+writeback @ batch {BATCHED_GATE_BATCH} "
        f"({shards} shards, {shards} workers): batched {bat * 1e3:.1f} ms, "
        f"sharded {sha * 1e3:.1f} ms (+ sequencer "
        f"{sharded['sequencer'] * 1e3:.2f} ms), speedup {ratio:.2f}x "
        f"(floor {floor:.2f}x) -> {status}"
    )
    if status == "FAIL":
        print(
            f"{shards} shards no longer beat the in-process batched path "
            f"by the required {floor:.2f}x on execute+conflict+writeback"
        )
        return 1
    return 0


def check_backend(backend: str | None, rounds: int = DEFAULT_ROUNDS) -> int:
    """Gate the array-backend path: measure the batched sweep through
    the ``repro.xp`` backend (informational — mockgpu pays bookkeeping
    overhead by design, real devices vary by host) and verify the
    device contract on one batch's transfer ledger (this part gates:
    zero implicit host round-trips inside kernel phases, zero float
    upcasts).

    ``backend=None``/``"auto"`` picks the first constructible device
    backend and skips (exit 0) when none is installed; a named backend
    that is not constructible here also skips.
    """
    import dataclasses

    from repro.bench import wallclock
    from repro.bench.common import ltpg_config, tpcc_bench
    from repro.xp import available_backends

    avail = available_backends()
    if backend in (None, "auto"):
        device = [n for n in avail if n not in ("numpy", "mockgpu")]
        if not device:
            print(
                "backend gate skipped: no device backend (cupy/torch) "
                "constructible here; use --backend mockgpu to run the "
                "contract checker"
            )
            return 0
        backend = device[0]
    if backend not in avail:
        print(f"backend gate skipped: backend {backend!r} not constructible here")
        return 0

    reference = wallclock.measure_path(
        columnar=True, batch_size=GATE_BATCH, scale=1.0, rounds=rounds,
        batched=True,
    )
    through = wallclock.measure_path(
        columnar=True, batch_size=GATE_BATCH, scale=1.0, rounds=rounds,
        batched=True, backend=backend,
    )
    ratio = through["total"] / max(reference["total"], 1e-12)
    print(
        f"batched total @ batch {GATE_BATCH} via {backend}: "
        f"{through['total'] * 1e3:.1f} ms vs numpy "
        f"{reference['total'] * 1e3:.1f} ms (x{ratio:.2f}, informational)"
    )

    # contract leg: one fresh batch, then inspect the transfer ledger
    bench = tpcc_bench(32, neworder_pct=50, batch_size=GATE_BATCH, scale=1.0)
    config = dataclasses.replace(
        ltpg_config(bench.batch_size),
        columnar_ops=True, batched_exec=True, array_backend=backend,
    )
    engine = bench.engine(config)
    try:
        engine.run_batch(bench.generator.make_batch(bench.batch_size))
        resolved = engine._ensure_backend()
        ledger = resolved.transfer_stats()
        upcasts = list(getattr(resolved, "upcasts", ()))
    finally:
        engine.close()
    print(
        f"transfer ledger: {ledger.h2d_bytes} B h2d / {ledger.d2h_bytes} B d2h "
        f"in {ledger.count} transfers, {ledger.dispatches} dispatches, "
        f"{ledger.implicit_syncs} implicit syncs, {len(upcasts)} upcasts"
    )
    if ledger.implicit_syncs or upcasts:
        print(
            f"backend contract violated on {backend}: implicit host "
            "round-trips or float upcasts inside the hot path"
        )
        return 1
    return 0


#: Transfer-ceiling gate (``--transfer-ceiling``): with
#: ``device_resident=1`` the steady-state per-batch H2D traffic must be
#: op-proportional — transaction parameters, conflict registration and
#: write-back scatters — never whole-column round-trips.  The budget is
#: expressed per transaction: TXN_PARAM_BYTES approximates the
#: parameter-column upload per transaction (ParamColumns ships ~18
#: int64 fields) and the factor covers the other op-proportional
#: streams (registration keys/tids, write-back rows/values, grow-driven
#: re-uploads).  Crucially the budget does NOT scale with database
#: size, so any per-batch column re-upload creeping back in trips it —
#: the non-resident path exceeds it several-fold even at the small
#: quick-gate scale (verified by the gate itself).
TXN_PARAM_BYTES = 160
PARAMS_BUDGET_FACTOR = 10
TRANSFER_GATE_WAREHOUSES = 4
TRANSFER_GATE_BATCHES = 3

#: Full-mode acceptance numbers (``--transfer-ceiling-full``): at the
#: paper's headline batch 2^14 on full-scale TPC-C (64 warehouses,
#: standard five-transaction mix), residency must cut steady-state
#: per-batch H2D+D2H bytes by at least 10x vs the non-resident batched
#: path, with byte-identical final database state.
TRANSFER_FULL_WAREHOUSES = 64
TRANSFER_FULL_BATCH = 16_384
TRANSFER_FULL_RATIO = 10.0


def _steady_transfers(
    backend: str,
    device_resident: bool,
    warehouses: int,
    batch_size: int,
    batches: int,
    full_mix: bool,
) -> tuple[dict[str, int], str]:
    """Run ``batches`` batches and return (last-batch ledger deltas,
    final database digest).  The last batch is steady state: batch 0
    pays the initial residency upload, batch 1 the first-touch upload
    of write-back-only columns.  mockgpu's ledger is deterministic, so
    the gate reproduces exactly on any host."""
    import dataclasses

    from repro.bench.common import ltpg_config, tpcc_bench

    if full_mix:
        from repro.bench.fullmix import FULL_MIX
        from repro.core.engine import LTPGEngine
        from repro.workloads.tpcc import build_tpcc

        db, registry, generator = build_tpcc(
            warehouses=warehouses, num_items=100_000, mix=FULL_MIX, seed=7
        )
        config = dataclasses.replace(
            ltpg_config(batch_size),
            columnar_ops=True, batched_exec=True, array_backend=backend,
            device_resident=device_resident,
        )
        engine = LTPGEngine(db, registry, config)
        database = db
    else:
        bench = tpcc_bench(
            warehouses, neworder_pct=50, batch_size=batch_size, seed=7
        )
        config = dataclasses.replace(
            ltpg_config(batch_size),
            columnar_ops=True, batched_exec=True, array_backend=backend,
            device_resident=device_resident,
        )
        engine = bench.engine(config)
        generator = bench.generator
        database = bench.database
    try:
        for _ in range(batches):
            engine.run_batch(generator.make_batch(batch_size))
        transfers = engine.last_transfers
        if engine._residency is not None:
            engine._residency.sync_all_to_host()
        digest = database.state_digest()
    finally:
        engine.close()
    return transfers, digest


def check_transfer_ceiling(
    backend: str | None,
    batch_size: int = GATE_BATCH,
    full: bool = False,
) -> int:
    """Gate device residency's whole point: with ``device_resident=1``
    the steady-state per-batch H2D bytes must stay within the
    op-proportional (params-only) budget, while the non-resident path
    must exceed it — proving both that residency kills the per-phase
    column round-trip and that the gate would catch its return.

    Quick mode runs a small database so CI stays fast; byte identity of
    the final state between the two paths rides along.  ``full=True``
    additionally reruns the acceptance configuration (full-scale TPC-C,
    five-transaction mix, batch 2^14) and holds the total H2D+D2H
    reduction to >= {ratio}x.
    """.format(ratio=TRANSFER_FULL_RATIO)
    from repro.xp import available_backends

    backend = backend or "mockgpu"
    if backend == "auto":
        backend = "mockgpu"
    if backend not in available_backends() or backend == "numpy":
        print(f"transfer-ceiling gate skipped: backend {backend!r} has no ledger")
        return 0

    resident, digest_r = _steady_transfers(
        backend, True, TRANSFER_GATE_WAREHOUSES, batch_size,
        TRANSFER_GATE_BATCHES, full_mix=False,
    )
    baseline, digest_b = _steady_transfers(
        backend, False, TRANSFER_GATE_WAREHOUSES, batch_size,
        TRANSFER_GATE_BATCHES, full_mix=False,
    )
    budget = batch_size * TXN_PARAM_BYTES * PARAMS_BUDGET_FACTOR
    res_ok = resident["h2d_bytes"] <= budget
    bites = baseline["h2d_bytes"] > budget
    same = digest_r == digest_b
    print(
        f"transfer ceiling @ batch {batch_size} "
        f"({TRANSFER_GATE_WAREHOUSES} warehouses, {backend}): steady "
        f"H2D resident {resident['h2d_bytes'] / 1e6:.2f} MB, budget "
        f"{budget / 1e6:.2f} MB ({TXN_PARAM_BYTES} B/txn x "
        f"{PARAMS_BUDGET_FACTOR}) -> {'OK' if res_ok else 'FAIL'}"
    )
    print(
        f"  non-resident H2D {baseline['h2d_bytes'] / 1e6:.2f} MB "
        f"{'exceeds' if bites else 'UNDER'} the budget (gate "
        f"{'bites' if bites else 'would not catch a regression'})"
        f" -> {'OK' if bites else 'FAIL'}"
    )
    print(
        f"  final state digest identical across paths -> "
        f"{'OK' if same else 'FAIL'}"
    )
    if not res_ok:
        print(
            "steady-state H2D under device_resident=1 exceeds the "
            "params-only budget: a per-batch column round-trip crept back in"
        )
        return 1
    if not bites or not same:
        return 1
    if not full:
        return 0

    resident, digest_r = _steady_transfers(
        backend, True, TRANSFER_FULL_WAREHOUSES, TRANSFER_FULL_BATCH,
        TRANSFER_GATE_BATCHES, full_mix=True,
    )
    baseline, digest_b = _steady_transfers(
        backend, False, TRANSFER_FULL_WAREHOUSES, TRANSFER_FULL_BATCH,
        TRANSFER_GATE_BATCHES, full_mix=True,
    )
    res_total = resident["h2d_bytes"] + resident["d2h_bytes"]
    base_total = baseline["h2d_bytes"] + baseline["d2h_bytes"]
    ratio = base_total / max(res_total, 1)
    ratio_ok = ratio >= TRANSFER_FULL_RATIO
    same = digest_r == digest_b
    print(
        f"transfer ceiling (full) @ batch {TRANSFER_FULL_BATCH} "
        f"({TRANSFER_FULL_WAREHOUSES} warehouses, full mix): "
        f"baseline {base_total / 1e6:.1f} MB/batch, resident "
        f"{res_total / 1e6:.1f} MB/batch, reduction {ratio:.2f}x "
        f"(floor {TRANSFER_FULL_RATIO:.0f}x) -> "
        f"{'OK' if ratio_ok else 'FAIL'}"
    )
    print(
        f"  final state digest identical across paths -> "
        f"{'OK' if same else 'FAIL'}"
    )
    return 0 if ratio_ok and same else 1


#: Serve gate tolerance: measured p99 may exceed the committed baseline
#: by at most this factor (and goodput may fall below baseline by it).
#: Serve numbers are virtual-clock and deterministic — identical code
#: reproduces the baseline *exactly* on any host — so unlike the
#: wall-clock gates the headroom only absorbs deliberate cost-model
#: changes, not machine noise.  A trip means either a real serving
#: regression or an intentional change that should regenerate the
#: baseline (python -m repro.bench serve).
SERVE_FACTOR = 1.25


def check_serve(
    baseline_path: str, factor: float = SERVE_FACTOR
) -> int:
    """Gate end-to-end serve latency: re-run the gate cell (hybrid
    policy on TPC-C, open loop, virtual clock) and hold p99 latency and
    goodput to the committed ``BENCH_serve.json`` within ``factor``."""
    from repro.bench import serve

    try:
        with open(baseline_path) as fh:
            baseline = json.load(fh)
        base = next(
            r for r in baseline["rows"]
            if r["workload"] == serve.GATE_WORKLOAD
            and r["policy"] == serve.GATE_POLICY
        )
    except (OSError, KeyError, StopIteration):
        print(
            f"error: {baseline_path} has no "
            f"({serve.GATE_WORKLOAD}, {serve.GATE_POLICY}) row; regenerate "
            "it with: python -m repro.bench serve"
        )
        return 2
    requests = baseline.get("meta", {}).get("requests_per_cell", 512)
    row = serve.measure_cell(
        serve.GATE_WORKLOAD, serve.GATE_POLICY, requests=requests
    )
    p99_limit = base["p99_us"] * factor
    goodput_floor = base["goodput_mtps"] / factor
    p99_ok = row["p99_us"] <= p99_limit
    goodput_ok = row["goodput_mtps"] >= goodput_floor
    status = "OK" if p99_ok and goodput_ok else "FAIL"
    print(
        f"serve p99 ({serve.GATE_WORKLOAD}/{serve.GATE_POLICY}, "
        f"{requests} reqs): measured {row['p99_us']:.1f} us, baseline "
        f"{base['p99_us']:.1f} us, limit {p99_limit:.1f} us "
        f"(x{factor:.2f}) -> {'OK' if p99_ok else 'FAIL'}"
    )
    print(
        f"serve goodput: measured {row['goodput_mtps']:.4f} Mtps, "
        f"baseline {base['goodput_mtps']:.4f} Mtps, floor "
        f"{goodput_floor:.4f} Mtps -> {'OK' if goodput_ok else 'FAIL'}"
    )
    if status == "FAIL":
        print(
            "end-to-end serve latency/goodput regressed vs the committed "
            "BENCH_serve.json (virtual clock: this is deterministic, not "
            "noise); if the change is intentional, regenerate the "
            "baseline with: python -m repro.bench serve"
        )
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    root = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--baseline",
        default=os.path.join(root, "BENCH_wallclock.json"),
        help="baseline JSON (default: the committed BENCH_wallclock.json)",
    )
    parser.add_argument(
        "--allowed-factor",
        type=float,
        default=DEFAULT_ALLOWED_FACTOR,
        help="fail when measured > baseline * this (default 1.30)",
    )
    parser.add_argument(
        "--rounds", type=int, default=DEFAULT_ROUNDS,
        help="measured batches (min is taken)",
    )
    parser.add_argument(
        "--batched-floor", type=float, default=BATCHED_FLOOR,
        help="batched must beat columnar on execute+writeback by this "
        f"factor at batch {BATCHED_GATE_BATCH} (default {BATCHED_FLOOR})",
    )
    parser.add_argument(
        "--skip-batched", action="store_true",
        help="only run the columnar regression gate",
    )
    parser.add_argument(
        "--parallel-floor", type=float, default=PARALLEL_FLOOR,
        help=f"{PARALLEL_WORKERS} workers must beat the batched path on "
        f"execute by this factor at batch {BATCHED_GATE_BATCH} "
        f"(default {PARALLEL_FLOOR}; auto-skips below "
        f"{PARALLEL_MIN_CORES} cores)",
    )
    parser.add_argument(
        "--skip-parallel", action="store_true",
        help="skip the process-parallel speedup gate",
    )
    parser.add_argument(
        "--sharded-floor", type=float, default=SHARDED_FLOOR,
        help=f"{SHARDED_SHARDS} shards ({SHARDED_SHARDS} workers) must "
        "beat the batched path on execute+conflict+writeback by this "
        f"factor at batch {BATCHED_GATE_BATCH} (default {SHARDED_FLOOR}; "
        f"auto-skips below {PARALLEL_MIN_CORES} cores)",
    )
    parser.add_argument(
        "--skip-sharded", action="store_true",
        help="skip the multi-shard speedup gate",
    )
    parser.add_argument(
        "--backend", default=None,
        help="repro.xp backend for the array-backend gate (default: "
        "first constructible device backend, skipping when none is)",
    )
    parser.add_argument(
        "--skip-backend", action="store_true",
        help="skip the array-backend contract gate",
    )
    parser.add_argument(
        "--transfer-ceiling", action="store_true",
        help="gate steady-state per-batch H2D under device_resident=1 "
        "against the op-proportional (params-only) budget on the "
        "ledger backend (deterministic; CI runs this with --quick)",
    )
    parser.add_argument(
        "--transfer-ceiling-full", action="store_true",
        help="also rerun the full-scale acceptance configuration "
        f"({TRANSFER_FULL_WAREHOUSES} warehouses, full mix, batch "
        f"{TRANSFER_FULL_BATCH}) and require a "
        f">={TRANSFER_FULL_RATIO:.0f}x H2D+D2H reduction",
    )
    parser.add_argument(
        "--serve-baseline",
        default=os.path.join(root, "BENCH_serve.json"),
        help="serve baseline JSON (default: the committed BENCH_serve.json)",
    )
    parser.add_argument(
        "--serve-factor", type=float, default=SERVE_FACTOR,
        help="fail when serve p99 > baseline * this or goodput < "
        f"baseline / this (default {SERVE_FACTOR}; virtual-clock, "
        "so deterministic on any host)",
    )
    parser.add_argument(
        "--skip-serve", action="store_true",
        help="skip the end-to-end serve latency gate",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="skip the machine-dependent wall-clock gates and run only "
        "the backend + serve gates at reduced rounds (the CI "
        "configuration; both are machine-independent)",
    )
    args = parser.parse_args(argv)
    rc = 0
    if not args.quick:
        rc = check(args.baseline, args.allowed_factor, args.rounds)
        if rc == 0 and not args.skip_batched:
            rc = check_batched(args.rounds, args.batched_floor)
        if rc == 0 and not args.skip_parallel:
            rc = check_parallel(args.rounds, args.parallel_floor)
        if rc == 0 and not args.skip_sharded:
            rc = check_sharded(args.rounds, args.sharded_floor)
    if rc == 0 and not args.skip_backend:
        rc = check_backend(args.backend, 2 if args.quick else args.rounds)
    if rc == 0 and (args.transfer_ceiling or args.transfer_ceiling_full):
        rc = check_transfer_ceiling(
            args.backend, full=args.transfer_ceiling_full
        )
    if rc == 0 and not args.skip_serve:
        rc = check_serve(args.serve_baseline, args.serve_factor)
    return rc


if __name__ == "__main__":
    sys.exit(main())

"""Table V: read/write-set copy-back overhead vs batch size."""

from __future__ import annotations

from bench_util import run_once
from repro.bench import table5


def test_table5_rwset_copy_overhead(benchmark, bench_scale, bench_rounds):
    result = run_once(
        benchmark,
        lambda: table5.run(scale=bench_scale, rounds=bench_rounds),
    )
    print()
    print(result.format())
    # roughly proportional to the batch size (paper: 25us -> 300us)
    assert result.rwset_us[16_384] > result.rwset_us[1_024]
    assert result.rwset_us[65_536] > result.rwset_us[16_384]

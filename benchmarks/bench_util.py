"""Helpers shared by the benchmark files (kept out of conftest.py so
the module name never collides with tests/conftest.py)."""

from __future__ import annotations


def run_once(benchmark, fn):
    """Run a deterministic harness exactly once under pytest-benchmark
    (the simulated clock has no run-to-run noise worth averaging)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)

"""Design-choice ablations (DESIGN.md section 5): warp division, retry
delay, logical reordering."""

from __future__ import annotations

from bench_util import run_once
from repro.bench import ablations


def test_warp_division_ablation(benchmark, bench_scale, bench_rounds):
    result = run_once(
        benchmark,
        lambda: ablations.run_warp_division(scale=bench_scale, rounds=bench_rounds),
    )
    print()
    print(result.format())
    grouped = result.rows["grouped (adaptive)"]
    naive = result.rows["naive (per-txn)"]
    assert grouped[2] == 0, "adaptive grouping must remove divergence"
    assert naive[2] > 0, "per-txn threading must diverge"
    assert grouped[0] >= naive[0], "grouping must not lose throughput"


def test_retry_delay_ablation(benchmark, bench_scale, bench_rounds):
    result = run_once(
        benchmark,
        lambda: ablations.run_retry_delay(scale=bench_scale, rounds=bench_rounds),
    )
    print()
    print(result.format())
    one = result.rows["retry +1"]
    two = result.rows["retry +2"]
    # the pipeline's +2 delay must not collapse throughput
    assert two[0] > 0.5 * one[0]


def test_reordering_ablation(benchmark, bench_scale, bench_rounds):
    result = run_once(
        benchmark,
        lambda: ablations.run_reordering(scale=bench_scale, rounds=bench_rounds),
    )
    print()
    print(result.format())
    with_r = result.rows["with reordering"]
    without = result.rows["without reordering"]
    # Within one batch reordering commits a strict superset (property-
    # tested in tests/test_properties.py); across a steady-state run the
    # changed batch compositions add small noise, so allow a tolerance.
    assert with_r[1] >= without[1] - 0.03
    assert with_r[2] == 0, "reordering leaves no pure-RAW aborts"


def test_btree_scan_ablation(benchmark, bench_scale, bench_rounds):
    result = run_once(
        benchmark,
        lambda: ablations.run_btree_scans(scale=bench_scale, rounds=bench_rounds),
    )
    print()
    print(result.format())
    hashed = result.rows["pre-resolved keys"]
    btree = result.rows["B-tree range scans"]
    # the ordered index costs a tree descent per scan but must stay
    # within ~20% of the hash path, and both commit fully
    assert btree[0] > 0.7 * hashed[0]
    assert btree[1] > 0.9

"""Fig 6: (a) commit rate / latency vs batch size; (b) optimization
ablation."""

from __future__ import annotations

from bench_util import run_once
from repro.bench import fig6


def test_fig6a_commit_rate_and_latency(benchmark, bench_scale, bench_rounds):
    result = run_once(
        benchmark, lambda: fig6.run_a(scale=bench_scale, rounds=bench_rounds)
    )
    print()
    print(result.format())
    batches = sorted(result.latency_us)
    assert result.latency_us[batches[-1]] > result.latency_us[batches[0]]
    assert all(0.2 < r <= 1.0 for r in result.commit_rate.values())


def test_fig6b_optimization_ablation(benchmark, bench_scale, bench_rounds):
    result = run_once(
        benchmark, lambda: fig6.run_b(scale=bench_scale, rounds=bench_rounds)
    )
    print()
    print(result.format())
    base = result.mtps["baseline"]
    final = result.mtps["+hash-buckets"]
    # paper: high-contention bundle alone is ~1.75x; the full stack
    # comfortably clears the unenhanced engine.
    assert result.mtps["+high-contention"] > 1.2 * base
    assert final > 1.2 * base

"""Host wall-clock: columnar vs reference op path, per phase.

As a pytest benchmark this runs the scaled-down sweep like every other
harness.  Run directly — ``python benchmarks/bench_wallclock.py`` — it
reproduces the committed ``BENCH_wallclock.json`` at full scale
(batch sizes 2^10..2^16, TPC-C 50/50) and rewrites the file.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(__file__))

from repro.bench import wallclock  # noqa: E402


def test_wallclock_columnar_speedup(benchmark, bench_scale, bench_rounds):
    from bench_util import run_once

    # Scaled batches are tiny; only sweep up to 2^14 to keep it quick.
    result = run_once(
        benchmark,
        lambda: wallclock.run(
            scale=bench_scale,
            rounds=bench_rounds,
            batch_sizes=tuple(2**k for k in (10, 12, 14)),
        ),
    )
    print()
    print(result.format())
    # At scaled-down batch sizes the per-batch times are sub-millisecond
    # and noisy, so only sanity-check that the sweep produced data; the
    # >=3x acceptance ratio is asserted at full scale by
    # scripts/check_wallclock.py and recorded in BENCH_wallclock.json.
    assert all(
        result.exec_conflict("columnar", b) > 0
        for b in result.seconds["columnar"]
    )


def main() -> int:
    root = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")
    out = os.path.join(root, "BENCH_wallclock.json")
    # min-of-8: matches the perf gate's estimator (scripts/check_wallclock.py)
    result = wallclock.run_and_write(scale=1.0, rounds=8, path=out)
    print(result.format())
    headline = wallclock.HEADLINE_BATCH
    if headline in result.seconds.get("reference", {}):
        print(
            f"\nexecute+conflict speedup at batch {headline}: "
            f"{result.speedup(headline):.2f}x (acceptance floor: 3x)"
        )
    if headline in result.seconds.get("batched", {}):
        print(
            f"batched execute speedup over columnar at batch {headline}: "
            f"{result.batched_speedup(headline):.2f}x (acceptance floor: 3x)"
        )
    if headline in result.seconds.get("parallel", {}):
        cores = os.cpu_count() or 1
        floor = (
            "acceptance floor: 1.5x"
            if cores >= 4
            else f"floor not enforced: host has {cores} core(s)"
        )
        print(
            f"parallel execute speedup over batched at batch {headline} "
            f"({result.meta.get('parallel_workers')} workers): "
            f"{result.parallel_speedup(headline):.2f}x ({floor})"
        )
    if headline in result.seconds.get("sharded", {}):
        cores = os.cpu_count() or 1
        floor = (
            "acceptance floor: 1.5x"
            if cores >= 4
            else f"floor not enforced: host has {cores} core(s)"
        )
        print(
            f"sharded execute+conflict+writeback speedup over batched at "
            f"batch {headline} ({result.meta.get('shards')} shards): "
            f"{result.sharded_speedup(headline):.2f}x ({floor})"
        )
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Table IV: per-batch latency + transmission latency, LTPG vs GaccO."""

from __future__ import annotations

from bench_util import run_once
from repro.bench import table4


def test_table4_latency(benchmark, bench_scale, bench_rounds):
    result = run_once(
        benchmark,
        lambda: table4.run(scale=bench_scale, rounds=bench_rounds),
    )
    print()
    print(result.format())
    for w, b in table4.CONFIGS:
        lat_l, xfer_l = result.cells[("ltpg", w, b)]
        lat_g, xfer_g = result.cells[("gacco", w, b)]
        assert lat_l < lat_g, f"LTPG must win batch latency at {w}/{b}"
        assert xfer_l < xfer_g, f"LTPG must win transmission at {w}/{b}"
    # paper: LTPG cuts batch latency by 44-72%
    lat_l, _ = result.cells[("ltpg", 8, 8192)]
    lat_g, _ = result.cells[("gacco", 8, 8192)]
    assert 1 - lat_l / lat_g > 0.2

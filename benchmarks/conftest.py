"""pytest-benchmark configuration for the paper-table harnesses.

The harnesses run at ``REPRO_BENCH_SCALE`` (default 32: paper sizes
divided by 32) so the whole suite finishes in minutes.  Set
``REPRO_BENCH_SCALE=1`` — or use ``python -m repro.bench <exp> --scale 1``
— for the full-scale reproduction recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import os

import pytest

DEFAULT_SCALE = 32.0


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", DEFAULT_SCALE))


@pytest.fixture(scope="session")
def bench_rounds() -> int:
    return int(os.environ.get("REPRO_BENCH_ROUNDS", 2))

"""Table VIII: memory occupancy of large vs standard hash tables."""

from __future__ import annotations

from bench_util import run_once
from repro.bench import table8


def test_table8_memory_occupancy(benchmark, bench_scale):
    result = run_once(benchmark, lambda: table8.run(scale=bench_scale))
    print()
    print(result.format())
    fractions = [result.pct[w][0] for w in table8.WAREHOUSES]
    # tiny and flat across warehouse counts
    assert all(f < 10.0 for f in fractions)
    assert max(fractions) - min(fractions) < 5.0

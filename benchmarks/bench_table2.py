"""Table II: nine-system TPC-C throughput comparison.

Regenerates the paper's Table II rows (subset of configurations at the
benchmark scale); prints the table and asserts the headline ordering:
LTPG > GaccO on mixed/NewOrder workloads, GaccO > LTPG on 100% Payment,
GPU systems > CPU systems.
"""

from __future__ import annotations

from bench_util import run_once
from repro.bench import table2


def test_table2_mixed_and_payment(benchmark, bench_scale, bench_rounds):
    result = run_once(
        benchmark,
        lambda: table2.run(
            scale=bench_scale,
            rounds=bench_rounds,
            configs=((50, 8), (100, 8), (0, 8)),
        ),
    )
    print()
    print(result.format())
    m = result.mtps
    assert m[("ltpg", 50, 8)] > m[("gacco", 50, 8)] * 0.95
    assert m[("gacco", 0, 8)] > m[("ltpg", 0, 8)] * 0.9
    if bench_scale <= 8:
        # The 100% NewOrder lead (paper: 1.4-1.9x) needs paper-sized
        # batches to amortize LTPG's per-batch fixed costs; at smoke
        # scale only rough parity is required.
        assert m[("ltpg", 100, 8)] > m[("gacco", 100, 8)]
    else:
        assert m[("ltpg", 100, 8)] > m[("gacco", 100, 8)] * 0.6
    # GPU engines clear the CPU field on the mixed workload (at smoke
    # scale the hotspot-pipelined Bamboo may reach rough parity).
    margin = 1.0 if bench_scale <= 8 else 0.85
    for cpu in ("aria", "calvin", "bohm", "pwv", "dbx1000", "bamboo"):
        assert m[("ltpg", 50, 8)] > m[(cpu, 50, 8)] * margin


def test_table2_warehouse_scaling(benchmark, bench_scale, bench_rounds):
    result = run_once(
        benchmark,
        lambda: table2.run(
            scale=bench_scale,
            rounds=bench_rounds,
            systems=("ltpg", "gacco"),
            configs=((50, 8), (50, 32)),
        ),
    )
    print()
    print(result.format())
    assert result.mtps[("ltpg", 50, 32)] > 0

"""Table IX: zero-copy vs unified-memory per-phase times."""

from __future__ import annotations

from bench_util import run_once
from repro.bench import table9


def test_table9_unified_memory(benchmark, bench_scale):
    result = run_once(
        benchmark, lambda: table9.run(scale=max(bench_scale, 16.0), rounds=1)
    )
    print()
    print(result.format())
    zc = result.phases[32]
    um = result.phases[2048]
    # page faults inflate the unified-memory phases dramatically
    assert um["execute"] > 2 * zc["execute"]

"""Table VI: commit rates with vs without high-contention optimization."""

from __future__ import annotations

from bench_util import run_once
from repro.bench import table6


def test_table6_high_contention_optimization(benchmark, bench_scale, bench_rounds):
    result = run_once(
        benchmark,
        lambda: table6.run(scale=bench_scale, rounds=bench_rounds),
    )
    print()
    print(result.format())
    for w, b in table6.CONFIGS:
        with_opt = result.cells[(w, b, True)]
        without = result.cells[(w, b, False)]
        # Payment jumps from ~zero; NewOrder barely moves; total rises.
        assert with_opt.rate_payment > without.rate_payment
        assert with_opt.rate_total > without.rate_total
        assert abs(with_opt.rate_neworder - without.rate_neworder) < 0.25

"""Fig 7: YCSB A-E across batch and data sizes."""

from __future__ import annotations

from bench_util import run_once
from repro.bench import fig7


def test_fig7_ycsb(benchmark, bench_scale, bench_rounds):
    result = run_once(
        benchmark,
        lambda: fig7.run(
            scale=bench_scale,
            rounds=bench_rounds,
            batch_sizes=(2**10, 2**14),
            data_sizes=(10_000, 1_000_000),
        ),
    )
    print()
    print(result.format())
    m = result.mtps
    # read-only C fastest, scan-heavy E slowest (paper's ordering)
    for n in (10_000, 1_000_000):
        assert m[("c", 2**14, n)] >= m[("a", 2**14, n)]
        assert m[("e", 2**14, n)] == min(
            m[(wl, 2**14, n)] for wl in fig7.WORKLOAD_NAMES
        )
    # throughput grows with batch size
    assert m[("c", 2**14, 10_000)] > m[("c", 2**10, 10_000)]

"""Table VII: standard vs large hash-bucket latency microbenchmark."""

from __future__ import annotations

from bench_util import run_once
from repro.bench import table7


def test_table7_bucket_latency(benchmark):
    result = run_once(benchmark, table7.run)
    print()
    print(result.format())
    # Marking dominates and large buckets shorten it; reads unaffected.
    for key in result.cells:
        t = result.cells[key]
        assert t.mark_us > t.read_us
    std = result.cells[(512, 512, 32, 1)]
    big = result.cells[(512, 512, 32, 32)]
    assert std.mark_us / big.mark_us > 1.5  # paper: ~2x at this point

"""Table III: LTPG throughput vs batch size (2^8..2^16)."""

from __future__ import annotations

from bench_util import run_once
from repro.bench import table3


def test_table3_batch_scaling(benchmark, bench_scale, bench_rounds):
    result = run_once(
        benchmark,
        lambda: table3.run(
            scale=bench_scale,
            rounds=bench_rounds,
            batch_sizes=(2**8, 2**10, 2**12, 2**14),
            configs=((50, 8), (100, 8), (0, 8)),
        ),
    )
    print()
    print(result.format())
    # Larger batches amortize launch/sync/transfer overheads.
    assert result.mtps[(2**14, 50, 8)] > result.mtps[(2**8, 50, 8)]
    assert result.mtps[(2**12, 100, 8)] > result.mtps[(2**8, 100, 8)]

"""Batch-to-batch pipeline execution (paper §V-E).

With three CUDA streams, the transfer of batch *n+1*'s inputs overlaps
the kernels of batch *n*, and batch *n-1*'s results stream back
concurrently.  The engine already orders each batch's own work with
events (h2d -> kernels -> d2h); pointing the three legs at distinct
streams is all the pipeline needs — the simulator's per-stream clocks
produce the overlap, and aborted transactions must wait two batches
(their retry inputs cannot join the already-in-flight next batch).
"""

from __future__ import annotations

import contextlib
from typing import Iterator

from repro.core.engine import LTPGEngine
from repro.core.stats import RunStats
from repro.txn.batch import BatchScheduler

#: Stream names used by the pipelined configuration.
H2D_STREAM = "h2d"
COMPUTE_STREAM = "compute"
D2H_STREAM = "d2h"


@contextlib.contextmanager
def pipelined(engine: LTPGEngine) -> Iterator[LTPGEngine]:
    """Temporarily run the engine with overlapped transfer streams."""
    saved = (engine.h2d_stream, engine.compute_stream, engine.d2h_stream)
    engine.h2d_stream = H2D_STREAM
    engine.compute_stream = COMPUTE_STREAM
    engine.d2h_stream = D2H_STREAM
    try:
        yield engine
    finally:
        engine.h2d_stream, engine.compute_stream, engine.d2h_stream = saved


def run_pipelined(
    engine: LTPGEngine,
    scheduler: BatchScheduler,
    max_batches: int | None = None,
) -> RunStats:
    """Drain ``scheduler`` with pipeline overlap enabled.

    The caller should build the scheduler with
    ``retry_delay_batches=config.effective_retry_delay`` (2 when
    pipelined) — see :class:`~repro.core.config.LTPGConfig`.
    """
    with pipelined(engine):
        return engine.process(scheduler, max_batches=max_batches)


def pipeline_makespan_ns(engine: LTPGEngine) -> float:
    """Wall-clock of everything processed so far on this device (the
    max over stream clocks — what a final ``cudaDeviceSynchronize``
    would observe)."""
    return engine.device.elapsed_ns()

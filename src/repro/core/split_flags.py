"""Row-level conflict-flag splitting (paper §V-D).

By default one conflict flag guards a whole row, so a write to a hot
attribute (``W_YTD``) conflicts with reads of unrelated attributes of
the same row (``W_ZIP``).  Splitting gives flagged columns their own
conflict-logging group: the conflict-log key becomes
``(table, row, group)`` instead of ``(table, row)``, and operations in
different groups never conflict.

Soundness: a split is safe exactly because transactions that touch
*different* columns of a row have no data dependency — the storage
layer is columnar, so a committed write to ``W_YTD`` cannot clobber
``W_ZIP``.  Two operations on the *same* column always share a group.
"""

from __future__ import annotations

import numpy as np

from repro.errors import StorageError
from repro.storage.database import Database
from repro.txn.operations import column_interner_size, intern_column

#: Group id shared by all unflagged columns of a table.
DEFAULT_GROUP = 0


class FlagGroups:
    """Column -> conflict-flag-group mapping for every table."""

    def __init__(
        self,
        database: Database,
        split_columns: frozenset[tuple[str, str]] = frozenset(),
        enabled: bool = True,
    ):
        self.enabled = enabled
        self._group_of: list[dict[str, int]] = []
        self._num_groups: list[int] = []
        self._lut: np.ndarray | None = None
        split_by_table: dict[str, list[str]] = {}
        if enabled:
            for table, column in sorted(split_columns):
                split_by_table.setdefault(table, []).append(column)
        for table in database.tables:
            mapping: dict[str, int] = {}
            next_group = DEFAULT_GROUP + 1
            for column in split_by_table.get(table.name, ()):  # sorted above
                if column not in table.schema.column_names:
                    raise StorageError(
                        f"cannot split unknown column {column!r} of "
                        f"table {table.name!r}"
                    )
                mapping[column] = next_group
                next_group += 1
            self._group_of.append(mapping)
            self._num_groups.append(next_group if mapping else 1)

    def group_of(self, table_id: int, column: str) -> int:
        """The conflict group of ``column`` (DEFAULT_GROUP if unflagged
        or splitting is disabled)."""
        return self._group_of[table_id].get(column, DEFAULT_GROUP)

    def group_lookup(self, table_ids: np.ndarray, col_ids: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`group_of` over interned column ids."""
        if not any(self._group_of):
            return np.zeros(table_ids.size, dtype=np.int64)
        if self._lut is None or self._lut.shape[1] < column_interner_size():
            pairs = [
                (t, intern_column(column), group)
                for t, mapping in enumerate(self._group_of)
                for column, group in mapping.items()
            ]
            lut = np.full(
                (len(self._group_of), column_interner_size()),
                DEFAULT_GROUP,
                dtype=np.int64,
            )
            for t, col_id, group in pairs:
                lut[t, col_id] = group
            self._lut = lut
        return self._lut[table_ids, col_ids]

    def num_groups(self, table_id: int) -> int:
        """How many conflict groups this table's rows fan out into."""
        return self._num_groups[table_id]

    def split_column_count(self) -> int:
        return sum(len(m) for m in self._group_of)

"""The conflict log: TID registration tables with dynamic hash buckets.

Functionally, the log stores — per data item ``(table, row, group)`` —
the minimum TID that read the item and the minimum TID that wrote it
this batch (exactly the two fields the paper keeps per bucket).  The
conflict-detection phase compares each transaction's TID against those
minima.

For *cost*, the log also models the physical hash tables: every
registration is an ``atomicMin`` on a bucket slot, and concurrent
atomics on the same slot serialize.  Standard buckets have one slot
(``s_u = 1``); popular tables (``E > 1``) get large buckets whose
``s_u`` sub-slots are picked by ``TID mod s_u``, cutting the longest
serialization chain by a factor of ``s_u`` (paper §V-C, Table VII).
The split between exact minima (correctness) and modeled slots (cost)
is deliberate: open addressing resolves distinct-key collisions, so
bucket geometry never changes *results*, only timing.
"""

from __future__ import annotations

import numpy as np

from repro.core.hotspot import TableHeat
from repro.core.split_flags import FlagGroups
from repro.errors import TransactionError
from repro.gpusim.atomics import collision_profile
from repro.gpusim.kernel import KernelContext
from repro.storage.database import Database
from repro.txn.batch_context import pack_sort_key
from repro.xp import ArrayBackend, get_backend

#: "No TID registered" sentinel; larger than any real TID.
NO_TID = np.iinfo(np.int64).max

#: Bytes per bucket slot: min-read TID + min-write TID (paper keeps both).
_SLOT_BYTES = 8


class ConflictLog:
    """Per-batch TID registration over one database."""

    def __init__(
        self,
        database: Database,
        flags: FlagGroups,
        dynamic_buckets: bool = True,
        xp: ArrayBackend | None = None,
    ):
        self._db = database
        self._flags = flags
        self.dynamic_buckets = dynamic_buckets
        #: backend owning the minima arrays (the registration tables
        #: live device-resident; registrations ship keys/TIDs down and
        #: the detection phase reads the gathered minima back up)
        self.xp = xp if xp is not None else get_backend("numpy")
        self._min_read = np.empty(0, dtype=np.int64)
        self._min_write = np.empty(0, dtype=np.int64)
        self._base = np.zeros(database.num_tables + 1, dtype=np.int64)
        self._rows = np.zeros(database.num_tables, dtype=np.int64)
        self._groups = np.array(
            [flags.num_groups(t) for t in range(database.num_tables)],
            dtype=np.int64,
        )
        self._touched: list[np.ndarray] = []
        # Insert reservations, sorted by (table, key): winner per pair.
        self._ins_tables = np.empty(0, dtype=np.int64)
        self._ins_keys = np.empty(0, dtype=np.int64)
        self._ins_tids = np.empty(0, dtype=np.int64)
        self._heats: dict[int, TableHeat] = {}

    # -- batch lifecycle -----------------------------------------------------
    def begin_batch(self, heats: dict[int, TableHeat]) -> None:
        """Size key space to current table sizes and adopt this batch's
        popularity verdicts (bucket sizes)."""
        self._heats = heats
        for t in range(self._db.num_tables):
            self._rows[t] = self._db.table_by_id(t).num_rows
        np.cumsum(self._rows * self._groups, out=self._base[1:])
        total = int(self._base[-1])
        if total > self._min_read.size:
            # Grow with slack: tables gain rows every batch (inserts), so
            # sizing exactly would reallocate the minima arrays per batch.
            capacity = max(total + total // 4, 1024)
            self._min_read = self.xp.full(capacity, NO_TID, dtype=np.int64)
            self._min_write = self.xp.full(capacity, NO_TID, dtype=np.int64)
        self._touched = []
        self._clear_inserts()

    def set_backend(self, xp: ArrayBackend) -> None:
        """Re-home the registration tables on a new backend (engine
        reconfiguration); the next :meth:`begin_batch` ships nothing —
        the minima move here, once."""
        self.xp = xp
        self._min_read = xp.from_host(np.asarray(xp.to_host(self._min_read)))
        self._min_write = xp.from_host(np.asarray(xp.to_host(self._min_write)))
        self._touched = []

    def end_batch(self) -> None:
        """Reset every touched minimum back to the sentinel."""
        if self._touched:
            keys = np.concatenate(self._touched)
            self._min_read[keys] = NO_TID
            self._min_write[keys] = NO_TID
        self._touched = []
        self._clear_inserts()

    def _clear_inserts(self) -> None:
        self._ins_tables = np.empty(0, dtype=np.int64)
        self._ins_keys = np.empty(0, dtype=np.int64)
        self._ins_tids = np.empty(0, dtype=np.int64)

    # -- key encoding -----------------------------------------------------------
    def encode(self, table_ids: np.ndarray, rows: np.ndarray, groups: np.ndarray) -> np.ndarray:
        """Global conflict key for (table, row, group) triples."""
        return self._base[table_ids] + rows * self._groups[table_ids] + groups

    def bucket_size(self, table_id: int) -> int:
        """This batch's ``s_u`` for a table (1 when buckets are static)."""
        if not self.dynamic_buckets:
            return 1
        heat = self._heats.get(table_id)
        return heat.bucket_size if heat else 1

    # -- registration (the execution-phase atomics) ------------------------------
    def register_reads(
        self, keys: np.ndarray, tids: np.ndarray, table_ids: np.ndarray,
        ctx: KernelContext | None = None,
    ) -> None:
        self._register(self._min_read, keys, tids, table_ids, ctx, "conflict_log.read")

    def register_writes(
        self, keys: np.ndarray, tids: np.ndarray, table_ids: np.ndarray,
        ctx: KernelContext | None = None,
    ) -> None:
        self._register(
            self._min_write, keys, tids, table_ids, ctx, "conflict_log.write"
        )

    def _register(
        self,
        minima: np.ndarray,
        keys: np.ndarray,
        tids: np.ndarray,
        table_ids: np.ndarray,
        ctx: KernelContext | None,
        buffer: str,
    ) -> None:
        if keys.size == 0:
            return
        if keys.size != tids.size or keys.size != table_ids.size:
            raise TransactionError("registration arrays must align")
        xp = self.xp
        # the execute phase's write-set shipping: encoded keys and TIDs
        # go down once per registration call (identity on numpy)
        dkeys = xp.from_host(keys)
        dtids = xp.from_host(tids)
        packed = pack_sort_key(dkeys, dtids, xp=xp)
        if packed is None:
            xp.scatter_min(minima, dkeys, dtids)
            self._touched.append(xp.unique(dkeys))
        else:
            # one sort replaces both the element-wise atomicMin twin and
            # the np.unique for the touched list: the first entry of
            # each (key, tid)-sorted key run carries the min TID
            order = xp.argsort(packed, stable=False)
            ks = dkeys[order]
            first = xp.empty(ks.size, dtype=bool)
            first[0] = True
            first[1:] = ks[1:] != ks[:-1]
            touched = ks[first]
            minima[touched] = xp.minimum(minima[touched], dtids[order][first])
            self._touched.append(touched)
        if ctx is not None:
            ctx.add_trace_arg(f"{buffer}.registrations", int(keys.size))
            if ctx.sanitizer is not None:
                # The atomicMin itself: per-TID atomic writes to the
                # minima array, addressed by the encoded conflict key.
                from repro.analysis.sanitizer import AccessKind

                ctx.sanitizer.register_buffer(buffer, size=int(minima.size))
                ctx.sanitizer.record(buffer, keys, tids, AccessKind.WRITE, atomic=True)
            total, serialized, chain = collision_profile(
                self._slot_addresses(keys, tids, table_ids)
            )
            ctx.record_atomics(total, serialized, chain)

    def register_inserts(
        self,
        table_ids: np.ndarray,
        insert_keys: np.ndarray,
        tids: np.ndarray,
        ctx: KernelContext | None = None,
    ) -> None:
        """Reserve primary keys being inserted; the smallest TID wins
        each key, and losers will see a WAW at detection time."""
        if insert_keys.size == 0:
            return
        order = np.lexsort((tids, insert_keys, table_ids))
        t_sorted = table_ids[order]
        k_sorted = insert_keys[order]
        tid_sorted = tids[order]
        first = np.ones(order.size, dtype=bool)
        first[1:] = (t_sorted[1:] != t_sorted[:-1]) | (k_sorted[1:] != k_sorted[:-1])
        t_new = t_sorted[first]
        k_new = k_sorted[first]
        tid_new = tid_sorted[first]
        if self._ins_keys.size:
            # A later registration call overrides an earlier winner for
            # the same (table, key): stable-sort old-then-new and keep
            # the *last* entry of each pair.
            t_all = np.concatenate((self._ins_tables, t_new))
            k_all = np.concatenate((self._ins_keys, k_new))
            tid_all = np.concatenate((self._ins_tids, tid_new))
            merge = np.lexsort((np.arange(t_all.size), k_all, t_all))
            t_all, k_all, tid_all = t_all[merge], k_all[merge], tid_all[merge]
            last = np.ones(t_all.size, dtype=bool)
            last[:-1] = (t_all[1:] != t_all[:-1]) | (k_all[1:] != k_all[:-1])
            t_new, k_new, tid_new = t_all[last], k_all[last], tid_all[last]
        self._ins_tables, self._ins_keys, self._ins_tids = t_new, k_new, tid_new
        if ctx is not None:
            # Insert reservations hash the new key into a per-table
            # insert region sized for the batch (the engine grows the
            # insert hash with the batch, so distinct keys rarely
            # collide; same-key reservations still chain).
            hash_size = max(1024, 2 * int(insert_keys.size))
            slots = (table_ids << 32) | (insert_keys % hash_size)
            if ctx.sanitizer is not None:
                from repro.analysis.sanitizer import AccessKind

                ctx.sanitizer.record(
                    "conflict_log.insert", slots, tids, AccessKind.WRITE, atomic=True
                )
            total, serialized, chain = collision_profile(slots)
            ctx.record_atomics(total, serialized, chain)

    def _slot_addresses(
        self, keys: np.ndarray, tids: np.ndarray, table_ids: np.ndarray
    ) -> np.ndarray:
        """Physical bucket-slot address of each registration.

        Standard tables: one slot per key.  Popular tables: ``s_u``
        sub-slots per key, chosen by ``TID mod s_u`` (the paper's
        re-hash), which shortens per-address chains by ``s_u``.

        Callers only feed the result to ``collision_profile`` (a pure
        read), so the one-slot-per-key cases return ``keys`` itself
        without allocating a copy.
        """
        if not self.dynamic_buckets or not self._heats:
            return keys  # one slot per key; read-only use, no copy
        sizes = np.ones(self._db.num_tables, dtype=np.int64)
        for table_id, heat in self._heats.items():
            sizes[table_id] = heat.bucket_size
        s_u = sizes[table_ids]
        smax = int(s_u.max())
        if smax == 1:
            return keys
        # Unique slot ids: stretch each key by the largest s_u.  Guard
        # the stretch against silent int64 wrap-around for huge key
        # spaces — wrapped addresses would alias unrelated buckets and
        # corrupt the contention profile.
        if keys.size and int(keys.max()) > (np.iinfo(np.int64).max - smax) // smax:
            raise TransactionError(
                "conflict-log slot addressing overflows int64: key space "
                f"{int(keys.max())} x bucket size {smax} exceeds 2^63-1; "
                "shrink the table/group key space or disable dynamic_buckets"
            )
        return keys * smax + (tids % s_u)

    # -- detection-phase queries ------------------------------------------------
    # The gathers run on the device; the gathered minima (one word per
    # queried key, not the whole table) come back explicitly — this is
    # the conflict-flag readback the paper's per-batch sync method ships.
    def min_read(self, keys: np.ndarray) -> np.ndarray:
        return self.xp.to_host(self._min_read[keys])

    def min_write(self, keys: np.ndarray) -> np.ndarray:
        return self.xp.to_host(self._min_write[keys])

    def insert_winner(self, table_id: int, key: int) -> int:
        lo = int(np.searchsorted(self._ins_tables, table_id, side="left"))
        hi = int(np.searchsorted(self._ins_tables, table_id, side="right"))
        pos = lo + int(np.searchsorted(self._ins_keys[lo:hi], key))
        if pos < hi and int(self._ins_keys[pos]) == key:
            return int(self._ins_tids[pos])
        return NO_TID

    def insert_winners(
        self, table_ids: np.ndarray, insert_keys: np.ndarray
    ) -> np.ndarray:
        """Winning TID per queried (table, key) pair — a sorted-array
        lookup over the reservation arrays built at registration."""
        out = np.full(table_ids.size, NO_TID, dtype=np.int64)
        if self._ins_keys.size == 0 or table_ids.size == 0:
            return out
        for table_id in np.unique(table_ids):
            lo = int(np.searchsorted(self._ins_tables, table_id, side="left"))
            hi = int(np.searchsorted(self._ins_tables, table_id, side="right"))
            if lo == hi:
                continue
            mask = table_ids == table_id
            seg = self._ins_keys[lo:hi]
            pos = np.searchsorted(seg, insert_keys[mask])
            in_seg = pos < seg.size
            safe = np.minimum(pos, seg.size - 1)
            hit = in_seg & (seg[safe] == insert_keys[mask])
            out[mask] = np.where(hit, self._ins_tids[lo:hi][safe], NO_TID)
        return out

    # -- per-batch observability (repro.trace) --------------------------------
    def batch_metrics(self) -> dict[str, float]:
        """This batch's hash-table pressure, read *before*
        :meth:`end_batch` wipes the touched set.

        ``load_factor`` is distinct registered keys over the key space —
        the quantity whose growth drives the dynamic-bucket rule;
        ``expanded_slots`` counts the extra sub-slots the large buckets
        of popular tables allocated (0 when every ``s_u`` is 1).
        """
        capacity = int(self._base[-1])
        if self._touched:
            touched = int(np.unique(np.concatenate(self._touched)).size)
        else:
            touched = 0
        expanded_tables = 0
        expanded_slots = 0
        for t in range(self._db.num_tables):
            s_u = self.bucket_size(t)
            if s_u > 1:
                expanded_tables += 1
                expanded_slots += int(self._rows[t] * self._groups[t]) * (s_u - 1)
        return {
            "capacity": capacity,
            "touched_keys": touched,
            "load_factor": touched / capacity if capacity else 0.0,
            "expanded_tables": expanded_tables,
            "expanded_slots": expanded_slots,
        }

    # -- memory accounting (Table VIII) --------------------------------------
    def memory_report(self) -> tuple[int, int]:
        """(standard_bytes, large_bytes) of this batch's hash tables.

        Every table keeps a standard-sized region of one slot per key;
        popular tables additionally allocate ``s_u`` slots per key.
        """
        standard = 0
        large = 0
        for t in range(self._db.num_tables):
            keys = int(self._rows[t] * self._groups[t])
            s_u = self.bucket_size(t)
            if s_u > 1:
                large += keys * s_u * _SLOT_BYTES
            else:
                standard += keys * _SLOT_BYTES
        return standard, large

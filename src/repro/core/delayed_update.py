"""Delayed update strategy for frequently-conflicting attributes
(paper §V-D).

ADD operations on designated hot columns (e.g. TPC-C ``W_YTD``) skip
conflict detection entirely: their deltas are buffered and merged at
write-back.  On the GPU the merge is a segmented reduction — threads of
one warp handling the same row broadcast their deltas, combine them with
a prefix sum, and the highest-lane thread writes the result — which the
simulator accounts as intra-warp shuffle instructions plus one global
write per distinct row.

Soundness precondition: within a batch, a delayed column may be accessed
*only* through ADD.  A READ or WRITE would observe or destroy
concurrently-buffered deltas without any conflict flag firing, so the
engine rejects such batches loudly (see ``LTPGEngine``).  Additions are
commutative and associative, so any merge order yields the serial
result.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.gpusim.kernel import KernelContext
from repro.storage.database import Database
from repro.txn.operations import column_interner_size, intern_column

#: Shuffle/prefix-sum instructions per delta in the warp-level merge
#: (log2(32) rounds of shfl + add, plus mask bookkeeping).
_MERGE_INSTRUCTIONS_PER_DELTA = 12


class DelayedUpdater:
    """Buffers committed ADD deltas and merges them at write-back."""

    def __init__(
        self,
        database: Database,
        delayed_columns: frozenset[tuple[str, str]],
        enabled: bool = True,
    ):
        self._db = database
        self.enabled = enabled
        self._delayed: frozenset[tuple[int, str]] = frozenset(
            (database.table_id(table), column) for table, column in delayed_columns
        ) if enabled else frozenset()
        # Dense (table, interned-column) -> delayed? lookup for the
        # columnar hot path; sized to the interner and rebuilt lazily
        # when new column names appear.
        self._lut: np.ndarray | None = None

    def is_delayed(self, table_id: int, column: str) -> bool:
        """Does this column bypass conflict detection via delayed adds?"""
        return (table_id, column) in self._delayed

    def delayed_mask(self, table_ids: np.ndarray, col_ids: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`is_delayed` over interned column ids."""
        if not self._delayed:
            return np.zeros(table_ids.size, dtype=bool)
        if self._lut is None or self._lut.shape[1] < column_interner_size():
            pairs = [
                (table_id, intern_column(column))
                for table_id, column in self._delayed
            ]
            lut = np.zeros(
                (self._db.num_tables, column_interner_size()), dtype=bool
            )
            for table_id, col_id in pairs:
                lut[table_id, col_id] = True
            self._lut = lut
        return self._lut[table_ids, col_ids]

    @property
    def columns(self) -> frozenset[tuple[int, str]]:
        return self._delayed

    def apply(
        self,
        deltas: list[tuple[int, int, str, int]],
        ctx: KernelContext | None = None,
    ) -> int:
        """Merge ``(table_id, row, column, delta)`` records of committed
        transactions into the snapshot.  Returns distinct rows updated.
        """
        if not deltas:
            return 0
        grouped: dict[tuple[int, str], list[tuple[int, int]]] = defaultdict(list)
        for table_id, row, column, delta in deltas:
            grouped[(table_id, column)].append((row, delta))
        distinct_rows = 0
        for (table_id, column), pairs in grouped.items():
            rows = np.fromiter((p[0] for p in pairs), dtype=np.int64, count=len(pairs))
            vals = np.fromiter((p[1] for p in pairs), dtype=np.int64, count=len(pairs))
            target = self._db.table_by_id(table_id).column(column)
            np.add.at(target, rows, vals)
            distinct_rows += int(np.unique(rows).size)
        if ctx is not None:
            n = len(deltas)
            ctx.add_instructions(n * _MERGE_INSTRUCTIONS_PER_DELTA)
            ctx.add_shared_accesses(n)  # broadcast staging
            ctx.add_global_writes(distinct_rows)
        return distinct_rows

    def apply_arrays(
        self,
        table_ids: np.ndarray,
        rows: np.ndarray,
        col_ids: np.ndarray,
        deltas: np.ndarray,
        ctx: KernelContext | None = None,
        xp=None,
        residency=None,
    ) -> int:
        """Columnar twin of :meth:`apply`: merge flat per-cell delta
        arrays (interned column ids) with identical cost accounting.
        Addition commutes, so the grouped-scatter merge order cannot
        change the snapshot :meth:`apply` would produce.

        When an array backend ``xp`` is supplied, the per-segment
        scatter runs through ``xp.scatter_add`` on a device copy of the
        column and the merged result is copied back — one H2D/D2H pair
        per (table, column) segment, matching the per-batch column
        shipping the rest of the write-back path uses.  With a
        :class:`~repro.xp.residency.ResidencyManager`, the scatter
        lands in the resident device column instead and only marks the
        host side stale — delayed adds commute, so merging them on the
        device copy produces the same snapshot."""
        n = int(table_ids.size)
        if n == 0:
            return 0
        from repro.txn.operations import column_name

        order = np.lexsort((col_ids, table_ids))
        t_s, r_s, c_s, v_s = (
            table_ids[order], rows[order], col_ids[order], deltas[order]
        )
        new = np.empty(n, dtype=bool)
        new[0] = True
        new[1:] = (t_s[1:] != t_s[:-1]) | (c_s[1:] != c_s[:-1])
        starts = np.flatnonzero(new)
        ends = np.append(starts[1:], n)
        distinct_rows = 0
        device = xp is not None and xp.is_device
        for s, e in zip(starts, ends):
            table = self._db.table_by_id(int(t_s[s]))
            cname = column_name(int(c_s[s]))
            if device and residency is not None:
                dev = residency.device_column(table, cname)
                if dev is not None:
                    xp.scatter_add(
                        dev, xp.from_host(r_s[s:e]), xp.from_host(v_s[s:e])
                    )
                    residency.mark_dirty(table, cname)
                    distinct_rows += int(np.unique(r_s[s:e]).size)
                    continue
            target = table.column(cname)
            if device:
                dev = xp.from_host(target)
                xp.scatter_add(
                    dev, xp.from_host(r_s[s:e]), xp.from_host(v_s[s:e])
                )
                host = xp.to_host(dev)
                if not np.shares_memory(host, target):
                    target[:] = host
            else:
                np.add.at(target, r_s[s:e], v_s[s:e])
            distinct_rows += int(np.unique(r_s[s:e]).size)
        if ctx is not None:
            ctx.add_instructions(n * _MERGE_INSTRUCTIONS_PER_DELTA)
            ctx.add_shared_accesses(n)
            ctx.add_global_writes(distinct_rows)
        return distinct_rows

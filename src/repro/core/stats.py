"""Per-batch and aggregate statistics reported by engines.

All engines (LTPG and baselines) report :class:`BatchStats`, and the
bench harness aggregates them into :class:`RunStats`, from which TPS,
commit rate and latency — the paper's three metrics — are derived.
Times are *simulated* nanoseconds from the device/CPU cost models.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass
class BatchStats:
    """Outcome and timing of one processed batch."""

    batch_index: int
    num_txns: int
    committed: int
    aborted: int
    logic_aborted: int = 0
    #: simulated end-to-end batch latency (params in -> results back)
    latency_ns: float = 0.0
    #: simulated host<->device transfer portion of the latency
    transfer_ns: float = 0.0
    #: the device->host read/write-set copy-back alone (Table V)
    rwset_ns: float = 0.0
    #: simulated time per phase, e.g. {"execute": ..., "conflict": ...,
    #: "writeback": ...}
    phase_ns: dict[str, float] = field(default_factory=dict)
    #: committed counts per procedure name
    committed_by_proc: Counter = field(default_factory=Counter)
    #: admitted counts per procedure name
    total_by_proc: Counter = field(default_factory=Counter)
    #: abort reasons ("waw", "raw", "war", ...) -> count
    abort_reasons: Counter = field(default_factory=Counter)
    #: committed transactions by attempt number (1 = first try) — the
    #: retry distribution behind the latency trade-off of §V-E
    commit_attempts: Counter = field(default_factory=Counter)
    #: conflict-log observability: registrations + longest atomic chain
    registered_reads: int = 0
    registered_writes: int = 0
    max_atomic_chain: int = 0

    @property
    def commit_rate(self) -> float:
        """Fraction of the batch that committed (logic aborts count as
        completed work, matching the paper's commit-rate metric which
        tracks concurrency-control success)."""
        decided = self.committed + self.logic_aborted
        return decided / self.num_txns if self.num_txns else 1.0

    def commit_rate_of(self, procedure: str) -> float:
        total = self.total_by_proc.get(procedure, 0)
        if not total:
            return 1.0
        return self.committed_by_proc.get(procedure, 0) / total


@dataclass
class RunStats:
    """Aggregate over a sequence of batches."""

    batches: list[BatchStats] = field(default_factory=list)

    def add(self, stats: BatchStats) -> None:
        self.batches.append(stats)

    @property
    def num_batches(self) -> int:
        return len(self.batches)

    @property
    def total_committed(self) -> int:
        return sum(b.committed + b.logic_aborted for b in self.batches)

    @property
    def total_admitted(self) -> int:
        return sum(b.num_txns for b in self.batches)

    @property
    def total_ns(self) -> float:
        return sum(b.latency_ns for b in self.batches)

    @property
    def throughput_tps(self) -> float:
        """Committed transactions per simulated second."""
        if self.total_ns <= 0:
            return 0.0
        return self.total_committed / (self.total_ns * 1e-9)

    @property
    def mean_latency_ns(self) -> float:
        if not self.batches:
            return 0.0
        return self.total_ns / len(self.batches)

    @property
    def mean_commit_rate(self) -> float:
        if not self.batches:
            return 1.0
        return sum(b.commit_rate for b in self.batches) / len(self.batches)

    def phase_totals(self) -> dict[str, float]:
        totals: dict[str, float] = {}
        for b in self.batches:
            for phase, ns in b.phase_ns.items():
                totals[phase] = totals.get(phase, 0.0) + ns
        return totals

    def latency_percentile(self, p: float) -> float:
        """Per-batch latency percentile in ns (p in [0, 100])."""
        if not 0 <= p <= 100:
            raise ValueError("percentile must be within [0, 100]")
        if not self.batches:
            return 0.0
        ordered = sorted(b.latency_ns for b in self.batches)
        rank = min(len(ordered) - 1, int(round(p / 100 * (len(ordered) - 1))))
        return ordered[rank]

    def abort_reason_totals(self) -> Counter:
        """Aggregate abort reasons over the run."""
        totals: Counter = Counter()
        for b in self.batches:
            totals.update(b.abort_reasons)
        return totals

"""Per-batch and aggregate statistics reported by engines.

All engines (LTPG and baselines) report :class:`BatchStats`, and the
bench harness aggregates them into :class:`RunStats`, from which TPS,
commit rate and latency — the paper's three metrics — are derived.
Times are *simulated* nanoseconds from the device/CPU cost models.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass
class BatchStats:
    """Outcome and timing of one processed batch."""

    batch_index: int
    num_txns: int
    committed: int
    aborted: int
    logic_aborted: int = 0
    #: simulated end-to-end batch latency (params in -> results back)
    latency_ns: float = 0.0
    #: simulated host<->device transfer portion of the latency
    transfer_ns: float = 0.0
    #: the device->host read/write-set copy-back alone (Table V)
    rwset_ns: float = 0.0
    #: simulated time per phase, e.g. {"execute": ..., "conflict": ...,
    #: "writeback": ...}
    phase_ns: dict[str, float] = field(default_factory=dict)
    #: committed counts per procedure name
    committed_by_proc: Counter = field(default_factory=Counter)
    #: admitted counts per procedure name
    total_by_proc: Counter = field(default_factory=Counter)
    #: abort reasons ("waw", "raw", "war", ...) -> count
    abort_reasons: Counter = field(default_factory=Counter)
    #: committed transactions by attempt number (1 = first try) — the
    #: retry distribution behind the latency trade-off of §V-E
    commit_attempts: Counter = field(default_factory=Counter)
    #: conflict-log observability: registrations + longest atomic chain
    registered_reads: int = 0
    registered_writes: int = 0
    max_atomic_chain: int = 0
    #: execute-kernel atomic traffic: ops issued and how many of them
    #: serialized behind an earlier op on the same bucket slot (§V-C)
    atomic_ops: int = 0
    atomic_serialized: int = 0
    #: warp-divergence events in the execute kernel (§V-B)
    divergent_branches: int = 0
    #: theoretical occupancy of the execute launch (0..1)
    occupancy: float = 0.0
    #: conflict-log pressure (populated on traced runs): fraction of the
    #: key space actually registered, and the extra slots the dynamic
    #: large buckets allocated this batch
    bucket_load_factor: float = 0.0
    bucket_expanded_slots: int = 0
    #: sharded-engine routing (repro.shard; zero when unsharded):
    #: fraction of the batch classified multi-home, load imbalance
    #: (max/mean lanes per shard), and host ns the deterministic
    #: sequencer spent classifying and ordering the batch
    multi_home_fraction: float = 0.0
    shard_balance: float = 0.0
    sequencer_stall_ns: int = 0

    @property
    def commit_rate(self) -> float:
        """Fraction of the batch that committed (logic aborts count as
        completed work, matching the paper's commit-rate metric which
        tracks concurrency-control success)."""
        decided = self.committed + self.logic_aborted
        return decided / self.num_txns if self.num_txns else 1.0

    def commit_rate_of(self, procedure: str) -> float:
        total = self.total_by_proc.get(procedure, 0)
        if not total:
            return 1.0
        return self.committed_by_proc.get(procedure, 0) / total


@dataclass
class RunStats:
    """Aggregate over a sequence of batches."""

    batches: list[BatchStats] = field(default_factory=list)

    def add(self, stats: BatchStats) -> None:
        self.batches.append(stats)

    @property
    def num_batches(self) -> int:
        return len(self.batches)

    @property
    def total_committed(self) -> int:
        return sum(b.committed + b.logic_aborted for b in self.batches)

    @property
    def total_admitted(self) -> int:
        return sum(b.num_txns for b in self.batches)

    @property
    def total_ns(self) -> float:
        return sum(b.latency_ns for b in self.batches)

    @property
    def throughput_tps(self) -> float:
        """Committed transactions per simulated second."""
        if self.total_ns <= 0:
            return 0.0
        return self.total_committed / (self.total_ns * 1e-9)

    @property
    def mean_latency_ns(self) -> float:
        if not self.batches:
            return 0.0
        return self.total_ns / len(self.batches)

    @property
    def mean_commit_rate(self) -> float:
        if not self.batches:
            return 1.0
        return sum(b.commit_rate for b in self.batches) / len(self.batches)

    def phase_totals(self) -> dict[str, float]:
        totals: dict[str, float] = {}
        for b in self.batches:
            for phase, ns in b.phase_ns.items():
                totals[phase] = totals.get(phase, 0.0) + ns
        return totals

    def latency_percentile(self, p: float) -> float:
        """Per-batch latency percentile in ns (p in [0, 100])."""
        if not 0 <= p <= 100:
            raise ValueError("percentile must be within [0, 100]")
        if not self.batches:
            return 0.0
        ordered = sorted(b.latency_ns for b in self.batches)
        rank = min(len(ordered) - 1, int(round(p / 100 * (len(ordered) - 1))))
        return ordered[rank]

    def abort_reason_totals(self) -> Counter:
        """Aggregate abort reasons over the run."""
        totals: Counter = Counter()
        for b in self.batches:
            totals.update(b.abort_reasons)
        return totals

    # -- observability aggregates (the repro.trace metrics surface) ------
    @property
    def total_atomic_ops(self) -> int:
        return sum(b.atomic_ops for b in self.batches)

    @property
    def total_atomic_serialized(self) -> int:
        return sum(b.atomic_serialized for b in self.batches)

    @property
    def atomic_serialization_rate(self) -> float:
        """Fraction of execute-phase atomics that waited behind another
        op on the same bucket slot (0 when no atomics were issued)."""
        ops = self.total_atomic_ops
        return self.total_atomic_serialized / ops if ops else 0.0

    def commit_attempt_totals(self) -> Counter:
        """Committed transactions by attempt number over the run."""
        totals: Counter = Counter()
        for b in self.batches:
            totals.update(b.commit_attempts)
        return totals

    def reschedule_depth_totals(self) -> Counter:
        """Committed transactions by how many times they were aborted
        and re-queued first (attempt 1 = depth 0)."""
        return Counter(
            {attempts - 1: count
             for attempts, count in self.commit_attempt_totals().items()}
        )

    def metrics_summary(self) -> dict:
        """JSON-ready observability block for bench output."""
        return {
            "atomic": {
                "ops": self.total_atomic_ops,
                "serialized": self.total_atomic_serialized,
                "serialization_rate": round(self.atomic_serialization_rate, 6),
                "max_chain": max(
                    (b.max_atomic_chain for b in self.batches), default=0
                ),
            },
            "warp": {
                "divergent_branches": sum(
                    b.divergent_branches for b in self.batches
                ),
                "mean_occupancy": (
                    sum(b.occupancy for b in self.batches) / len(self.batches)
                    if self.batches
                    else 0.0
                ),
            },
            "conflict_log": {
                "registered_reads": sum(
                    b.registered_reads for b in self.batches
                ),
                "registered_writes": sum(
                    b.registered_writes for b in self.batches
                ),
                "max_load_factor": max(
                    (b.bucket_load_factor for b in self.batches), default=0.0
                ),
                "max_expanded_slots": max(
                    (b.bucket_expanded_slots for b in self.batches), default=0
                ),
            },
            "shard": {
                "mean_multi_home_fraction": (
                    sum(b.multi_home_fraction for b in self.batches)
                    / len(self.batches)
                    if self.batches
                    else 0.0
                ),
                "max_balance": max(
                    (b.shard_balance for b in self.batches), default=0.0
                ),
                "sequencer_stall_ns": sum(
                    b.sequencer_stall_ns for b in self.batches
                ),
            },
            "abort_reasons": {
                str(k): v for k, v in sorted(self.abort_reason_totals().items())
            },
            "reschedule_depth": {
                str(k): v
                for k, v in sorted(self.reschedule_depth_totals().items())
            },
        }

"""Deterministic-OCC commit rules, including Aria-style logical
reordering (paper §V-D).

Conflicts are defined against the batch's TID order.  For transaction
``T`` with read set ``R(T)`` and write set ``W(T)``:

* ``waw(T)``: some earlier transaction wrote a key in ``W(T)``.
* ``raw(T)``: some earlier transaction wrote a key in ``R(T)`` — T read
  a snapshot value that the serial TID order would have overwritten.
* ``war(T)``: some earlier transaction read a key in ``W(T)``.

Without reordering, ``T`` commits iff ``not waw and not raw`` (WAR is
harmless when everyone reads the batch-start snapshot and commits in
TID order).  With logical reordering, readers may be serialized *before*
earlier writers: ``T`` commits iff ``not waw and (not raw or not war)``
— the exact rule Aria proves serializable, which the paper adopts.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ConflictFlags:
    """Per-transaction conflict verdicts (aligned boolean arrays)."""

    waw: np.ndarray
    raw: np.ndarray
    war: np.ndarray

    def __post_init__(self) -> None:
        if not (self.waw.shape == self.raw.shape == self.war.shape):
            raise ValueError("conflict flag arrays must align")


def commit_mask(flags: ConflictFlags, reorder: bool) -> np.ndarray:
    """Which transactions commit under the chosen rule."""
    if reorder:
        return ~flags.waw & (~flags.raw | ~flags.war)
    return ~flags.waw & ~flags.raw


def abort_reason(waw: bool, raw: bool, war: bool) -> str:
    """A human-readable reason for one aborted transaction."""
    parts = [name for name, hit in (("waw", waw), ("raw", raw), ("war", war)) if hit]
    return "+".join(parts) if parts else "unknown"


def logical_order(
    committed: list[tuple[int, set, set]],
) -> list[int]:
    """An equivalent serial order for one committed batch.

    ``committed`` holds ``(tid, read_keys, write_keys)`` per committed
    transaction.  Because every read saw the batch-start snapshot, any
    committed reader of key *k* must be serialized *before* the (unique,
    thanks to the WAW rule) committed writer of *k*.  Those
    reader-before-writer edges are acyclic for a commit set chosen by
    :func:`commit_mask` (a cycle would require a transaction with both
    RAW and WAR, which the rule aborts), so a topological sort with TID
    tiebreaks yields the deterministic serial witness that the
    serializability tests replay.

    Returns TIDs in serial order.
    """
    writer_of: dict[int, int] = {}
    for tid, _, writes in committed:
        for key in writes:
            if key in writer_of:
                raise ValueError(
                    f"two committed writers for key {key}: WAW rule violated"
                )
            writer_of[key] = tid
    successors: dict[int, set[int]] = {tid: set() for tid, _, _ in committed}
    indegree: dict[int, int] = {tid: 0 for tid, _, _ in committed}
    for tid, reads, writes in committed:
        for key in reads:
            writer = writer_of.get(key)
            if writer is not None and writer != tid:
                if writer not in successors[tid]:
                    successors[tid].add(writer)
                    indegree[writer] += 1
    ready = [tid for tid, deg in indegree.items() if deg == 0]
    heapq.heapify(ready)
    order: list[int] = []
    while ready:
        tid = heapq.heappop(ready)
        order.append(tid)
        for nxt in successors[tid]:
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                heapq.heappush(ready, nxt)
    if len(order) != len(committed):
        raise ValueError("committed set is not serializable: cycle detected")
    return order

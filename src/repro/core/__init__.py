"""LTPG core: deterministic optimistic concurrency control on the
(simulated) GPU — the paper's primary contribution.

Quickstart::

    from repro.core import LTPGEngine, LTPGConfig
    from repro.workloads.tpcc import build_tpcc

    db, registry, generator = build_tpcc(warehouses=4, seed=7)
    engine = LTPGEngine(db, registry, LTPGConfig(batch_size=1024))
    stats = engine.run_transactions(generator.make_batch(4096))
    print(stats.throughput_tps, stats.mean_commit_rate)
"""

from repro.core.config import LTPGConfig, MemoryMode
from repro.core.conflict_log import NO_TID, ConflictLog
from repro.core.delayed_update import DelayedUpdater
from repro.core.engine import BatchResult, LTPGEngine
from repro.core.hotspot import HotspotDetector, TableHeat, bucket_size_for
from repro.core.memory_modes import MemoryPlan, resolve_memory_mode
from repro.core.occ import ConflictFlags, abort_reason, commit_mask, logical_order
from repro.core.pipeline import pipelined, run_pipelined
from repro.core.split_flags import DEFAULT_GROUP, FlagGroups
from repro.core.stats import BatchStats, RunStats

__all__ = [
    "LTPGConfig",
    "MemoryMode",
    "NO_TID",
    "ConflictLog",
    "DelayedUpdater",
    "BatchResult",
    "LTPGEngine",
    "HotspotDetector",
    "TableHeat",
    "bucket_size_for",
    "MemoryPlan",
    "resolve_memory_mode",
    "ConflictFlags",
    "abort_reason",
    "commit_mask",
    "logical_order",
    "pipelined",
    "run_pipelined",
    "DEFAULT_GROUP",
    "FlagGroups",
    "BatchStats",
    "RunStats",
]

"""Popular-data detection and dynamic bucket sizing (paper §V-C).

A table *t* is popular when its access frequency ``E = T / D`` exceeds
one, where ``T`` is the number of transactions in the batch that access
*t* and ``D`` is the table's row count.  Popular tables get large hash
buckets of ``s_u = ceil(E / WS) * WS`` slots (``WS`` = warp size 32) so
that concurrent TID registrations on one hot item spread over ``s_u``
sub-slots instead of serializing on one.

Developers may also pre-mark tables as popular; pre-marked tables use
the measured ``E`` for sizing but are treated as hot even when the
measurement dips to ``E <= 1`` in a quiet batch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.gpusim.config import WARP_SIZE
from repro.storage.database import Database


@dataclass(frozen=True)
class TableHeat:
    """Access-frequency verdict for one table in one batch."""

    table: str
    accessing_txns: int
    rows: int
    bucket_size: int

    @property
    def frequency(self) -> float:
        """E = T / D."""
        return self.accessing_txns / self.rows if self.rows else 0.0

    @property
    def is_hot(self) -> bool:
        return self.bucket_size > 1


def bucket_size_for(frequency: float, warp_size: int = WARP_SIZE) -> int:
    """``s_u = ceil(E / WS) * WS`` when E > 1, else the standard 1."""
    if frequency <= 1.0:
        return 1
    return math.ceil(frequency / warp_size) * warp_size


class HotspotDetector:
    """Computes per-table heat from batch access counts."""

    def __init__(self, database: Database, pre_marked: frozenset[str] = frozenset()):
        self._db = database
        self._pre_marked = pre_marked

    def measure(self, accessing_txns_by_table: dict[int, int]) -> dict[int, TableHeat]:
        """``accessing_txns_by_table`` maps table_id -> number of distinct
        transactions that touched the table this batch."""
        heats: dict[int, TableHeat] = {}
        for table_id, txns in accessing_txns_by_table.items():
            table = self._db.table_by_id(table_id)
            rows = max(table.num_rows, 1)
            frequency = txns / rows
            size = bucket_size_for(frequency)
            if size == 1 and table.name in self._pre_marked:
                # Pre-marked tables keep at least one warp of slots.
                size = WARP_SIZE
            heats[table_id] = TableHeat(
                table=table.name,
                accessing_txns=txns,
                rows=rows,
                bucket_size=size,
            )
        return heats

"""LTPG engine configuration.

Every optimization the paper evaluates is an independent toggle so the
ablation benches (Fig 6(b), Table VI) can enable them one at a time:

* ``adaptive_warps``    — §V-B warp division by sub-transaction type.
* ``dynamic_buckets``   — §V-C large hash buckets for popular tables.
* ``logical_reordering``— §V-D Aria-style commit reordering.
* ``split_flags``       — §V-D row-level conflict-flag splitting.
* ``delayed_update``    — §V-D delayed commutative updates.
* ``pipelined``         — §V-E batch-to-batch pipeline (aborts retry +2).
* ``memory_mode``       — §V-E zero-copy vs. unified vs. auto.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, field, replace

from repro.errors import ConfigError


class MemoryMode(enum.Enum):
    """Where the database snapshot lives during batch processing."""

    #: Resident in device global memory (fits comfortably).
    DEVICE = "device"
    #: Host-pinned zero-copy memory — fast exchange within GPU limits.
    ZERO_COPY = "zero_copy"
    #: CUDA unified memory — databases larger than device memory.
    UNIFIED = "unified"
    #: Pick per database size (the paper's selective adjustment).
    AUTO = "auto"


@dataclass(frozen=True)
class LTPGConfig:
    """Tunable knobs of the LTPG engine."""

    batch_size: int = 4096
    adaptive_warps: bool = True
    dynamic_buckets: bool = True
    logical_reordering: bool = True
    split_flags: bool = True
    delayed_update: bool = True
    pipelined: bool = False
    memory_mode: MemoryMode = MemoryMode.AUTO

    #: Attach the shadow-access sanitizer (:mod:`repro.analysis`) to the
    #: device: every phase kernel logs its reads/writes/atomics for
    #: racecheck + memcheck.  Off by default — the shadow log costs real
    #: host time and exists for analysis runs, not production batches.
    sanitize: bool = False

    #: Attach the tracing + metrics subsystem (:mod:`repro.trace`): the
    #: engine records batch/phase/kernel spans over the simulated clock
    #: (exportable as Chrome trace_event JSON) and populates a
    #: counter/gauge/histogram registry with the contention signals the
    #: cost model computes.  Off by default, like ``sanitize``: span
    #: bookkeeping costs host time the perf gate must not see.
    trace: bool = False

    #: Host implementation detail, not a paper toggle: consume the
    #: execute-phase op stream through the columnar NumPy path (True) or
    #: the retained per-op reference loop (False).  Both produce
    #: identical batch outcomes and simulated timings; the reference
    #: path exists for differential testing and the wallclock bench.
    columnar_ops: bool = True

    #: Batched procedure execution (the host analog of §IV-C's warp
    #: division): group the batch by procedure name and run each group
    #: through its vectorized ``BatchProcedure`` twin over parameter
    #: columns, with automatic per-transaction fallback for procedures
    #: lacking one.  Carries a columnar local-set representation through
    #: write-back (grouped scatters instead of per-transaction
    #: ``apply_local_sets``).  Byte-identical outcomes to both op paths;
    #: requires ``columnar_ops``.
    batched_exec: bool = False

    #: Process-parallel execute (the host analog of the paper's multi-SM
    #: data parallelism): shard each batched procedure group across a
    #: persistent pool of this many worker processes reading the snapshot
    #: through shared memory.  ``0`` (the default) keeps execution
    #: in-process; any N produces byte-identical outcomes.  Requires
    #: ``batched_exec`` and is incompatible with ``sanitize`` (the shadow
    #: access log cannot observe child processes).
    parallel_workers: int = 0

    #: Multiprocessing start method for the worker pool: ``"fork"``,
    #: ``"spawn"``, ``"forkserver"``, or ``""`` to defer to the
    #: ``REPRO_PARALLEL_START_METHOD`` environment variable and then the
    #: platform default.
    parallel_start_method: str = ""

    #: Overlap batch assembly with execution: the steady-state runner
    #: generates batch k+1 on a helper thread while batch k executes.
    #: Produces identical RunStats; purely a wall-clock optimization.
    prefetch_assembly: bool = False

    #: Array backend the batched hot path runs on (:mod:`repro.xp`):
    #: ``"numpy"`` (the pinned reference), ``"mockgpu"`` (NumPy semantics
    #: plus device-contract checking: transfer ledger, implicit-sync and
    #: dtype-discipline enforcement), ``"cupy"``/``"torch"`` (real
    #: device-resident execution when the library and a device exist),
    #: or ``"auto"`` (best available device, else numpy).  Non-numpy
    #: backends require ``batched_exec`` and are incompatible with
    #: ``parallel_workers`` (device handles don't cross process
    #: boundaries) and ``sanitize`` (the shadow log reads host arrays).
    array_backend: str = "numpy"

    #: Device-resident table residency (:mod:`repro.xp.residency`): pin
    #: table columns on the active backend once and keep them
    #: authoritative across batches — write-back and delayed updates
    #: become device-side scatters instead of host scatter + re-upload,
    #: and host readers lazily sync through a dirty-column fence.
    #: Steady-state per-batch H2D drops to parameters plus op-sized
    #: shuttle traffic (the ``--transfer-ceiling`` gate pins the ≥10x
    #: reduction on mockgpu).  Requires ``batched_exec``; inert on
    #: host-identity backends (numpy), where crossings are free.
    device_resident: bool = False

    #: Pinning policy for ``device_resident``: the table names to keep
    #: resident.  Empty (the default) pins every table; unpinned tables
    #: keep the baseline per-batch round-trip path.
    resident_tables: frozenset[str] = frozenset()

    #: Engine shards (:mod:`repro.shard`): partition the database by a
    #: workload partition spec (TPC-C by warehouse, SmallBank/YCSB by
    #: key range) and run conflict registration + write-back per shard,
    #: with single-home transactions executing entirely on their home
    #: shard and multi-home ones sequenced Calvin-style at a
    #: deterministic coordinator.  ``1`` (the default) is today's
    #: single-engine pipeline; any N produces byte-identical final
    #: states.  Requires ``batched_exec``; combined with
    #: ``parallel_workers`` the worker count must equal the shard count
    #: (worker *w* owns shard *w*'s lanes).
    shards: int = 1

    #: Which partition spec maps rows and transactions to shards:
    #: ``"auto"`` (inspect the database's table names and pick the
    #: matching workload spec), ``"tpcc"``, ``"ycsb"`` or
    #: ``"smallbank"``.  Ignored when ``shards == 1``.
    shard_spec: str = "auto"

    #: Columns managed by delayed updates: {(table, column), ...}.  These
    #: must be accessed only through ADD operations within a batch.
    delayed_columns: frozenset[tuple[str, str]] = frozenset()
    #: Columns that get their own conflict-flag group when split_flags is
    #: on: {(table, column), ...}.  Delayed columns are implicitly split.
    split_columns: frozenset[tuple[str, str]] = frozenset()
    #: Tables the developer pre-marks as popular (§V-C); others are
    #: detected at run time from the access-frequency rule E = T/D > 1.
    hot_tables: frozenset[str] = frozenset()

    #: The paper's *first* data-synchronization method: every N batches,
    #: transfer the whole device snapshot back to the CPU ("a
    #: user-defined interval for transferring data from the GPU to the
    #: CPU").  ``None`` selects the second method only (per-batch
    #: read/write-set shipping), which is the paper's preferred mode.
    full_sync_interval: int | None = None

    #: Bytes shipped host->device per transaction (parameters).
    txn_param_bytes: int = 64
    #: Extra bytes shipped device->host per transaction (conflict flags).
    txn_flag_bytes: int = 8
    #: How many batches later an abort retries (1, or 2 when pipelined).
    retry_delay_batches: int = 1

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ConfigError("batch size must be positive")
        if self.retry_delay_batches < 1:
            raise ConfigError("retry delay must be >= 1 batch")
        if self.batched_exec and not self.columnar_ops:
            raise ConfigError(
                "batched_exec requires columnar_ops (the batched executor "
                "feeds the columnar collection pipeline)"
            )
        if self.parallel_workers < 0:
            raise ConfigError("parallel_workers must be >= 0")
        if self.parallel_workers > 0 and self.sanitize:
            raise ConfigError(
                "parallel_workers is incompatible with sanitize: the shadow "
                "access log cannot observe worker processes, so racecheck/"
                "memcheck coverage would silently be lost.  Run sanitized "
                "batches with parallel_workers=0 (outcomes are byte-identical)"
            )
        if self.parallel_workers > 0 and not self.batched_exec:
            raise ConfigError(
                "parallel_workers requires batched_exec: only vectorized "
                "BatchProcedure twins are sharded across worker processes"
            )
        if self.parallel_start_method not in ("", "fork", "spawn", "forkserver"):
            raise ConfigError(
                "parallel_start_method must be '', 'fork', 'spawn', or "
                f"'forkserver', not {self.parallel_start_method!r}"
            )
        from repro.xp import BACKEND_NAMES  # noqa: PLC0415 (cycle: xp -> errors)

        if self.array_backend not in (*BACKEND_NAMES, "auto"):
            raise ConfigError(
                f"unknown array_backend {self.array_backend!r}; expected one "
                f"of {', '.join(BACKEND_NAMES)} or 'auto'"
            )
        if self.array_backend not in ("numpy", "auto"):
            if not self.batched_exec:
                raise ConfigError(
                    f"array_backend={self.array_backend!r} requires "
                    "batched_exec: only the vectorized twins run on the "
                    "xp shim (the scalar path is host-only by design)"
                )
            if self.parallel_workers > 0:
                raise ConfigError(
                    f"array_backend={self.array_backend!r} is incompatible "
                    "with parallel_workers: device allocations cannot be "
                    "shared with worker processes.  Use the in-process "
                    "executor (parallel_workers=0) for device backends"
                )
            if self.sanitize:
                raise ConfigError(
                    f"array_backend={self.array_backend!r} is incompatible "
                    "with sanitize: the shadow access log instruments host "
                    "arrays and would not observe device-resident kernels"
                )
        if self.shards < 1:
            raise ConfigError("shards must be >= 1")
        if self.shards > 1 and not self.batched_exec:
            raise ConfigError(
                "shards > 1 requires batched_exec: the sharded pipeline "
                "routes the columnar conflict registration and write-back "
                "paths, which only the batched executor produces"
            )
        if self.shards > 1 and self.parallel_workers > 0 and (
            self.parallel_workers != self.shards
        ):
            raise ConfigError(
                f"parallel_workers ({self.parallel_workers}) must equal "
                f"shards ({self.shards}) when both are set: worker w "
                "executes exactly shard w's lanes, so the pool and the "
                "partition must agree on the fan-out"
            )
        if self.shard_spec not in ("auto", "tpcc", "ycsb", "smallbank"):
            raise ConfigError(
                f"unknown shard_spec {self.shard_spec!r}; expected 'auto', "
                "'tpcc', 'ycsb', or 'smallbank'"
            )
        if self.device_resident and not self.batched_exec:
            raise ConfigError(
                "device_resident requires batched_exec: only the batched "
                "write-back/delayed-update scatters operate on device-"
                "resident columns (the scalar path is host-only by design)"
            )
        if self.resident_tables and not self.device_resident:
            raise ConfigError(
                "resident_tables is a device_resident pinning policy; set "
                "device_resident=True (or drop the table list)"
            )

    def resolved_start_method(self) -> str | None:
        """The multiprocessing start method the worker pool should use:
        the explicit config value, else ``REPRO_PARALLEL_START_METHOD``
        from the environment, else ``None`` (platform default)."""
        return (
            self.parallel_start_method
            or os.environ.get("REPRO_PARALLEL_START_METHOD", "")
            or None
        )

    @property
    def effective_retry_delay(self) -> int:
        """Pipelining forces aborts to wait an extra batch (§V-E)."""
        return max(self.retry_delay_batches, 2 if self.pipelined else 1)

    def all_split_columns(self) -> frozenset[tuple[str, str]]:
        """Split groups to create: explicit splits plus delayed columns
        (a delayed column must never share the default row flag)."""
        return self.split_columns | self.delayed_columns

    def without_optimizations(self) -> "LTPGConfig":
        """The unenhanced baseline configuration for ablations."""
        return replace(
            self,
            adaptive_warps=False,
            dynamic_buckets=False,
            logical_reordering=False,
            split_flags=False,
            delayed_update=False,
            pipelined=False,
        )

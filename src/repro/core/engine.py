"""The LTPG engine: execute -> detect conflicts -> write back.

One :meth:`LTPGEngine.run_batch` call processes a batch exactly as the
paper's Algorithm 1 does:

1. **execute kernel** — every transaction runs against the snapshot,
   buffering effects in local sets and registering its TID in the
   conflict log (``atomicMin`` per accessed item, with dynamic hash
   buckets sizing the atomic fan-out).
2. ``cudaDeviceSynchronize``
3. **conflict kernel** — WAW/RAW/WAR verdicts per transaction from the
   logged minima, then the deterministic commit rule (with optional
   logical reordering).
4. ``cudaDeviceSynchronize``
5. **writeback kernel** — committed local sets install into the
   snapshot; delayed commutative adds merge via warp prefix sums.

The phases run functionally in Python/NumPy while recording hardware
events; the simulated clock yields latency and throughput.  Aborted
transactions keep their TIDs and are re-queued by the caller (usually a
:class:`~repro.txn.batch.BatchScheduler`).
"""

from __future__ import annotations

import time
from array import array
from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import LTPGConfig, MemoryMode
from repro.core.conflict_log import ConflictLog
from repro.core.delayed_update import DelayedUpdater
from repro.core.hotspot import HotspotDetector, TableHeat
from repro.core.memory_modes import MemoryPlan, resolve_memory_mode, transfer_latency_factor
from repro.core.occ import ConflictFlags, abort_reason, commit_mask, logical_order
from repro.core.split_flags import FlagGroups
from repro.core.stats import BatchStats, RunStats
from repro.errors import KeyNotFound, TransactionAborted, TransactionError
from repro.gpusim.device import Device
from repro.gpusim.occupancy import KernelResources, occupancy
from repro.storage.database import Database
from repro.storage.wal import BatchLog
from repro.txn.batch import BatchScheduler
from repro.txn.batch_context import BatchedContext, GroupLocals, pack_sort_key
from repro.txn.context import BufferedContext, LocalSets, apply_local_sets
from repro.txn.decompose import plan, plan_arrays
from repro.txn.operations import NUM_OP_KINDS, OP_FIELDS, OpColumns, OpKind, column_name
from repro.txn.procedures import Procedure, ProcedureRegistry
from repro.txn.transaction import Transaction, TxnStatus

# Per-operation hardware cost shape (events per op in the execute phase).
_READ_GLOBAL_READS = 3       # two index-probe loads + one data load
_WRITE_GLOBAL_WRITES = 1     # append to the local write-set
_WRITE_GLOBAL_READS = 2      # index probe
_INSERT_GLOBAL_WRITES = 2    # key + payload append
_OP_INSTRUCTIONS = 8         # decode, hash, bounds checks per op
_REGISTER_INSTRUCTIONS = 4   # conflict-log hash computation per op
_CHECK_INSTRUCTIONS = 6      # per-op verdict in the conflict kernel
_APPLY_INSTRUCTIONS = 4      # per-cell install in the writeback kernel


@dataclass
class BatchResult:
    """Everything one batch produced."""

    stats: BatchStats
    committed: list[Transaction]
    aborted: list[Transaction]
    logic_aborted: list[Transaction]
    #: (tid, read_keys, write_keys) per committed txn — lazy inputs for
    #: the serial-order witness used in serializability tests.
    _witness_sets: list[tuple[int, set, set]] = field(default_factory=list)

    def serial_order(self) -> list[int]:
        """TIDs of committed transactions in an equivalent serial order."""
        return logical_order(self._witness_sets)

    def explain(self, limit: int = 20) -> str:
        """A human-readable per-transaction outcome summary (debugging
        aid; the first ``limit`` transactions of each outcome class)."""
        lines = [
            f"batch {self.stats.batch_index}: {self.stats.committed} committed, "
            f"{self.stats.aborted} aborted, {self.stats.logic_aborted} "
            f"logic-aborted of {self.stats.num_txns}"
        ]
        if self.stats.abort_reasons:
            # Same counters the stats carry; per-txn lines below show the
            # same reasons so the two views always agree.
            summary = ", ".join(
                f"{reason}={count}"
                for reason, count in sorted(self.stats.abort_reasons.items())
            )
            lines.append(f"  abort reasons: {summary}")
        for label, group in (
            ("committed", self.committed),
            ("aborted", self.aborted),
            ("logic-aborted", self.logic_aborted),
        ):
            for txn in group[:limit]:
                reason = f" [{txn.abort_reason}]" if txn.abort_reason else ""
                lines.append(
                    f"  {label:>13} tid={txn.tid} {txn.procedure_name}"
                    f" attempt={txn.attempts}{reason}"
                )
            if len(group) > limit:
                lines.append(f"  ... and {len(group) - limit} more {label}")
        return "\n".join(lines)


class LTPGEngine:
    """Deterministic-OCC batch transaction processing on one device."""

    def __init__(
        self,
        database: Database,
        procedures: ProcedureRegistry,
        config: LTPGConfig | None = None,
        device: Device | None = None,
    ):
        self.database = database
        self.procedures = procedures
        self.config = config or LTPGConfig()
        self.device = device or Device()
        self.flags = FlagGroups(
            database,
            self.config.all_split_columns(),
            enabled=self.config.split_flags,
        )
        self.delayed = DelayedUpdater(
            database, self.config.delayed_columns, enabled=self.config.delayed_update
        )
        self.conflict_log = ConflictLog(
            database, self.flags, dynamic_buckets=self.config.dynamic_buckets
        )
        self.hotspot = HotspotDetector(database, self.config.hot_tables)
        self.memory_plan: MemoryPlan = resolve_memory_mode(
            self.config, database, self.device
        )
        #: Shadow-access recorder (racecheck + memcheck), attached to the
        #: device when ``config.sanitize`` is set.  Imported lazily so the
        #: engine has no analysis-layer dependency when it is off.
        self.sanitizer = None
        if self.config.sanitize:
            from repro.analysis.sanitizer import Sanitizer

            self.sanitizer = Sanitizer()
            self.device.attach_sanitizer(self.sanitizer)
        #: Span recorder + metrics registry (:mod:`repro.trace`),
        #: attached behind ``config.trace`` — same contract as
        #: ``sanitize``: zero bookkeeping on the hot path when off.
        self.tracer = None
        self.metrics = None
        if self.config.trace:
            from repro.trace import MetricsRegistry, Tracer

            self.tracer = Tracer()
            self.metrics = MetricsRegistry()
            self.device.attach_tracer(self.tracer)
        self.batch_log = BatchLog()
        self.last_heats: dict[int, TableHeat] = {}
        # Host wall-clock spent in each phase of the most recent batch
        # (seconds).  Deliberately *not* part of BatchStats: the
        # simulated-time stats must stay byte-identical between the
        # columnar and reference op paths, and host timings never are.
        self.last_host_phase_s: dict[str, float] = {}
        # Procedure lookups cached across batches; invalidated only when
        # the registry version changes (registration bumps it).
        self._proc_cache: dict[str, Procedure] = {}
        self._proc_cache_version = -1
        # Streams; a pipelined runner points these at distinct streams.
        self.h2d_stream = "stream0"
        self.compute_stream = "stream0"
        self.d2h_stream = "stream0"
        self._batch_counter = 0
        # (procedure, lanes, ops) per execute group of the last batch,
        # recorded only when tracing/metrics are on (observability).
        self._last_groups: list[tuple[str, int, int]] = []
        # Worker pool for config.parallel_workers > 0, created lazily on
        # the first batched execute so procedures registered after
        # engine construction are picked up.  Owned by this engine:
        # close() (or the context manager) tears it down.
        self._pool = None
        # (worker, lanes, ops) per dispatched shard of the last batch,
        # plus host seconds spent merging shard results.
        self._last_shards: list[tuple[int, int, int]] = []
        self._last_merge_s = 0.0
        # Resolved array backend (repro.xp) for the batched hot path,
        # re-resolved when config.array_backend changes after
        # construction (mirrors the pool's registry-version check).
        self._backend = None
        self._backend_name: str | None = None
        # Per-batch transfer-ledger deltas of the last batch (zero on
        # the numpy backend), recorded for metrics/tracing.
        self._last_transfers: dict[str, int] = {}
        # Same deltas split per phase (execute/conflict/writeback plus
        # "other" for inter-phase traffic like the full-sync fence).
        self._last_phase_transfers: dict[str, dict[str, int]] = {}
        # Device-resident table cache (config.device_resident), built
        # lazily per backend by _ensure_residency.
        self._residency = None
        self._residency_key: tuple | None = None
        # Sharding hooks, installed per batch by repro.shard's
        # ShardedEngine wrapper and cleared after.  shard_plan maps
        # batch position -> coordinator shard (the wrapper lays the
        # batch out shard-major, so each execute group's lanes are
        # shard-contiguous and worker w runs exactly shard w's lanes);
        # shard_router partitions write-back cells by row owner;
        # shard_updaters are the per-shard delayed-update mergers.
        self.shard_plan = None
        self.shard_router = None
        self.shard_updaters = None
        # shard_order[j] = the admission-order index of batch position j.
        # The insert install keys its slot assignment on it so appended
        # rows claim exactly the physical slots the unsharded engine
        # would assign — slot order feeds the secondary/ordered indexes,
        # which later batches observe.
        self.shard_order = None
        # Config facets the pool was built against; _ensure_pool
        # rebuilds when a swapped config changes any of them (the
        # registry version alone missed worker-count swaps and leaked
        # the old pool's shared-memory segments).
        self._pool_key: tuple | None = None

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release engine-owned process resources (the parallel worker
        pool and its shared-memory snapshot).  Idempotent; running with
        ``parallel_workers=0`` makes this a no-op."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "LTPGEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def last_transfers(self) -> dict[str, int]:
        """Transfer-ledger deltas of the last batch (empty on numpy)."""
        return dict(self._last_transfers)

    @property
    def last_phase_transfers(self) -> dict[str, dict[str, int]]:
        """Last batch's ledger deltas split by engine phase
        (``execute``/``conflict``/``writeback`` plus ``other`` for
        inter-phase traffic); empty on the numpy backend."""
        return {p: dict(d) for p, d in self._last_phase_transfers.items()}

    def reset_run_state(self) -> None:
        """Rewind every run-scoped clock and counter so the next batch
        starts a fresh timeline at ``t=0``.

        The ``Profiler.reset`` clock-hygiene contract, extended to the
        whole engine: stream clocks + profiler history (via
        :meth:`Device.reset_clock`), tracer spans, the metrics registry,
        the batch counter (span/stat names embed batch indices), the
        batch log and last-batch observability scratch.  Database state,
        procedure caches, worker pools and device allocations survive —
        they model persistent state, not run history.  Back-to-back
        serve runs reset through here must produce bit-identical traces
        (pinned by ``tests/test_trace_observability.py``).
        """
        self.device.reset_clock()
        if self.tracer is not None:
            self.tracer.reset()
        if self.metrics is not None:
            self.metrics.reset()
        self._batch_counter = 0
        self.batch_log = BatchLog()
        self.last_host_phase_s = {}
        self._last_groups = []
        self._last_shards = []
        self._last_merge_s = 0.0
        self._last_transfers = {}
        self._last_phase_transfers = {}
        if self._residency is not None:
            # Flush residency at the run boundary: dirty columns fence
            # back so host state is inspectable between runs, while the
            # (now clean) device copies survive — serve-loop reuse stays
            # params-only from the first batch of the next run.
            self._residency.sync_all_to_host()

    def _ensure_pool(self):
        """The lazily-created worker pool, rebuilt if the procedure
        registry — or any pool-shaping config facet (worker count,
        start method, delayed columns) — changed since the pool pickled
        its twins."""
        delayed = (
            self.config.delayed_columns
            if self.config.delayed_update
            else frozenset()
        )
        key = (
            self.procedures.version,
            self.config.parallel_workers,
            self.config.resolved_start_method(),
            delayed,
        )
        if self._pool is not None and self._pool_key != key:
            self._pool.close()
            self._pool = None
        if self._pool is None:
            from repro.parallel import WorkerPool

            twins = {
                name: self.procedures.get_batched(name)
                for name in self.procedures.batched_names()
            }
            self._pool = WorkerPool(
                self.database,
                twins,
                num_workers=self.config.parallel_workers,
                start_method=self.config.resolved_start_method(),
                delayed_columns=delayed,
                registry_version=self.procedures.version,
            )
            self._pool_key = key
        return self._pool

    def _ensure_backend(self):
        """The resolved array backend, re-resolved when
        ``config.array_backend`` changes after engine construction (the
        config is frozen, but callers swap whole config objects — the
        same invalidation contract :meth:`_ensure_pool` honors for the
        procedure registry)."""
        name = self.config.array_backend
        if self._backend is not None and self._backend_name == name:
            return self._backend
        from repro.xp import resolve_backend

        if self._residency is not None:
            # The resident columns belong to the outgoing backend: fence
            # dirty state back to host with *its* crossings, then unhook
            # so the new backend re-uploads lazily from current host.
            self._residency.detach()
            self._residency = None
            self._residency_key = None
        resolved = name
        if name == "auto" and (
            not self.config.batched_exec
            or self.config.parallel_workers > 0
            or self.config.sanitize
        ):
            # device backends are invalid under these configurations
            # (explicit names fail ConfigError); auto degrades to host
            resolved = "numpy"
        backend = resolve_backend(resolved)
        self._backend = backend
        self._backend_name = name
        self.conflict_log.set_backend(backend)
        return backend

    def _ensure_residency(self):
        """The device-resident table cache for the current backend, or
        ``None`` when ``config.device_resident`` is off.  Re-keyed on
        (backend, flag, pinning policy) the same way :meth:`_ensure_pool`
        re-keys on the registry version — a swapped config object
        detaches the old cache (fencing dirty columns through the old
        backend) and builds a fresh one lazily."""
        backend = self._ensure_backend()
        if not self.config.device_resident:
            if self._residency is not None:
                self._residency.detach()
                self._residency = None
                self._residency_key = None
            return None
        key = (self._backend_name, self.config.resident_tables)
        if self._residency is not None and self._residency_key == key:
            return self._residency
        from repro.xp.residency import ResidencyManager

        if self._residency is not None:
            self._residency.detach()
        self._residency = ResidencyManager(
            backend, self.database, self.config.resident_tables
        )
        self._residency_key = key
        return self._residency

    # ------------------------------------------------------------------
    def run_batch(self, transactions: list[Transaction]) -> BatchResult:
        """Process one batch end to end; returns its result."""
        if not transactions:
            empty = BatchStats(self._batch_counter, 0, 0, 0)
            self._batch_counter += 1
            return BatchResult(empty, [], [], [])
        batch_index = self._batch_counter
        self._batch_counter += 1
        self.batch_log.append_batch(batch_index, transactions)
        backend = self._ensure_backend()
        xfer0 = backend.transfer_stats().snapshot()
        device = self.device
        start_ns = device.stream(self.h2d_stream).time_ns
        lat_factor = transfer_latency_factor(self.memory_plan)

        # -- host -> device: transaction parameters ---------------------
        h2d_bytes = len(transactions) * self.config.txn_param_bytes
        transfer_ns = device.copy(
            int(h2d_bytes * lat_factor), "h2d", name="params", stream=self.h2d_stream
        )
        h2d_done = device.create_event("h2d_done")
        device.stream(self.h2d_stream).record_event(h2d_done)
        device.stream(self.compute_stream).wait_event(h2d_done)

        # -- phase 1: execute -------------------------------------------
        exec_data = _ExecutionData()
        host_t0 = time.perf_counter()
        self._trace_begin_phase("phase:execute")
        with device.kernel(
            "execute", threads=max(1, len(transactions)), stream=self.compute_stream
        ) as ctx, backend.kernel_phase("execute"):
            self._execute_phase(transactions, exec_data, ctx)
        exec_entry = device.profiler.entries[-1]
        exec_ns = exec_entry.duration_ns
        exec_kernel_stats = ctx.stats
        exec_geometry = ctx.geometry
        self._phase_sync()
        self._trace_end_phase()
        host_t1 = time.perf_counter()
        xfer_exec = backend.transfer_stats().snapshot()

        # -- phase 2: conflict detection --------------------------------
        self._trace_begin_phase("phase:conflict")
        with device.kernel(
            "conflict",
            threads=max(1, exec_data.total_ops),
            stream=self.compute_stream,
        ) as ctx, backend.kernel_phase("conflict"):
            flags = self._conflict_phase(transactions, exec_data, ctx)
        conflict_ns = device.profiler.entries[-1].duration_ns
        self._phase_sync()
        self._trace_end_phase()
        host_t2 = time.perf_counter()
        xfer_conf = backend.transfer_stats().snapshot()

        # -- phase 3: write-back -----------------------------------------
        committed_mask = commit_mask(flags, self.config.logical_reordering)
        self._trace_begin_phase("phase:writeback")
        with device.kernel(
            "writeback",
            threads=max(1, int(committed_mask.sum())),
            stream=self.compute_stream,
        ) as ctx, backend.kernel_phase("writeback"):
            rwset_bytes = self._writeback_phase(
                transactions, exec_data, committed_mask, ctx
            )
        writeback_ns = device.profiler.entries[-1].duration_ns
        self._phase_sync()
        self._trace_end_phase()
        host_t3 = time.perf_counter()
        xfer_wb = backend.transfer_stats().snapshot()

        # -- device -> host: read/write sets + conflict flags -----------
        compute_done = device.create_event("compute_done")
        device.stream(self.compute_stream).record_event(compute_done)
        device.stream(self.d2h_stream).wait_event(compute_done)
        d2h_bytes = rwset_bytes + len(transactions) * self.config.txn_flag_bytes
        rwset_ns = device.copy(
            int(d2h_bytes * lat_factor), "d2h", name="rwsets", stream=self.d2h_stream
        )
        transfer_ns += rwset_ns
        interval = self.config.full_sync_interval
        if interval and (batch_index + 1) % interval == 0:
            # Synchronization method 1 (§IV): ship the whole snapshot
            # back to the CPU on the user-defined interval.
            transfer_ns += device.copy(
                self.database.nbytes, "d2h", name="full_sync",
                stream=self.d2h_stream,
            )
            if self._residency is not None:
                # Under residency the interval sync is a *real* fence:
                # every dirty resident column ships back to host.
                self._residency.sync_all_to_host()
        end_ns = device.stream(self.d2h_stream).time_ns

        result = self._assemble_result(
            transactions,
            exec_data,
            flags,
            committed_mask,
            batch_index,
            latency_ns=end_ns - start_ns,
            transfer_ns=transfer_ns,
            phase_ns={
                "execute": exec_ns,
                "conflict": conflict_ns,
                "writeback": writeback_ns,
            },
        )
        self.last_host_phase_s = {
            "execute": host_t1 - host_t0,
            "conflict": host_t2 - host_t1,
            "writeback": host_t3 - host_t2,
            "assemble": time.perf_counter() - host_t3,
        }
        result.stats.rwset_ns = rwset_ns
        result.stats.registered_reads = int(exec_data.read_keys.size)
        result.stats.registered_writes = int(exec_data.write_keys.size)
        result.stats.max_atomic_chain = exec_kernel_stats.atomic_max_chain
        result.stats.atomic_ops = exec_kernel_stats.atomic_ops
        result.stats.atomic_serialized = exec_kernel_stats.atomic_serialized
        result.stats.divergent_branches = exec_kernel_stats.divergent_branches
        result.stats.occupancy = occupancy(
            KernelResources(threads_per_block=exec_geometry.block)
        ).occupancy
        xfer1 = backend.transfer_stats().snapshot()
        self._last_transfers = {k: xfer1[k] - xfer0[k] for k in xfer1}
        self._last_phase_transfers = {
            "execute": {k: xfer_exec[k] - xfer0[k] for k in xfer1},
            "conflict": {k: xfer_conf[k] - xfer_exec[k] for k in xfer1},
            "writeback": {k: xfer_wb[k] - xfer_conf[k] for k in xfer1},
            "other": {k: xfer1[k] - xfer_wb[k] for k in xfer1},
        }
        self._record_observability(
            result.stats, start_ns, end_ns,
            exec_span=(exec_entry.start_ns, exec_entry.duration_ns),
        )
        self.conflict_log.end_batch()
        self.batch_log.record_outcome(
            batch_index,
            [t.tid for t in result.committed],
            [t.tid for t in result.aborted],
        )
        return result

    # ------------------------------------------------------------------
    def _phase_sync(self) -> None:
        """Inter-kernel ``cudaDeviceSynchronize`` (charged to the compute
        stream so pipelined copy streams keep flowing, as CUDA events
        would allow)."""
        self.device.stream(self.compute_stream).enqueue(
            self.device.cost_model.sync_ns()
        )

    # ------------------------------------------------------------------
    # Tracing + metrics (``config.trace``).  Phase spans live on the
    # compute stream's track and wrap the phase kernel plus its closing
    # sync, so the span tree per stream reads batch -> phase -> kernel;
    # whole-batch envelopes are async spans (they overlap under
    # pipelining).  Timestamps come off the stream clocks — never host
    # time — so identical runs produce identical traces.
    def _trace_begin_phase(self, name: str) -> None:
        if self.tracer is not None:
            clock = self.device.stream(self.compute_stream).time_ns
            self.tracer.begin(name, self.compute_stream, clock, cat="phase")

    def _trace_end_phase(self) -> None:
        if self.tracer is not None:
            clock = self.device.stream(self.compute_stream).time_ns
            self.tracer.end(self.compute_stream, clock)

    def _record_observability(
        self,
        stats: BatchStats,
        start_ns: float,
        end_ns: float,
        exec_span: tuple[float, float] | None = None,
    ) -> None:
        """Populate the trace envelope, counter series and metrics
        registry for one finished batch (no-op when tracing is off)."""
        if self.tracer is None and self.metrics is None:
            return
        self._record_group_observability(exec_span)
        self._record_shard_observability(exec_span)
        log_metrics = self.conflict_log.batch_metrics()
        stats.bucket_load_factor = float(log_metrics["load_factor"])
        stats.bucket_expanded_slots = int(log_metrics["expanded_slots"])
        if self.tracer is not None:
            self.tracer.async_span(
                f"batch {stats.batch_index}",
                id=stats.batch_index,
                start_ns=start_ns,
                end_ns=end_ns,
                args={
                    "num_txns": stats.num_txns,
                    "committed": stats.committed,
                    "aborted": stats.aborted,
                    "logic_aborted": stats.logic_aborted,
                    "commit_rate": stats.commit_rate,
                },
            )
            self.tracer.counter(
                "commit_rate", end_ns, value=stats.commit_rate
            )
            self.tracer.counter(
                "atomics", end_ns,
                ops=stats.atomic_ops, serialized=stats.atomic_serialized,
            )
            self.tracer.counter(
                "conflict_log_load", end_ns,
                load_factor=stats.bucket_load_factor,
            )
            if self._last_transfers.get("count"):
                # real-transfer ledger of the array backend (absent on
                # the host reference, whose ledger stays at zero)
                self.tracer.counter(
                    "transfers", end_ns,
                    h2d_bytes=self._last_transfers["h2d_bytes"],
                    d2h_bytes=self._last_transfers["d2h_bytes"],
                )
        if self.metrics is not None:
            m = self.metrics
            m.counter("txn.admitted").inc(stats.num_txns)
            m.counter("txn.committed").inc(stats.committed)
            m.counter("txn.aborted").inc(stats.aborted)
            m.counter("txn.logic_aborted").inc(stats.logic_aborted)
            m.counter("atomic.ops").inc(stats.atomic_ops)
            m.counter("atomic.serialized").inc(stats.atomic_serialized)
            m.gauge("atomic.max_chain").set(stats.max_atomic_chain)
            m.counter("warp.divergent_branches").inc(stats.divergent_branches)
            m.gauge("kernel.occupancy.execute").set(stats.occupancy)
            m.gauge("conflict_log.load_factor").set(stats.bucket_load_factor)
            m.gauge("conflict_log.expanded_slots").set(
                stats.bucket_expanded_slots
            )
            m.counter("conflict_log.registered_reads").inc(
                stats.registered_reads
            )
            m.counter("conflict_log.registered_writes").inc(
                stats.registered_writes
            )
            if self._last_transfers.get("count"):
                m.counter("transfer.h2d_bytes").inc(
                    self._last_transfers["h2d_bytes"]
                )
                m.counter("transfer.d2h_bytes").inc(
                    self._last_transfers["d2h_bytes"]
                )
                m.counter("transfer.count").inc(self._last_transfers["count"])
                for phase, delta in self._last_phase_transfers.items():
                    if not delta.get("count"):
                        continue
                    m.counter(f"transfer.{phase}.h2d_bytes").inc(
                        delta["h2d_bytes"]
                    )
                    m.counter(f"transfer.{phase}.d2h_bytes").inc(
                        delta["d2h_bytes"]
                    )
            reasons = m.histogram("engine.abort_reason")
            for reason, count in stats.abort_reasons.items():
                reasons.observe(reason, count)
            depths = m.histogram("engine.reschedule_depth")
            for attempts, count in stats.commit_attempts.items():
                depths.observe(attempts - 1, count)

    #: Track carrying per-procedure-group execute spans (Perfetto shows
    #: which procedure group dominates a batch's execute kernel).
    GROUP_TRACK = "execute.groups"

    def _record_group_observability(
        self, exec_span: tuple[float, float] | None
    ) -> None:
        """Per-procedure-group spans and counters for the execute phase.

        The simulated execute kernel is one timeline entry; its window
        is subdivided proportionally by each group's op count (the same
        work measure the cost model charges), which keeps the spans
        deterministic — pure integer-derived float math over simulated
        clocks, no host time.
        """
        groups = self._last_groups
        if not groups:
            return
        if self.tracer is not None and exec_span is not None:
            g_start, g_dur = exec_span
            total_ops = sum(ops for _, _, ops in groups) or 1
            cursor = g_start
            for gi, (name, lanes, ops) in enumerate(groups):
                end = (
                    max(cursor, g_start + g_dur)
                    if gi == len(groups) - 1
                    else cursor + g_dur * ops / total_ops
                )
                self.tracer.complete(
                    f"execute:{name}", self.GROUP_TRACK, cursor,
                    end - cursor, cat="group",
                    args={"lanes": lanes, "ops": ops},
                )
                cursor = end
        if self.metrics is not None:
            ops_hist = self.metrics.histogram("execute.procedure_ops")
            size_hist = self.metrics.histogram("execute.group_size")
            for name, lanes, ops in groups:
                ops_hist.observe(name, ops)
                size_hist.observe(name, lanes)

    #: Track carrying per-worker shard spans when the process-parallel
    #: executor is on (empty track otherwise).
    SHARD_TRACK = "execute.shards"

    def _record_shard_observability(
        self, exec_span: tuple[float, float] | None
    ) -> None:
        """Per-worker shard spans and counters (parallel execute only).

        Shard spans subdivide the simulated execute window by op count,
        like the group spans: the simulated cost model charges the same
        work regardless of which process ran a lane, so the spans stay
        deterministic.  The one host-clock measurement — shard merge
        time — goes only to the metrics registry, never the tracer, so
        traces remain byte-stable run to run.
        """
        shards = self._last_shards
        if not shards:
            return
        if self.tracer is not None and exec_span is not None:
            g_start, g_dur = exec_span
            total_ops = sum(ops for _, _, ops in shards) or 1
            cursor = g_start
            for si, (worker, lanes, ops) in enumerate(shards):
                end = (
                    max(cursor, g_start + g_dur)
                    if si == len(shards) - 1
                    else cursor + g_dur * ops / total_ops
                )
                self.tracer.complete(
                    f"shard:w{worker}", self.SHARD_TRACK, cursor,
                    end - cursor, cat="shard",
                    args={"worker": worker, "lanes": lanes, "ops": ops},
                )
                cursor = end
        if self.metrics is not None:
            lanes_hist = self.metrics.histogram("execute.shard_lanes")
            for worker, lanes, _ops in shards:
                lanes_hist.observe(f"w{worker}", lanes)
            self.metrics.gauge("execute.merge_ns").set(
                self._last_merge_s * 1e9
            )

    # ------------------------------------------------------------------
    # Shadow-access recording (``config.sanitize``).  Addresses are
    # conflict-granular — ``row * num_groups + group`` — so the shadow
    # cell matches the unit the WAW/RAW/WAR rules protect: a clean
    # engine is provably race-free at this granularity, and anything the
    # rules would miss shows up as a finding.  Thread ids are batch
    # indices (table traffic) or TIDs (conflict-log atomics).
    def _sanitize_table_reads(self, data: "_ExecutionData") -> None:
        san = self.sanitizer
        if san is None or data.read_table_arr.size == 0:
            return
        from repro.analysis.sanitizer import AccessKind

        for t in np.unique(data.read_table_arr):
            m = data.read_table_arr == t
            table = self.database.table_by_id(int(t))
            num_groups = max(1, self.flags.num_groups(int(t)))
            addr = data.read_row_arr[m] * num_groups + data.read_group_arr[m]
            san.record(
                f"table:{table.name}", addr, data.read_txn_arr[m], AccessKind.READ
            )

    def _sanitize_minima_reads(self, data: "_ExecutionData") -> None:
        """Conflict-kernel loads of the registered minima (plain reads;
        the atomicMin writes happened one sync point earlier)."""
        san = self.sanitizer
        if san is None:
            return
        from repro.analysis.sanitizer import AccessKind

        if data.write_keys.size:
            san.record(
                "conflict_log.write", data.write_keys, data.write_txn_arr,
                AccessKind.READ,
            )
            san.record(
                "conflict_log.read", data.write_keys, data.write_txn_arr,
                AccessKind.READ,
            )
        if data.read_keys.size:
            san.record(
                "conflict_log.write", data.read_keys, data.read_txn_arr,
                AccessKind.READ,
            )

    def _sanitize_writeback(self, txn_idx: int, local, delayed_adds) -> None:
        """One committed transaction's installs.  Plain writes for owned
        cells (the WAW rule guarantees a single committed writer per
        conflict group); atomic adds for delayed columns (commutative,
        multiple committers allowed)."""
        san = self.sanitizer
        if san is None:
            return
        from repro.analysis.sanitizer import AccessKind

        group_of = self.flags.group_of
        for table_id, row, column in (*local.writes, *local.adds):
            table = self.database.table_by_id(table_id)
            num_groups = max(1, self.flags.num_groups(table_id))
            addr = row * num_groups + group_of(table_id, column)
            san.record(f"table:{table.name}", addr, txn_idx, AccessKind.WRITE)
        for table_id, key in local.inserts:
            table = self.database.table_by_id(table_id)
            san.record(
                f"table:{table.name}:inserts", key, txn_idx, AccessKind.WRITE
            )
        for table_id, row, column, _delta in delayed_adds:
            table = self.database.table_by_id(table_id)
            num_groups = max(1, self.flags.num_groups(table_id))
            addr = row * num_groups + group_of(table_id, column)
            san.record(
                f"table:{table.name}", addr, txn_idx, AccessKind.WRITE, atomic=True
            )

    # ------------------------------------------------------------------
    def _procedure_cache(self) -> dict[str, Procedure]:
        """Engine-level procedure lookup cache, rebuilt only when the
        registry actually changes (not once per batch)."""
        version = self.procedures.version
        if version != self._proc_cache_version:
            self._proc_cache = {}
            self._proc_cache_version = version
        return self._proc_cache

    def _resolve_procedure(self, name: str) -> Procedure:
        """Cached procedure lookup that can never poison the cache: an
        unknown name raises a clear engine error naming the procedure
        (and what *is* registered) without caching anything."""
        cache = self._procedure_cache()
        proc = cache.get(name)
        if proc is None:
            try:
                proc = self.procedures.get(name)
            except TransactionError:
                known = ", ".join(self.procedures.names()) or "(none)"
                raise TransactionError(
                    f"batch references unknown procedure {name!r}; "
                    f"registered procedures: {known}"
                ) from None
            cache[name] = proc
        return proc

    def _execute_one(self, txn, proc, data: "_ExecutionData") -> None:
        """Run one transaction through its scalar procedure (the
        per-transaction path; also the batched executor's fallback)."""
        local_ctx = BufferedContext(self.database)
        try:
            proc(local_ctx, *txn.params)
        except (TransactionAborted, KeyNotFound):
            # Procedure rolled back, or a client-pre-resolved key
            # missed (e.g. Delivery naming an order whose NewOrder
            # aborted): a deterministic logic abort either way.
            txn.status = TxnStatus.LOGIC_ABORTED
            txn.abort_reason = "logic"
            txn.ops = local_ctx.ops
            data.locals_by_tid[txn.tid] = LocalSets()
            return
        txn.status = TxnStatus.EXECUTED
        txn.ops = local_ctx.ops
        local = local_ctx.local
        # Deltas on delayed columns leave the local set: they are
        # merged by the delayed updater at write-back, not by
        # apply_local_sets.
        delayed_set = self.delayed.columns  # frozenset[(table_id, column)]
        delayed_locs = [
            loc
            for loc in local.adds
            if (loc[0], loc[2]) in delayed_set
        ] if delayed_set and local.adds else []
        if delayed_locs:
            data.delayed_adds_by_txn[txn.tid] = [
                (t, row, col, local.adds.pop((t, row, col)))
                for t, row, col in delayed_locs
            ]
        data.locals_by_tid[txn.tid] = local
        if local_ctx.ranges:
            data.ranges_by_tid[txn.tid] = local_ctx.ranges

    def _execute_phase(self, transactions, data: "_ExecutionData", ctx) -> None:
        """Run procedures, buffer effects, register TIDs."""
        if self.config.batched_exec:
            self._execute_batched(transactions, data)
        else:
            cache = self._procedure_cache()
            for txn in transactions:
                txn.reset_for_execution()
                proc = cache.get(txn.procedure_name)
                if proc is None:
                    proc = self._resolve_procedure(txn.procedure_name)
                self._execute_one(txn, proc, data)

        if self.tracer is not None or self.metrics is not None:
            tallies: dict[str, list[int]] = {}
            for txn in transactions:
                t = tallies.setdefault(txn.procedure_name, [0, 0])
                t[0] += 1
                t[1] += len(txn.ops)
            self._last_groups = [
                (name, t[0], t[1]) for name, t in tallies.items()
            ]

        # Collect op arrays + per-op costs, skipping logic aborts for
        # registration but keeping their cost (the lanes did the work).
        db = self.database
        if self.config.columnar_ops:
            table_txns, touched_rows = self._collect_columnar(transactions, data, ctx)
        else:
            table_txns, touched_rows = self._collect_reference(transactions, data, ctx)

        # Popularity verdicts drive this batch's bucket sizes.
        self.last_heats = self.hotspot.measure(table_txns)
        self.conflict_log.begin_batch(self.last_heats)

        # Unified memory: fault in the pages backing accessed rows.
        # Pages are touched in sorted order so the LRU tracker sees the
        # same sequence whichever collector built the row sets.
        if self.memory_plan.mode is MemoryMode.UNIFIED:
            faults = 0
            for table_id in sorted(touched_rows):
                rows = touched_rows[table_id]
                table = db.table_by_id(table_id)
                row_bytes = table.schema.row_bytes
                rows_arr = (
                    rows
                    if isinstance(rows, np.ndarray)
                    else np.fromiter(rows, dtype=np.int64, count=len(rows))
                )
                pages = np.unique(
                    rows_arr * row_bytes // self.device.config.um_page_bytes
                )
                faults += self.device.memory.pages.touch(table.name, pages)
            ctx.add_page_faults(faults)

        # TID registration (the execution-phase atomics).
        data.read_keys = self.conflict_log.encode(
            data.read_table_arr, data.read_row_arr, data.read_group_arr
        )
        data.write_keys = self.conflict_log.encode(
            data.write_table_arr, data.write_row_arr, data.write_group_arr
        )
        ctx.add_instructions(
            _REGISTER_INSTRUCTIONS
            * (data.read_keys.size + data.write_keys.size + data.ins_key_arr.size)
        )
        self.conflict_log.register_reads(
            data.read_keys, data.read_tid_arr, data.read_table_arr, ctx
        )
        self.conflict_log.register_writes(
            data.write_keys, data.write_tid_arr, data.write_table_arr, ctx
        )
        self.conflict_log.register_inserts(
            data.ins_table_arr, data.ins_key_arr, data.ins_tid_arr, ctx
        )
        self._sanitize_table_reads(data)

    # ------------------------------------------------------------------
    def _execute_batched(self, transactions, data: "_ExecutionData") -> None:
        """Group-by-procedure vectorized execution (``batched_exec``).

        Each group with a registered ``BatchProcedure`` twin runs as one
        vectorized call over a :class:`BatchedContext`; groups without a
        twin — and individual lanes the twin sends to fallback — run
        through the scalar path, so third-party procedures keep working.
        Either way every transaction ends with the same ``txn.ops``,
        status and ranges the scalar loop would have produced, and the
        batch-wide columnar locals land in ``data.batch_locals`` for the
        scatter-based write-back.
        """
        n = len(transactions)
        groups: dict[str, list[int]] = {}
        for i, txn in enumerate(transactions):
            txn.reset_for_execution()
            groups.setdefault(txn.procedure_name, []).append(i)
        if self.config.parallel_workers > 0:
            self._execute_batched_parallel(transactions, data, groups)
            return
        delayed_fn = (
            self.delayed.delayed_mask if self.delayed.columns else None
        )
        parts: list[GroupLocals] = []
        for name, idxs in groups.items():
            proc = self._resolve_procedure(name)
            batched = self.procedures.get_batched(name)
            if batched is None:
                parts.append(
                    self._execute_scalar_group(transactions, data, proc, idxs)
                )
                continue
            bctx = BatchedContext(
                self.database,
                [transactions[i].params for i in idxs],
                delayed_mask_fn=delayed_fn,
                xp=self._ensure_backend(),
                residency=self._ensure_residency(),
            )
            batched(bctx, bctx.params)
            mat, counts, g_locals, ranges_by_lane = bctx.finalize()
            parts.append(self._apply_batched_group(
                transactions, data, proc, idxs, mat, counts, g_locals,
                ranges_by_lane, bctx.fallback, bctx.aborted,
            ))
        data.batch_locals = GroupLocals.merge(parts, n)

    def _execute_scalar_group(
        self, transactions, data: "_ExecutionData", proc, idxs: list[int]
    ) -> GroupLocals:
        """One twin-less group through the scalar path, folded columnar."""
        part = GroupLocals(len(transactions))
        for i in idxs:
            txn = transactions[i]
            self._execute_one(txn, proc, data)
            self._fold_scalar_locals(part, i, txn, data)
        return part

    def _apply_batched_group(
        self,
        transactions,
        data: "_ExecutionData",
        proc,
        idxs: list[int],
        mat: np.ndarray,
        counts: np.ndarray,
        g_locals: GroupLocals,
        ranges_by_lane: dict,
        fallback: np.ndarray,
        aborted: np.ndarray,
    ) -> GroupLocals:
        """Apply one group's finalized vectorized results — produced
        in-process or merged back from worker shards — to the
        transactions: slice per-lane ops out of the matrix, set
        statuses, re-run fallback lanes through the scalar path."""
        n = len(transactions)
        # zero-copy byte window over the lane-sorted op matrix;
        # per-lane slices stay views until frombytes copies them
        if mat.size:
            raw = memoryview(np.ascontiguousarray(mat)).cast("B")
        else:
            raw = b""
        bounds = np.zeros(len(idxs) + 1, dtype=np.int64)
        np.cumsum(counts, out=bounds[1:])
        bounds *= OP_FIELDS * 8
        part = g_locals.rekeyed(np.asarray(idxs, dtype=np.int64), n)
        bounds_l = bounds.tolist()
        fallback_l = fallback.tolist()
        aborted_l = aborted.tolist()
        from_flat = OpColumns.from_flat
        executed = TxnStatus.EXECUTED
        get_ranges = ranges_by_lane.get
        for li, i in enumerate(idxs):
            txn = transactions[i]
            if fallback_l[li]:
                self._execute_one(txn, proc, data)
                self._fold_scalar_locals(part, i, txn, data)
                continue
            txn.ops = from_flat(raw[bounds_l[li]:bounds_l[li + 1]])
            if aborted_l[li]:
                txn.status = TxnStatus.LOGIC_ABORTED
                txn.abort_reason = "logic"
            else:
                txn.status = executed
                lane_ranges = get_ranges(li)
                if lane_ranges:
                    data.ranges_by_tid[txn.tid] = lane_ranges
        return part

    def _execute_batched_parallel(
        self, transactions, data: "_ExecutionData", groups: dict[str, list[int]]
    ) -> None:
        """Shard twin-backed groups across the worker pool
        (``config.parallel_workers``).

        Workers execute contiguous lane shards against the shared-memory
        snapshot while the parent runs the twin-less groups; results
        merge back in lane order, so every array fed to conflict
        detection is byte-identical to the in-process batched path.
        Fallback lanes are re-run scalar in the parent, exactly as the
        in-process path does.
        """
        n = len(transactions)
        pool = self._ensure_pool()
        plan_groups: list[tuple[str, list[int]]] = []
        sharded: list[tuple[str, list[tuple]]] = []
        for name, idxs in groups.items():
            # resolve up front: unknown procedures must raise before any
            # dispatch, like the in-process group loop would
            self._resolve_procedure(name)
            if self.procedures.get_batched(name) is not None:
                plan_groups.append((name, idxs))
                sharded.append(
                    (name, [transactions[i].params for i in idxs])
                )
        splits = None
        if self.shard_plan is not None:
            # Shard-major batches split by ownership, not evenly: worker
            # w gets exactly shard w's lanes of each group (the plan is
            # nondecreasing within a group, so the counts describe
            # contiguous runs).
            splits = [
                np.bincount(
                    self.shard_plan[np.asarray(idxs, dtype=np.int64)],
                    minlength=pool.num_workers,
                ).tolist()
                for _name, idxs in plan_groups
            ]
        pool.dispatch(sharded, splits=splits)
        # parent-side work overlaps the workers: twin-less groups run
        # scalar here while the shards execute
        scalar_parts: dict[str, GroupLocals] = {}
        try:
            for name, idxs in groups.items():
                if self.procedures.get_batched(name) is None:
                    scalar_parts[name] = self._execute_scalar_group(
                        transactions, data, self._resolve_procedure(name), idxs
                    )
        except BaseException:
            # still drain the pipes (or the next dispatch deadlocks),
            # but never let a pool error mask the scalar one
            try:
                pool.collect()
            except Exception:
                pass
            raise
        merged = pool.collect()
        parts: list[GroupLocals] = []
        si = 0
        for name, idxs in groups.items():
            if name in scalar_parts:
                parts.append(scalar_parts[name])
                continue
            mat, counts, g_locals, ranges_by_lane, fallback, aborted = merged[si]
            si += 1
            parts.append(self._apply_batched_group(
                transactions, data, self._resolve_procedure(name), idxs,
                mat, counts, g_locals, ranges_by_lane, fallback, aborted,
            ))
        data.batch_locals = GroupLocals.merge(parts, n)
        if self.tracer is not None or self.metrics is not None:
            self._last_shards = list(pool.last_shard_stats)
            self._last_merge_s = pool.last_merge_s

    def _fold_scalar_locals(
        self, part: GroupLocals, idx: int, txn, data: "_ExecutionData"
    ) -> None:
        """Fold one scalar-executed transaction's local sets into the
        batch-wide columnar locals (fallback lanes, scalar-only
        procedures, and logic aborts — whose locals are empty)."""
        part.add_scalar_locals(
            idx,
            data.locals_by_tid[txn.tid],
            data.delayed_adds_by_txn.get(txn.tid, ()),
        )

    # ------------------------------------------------------------------
    def _collect_columnar(self, transactions, data: "_ExecutionData", ctx):
        """Batch-wide columnar op collection.

        One flat ``(n_ops, 6)`` int64 matrix feeds everything: warp
        planning, ``np.bincount`` cost accounting, lexsort reservation
        dedup, touched-page collection, and table popularity counts.
        Returns ``(table_txns, touched_rows)`` for the shared tail.
        """
        db = self.database
        n = len(transactions)
        counts_l: list[int] = []
        tids_l: list[int] = []
        registers_l: list[bool] = []
        executed = TxnStatus.EXECUTED
        flat = array("q")
        for txn in transactions:
            buf = txn.ops.buffer
            flat += buf  # one C-level memcpy per transaction
            counts_l.append(len(buf))
            tids_l.append(txn.tid)
            registers_l.append(txn.status is executed)
        counts = np.asarray(counts_l, dtype=np.int64) // OP_FIELDS
        tids = np.asarray(tids_l, dtype=np.int64)
        registers = np.asarray(registers_l, dtype=bool)
        total = len(flat) // OP_FIELDS
        if total:
            # Zero-copy view: `flat` is local and never grows past here.
            mat = np.frombuffer(flat, dtype=np.int64).reshape(total, OP_FIELDS)
        else:
            mat = np.empty((0, OP_FIELDS), dtype=np.int64)
        kind = mat[:, 0]
        table = mat[:, 1]
        row = mat[:, 2]
        col = mat[:, 3]
        key = mat[:, 5]
        op_txn = np.repeat(np.arange(n, dtype=np.int64), counts)

        # Warp planning over the whole batch (grouped vs naive).
        exec_plan = plan_arrays(kind, table, counts, self.config.adaptive_warps)
        ctx.add_divergent_branches(exec_plan.divergent_branches)

        # Per-op hardware costs, batch-wide by kind.
        kind_counts = np.bincount(kind, minlength=NUM_OP_KINDS)
        n_reads = int(kind_counts[OpKind.READ])
        n_inserts = int(kind_counts[OpKind.INSERT])
        n_rmw = total - n_reads - n_inserts  # WRITEs + ADDs
        ctx.add_instructions(_OP_INSTRUCTIONS * total)
        ctx.add_global_reads(
            _READ_GLOBAL_READS * n_reads + _WRITE_GLOBAL_READS * n_rmw
        )
        ctx.add_global_writes(
            _INSERT_GLOBAL_WRITES * n_inserts + _WRITE_GLOBAL_WRITES * n_rmw
        )

        # Range predicates register for phantom checks; B-tree descents
        # cost their height.  Few transactions carry ranges, so this
        # stays a loop over just those.
        range_rows: list[tuple[int, int, int, int, int]] = []
        if data.ranges_by_tid:
            for i, txn in enumerate(transactions):
                if not registers[i]:
                    continue
                for table_id, lo, hi in data.ranges_by_tid.get(txn.tid, ()):
                    range_rows.append((table_id, lo, hi, txn.tid, i))
                    ordered = db.table_by_id(table_id).ordered
                    if ordered is not None:  # B-tree descent per range
                        ctx.add_global_reads(ordered.height)
        ra = np.asarray(range_rows, dtype=np.int64).reshape(len(range_rows), 5)
        data.range_table_arr = ra[:, 0]
        data.range_lo_arr = ra[:, 1]
        data.range_hi_arr = ra[:, 2]
        data.range_tid_arr = ra[:, 3]
        data.range_txn_arr = ra[:, 4]

        # Distinct (txn, table) pairs -> per-table accessing-txn counts.
        # The pair space is tiny (n x num_tables), so a scatter into a
        # boolean grid beats a sort-based np.unique.
        num_tables = db.num_tables
        seen_pairs = np.zeros((n, num_tables), dtype=bool)
        seen_pairs.reshape(-1)[op_txn * num_tables + table] = True
        if range_rows:
            seen_pairs[ra[:, 4], ra[:, 0]] = True
        per_table = seen_pairs.sum(axis=0)
        table_txns = {int(t): int(c) for t, c in enumerate(per_table) if c}

        # Rows with real slots, per table (unified-memory page faults).
        touched_rows: dict[int, np.ndarray] = {}
        if self.memory_plan.mode is MemoryMode.UNIFIED:
            has_row = row >= 0
            t_ok = table[has_row]
            r_ok = row[has_row]
            for table_id in np.unique(t_ok):
                touched_rows[int(table_id)] = np.unique(r_ok[t_ok == table_id])

        # Insert reservations (registering transactions only).
        reg_op = registers[op_txn]
        ins_mask = reg_op & (kind == OpKind.INSERT)
        data.ins_table_arr = table[ins_mask]
        data.ins_key_arr = key[ins_mask]
        data.ins_txn_arr = op_txn[ins_mask]
        data.ins_tid_arr = tids[data.ins_txn_arr]

        # Delayed-column discipline: within a batch those columns may
        # only be touched through ADD (checked before the own-insert
        # row filter, exactly like the reference loop).
        non_insert = reg_op & (kind != OpKind.INSERT)
        is_add = kind == OpKind.ADD
        if self.delayed.columns:
            delayed_ops = self.delayed.delayed_mask(table, col)
            bad = non_insert & delayed_ops & ~is_add
            if bad.any():
                offender = column_name(int(col[np.flatnonzero(bad)[0]]))
                raise TransactionError(
                    f"column {offender!r} is delayed-update managed and "
                    f"may only be accessed with ADD in a batch"
                )
            skip_delayed = delayed_ops & is_add
        else:
            skip_delayed = np.zeros(total, dtype=bool)

        # Reservation dedup: one (txn, table, row, group) per side.
        # Rows < 0 are reads of the transaction's own insert — the
        # insert reservation already guards that key.
        candidate = non_insert & ~skip_delayed & (row >= 0)
        group = self.flags.group_lookup(table, col)
        read_sel = candidate & ((kind == OpKind.READ) | is_add)
        write_sel = candidate & ((kind == OpKind.WRITE) | is_add)
        read_res, write_res = _dedup_reservations_two_sided(
            op_txn, table, row, group, candidate, read_sel, write_sel
        )
        (
            data.read_table_arr,
            data.read_row_arr,
            data.read_group_arr,
            data.read_txn_arr,
        ) = read_res
        data.read_tid_arr = tids[data.read_txn_arr]
        (
            data.write_table_arr,
            data.write_row_arr,
            data.write_group_arr,
            data.write_txn_arr,
        ) = write_res
        data.write_tid_arr = tids[data.write_txn_arr]
        return table_txns, touched_rows

    # ------------------------------------------------------------------
    def _collect_reference(self, transactions, data: "_ExecutionData", ctx):
        """Per-op reference collector (the seed implementation),
        retained behind ``config.columnar_ops=False`` for differential
        testing and as the wallclock-bench baseline."""
        db = self.database
        delayed = self.delayed
        group_of = self.flags.group_of
        table_txns: Counter = Counter()

        # Warp planning over the whole batch (grouped vs naive).
        exec_plan = plan(transactions, self.config.adaptive_warps)
        ctx.add_divergent_branches(exec_plan.divergent_branches)

        touched_rows: dict[int, set[int]] = {}
        for idx, txn in enumerate(transactions):
            registers = txn.status is TxnStatus.EXECUTED
            tables_seen: set[int] = set()
            # One reservation per (item, group) per transaction: the
            # local set holds a single entry per item, so repeated
            # column ops on one row register exactly once.
            seen_reads: set[tuple[int, int, int]] = set()
            seen_writes: set[tuple[int, int, int]] = set()
            for op in txn.ops:
                kind = op.kind
                ctx.add_instructions(_OP_INSTRUCTIONS)
                if kind == OpKind.READ:
                    ctx.add_global_reads(_READ_GLOBAL_READS)
                elif kind == OpKind.INSERT:
                    ctx.add_global_writes(_INSERT_GLOBAL_WRITES)
                else:
                    ctx.add_global_reads(_WRITE_GLOBAL_READS)
                    ctx.add_global_writes(_WRITE_GLOBAL_WRITES)
                tables_seen.add(op.table_id)
                if op.row >= 0:
                    touched_rows.setdefault(op.table_id, set()).add(op.row)
                if not registers:
                    continue
                if kind == OpKind.INSERT:
                    data.ins_table.append(op.table_id)
                    data.ins_key.append(op.key)
                    data.ins_tid.append(txn.tid)
                    data.ins_txn.append(idx)
                    continue
                is_delayed = delayed.is_delayed(op.table_id, op.column)
                if kind == OpKind.ADD and is_delayed:
                    continue  # collected from the local set above
                if is_delayed:
                    raise TransactionError(
                        f"column {op.column!r} is delayed-update managed and "
                        f"may only be accessed with ADD in a batch"
                    )
                if op.row < 0:
                    # A read of the transaction's own insert: the insert
                    # reservation already guards this key, and the row
                    # has no slot yet to register against.
                    continue
                group = group_of(op.table_id, op.column)
                entry = (op.table_id, op.row, group)
                if kind == OpKind.READ:
                    if entry not in seen_reads:
                        seen_reads.add(entry)
                        data.read_table.append(op.table_id)
                        data.read_row.append(op.row)
                        data.read_group.append(group)
                        data.read_tid.append(txn.tid)
                        data.read_txn.append(idx)
                else:  # WRITE, or ADD treated as read-modify-write
                    if entry not in seen_writes:
                        seen_writes.add(entry)
                        data.write_table.append(op.table_id)
                        data.write_row.append(op.row)
                        data.write_group.append(group)
                        data.write_tid.append(txn.tid)
                        data.write_txn.append(idx)
                    if kind == OpKind.ADD and entry not in seen_reads:
                        # The RMW's read half participates in RAW checks.
                        seen_reads.add(entry)
                        data.read_table.append(op.table_id)
                        data.read_row.append(op.row)
                        data.read_group.append(group)
                        data.read_tid.append(txn.tid)
                        data.read_txn.append(idx)
            if registers:
                for table_id, lo, hi in data.ranges_by_tid.get(txn.tid, ()):
                    data.range_table.append(table_id)
                    data.range_lo.append(lo)
                    data.range_hi.append(hi)
                    data.range_tid.append(txn.tid)
                    data.range_txn.append(idx)
                    ordered = db.table_by_id(table_id).ordered
                    if ordered is not None:  # B-tree descent per range
                        ctx.add_global_reads(ordered.height)
                    tables_seen.add(table_id)
            for table_id in tables_seen:
                table_txns[table_id] += 1
        data.finalize()
        return dict(table_txns), touched_rows

    # ------------------------------------------------------------------
    def _conflict_phase(self, transactions, data: "_ExecutionData", ctx) -> ConflictFlags:
        """WAW/RAW/WAR verdicts per transaction."""
        n = len(transactions)
        log = self.conflict_log
        waw = np.zeros(n, dtype=bool)
        raw = np.zeros(n, dtype=bool)
        war = np.zeros(n, dtype=bool)
        self._sanitize_minima_reads(data)

        if data.write_keys.size:
            min_w = log.min_write(data.write_keys)
            min_r = log.min_read(data.write_keys)
            waw_ops = min_w < data.write_tid_arr
            war_ops = min_r < data.write_tid_arr
            waw |= np.bincount(
                data.write_txn_arr, weights=waw_ops, minlength=n
            ).astype(bool)
            war |= np.bincount(
                data.write_txn_arr, weights=war_ops, minlength=n
            ).astype(bool)
        if data.read_keys.size:
            raw_ops = log.min_write(data.read_keys) < data.read_tid_arr
            raw |= np.bincount(
                data.read_txn_arr, weights=raw_ops, minlength=n
            ).astype(bool)
        if data.ins_key_arr.size:
            winners = log.insert_winners(data.ins_table_arr, data.ins_key_arr)
            ins_waw = winners < data.ins_tid_arr
            waw |= np.bincount(
                data.ins_txn_arr, weights=ins_waw, minlength=n
            ).astype(bool)

        # Phantom protection for range reads: an earlier insert
        # reservation inside the predicate is a RAW on the predicate
        # (the reader's snapshot scan missed a row the serial order
        # would have shown); a *later* insert into an earlier reader's
        # predicate is the matching WAR (reordering the reader past the
        # inserter would un-miss it).
        if data.range_tid_arr.size and data.ins_key_arr.size:
            ctx.add_global_reads(2 * data.range_tid_arr.size)
            for table_id in np.unique(data.range_table_arr):
                ins_mask = data.ins_table_arr == table_id
                if not ins_mask.any():
                    continue
                order = np.argsort(data.ins_key_arr[ins_mask], kind="stable")
                ikeys = data.ins_key_arr[ins_mask][order]
                itids = data.ins_tid_arr[ins_mask][order]
                itxns = data.ins_txn_arr[ins_mask][order]
                rng_mask = data.range_table_arr == table_id
                for lo, hi, rtid, rtxn in zip(
                    data.range_lo_arr[rng_mask],
                    data.range_hi_arr[rng_mask],
                    data.range_tid_arr[rng_mask],
                    data.range_txn_arr[rng_mask],
                ):
                    a = np.searchsorted(ikeys, lo, side="left")
                    b = np.searchsorted(ikeys, hi, side="right")
                    if a >= b:
                        continue
                    window = itids[a:b]
                    if int(window.min()) < rtid:
                        raw[rtxn] = True
                    later = window > rtid
                    if later.any():
                        war[itxns[a:b][later]] = True

        # Cost: every op reads its own slot; additionally each *distinct*
        # large bucket is swept once (all s_u sub-slots) to find the
        # minimum — charging the sweep per op would double-count it.
        bucket_reads = (
            int(data.read_keys.size + data.write_keys.size)
            + int(data.ins_key_arr.size)
        )
        touched = np.concatenate((data.read_keys, data.write_keys))
        touched_tables = np.concatenate(
            (data.read_table_arr, data.write_table_arr)
        )
        if touched.size:
            uniq_keys, first = np.unique(touched, return_index=True)
            for table_id, s_u_count in zip(
                *np.unique(touched_tables[first], return_counts=True)
            ):
                s_u = log.bucket_size(int(table_id))
                if s_u > 1:
                    bucket_reads += int(s_u_count) * (s_u - 1)
        ctx.add_global_reads(bucket_reads)
        ctx.add_instructions(_CHECK_INSTRUCTIONS * max(1, data.total_ops))

        # Logic aborts never commit, whatever their flags say.
        for idx, txn in enumerate(transactions):
            if txn.status is TxnStatus.LOGIC_ABORTED:
                waw[idx] = True
        return ConflictFlags(waw=waw, raw=raw, war=war)

    # ------------------------------------------------------------------
    def _writeback_phase(self, transactions, data, committed_mask, ctx) -> int:
        """Install committed effects; returns read/write-set bytes for
        the copy-back transfer."""
        if data.batch_locals is not None:
            return self._writeback_columnar(transactions, data, committed_mask, ctx)
        db = self.database
        rwset_bytes = 0
        cells = 0
        delayed_deltas: list[tuple[int, int, str, int]] = []
        written_rows: dict[int, set[int]] = {}
        for idx, txn in enumerate(transactions):
            local = data.locals_by_tid[txn.tid]
            if not committed_mask[idx] or txn.status is TxnStatus.LOGIC_ABORTED:
                continue
            # Only committed write-sets ship back for the CPU-side
            # snapshot merge; aborted transactions re-execute anyway.
            # Delayed deltas are part of the shipped set too (the CPU
            # must merge them into its primary copy).
            rwset_bytes += local.nbytes
            rwset_bytes += 16 * len(data.delayed_adds_by_txn.get(txn.tid, ()))
            if self.sanitizer is not None:
                self._sanitize_writeback(
                    idx, local, data.delayed_adds_by_txn.get(txn.tid, ())
                )
            apply_local_sets(db, local)
            cells += len(local.writes) + len(local.adds)
            for _, values in local.inserts.items():
                cells += 1 + len(values)
            delayed_deltas.extend(data.delayed_adds_by_txn.get(txn.tid, ()))
            if self.memory_plan.mode is MemoryMode.UNIFIED:
                for table_id, row, _column in local.writes:
                    written_rows.setdefault(table_id, set()).add(row)
                for table_id, row, _column in local.adds:
                    written_rows.setdefault(table_id, set()).add(row)
        ctx.add_global_writes(cells)
        ctx.add_instructions(_APPLY_INSTRUCTIONS * max(1, cells))
        self.delayed.apply(delayed_deltas, ctx)
        if written_rows:
            # Sorted tables and pages, so the LRU tracker sees the same
            # sequence whichever write-back path built the row sets.
            faults = 0
            for table_id in sorted(written_rows):
                rows = written_rows[table_id]
                table = db.table_by_id(table_id)
                row_bytes = table.schema.row_bytes
                rows_arr = np.fromiter(rows, dtype=np.int64, count=len(rows))
                pages = np.unique(
                    rows_arr * row_bytes // self.device.config.um_page_bytes
                )
                faults += self.device.memory.pages.touch(table.name, pages)
            ctx.add_page_faults(faults)
        return rwset_bytes

    # ------------------------------------------------------------------
    def _writeback_columnar(self, transactions, data, committed_mask, ctx) -> int:
        """Columnar write-back for ``batched_exec``: masked grouped
        scatters per (table, column) instead of per-transaction
        ``apply_local_sets`` calls.  Safe because the WAW rule leaves at
        most one committed writer per (row, conflict-group): committed
        write cells are disjoint, committed adds commute, and each
        transaction's own write-kills-add ordering was already resolved
        when the batched context finalized its local sets."""
        db = self.database
        bl = data.batch_locals
        commit = np.asarray(committed_mask, dtype=bool)
        rwset_bytes = int(bl.nbytes_by_txn[commit].sum()) + 16 * int(
            bl.delayed_count_by_txn[commit].sum()
        )
        if self.sanitizer is not None:
            self._sanitize_writeback_columnar(bl, commit)
        w_keep = commit[bl.w_txn] if bl.w_txn.size else np.zeros(0, dtype=bool)
        a_keep = commit[bl.a_txn] if bl.a_txn.size else np.zeros(0, dtype=bool)
        d_keep = commit[bl.d_txn] if bl.d_txn.size else np.zeros(0, dtype=bool)
        cells = int(w_keep.sum()) + int(a_keep.sum())
        xp = self._ensure_backend()
        on_device = xp.is_device
        residency = self._ensure_residency()

        def scatter(tables, rows, cols, vals, accumulate: bool) -> None:
            if tables.size == 0:
                return
            order = np.lexsort((cols, tables))
            tables, rows, cols, vals = (
                tables[order], rows[order], cols[order], vals[order]
            )
            new = np.empty(tables.size, dtype=bool)
            new[0] = True
            new[1:] = (tables[1:] != tables[:-1]) | (cols[1:] != cols[:-1])
            starts = np.flatnonzero(new)
            ends = np.append(starts[1:], tables.size)
            for s, e in zip(starts, ends):
                table = db.table_by_id(int(tables[s]))
                cname = column_name(int(cols[s]))
                if on_device and residency is not None:
                    dev = residency.device_column(table, cname)
                    if dev is not None:
                        # device-resident write-back: scatter into the
                        # authoritative device copy and mark the host
                        # side stale — no round trip.  WAW-disjoint
                        # assignments and commutative adds make the
                        # apply order irrelevant (ARCHITECTURE §13).
                        idx = xp.from_host(rows[s:e])
                        val = xp.from_host(vals[s:e])
                        if accumulate:
                            xp.scatter_add(dev, idx, val)
                        else:
                            xp.scatter(dev, idx, val)
                        residency.mark_dirty(table, cname)
                        continue
                target = table.column(cname)
                if on_device:
                    # per-column device scatter with an explicit round
                    # trip: the snapshot's authoritative copy is host
                    # memory (the paper's CPU-side primary), so each
                    # (table, column) segment ships down, scatters, and
                    # ships the merged column back
                    dev = xp.from_host(target)
                    idx = xp.from_host(rows[s:e])
                    val = xp.from_host(vals[s:e])
                    if accumulate:
                        xp.scatter_add(dev, idx, val)
                    else:
                        xp.scatter(dev, idx, val)
                    host = xp.to_host(dev)
                    if not np.shares_memory(host, target):
                        target[:] = host
                elif accumulate:
                    np.add.at(target, rows[s:e], vals[s:e])
                else:
                    target[rows[s:e]] = vals[s:e]

        router = self.shard_router
        if router is None:
            scatter(
                bl.w_table[w_keep], bl.w_row[w_keep], bl.w_col[w_keep],
                bl.w_val[w_keep], accumulate=False,
            )
            scatter(
                bl.a_table[a_keep], bl.a_row[a_keep], bl.a_col[a_keep],
                bl.a_val[a_keep], accumulate=True,
            )
        else:
            # Sharded write-back: partition committed cells by row owner
            # and scatter shard by shard in fixed ascending order.  The
            # subsets are disjoint (one owner per row), committed writes
            # are WAW-disjoint and adds commute, so the result is
            # byte-identical to the single global scatter.
            for tables, rows, cols, vals, accumulate in (
                (bl.w_table[w_keep], bl.w_row[w_keep], bl.w_col[w_keep],
                 bl.w_val[w_keep], False),
                (bl.a_table[a_keep], bl.a_row[a_keep], bl.a_col[a_keep],
                 bl.a_val[a_keep], True),
            ):
                owners = router.owner_cells(tables, rows)
                for s in range(router.shards):
                    m = owners == s
                    if m.any():
                        scatter(
                            tables[m], rows[m], cols[m], vals[m],
                            accumulate=accumulate,
                        )
        # Inserts claim slots per table in (transaction, emission) order
        # — the scalar slot assignment — but install in bulk: keys that
        # already exist (or repeat within the committed batch; the
        # conflict phase guarantees a unique winner, this mirrors the
        # scalar get_row guard) drop out, the survivors take consecutive
        # slots, and the payload columns scatter per emission chunk.
        if bl.i_txn.size:
            if self.shard_order is not None:
                # shard-major batches: install in *admission* order, not
                # batch-position order, so slot assignment (and with it
                # secondary-index order) matches the unsharded engine
                txn_rank = self.shard_order[bl.i_txn]
            else:
                txn_rank = bl.i_txn
            order = np.lexsort((bl.i_seq, txn_rank))
            order = order[commit[bl.i_txn[order]]]
        else:
            order = np.empty(0, dtype=np.int64)
        if order.size:
            meta = bl.i_meta
            nlen = np.fromiter(
                (len(m[0]) for m in meta), dtype=np.int64, count=len(meta)
            )
            i_tb = bl.i_table[order]
            i_keys = bl.i_key[order]
            i_chs = bl.i_chunk[order]
            i_pos = bl.i_pos[order]
            cells += order.size + int(nlen[i_chs].sum())
            for table_id in np.unique(i_tb):
                m = i_tb == table_id
                table = db.table_by_id(int(table_id))
                kt, ct, pt = i_keys[m], i_chs[m], i_pos[m]
                exists = (kt >= 0) & (kt < table._dense_limit)
                nd = np.flatnonzero(~exists)
                if nd.size:
                    has = table.primary.__contains__
                    hits = np.fromiter(
                        map(has, kt[nd].tolist()), dtype=bool, count=nd.size
                    )
                    exists[nd[hits]] = True
                keep = ~exists
                if kt.size > 1:
                    first = np.zeros(kt.size, dtype=bool)
                    first[np.unique(kt, return_index=True)[1]] = True
                    keep &= first
                if not keep.any():
                    continue
                ck, pk = ct[keep], pt[keep]
                rows = table.append_keys(kt[keep])
                for c in np.unique(ck):
                    cm = ck == c
                    names, vals = meta[int(c)]
                    block = vals[pk[cm]]
                    trows = rows[cm]
                    for j, name in enumerate(names):
                        # freshly claimed slots: write host-side without
                        # fencing (note_appended mirrors them below)
                        table.host_column(name)[trows] = block[:, j]
                table.index_appended(rows)
                if residency is not None:
                    residency.note_appended(table, rows)
        ctx.add_global_writes(cells)
        ctx.add_instructions(_APPLY_INSTRUCTIONS * max(1, cells))
        if router is None or self.shard_updaters is None:
            self.delayed.apply_arrays(
                bl.d_table[d_keep], bl.d_row[d_keep], bl.d_col[d_keep],
                bl.d_val[d_keep], ctx, xp=xp, residency=residency,
            )
        else:
            # Per-shard delayed-update merge, same disjoint-partition
            # argument as the scatters above; the cost model even agrees
            # (deltas sum, and the owner subsets partition the distinct
            # target cells).
            d_t, d_r = bl.d_table[d_keep], bl.d_row[d_keep]
            d_c, d_v = bl.d_col[d_keep], bl.d_val[d_keep]
            owners = router.owner_cells(d_t, d_r)
            for s, updater in enumerate(self.shard_updaters):
                m = owners == s
                if m.any():
                    updater.apply_arrays(
                        d_t[m], d_r[m], d_c[m], d_v[m], ctx,
                        xp=xp, residency=residency,
                    )
        if self.memory_plan.mode is MemoryMode.UNIFIED and (
            w_keep.any() or a_keep.any()
        ):
            faults = 0
            t_all = np.concatenate((bl.w_table[w_keep], bl.a_table[a_keep]))
            r_all = np.concatenate((bl.w_row[w_keep], bl.a_row[a_keep]))
            for table_id in np.unique(t_all):
                table = db.table_by_id(int(table_id))
                row_bytes = table.schema.row_bytes
                pages = np.unique(
                    r_all[t_all == table_id] * row_bytes
                    // self.device.config.um_page_bytes
                )
                faults += self.device.memory.pages.touch(table.name, pages)
            ctx.add_page_faults(faults)
        return rwset_bytes

    def _sanitize_writeback_columnar(self, bl, commit) -> None:
        """Columnar twin of :meth:`_sanitize_writeback`: same shadow
        cells (conflict-granular addresses), same access kinds."""
        san = self.sanitizer
        if san is None:
            return
        from repro.analysis.sanitizer import AccessKind

        def emit(tables, rows, cols, txns, atomic: bool) -> None:
            if tables.size == 0:
                return
            groups = self.flags.group_lookup(tables, cols)
            for table_id in np.unique(tables):
                m = tables == table_id
                table = self.database.table_by_id(int(table_id))
                num_groups = max(1, self.flags.num_groups(int(table_id)))
                san.record(
                    f"table:{table.name}",
                    rows[m] * num_groups + groups[m],
                    txns[m],
                    AccessKind.WRITE,
                    atomic=atomic,
                )

        w_keep = commit[bl.w_txn] if bl.w_txn.size else np.zeros(0, dtype=bool)
        a_keep = commit[bl.a_txn] if bl.a_txn.size else np.zeros(0, dtype=bool)
        d_keep = commit[bl.d_txn] if bl.d_txn.size else np.zeros(0, dtype=bool)
        emit(
            np.concatenate((bl.w_table[w_keep], bl.a_table[a_keep])),
            np.concatenate((bl.w_row[w_keep], bl.a_row[a_keep])),
            np.concatenate((bl.w_col[w_keep], bl.a_col[a_keep])),
            np.concatenate((bl.w_txn[w_keep], bl.a_txn[a_keep])),
            atomic=False,
        )
        emit(
            bl.d_table[d_keep], bl.d_row[d_keep], bl.d_col[d_keep],
            bl.d_txn[d_keep], atomic=True,
        )
        for txn_idx, table_id, key, _names, _vals in bl.iter_inserts(commit):
            table = self.database.table_by_id(table_id)
            san.record(
                f"table:{table.name}:inserts", key, txn_idx,
                AccessKind.WRITE,
            )

    # ------------------------------------------------------------------
    def _assemble_result(
        self,
        transactions,
        data,
        flags: ConflictFlags,
        committed_mask,
        batch_index: int,
        latency_ns: float,
        transfer_ns: float,
        phase_ns: dict[str, float],
    ) -> BatchResult:
        committed: list[Transaction] = []
        aborted: list[Transaction] = []
        logic_aborted: list[Transaction] = []
        stats = BatchStats(
            batch_index=batch_index,
            num_txns=len(transactions),
            committed=0,
            aborted=0,
            latency_ns=latency_ns,
            transfer_ns=transfer_ns,
            phase_ns=phase_ns,
        )
        witness: list[tuple[int, set, set]] = []
        # Witness sets are only needed for committed transactions, so
        # group keys by txn with one argsort + unique-slice pass instead
        # of per-element dict/set churn.
        committed_arr = np.asarray(committed_mask, dtype=bool)
        reads_by_txn = _grouped_key_sets(
            data.read_txn_arr, data.read_keys, committed_arr
        )
        writes_by_txn = _grouped_key_sets(
            data.write_txn_arr, data.write_keys, committed_arr
        )
        for idx, txn in enumerate(transactions):
            stats.total_by_proc[txn.procedure_name] += 1
            if txn.status is TxnStatus.LOGIC_ABORTED:
                # Keep stats and explain() in agreement: both read the
                # reason off the transaction itself.
                txn.abort_reason = txn.abort_reason or "logic"
                logic_aborted.append(txn)
                stats.logic_aborted += 1
                stats.abort_reasons[txn.abort_reason] += 1
            elif committed_mask[idx]:
                txn.status = TxnStatus.COMMITTED
                committed.append(txn)
                stats.committed += 1
                stats.committed_by_proc[txn.procedure_name] += 1
                stats.commit_attempts[txn.attempts] += 1
                witness.append(
                    (txn.tid, reads_by_txn.get(idx, set()), writes_by_txn.get(idx, set()))
                )
            else:
                txn.status = TxnStatus.ABORTED
                txn.abort_reason = abort_reason(
                    bool(flags.waw[idx]), bool(flags.raw[idx]), bool(flags.war[idx])
                )
                aborted.append(txn)
                stats.aborted += 1
                stats.abort_reasons[txn.abort_reason] += 1
        return BatchResult(
            stats=stats,
            committed=committed,
            aborted=aborted,
            logic_aborted=logic_aborted,
            _witness_sets=witness,
        )

    # ------------------------------------------------------------------
    def process(
        self,
        scheduler: BatchScheduler,
        max_batches: int | None = None,
    ) -> RunStats:
        """Drain a scheduler: run batches, re-queue aborts, aggregate."""
        run = RunStats()
        batches = 0
        while scheduler.has_work():
            if max_batches is not None and batches >= max_batches:
                break
            batch = scheduler.next_batch()
            if not batch:
                # Retries are delayed past the current index; spin the
                # scheduler forward (an empty GPU slot in real time).
                batches += 1
                continue
            result = self.run_batch(batch)
            scheduler.requeue_aborted(result.aborted)
            run.add(result.stats)
            batches += 1
        return run

    def run_transactions(
        self, transactions: list[Transaction], max_batches: int = 1000
    ) -> RunStats:
        """Convenience: admit, process to completion, aggregate."""
        scheduler = BatchScheduler(
            self.config.batch_size,
            retry_delay_batches=self.config.effective_retry_delay,
        )
        scheduler.admit(transactions)
        return self.process(scheduler, max_batches=max_batches)


def _dedup_reservations_two_sided(
    op_txn, table, row, group, candidate, read_sel, write_sel
):
    """Both sides' reservation dedups from ONE sort of the candidate
    ops.  Read and write selections are subsets of ``candidate`` (adds
    appear in both), so sorting the candidates once and taking each
    (txn, table, row, group) run's first read-side and first write-side
    entry matches two independent :func:`_dedup_reservations` passes."""
    t = op_txn[candidate]
    if t.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return (
            (empty, empty.copy(), empty.copy(), empty.copy()),
            (empty.copy(), empty.copy(), empty.copy(), empty.copy()),
        )
    tb = table[candidate]
    r = row[candidate]
    g = group[candidate]
    packed = pack_sort_key(t, tb, r, g)
    if packed is None:
        return (
            _dedup_reservations(op_txn, table, row, group, read_sel),
            _dedup_reservations(op_txn, table, row, group, write_sel),
        )
    order = np.argsort(packed, kind="stable")
    ps = packed[order]
    new = np.empty(ps.size, dtype=bool)
    new[0] = True
    new[1:] = ps[1:] != ps[:-1]
    run = np.cumsum(new) - 1
    t, tb, r, g = t[order], tb[order], r[order], g[order]
    out = []
    for side in (read_sel, write_sel):
        si = np.flatnonzero(side[candidate][order])
        if si.size:
            runs = run[si]
            keep = np.empty(si.size, dtype=bool)
            keep[0] = True
            keep[1:] = runs[1:] != runs[:-1]
            sel = si[keep]
            out.append((tb[sel], r[sel], g[sel], t[sel]))
        else:
            empty = np.empty(0, dtype=np.int64)
            out.append((empty, empty.copy(), empty.copy(), empty.copy()))
    return out[0], out[1]


def _dedup_reservations(op_txn, table, row, group, mask):
    """One reservation per (txn, table, row, group) among masked ops.

    Lexsort the candidates and keep each first occurrence.  Every kept
    field is part of the sort key, so which duplicate survives does not
    matter; downstream consumers (atomicMin registration, per-txn
    bincounts, witness sets) are all order-insensitive, which is what
    lets this sorted dedup replace the reference loop's first-seen sets
    without changing any batch outcome.
    """
    t = op_txn[mask]
    if t.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy(), empty.copy()
    tb = table[mask]
    r = row[mask]
    g = group[mask]
    packed = pack_sort_key(t, tb, r, g)
    if packed is not None:
        order = np.argsort(packed, kind="stable")
        ps = packed[order]
        keep = np.empty(ps.size, dtype=bool)
        keep[0] = True
        keep[1:] = ps[1:] != ps[:-1]
        t, tb, r, g = t[order], tb[order], r[order], g[order]
    else:
        order = np.lexsort((g, r, tb, t))
        t, tb, r, g = t[order], tb[order], r[order], g[order]
        keep = np.empty(t.size, dtype=bool)
        keep[0] = True
        keep[1:] = (
            (t[1:] != t[:-1])
            | (tb[1:] != tb[:-1])
            | (r[1:] != r[:-1])
            | (g[1:] != g[:-1])
        )
    return tb[keep], r[keep], g[keep], t[keep]


def _grouped_key_sets(txn_arr, key_arr, committed_mask) -> dict[int, set]:
    """{txn index -> set(conflict keys)} over committed transactions,
    built from argsort + np.unique slice boundaries."""
    if txn_arr.size == 0:
        return {}
    mask = committed_mask[txn_arr]
    t = txn_arr[mask]
    if t.size == 0:
        return {}
    k = key_arr[mask]
    order = np.argsort(t, kind="stable")
    t = t[order]
    k = k[order]
    uniq, starts = np.unique(t, return_index=True)
    ends = np.append(starts[1:], t.size)
    return {
        int(u): set(k[s:e].tolist()) for u, s, e in zip(uniq, starts, ends)
    }


class _ExecutionData:
    """Scratch arrays shared between the three phases of one batch."""

    def __init__(self) -> None:
        self.read_table: list[int] = []
        self.read_row: list[int] = []
        self.read_group: list[int] = []
        self.read_tid: list[int] = []
        self.read_txn: list[int] = []
        self.write_table: list[int] = []
        self.write_row: list[int] = []
        self.write_group: list[int] = []
        self.write_tid: list[int] = []
        self.write_txn: list[int] = []
        self.ins_table: list[int] = []
        self.ins_key: list[int] = []
        self.ins_tid: list[int] = []
        self.ins_txn: list[int] = []
        self.range_table: list[int] = []
        self.range_lo: list[int] = []
        self.range_hi: list[int] = []
        self.range_tid: list[int] = []
        self.range_txn: list[int] = []
        self.locals_by_tid: dict[int, LocalSets] = {}
        self.delayed_adds_by_txn: dict[int, list[tuple[int, int, str, int]]] = {}
        self.ranges_by_tid: dict[int, list[tuple[int, int, int]]] = {}
        #: Batch-wide columnar locals (set by the batched executor; its
        #: presence routes write-back through the scatter path).
        self.batch_locals: GroupLocals | None = None
        self.read_keys = np.empty(0, dtype=np.int64)
        self.write_keys = np.empty(0, dtype=np.int64)
        # The *_arr views start empty so the columnar collector can set
        # them directly; the reference collector overwrites them via
        # finalize() from the append lists above.
        def empty() -> np.ndarray:
            return np.empty(0, dtype=np.int64)

        self.read_table_arr = empty()
        self.read_row_arr = empty()
        self.read_group_arr = empty()
        self.read_tid_arr = empty()
        self.read_txn_arr = empty()
        self.write_table_arr = empty()
        self.write_row_arr = empty()
        self.write_group_arr = empty()
        self.write_tid_arr = empty()
        self.write_txn_arr = empty()
        self.ins_table_arr = empty()
        self.ins_key_arr = empty()
        self.ins_tid_arr = empty()
        self.ins_txn_arr = empty()
        self.range_table_arr = empty()
        self.range_lo_arr = empty()
        self.range_hi_arr = empty()
        self.range_tid_arr = empty()
        self.range_txn_arr = empty()

    def finalize(self) -> None:
        """Freeze the Python lists into NumPy arrays."""
        def as_arr(lst: list[int]) -> np.ndarray:
            return np.asarray(lst, dtype=np.int64)

        self.read_table_arr = as_arr(self.read_table)
        self.read_row_arr = as_arr(self.read_row)
        self.read_group_arr = as_arr(self.read_group)
        self.read_tid_arr = as_arr(self.read_tid)
        self.read_txn_arr = as_arr(self.read_txn)
        self.write_table_arr = as_arr(self.write_table)
        self.write_row_arr = as_arr(self.write_row)
        self.write_group_arr = as_arr(self.write_group)
        self.write_tid_arr = as_arr(self.write_tid)
        self.write_txn_arr = as_arr(self.write_txn)
        self.ins_table_arr = as_arr(self.ins_table)
        self.ins_key_arr = as_arr(self.ins_key)
        self.ins_tid_arr = as_arr(self.ins_tid)
        self.ins_txn_arr = as_arr(self.ins_txn)
        self.range_table_arr = as_arr(self.range_table)
        self.range_lo_arr = as_arr(self.range_lo)
        self.range_hi_arr = as_arr(self.range_hi)
        self.range_tid_arr = as_arr(self.range_tid)
        self.range_txn_arr = as_arr(self.range_txn)

    @property
    def total_ops(self) -> int:
        return (
            self.read_tid_arr.size + self.write_tid_arr.size + self.ins_tid_arr.size
        )

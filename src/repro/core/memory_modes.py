"""Selective memory mode adjustment (paper §V-E).

LTPG keeps the database snapshot and the conflict logs resident in GPU
memory when they fit.  Databases that exceed device capacity fall back
to unified memory (automatic paging, page-fault costs); the zero-copy
mode keeps the snapshot resident but exchanges batch inputs/outputs
through host-pinned buffers, trading a small per-access premium on the
exchange buffers for cheaper DMA setup.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import LTPGConfig, MemoryMode
from repro.gpusim.device import Device
from repro.storage.database import Database

#: Fraction of device memory the snapshot may occupy before LTPG
#: switches AUTO mode to unified memory (headroom for logs and sets).
_RESIDENT_HEADROOM = 0.80

#: Zero-copy DMA setup is cheaper than a full cudaMemcpy (pinned pages,
#: no staging); modeled as a discount on the per-transfer latency.
_ZERO_COPY_LATENCY_DISCOUNT = 0.25


@dataclass(frozen=True)
class MemoryPlan:
    """The resolved placement decision for one engine instance."""

    mode: MemoryMode
    snapshot_bytes: int
    device_capacity: int

    @property
    def snapshot_resident(self) -> bool:
        return self.mode in (MemoryMode.DEVICE, MemoryMode.ZERO_COPY)


def resolve_memory_mode(
    config: LTPGConfig, database: Database, device: Device
) -> MemoryPlan:
    """Pick the concrete mode for AUTO, honor explicit choices."""
    snapshot_bytes = database.nbytes
    capacity = device.config.device_memory_bytes
    mode = config.memory_mode
    if mode is MemoryMode.AUTO:
        if snapshot_bytes <= capacity * _RESIDENT_HEADROOM:
            mode = MemoryMode.DEVICE
        else:
            mode = MemoryMode.UNIFIED
    return MemoryPlan(mode=mode, snapshot_bytes=snapshot_bytes, device_capacity=capacity)


def transfer_latency_factor(plan: MemoryPlan) -> float:
    """Multiplier on the fixed per-transfer latency for batch exchange
    buffers (zero-copy avoids staging copies)."""
    if plan.mode is MemoryMode.ZERO_COPY:
        return _ZERO_COPY_LATENCY_DISCOUNT
    return 1.0

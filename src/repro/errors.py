"""Exception hierarchy for the repro package.

All errors raised by this library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
letting genuine programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class DeviceError(ReproError):
    """Raised for invalid GPU-simulator operations (bad launch geometry,
    out-of-memory allocations, use of a destroyed stream, ...)."""


class OutOfDeviceMemory(DeviceError):
    """Raised when an allocation exceeds the simulated device capacity."""


class StorageError(ReproError):
    """Raised for storage-layer misuse (unknown column, duplicate key,
    schema mismatch, ...)."""


class KeyNotFound(StorageError):
    """Raised when a primary-key lookup finds no row."""


class DuplicateKey(StorageError):
    """Raised when inserting a primary key that already exists."""


class TransactionError(ReproError):
    """Raised for transaction-layer misuse (unknown procedure, operation
    outside an active transaction, ...)."""


class ConfigError(TransactionError):
    """Raised for invalid or contradictory :class:`LTPGConfig` settings
    (subclasses :class:`TransactionError` so existing callers that catch
    configuration failures keep working)."""


class BackendError(ReproError):
    """Raised for array-backend misuse (:mod:`repro.xp`): unknown or
    unavailable backend names, malformed primitive arguments, ..."""


class BackendUnavailable(BackendError):
    """Raised when a requested array backend's library (CuPy, PyTorch)
    is not importable, or its device is not usable, in this process."""


class BackendContractError(BackendError):
    """Raised by the ``mockgpu`` backend when code inside a kernel phase
    performs an implicit device-to-host round-trip (``tolist``/``int``/
    iteration on a device array) instead of synchronizing explicitly
    through ``xp.to_host``/``xp.item`` at a phase boundary."""


class ParallelExecutionError(ReproError):
    """Raised when the process-parallel execute pool cannot be built or
    a worker process dies (unpicklable procedure twin, crashed worker,
    broken pipe, ...)."""


class TransactionAborted(TransactionError):
    """Raised inside a stored procedure to signal a logic-initiated abort
    (e.g. TPC-C NewOrder's 1%% rollback)."""


class WorkloadError(ReproError):
    """Raised for invalid workload configuration."""


class BenchmarkError(ReproError):
    """Raised for invalid benchmark configuration."""

"""Deterministic random helpers shared by the workload generators.

Everything takes an explicit ``numpy.random.Generator`` so workloads are
reproducible from a seed — a hard requirement for the determinism tests
and for batch-identical re-runs across engines.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError

#: TPC-C's NURand C constants (any value is spec-legal; fixed for
#: reproducibility).
_C_255 = 91
_C_1023 = 463
_C_8191 = 2177

_C_FOR_A = {255: _C_255, 1023: _C_1023, 8191: _C_8191}


def nurand(rng: np.random.Generator, a: int, x: int, y: int) -> int:
    """TPC-C non-uniform random: NURand(A, x, y)."""
    try:
        c = _C_FOR_A[a]
    except KeyError:
        raise WorkloadError(f"unsupported NURand A constant {a}") from None
    r1 = int(rng.integers(0, a + 1))
    r2 = int(rng.integers(x, y + 1))
    return (((r1 | r2) + c) % (y - x + 1)) + x


class ZipfGenerator:
    """Bounded Zipfian sampler over ``0..n-1`` with exponent ``alpha``.

    Uses an exact inverse-CDF table, so extreme exponents (the paper's
    YCSB uses alpha = 2.5) are handled without rejection sampling.
    Tables are cached per (n, alpha).
    """

    _cache: dict[tuple[int, float], np.ndarray] = {}

    def __init__(self, n: int, alpha: float):
        if n <= 0:
            raise WorkloadError("zipf domain must be non-empty")
        if alpha < 0:
            raise WorkloadError("zipf exponent must be non-negative")
        self.n = n
        self.alpha = alpha
        key = (n, round(alpha, 6))
        cdf = self._cache.get(key)
        if cdf is None:
            ranks = np.arange(1, n + 1, dtype=np.float64)
            weights = ranks ** (-alpha)
            cdf = np.cumsum(weights)
            cdf /= cdf[-1]
            if len(self._cache) > 8:  # bound the cache
                self._cache.clear()
            self._cache[key] = cdf
        self._cdf = cdf

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """``size`` ranks in 0..n-1, rank 0 most popular."""
        u = rng.random(size)
        return np.searchsorted(self._cdf, u, side="left").astype(np.int64)

    def sample_one(self, rng: np.random.Generator) -> int:
        return int(self.sample(rng, 1)[0])

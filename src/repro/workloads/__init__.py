"""Benchmark workloads: TPC-C and YCSB, plus shared random helpers."""

from repro.workloads.rand import ZipfGenerator, nurand
from repro.workloads.smallbank import SmallBankGenerator, build_smallbank
from repro.workloads.tpcc import TpccGenerator, TpccMix, TpccScale, build_tpcc
from repro.workloads.ycsb import YcsbGenerator, YcsbWorkload, build_ycsb

__all__ = [
    "ZipfGenerator",
    "nurand",
    "SmallBankGenerator",
    "build_smallbank",
    "TpccGenerator",
    "TpccMix",
    "TpccScale",
    "build_tpcc",
    "YcsbGenerator",
    "YcsbWorkload",
    "build_ycsb",
]

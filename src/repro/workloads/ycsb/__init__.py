"""YCSB workload (A-E) with a bounded Zipfian key distribution.

``build_ycsb`` returns (database, registry, generator)::

    db, registry, gen = build_ycsb(num_records=100_000, workload="a")
"""

from repro.workloads.ycsb.generator import (
    WORKLOADS,
    YcsbGenerator,
    YcsbWorkload,
    build_ycsb,
    ycsb_delayed_columns,
)

__all__ = [
    "WORKLOADS",
    "YcsbGenerator",
    "YcsbWorkload",
    "build_ycsb",
    "ycsb_delayed_columns",
]

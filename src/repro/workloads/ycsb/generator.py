"""YCSB core workloads A-E over one ``usertable``.

Adaptations mirroring the paper's GPU setting (see EXPERIMENTS.md):

* Each transaction groups 10 YCSB operations (the paper: "each
  transaction ... contain[s] 10 operations").
* Keys follow a bounded Zipfian with configurable exponent (the paper's
  high-contention setting uses alpha = 2.5, under which ~75% of draws
  hit the single hottest key).
* Updates are commutative ADDs on field ``f0``, managed by LTPG's
  delayed-update optimization, while reads fetch field ``f1`` — field
  level separation that row-level conflict-flag splitting provides.
  Without it, alpha = 2.5 would reduce every update-bearing workload to
  one commit per batch (``commutative_updates=False`` reproduces that
  collapse for the ablation example).
* Scans (workload E) read a short contiguous key range through the
  pre-resolved-key access path (hash indexes cannot range-scan).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.storage.database import Database
from repro.storage.schema import make_schema
from repro.txn.procedures import ProcedureRegistry
from repro.txn.transaction import Transaction
from repro.workloads.rand import ZipfGenerator

#: YCSB rows carry ten fields; we materialize two (the update target and
#: the read target) plus padding fields to keep row width realistic.
USERTABLE = make_schema(
    "usertable", "y_key", "f0", "f1", "f2", "f3", "f4", "f5", "f6", "f7", "f8", "f9"
)

OPS_PER_TXN = 10
SCAN_LENGTH = 10
DEFAULT_ZIPF_ALPHA = 2.5


@dataclass(frozen=True)
class YcsbWorkload:
    """Operation mix of one YCSB core workload."""

    name: str
    read: float = 0.0
    update: float = 0.0
    insert: float = 0.0
    scan: float = 0.0
    read_latest: bool = False

    def __post_init__(self) -> None:
        total = self.read + self.update + self.insert + self.scan
        if abs(total - 1.0) > 1e-9:
            raise WorkloadError(f"workload {self.name}: mix sums to {total}")


WORKLOADS: dict[str, YcsbWorkload] = {
    "a": YcsbWorkload("a", read=0.5, update=0.5),
    "b": YcsbWorkload("b", read=0.95, update=0.05),
    "c": YcsbWorkload("c", read=1.0),
    "d": YcsbWorkload("d", read=0.95, insert=0.05, read_latest=True),
    "e": YcsbWorkload("e", scan=0.95, insert=0.05),
}


def ycsb_delayed_columns() -> frozenset[tuple[str, str]]:
    """The delayed-update columns LTPG should manage for YCSB."""
    return frozenset({("usertable", "f0")})


def _register_procedures(
    registry: ProcedureRegistry, btree_scans: bool = False
) -> None:
    @registry.register("ycsb_txn")
    def ycsb_txn(ctx, *flat_ops):
        """One YCSB transaction: a flat (op_code, key) sequence.

        op codes: 0 = read f1, 1 = commutative update (+1 on f0),
        2 = insert, 3 = scan f1 over SCAN_LENGTH keys,
        4 = non-commutative read-modify-write on f1 (ablation mode).
        """
        n = len(flat_ops) // 2
        for j in range(n):
            code = flat_ops[2 * j]
            key = flat_ops[2 * j + 1]
            if code == 0:
                ctx.read("usertable", key, "f1")
            elif code == 1:
                ctx.add("usertable", key, "f0", 1)
            elif code == 2:
                ctx.insert("usertable", key, {"f0": 0, "f1": key})
            elif code == 4:
                value = ctx.read("usertable", key, "f1")
                ctx.write("usertable", key, "f1", value + 1)
            elif btree_scans:
                # Range-query extension: one ordered-index descent plus
                # a contiguous leaf walk, with phantom protection.
                ctx.range_read("usertable", key, key + SCAN_LENGTH - 1, "f1")
            else:
                for offset in range(SCAN_LENGTH):
                    ctx.read("usertable", key + offset, "f1")

    registry.register_batched(
        "ycsb_txn", functools.partial(_ycsb_txn_b, btree_scans)
    )


def _ycsb_txn_b(btree_scans, bctx, params):
    """Vectorized twin: one emission pass per op position.

    Module-level (bound via ``functools.partial``) so the parallel
    executor can pickle it to spawn-started workers.

    Lanes whose op sequence needs a read-your-own-writes overlay —
    a later op reading a key this lane already wrote (code 4) or
    inserted — fall back to the scalar procedure; generated
    workloads make those collisions rare (fresh insert keys, f0/f1
    field separation keeps commutative updates out of the way).
    """
    xp = bctx.xp
    n_ops = params.lengths // 2
    max_ops = int(n_ops.max()) if bctx.n else 0
    if max_ops == 0:
        return
    codes = xp.stack([params.column(2 * j) for j in range(max_ops)], axis=1)
    keys = xp.stack([params.column(2 * j + 1) for j in range(max_ops)], axis=1)
    valid = xp.arange(max_ops, dtype=np.int64) < n_ops[:, None]

    hazard = xp.zeros(bctx.n, dtype=bool)
    for j in range(max_ops):
        vj = valid[:, j]
        kj = keys[:, j]
        wj = vj & (codes[:, j] == 4)  # wrote f1 at kj
        ij = vj & (codes[:, j] == 2)  # inserted kj
        if not (wj.any() or ij.any()):
            continue
        for j2 in range(max_ops):
            if j2 == j:
                continue
            v2 = valid[:, j2]
            c2 = codes[:, j2]
            k2 = keys[:, j2]
            eq = v2 & (k2 == kj)
            cover = (
                v2 & (c2 == 3) & (k2 <= kj) & (kj <= k2 + SCAN_LENGTH - 1)
            )
            reads_f1 = (eq & ((c2 == 0) | (c2 == 4))) | cover
            if j2 > j:
                hazard |= wj & reads_f1
            # any op touching a key this lane inserts (either
            # direction: earlier reads miss the snapshot, later
            # ones would need the buffered row)
            hazard |= ij & (reads_f1 | (eq & ((c2 == 1) | (c2 == 2))))
    bctx.fall_back(xp.flatnonzero(hazard))

    dense_limit = bctx.dense_limit("usertable")
    for j in range(max_ops):
        act = bctx.active_mask() & valid[:, j]
        cj = codes[:, j]
        kj = keys[:, j]
        lanes0 = xp.flatnonzero(act & (cj == 0))
        if lanes0.size:
            rows, found = bctx.rows_for_keys("usertable", lanes0, kj[lanes0])
            bctx.read_rows("usertable", lanes0[found], rows[found], "f1")
        lanes1 = xp.flatnonzero(act & (cj == 1))
        if lanes1.size:
            rows, found = bctx.rows_for_keys("usertable", lanes1, kj[lanes1])
            bctx.add("usertable", lanes1[found], rows[found], "f0", 1)
        lanes2 = xp.flatnonzero(act & (cj == 2))
        if lanes2.size:
            k = kj[lanes2]
            bctx.insert("usertable", lanes2, k, {"f0": 0, "f1": k})
        lanes4 = xp.flatnonzero(act & (cj == 4))
        if lanes4.size:
            rows, found = bctx.rows_for_keys("usertable", lanes4, kj[lanes4])
            ok, r = lanes4[found], rows[found]
            value = bctx.read_rows("usertable", ok, r, "f1")
            bctx.write("usertable", ok, r, "f1", value + 1)
        lanes3 = xp.flatnonzero(act & (cj == 3))
        if lanes3.size:
            lo = kj[lanes3]
            # the fast path needs every key of the range to resolve
            # densely (generated scans always do: starts are clamped
            # below the initial table size, inserts go above it)
            in_dense = (lo >= 0) & (lo + SCAN_LENGTH - 1 < dense_limit)
            bctx.fall_back(lanes3[~in_dense])
            sl = lanes3[in_dense]
            if sl.size:
                lo = lo[in_dense]
                if btree_scans:
                    bctx.range_predicate(
                        "usertable", sl, lo, lo + SCAN_LENGTH - 1
                    )
                rows = lo[:, None] + xp.arange(SCAN_LENGTH, dtype=np.int64)
                bctx.read_block("usertable", sl, rows, "f1")


def ycsb_partition_spec():
    """Key-range sharding for YCSB: the usertable splits into
    contiguous blocks of its loaded key space; scan ranges are
    contiguous, so a scan's homes are just the owners of its two
    endpoints.  Generated insert keys grow past the loaded range and
    land on the last shard (the ``block`` rule clamps)."""
    from repro.shard.partition import PartitionSpec, TableRule

    block = TableRule("block")

    def rules(database):
        return {"usertable": block}

    def classify(txn, part):
        own = part.owner_key
        p = txn.params
        homes = set()
        for j in range(0, len(p) - 1, 2):
            code, key = p[j], p[j + 1]
            if code == 3:
                homes.add(own("usertable", key))
                homes.add(own("usertable", key + SCAN_LENGTH - 1))
            else:
                homes.add(own("usertable", key))
        return tuple(sorted(homes))

    return PartitionSpec(
        name="ycsb", rules_for=rules, default=block, classify=classify
    )


class YcsbGenerator:
    """Produces batches for one YCSB core workload."""

    def __init__(
        self,
        num_records: int,
        workload: str | YcsbWorkload = "a",
        zipf_alpha: float = DEFAULT_ZIPF_ALPHA,
        seed: int = 7,
        commutative_updates: bool = True,
    ):
        if num_records <= SCAN_LENGTH:
            raise WorkloadError("need more records than the scan length")
        if isinstance(workload, str):
            try:
                workload = WORKLOADS[workload.lower()]
            except KeyError:
                raise WorkloadError(f"unknown YCSB workload {workload!r}") from None
        self.workload = workload
        self.num_records = num_records
        self.zipf = ZipfGenerator(num_records, zipf_alpha)
        self.commutative_updates = commutative_updates
        self._rng = np.random.default_rng(seed)
        self._next_insert_key = num_records

    def make_batch(self, size: int) -> list[Transaction]:
        """Generate ``size`` transactions of OPS_PER_TXN operations."""
        rng = self._rng
        wl = self.workload
        # Read-latest targets keys that existed when the batch formed;
        # keys inserted *within* the batch are invisible to its
        # snapshot reads and would only produce pointless misses.
        latest_limit = self._next_insert_key
        thresholds = np.cumsum([wl.read, wl.update, wl.insert, wl.scan])
        total_ops = size * OPS_PER_TXN
        codes = np.minimum(
            np.searchsorted(thresholds, rng.random(total_ops), side="right"), 3
        )
        ranks = self.zipf.sample(rng, total_ops)
        txns: list[Transaction] = []
        pos = 0
        for _ in range(size):
            flat: list[int] = []
            for _ in range(OPS_PER_TXN):
                code = int(codes[pos])
                rank = int(ranks[pos])
                pos += 1
                if code == 2:  # insert: fresh unique key
                    key = self._next_insert_key
                    self._next_insert_key += 1
                elif code == 3:  # scan: clamp the range start
                    key = min(rank, self.num_records - SCAN_LENGTH)
                elif wl.read_latest and code == 0:
                    # Read-latest: popular keys are the newest ones.
                    key = max(latest_limit - 1 - rank, 0)
                else:
                    key = rank
                if code == 1 and not self.commutative_updates:
                    # Ablation mode: plain read-modify-write on the read
                    # field, exposing full Zipfian write contention.
                    flat.extend((4, key))
                    continue
                flat.extend((code, key))
            txns.append(Transaction("ycsb_txn", tuple(flat)))
        return txns


def build_ycsb(
    num_records: int,
    workload: str | YcsbWorkload = "a",
    zipf_alpha: float = DEFAULT_ZIPF_ALPHA,
    seed: int = 7,
    commutative_updates: bool = True,
    btree_scans: bool = False,
) -> tuple[Database, ProcedureRegistry, YcsbGenerator]:
    """Load a YCSB instance and return (database, registry, generator).

    ``btree_scans=True`` enables the range-query extension: workload E's
    scans run through a B-tree ordered index with phantom protection
    instead of the paper's pre-resolved-key emulation.
    """
    db = Database("ycsb")
    table = db.create_table(USERTABLE, capacity=max(1024, num_records))
    keys = np.arange(num_records, dtype=np.int64)
    rng = np.random.default_rng(seed)
    table.bulk_load(
        keys,
        {"f0": np.zeros(num_records, dtype=np.int64), "f1": keys,
         "f2": rng.integers(0, 1000, num_records)},
    )
    if btree_scans:
        table.add_ordered_index()
    registry = ProcedureRegistry()
    _register_procedures(registry, btree_scans=btree_scans)
    generator = YcsbGenerator(
        num_records,
        workload=workload,
        zipf_alpha=zipf_alpha,
        seed=seed,
        commutative_updates=commutative_updates,
    )
    return db, registry, generator

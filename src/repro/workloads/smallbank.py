"""SmallBank: a third workload, exercising LTPG's generality claim.

The paper's core pitch against GaccO/GPUTx is that LTPG "can process
transactions directly without pre-processing", handling "a wider range
of business scenarios".  SmallBank (Alomari et al.) is the standard
short-transaction benchmark in the OCC literature: six procedures over
checking/savings accounts, with a hot-account skew knob.  No read/write
sets are declared anywhere — the procedures just run, which is exactly
the property the paper claims.

Procedures (all keyed by customer id):

* ``balance(c)``            — read both balances.
* ``deposit_checking(c,v)`` — commutative ADD on checking.
* ``transact_savings(c,v)`` — RMW savings with an overdraft check.
* ``amalgamate(c0,c1)``     — move everything from c0 to c1's checking.
* ``write_check(c,v)``      — conditional checking debit (penalty if
  overdrawn).
* ``send_payment(c0,c1,v)`` — checking-to-checking transfer, aborts on
  insufficient funds.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.storage.database import Database
from repro.storage.schema import make_schema
from repro.txn.procedures import ProcedureRegistry
from repro.txn.transaction import Transaction
from repro.workloads.rand import ZipfGenerator

ACCOUNTS = make_schema("smallbank", "cust_id", "checking", "savings")

#: Default procedure mix (uniform across the six, like the original).
DEFAULT_MIX: dict[str, float] = {
    "balance": 0.15,
    "deposit_checking": 0.25,
    "transact_savings": 0.15,
    "amalgamate": 0.15,
    "write_check": 0.15,
    "send_payment": 0.15,
}

def _register_procedures(registry: ProcedureRegistry) -> None:
    @registry.register("balance")
    def balance(ctx, c):
        ctx.read("smallbank", c, "checking")
        ctx.read("smallbank", c, "savings")

    @registry.register("deposit_checking")
    def deposit_checking(ctx, c, value):
        ctx.add("smallbank", c, "checking", value)

    @registry.register("transact_savings")
    def transact_savings(ctx, c, value):
        savings = ctx.read("smallbank", c, "savings")
        if savings + value < 0:
            ctx.abort("insufficient savings")
        ctx.write("smallbank", c, "savings", savings + value)

    @registry.register("amalgamate")
    def amalgamate(ctx, c0, c1):
        checking = ctx.read("smallbank", c0, "checking")
        savings = ctx.read("smallbank", c0, "savings")
        ctx.write("smallbank", c0, "checking", 0)
        ctx.write("smallbank", c0, "savings", 0)
        ctx.add("smallbank", c1, "checking", checking + savings)

    @registry.register("write_check")
    def write_check(ctx, c, value):
        checking = ctx.read("smallbank", c, "checking")
        savings = ctx.read("smallbank", c, "savings")
        penalty = 1 if value > checking + savings else 0
        ctx.write("smallbank", c, "checking", checking - value - penalty)

    @registry.register("send_payment")
    def send_payment(ctx, c0, c1, value):
        checking = ctx.read("smallbank", c0, "checking")
        if checking < value:
            ctx.abort("insufficient funds")
        ctx.write("smallbank", c0, "checking", checking - value)
        ctx.add("smallbank", c1, "checking", value)

    _register_batched(registry)


# The twins are module-level functions (not closures) so the
# process-parallel executor can pickle them to worker processes under
# the "spawn" start method.


def _balance_b(bctx, params):
    lanes = bctx.all_lanes()
    rows, found = bctx.rows_for_keys("smallbank", lanes, params.column(0))
    ok, r = lanes[found], rows[found]
    bctx.read_rows("smallbank", ok, r, "checking")
    bctx.read_rows("smallbank", ok, r, "savings")


def _deposit_checking_b(bctx, params):
    lanes = bctx.all_lanes()
    rows, found = bctx.rows_for_keys("smallbank", lanes, params.column(0))
    bctx.add(
        "smallbank", lanes[found], rows[found], "checking",
        params.column(1)[found],
    )


def _transact_savings_b(bctx, params):
    lanes = bctx.all_lanes()
    rows, found = bctx.rows_for_keys("smallbank", lanes, params.column(0))
    ok, r = lanes[found], rows[found]
    savings = bctx.read_rows("smallbank", ok, r, "savings")
    value = params.column(1)[found]
    bad = savings + value < 0
    bctx.logic_abort(ok[bad])
    g = ~bad
    bctx.write("smallbank", ok[g], r[g], "savings", (savings + value)[g])


def _amalgamate_b(bctx, params):
    lanes = bctx.all_lanes()
    rows, found = bctx.rows_for_keys("smallbank", lanes, params.column(0))
    ok, r = lanes[found], rows[found]
    checking = bctx.read_rows("smallbank", ok, r, "checking")
    savings = bctx.read_rows("smallbank", ok, r, "savings")
    bctx.write("smallbank", ok, r, "checking", 0)
    bctx.write("smallbank", ok, r, "savings", 0)
    # the destination key resolves only at the ADD, after the
    # source writes — exactly like the scalar emission order
    rows1, found1 = bctx.rows_for_keys(
        "smallbank", ok, params.column(1)[found]
    )
    bctx.add(
        "smallbank", ok[found1], rows1[found1], "checking",
        (checking + savings)[found1],
    )


def _write_check_b(bctx, params):
    lanes = bctx.all_lanes()
    rows, found = bctx.rows_for_keys("smallbank", lanes, params.column(0))
    ok, r = lanes[found], rows[found]
    checking = bctx.read_rows("smallbank", ok, r, "checking")
    savings = bctx.read_rows("smallbank", ok, r, "savings")
    value = params.column(1)[found]
    penalty = (value > checking + savings).astype(np.int64)
    bctx.write("smallbank", ok, r, "checking", checking - value - penalty)


def _send_payment_b(bctx, params):
    lanes = bctx.all_lanes()
    rows, found = bctx.rows_for_keys("smallbank", lanes, params.column(0))
    ok, r = lanes[found], rows[found]
    checking = bctx.read_rows("smallbank", ok, r, "checking")
    value = params.column(2)[found]
    bad = checking < value
    bctx.logic_abort(ok[bad])
    g = ~bad
    ok, r, value = ok[g], r[g], value[g]
    bctx.write("smallbank", ok, r, "checking", (checking[g] - value))
    rows1, found1 = bctx.rows_for_keys(
        "smallbank", ok, params.column(1)[ok]
    )
    bctx.add("smallbank", ok[found1], rows1[found1], "checking", value[found1])


def _register_batched(registry: ProcedureRegistry) -> None:
    """Vectorized twins.  Every SmallBank procedure reads a location
    before it writes it, so no lane ever needs a read-your-own-writes
    overlay and none falls back to the scalar path."""
    registry.register_batched("balance", _balance_b)
    registry.register_batched("deposit_checking", _deposit_checking_b)
    registry.register_batched("transact_savings", _transact_savings_b)
    registry.register_batched("amalgamate", _amalgamate_b)
    registry.register_batched("write_check", _write_check_b)
    registry.register_batched("send_payment", _send_payment_b)


def smallbank_partition_spec():
    """Account-range sharding: accounts split into contiguous blocks;
    the two transfer procedures (amalgamate, send_payment) are
    multi-home whenever their accounts land in different blocks."""
    from repro.shard.partition import PartitionSpec, TableRule

    block = TableRule("block")

    def rules(database):
        return {"smallbank": block}

    def classify(txn, part):
        own = part.owner_key
        p = txn.params
        if txn.procedure_name in ("amalgamate", "send_payment"):
            homes = {own("smallbank", p[0]), own("smallbank", p[1])}
        else:
            homes = {own("smallbank", p[0])}
        return tuple(sorted(homes))

    return PartitionSpec(
        name="smallbank", rules_for=rules, default=block, classify=classify
    )


class SmallBankGenerator:
    """Zipf-skewed account selection over the six procedures."""

    def __init__(
        self,
        num_accounts: int,
        mix: dict[str, float] | None = None,
        zipf_alpha: float = 1.0,
        seed: int = 7,
    ):
        if num_accounts < 2:
            raise WorkloadError("SmallBank needs at least two accounts")
        self.num_accounts = num_accounts
        self.mix = dict(mix or DEFAULT_MIX)
        total = sum(self.mix.values())
        if abs(total - 1.0) > 1e-9:
            raise WorkloadError(f"mix sums to {total}, expected 1.0")
        unknown = set(self.mix) - set(DEFAULT_MIX)
        if unknown:
            raise WorkloadError(f"unknown SmallBank procedures: {sorted(unknown)}")
        self.zipf = ZipfGenerator(num_accounts, zipf_alpha)
        self._rng = np.random.default_rng(seed)

    def _account(self) -> int:
        return self.zipf.sample_one(self._rng)

    def _two_accounts(self) -> tuple[int, int]:
        a = self._account()
        b = self._account()
        while b == a:
            b = int(self._rng.integers(0, self.num_accounts))
        return a, b

    def make_batch(self, size: int) -> list[Transaction]:
        if size <= 0:
            raise WorkloadError("batch size must be positive")
        rng = self._rng
        names = list(self.mix)
        probs = np.array([self.mix[n] for n in names])
        picks = rng.choice(len(names), size=size, p=probs)
        txns: list[Transaction] = []
        for pick in picks:
            name = names[int(pick)]
            if name == "balance":
                txns.append(Transaction(name, (self._account(),)))
            elif name == "deposit_checking":
                txns.append(
                    Transaction(name, (self._account(), int(rng.integers(1, 100))))
                )
            elif name == "transact_savings":
                txns.append(
                    Transaction(name, (self._account(), int(rng.integers(-50, 100))))
                )
            elif name == "amalgamate":
                txns.append(Transaction(name, self._two_accounts()))
            elif name == "write_check":
                txns.append(
                    Transaction(name, (self._account(), int(rng.integers(1, 100))))
                )
            else:  # send_payment
                a, b = self._two_accounts()
                txns.append(Transaction(name, (a, b, int(rng.integers(1, 50)))))
        return txns


def build_smallbank(
    num_accounts: int,
    mix: dict[str, float] | None = None,
    zipf_alpha: float = 1.0,
    seed: int = 7,
    initial_balance: int = 10_000,
) -> tuple[Database, ProcedureRegistry, SmallBankGenerator]:
    """Load a SmallBank instance: (database, registry, generator)."""
    db = Database("smallbank")
    table = db.create_table(ACCOUNTS, capacity=max(1024, num_accounts))
    keys = np.arange(num_accounts, dtype=np.int64)
    table.bulk_load(
        keys,
        {
            "checking": np.full(num_accounts, initial_balance, dtype=np.int64),
            "savings": np.full(num_accounts, initial_balance, dtype=np.int64),
        },
    )
    registry = ProcedureRegistry()
    _register_procedures(registry)
    generator = SmallBankGenerator(
        num_accounts, mix=mix, zipf_alpha=zipf_alpha, seed=seed
    )
    return db, registry, generator

"""TPC-C stored procedures, adapted to pre-resolved integer keys.

Adaptations (mirroring the paper's, see DESIGN.md and EXPERIMENTS.md):

* Order / history primary keys are assigned by the client generator, so
  NewOrder never read-modify-writes ``d_next_o_id`` (the paper's
  hash-index engines pre-define the primary keys of inserted rows).
  Without this, every district's sequence counter would serialize the
  whole batch — and the paper's measured NewOrder commit rates (88%
  at 32 warehouses, optimization on *or* off) prove their NewOrder has
  no per-district choke point.
* NewOrder takes warehouse/district tax rates as parameters instead of
  reading the warehouse/district rows (same evidence; Payment's hot
  ``W_YTD``/``D_YTD`` writes would otherwise abort every NewOrder in
  the unoptimized configuration, contradicting Table VI).
* Payment's customer-by-last-name path becomes a skewed customer-id
  choice in the generator (strings are unavailable).

Conflict footprints that drive the reproduced numbers:

* NewOrder: RMW on ~5-15 stock rows (WAW collisions -> its ~12% abort
  rate at 32 warehouses), reads of item/customer rows.
* Payment: commutative ADDs on ``w_ytd``/``d_ytd`` (the high-contention
  hot spots the §V-D optimizations target) plus an RMW on one customer
  row (the residual ~35-50% abort rate under the skewed choice).
"""

from __future__ import annotations

from repro.txn.context import BufferedContext
from repro.txn.procedures import ProcedureRegistry
from repro.workloads.tpcc.schema import MAX_ORDER_LINES, TpccScale

#: The (table, column) pairs LTPG should manage with delayed updates.
DELAYED_COLUMNS = frozenset(
    {("warehouse", "w_ytd"), ("district", "d_ytd")}
)

#: Columns worth a dedicated conflict-flag group (row-level splitting).
SPLIT_COLUMNS = frozenset(
    {("customer", "c_balance")}
)

#: Tables a developer would pre-mark as popular (tiny + hammered).
HOT_TABLES = frozenset({"warehouse", "district"})


def register_procedures(registry: ProcedureRegistry, scale: TpccScale) -> None:
    """Register the five TPC-C procedures bound to ``scale``."""

    @registry.register("neworder")
    def neworder(ctx: BufferedContext, w, d, c_key, o_id, rollback, *items):
        """Place an order: read prices, decrement stocks, insert the
        order, its lines, and the new-order entry.

        ``items`` is a flat (item_id, quantity) sequence; ``rollback``
        simulates the spec's 1% unused-item abort.
        """
        ctx.read("customer", c_key, "c_discount")
        d_key = scale.district_key(w, d)
        n_items = len(items) // 2
        total = 0
        for j in range(n_items):
            item_id = items[2 * j]
            quantity = items[2 * j + 1]
            price = ctx.read("item", item_id, "i_price")
            s_key = scale.stock_key(w, item_id)
            s_qty = ctx.read("stock", s_key, "s_quantity")
            if s_qty - quantity >= 10:
                new_qty = s_qty - quantity
            else:
                new_qty = s_qty - quantity + 91
            ctx.write("stock", s_key, "s_quantity", new_qty)
            ctx.add("stock", s_key, "s_ytd", quantity)
            ctx.add("stock", s_key, "s_order_cnt", 1)
            amount = price * quantity
            total += amount
            ctx.insert(
                "order_line",
                o_id * MAX_ORDER_LINES + j,
                {
                    "ol_o_id": o_id,
                    "ol_i_id": item_id,
                    "ol_quantity": quantity,
                    "ol_amount": amount,
                },
            )
        if rollback:
            ctx.abort("unused item id")
        ctx.insert(
            "orders",
            o_id,
            {"o_c_key": c_key, "o_d_key": d_key, "o_ol_cnt": n_items},
        )
        ctx.insert("new_order", o_id, {"no_d_key": d_key})

    @registry.register("payment")
    def payment(ctx: BufferedContext, w, d, c_key, amount, h_id):
        """Record a payment: bump warehouse/district YTD (hot,
        commutative), settle the customer, append history.

        The warehouse/district *reads* (the spec reads names and
        addresses; integers here) land in the default conflict group,
        so with row-level splitting they never clash with the delayed
        ``w_ytd``/``d_ytd`` writes — but they do register TIDs on the
        hottest rows, which is what the dynamic hash buckets absorb.
        """
        d_key = scale.district_key(w, d)
        ctx.read("warehouse", w, "w_tax")
        ctx.read("district", d_key, "d_tax")
        ctx.add("warehouse", w, "w_ytd", amount)
        ctx.add("district", d_key, "d_ytd", amount)
        balance = ctx.read("customer", c_key, "c_balance")
        ctx.write("customer", c_key, "c_balance", balance - amount)
        ctx.add("customer", c_key, "c_ytd_payment", amount)
        ctx.add("customer", c_key, "c_payment_cnt", 1)
        ctx.insert(
            "history", h_id, {"h_c_key": c_key, "h_d_key": d_key, "h_amount": amount}
        )

    @registry.register("orderstatus")
    def orderstatus(ctx: BufferedContext, c_key):
        """Read a customer's balance and their latest order's lines."""
        ctx.read("customer", c_key, "c_balance")
        rows = ctx.rows_by_secondary("orders", "o_c_key", c_key)
        if not rows:
            return
        row = rows[-1]
        # Read the order header, then its lines via predefined keys.
        ol_cnt = ctx.read_at("orders", row, "o_ol_cnt")
        order_id = ctx.key_at("orders", row)
        for j in range(ol_cnt):
            ctx.read("order_line", order_id * MAX_ORDER_LINES + j, "ol_amount")

    @registry.register("stocklevel")
    def stocklevel(ctx: BufferedContext, w, threshold, *item_ids):
        """Count recently-sold items with stock below ``threshold``
        (item ids pre-resolved by the client, per the paper)."""
        below = 0
        for item_id in item_ids:
            qty = ctx.read("stock", scale.stock_key(w, item_id), "s_quantity")
            if qty < threshold:
                below += 1

    @registry.register("delivery")
    def delivery(ctx: BufferedContext, w, carrier, *order_ids):
        """Deliver one pre-resolved undelivered order per district:
        stamp the carrier, credit the customer."""
        for o_id in order_ids:
            ctx.write("orders", o_id, "o_carrier_id", carrier)
            ol_cnt = ctx.read("orders", o_id, "o_ol_cnt")
            total = 0
            for j in range(ol_cnt):
                total += ctx.read(
                    "order_line", o_id * MAX_ORDER_LINES + j, "ol_amount"
                )
            c_key = ctx.read("orders", o_id, "o_c_key")
            balance = ctx.read("customer", c_key, "c_balance")
            ctx.write("customer", c_key, "c_balance", balance + total)
            ctx.add("customer", c_key, "c_delivery_cnt", 1)

    # vectorized twins for the batched executor (late import: the
    # batched module depends on the context/registry layers above)
    from repro.workloads.tpcc.batched import register_batched_procedures

    register_batched_procedures(registry, scale)

"""TPC-C workload: schema, loader, procedures, generator.

``build_tpcc`` wires everything together::

    db, registry, generator = build_tpcc(warehouses=8, seed=7)
"""

from __future__ import annotations

from repro.storage.database import Database
from repro.txn.procedures import ProcedureRegistry
from repro.workloads.tpcc.generator import TpccGenerator, TpccMix
from repro.workloads.tpcc.loader import load_tpcc, tpcc_nbytes
from repro.workloads.tpcc.partition import tpcc_partition_spec
from repro.workloads.tpcc.procedures import (
    DELAYED_COLUMNS,
    HOT_TABLES,
    SPLIT_COLUMNS,
    register_procedures,
)
from repro.workloads.tpcc.schema import (
    CUSTOMERS_PER_DISTRICT,
    DEFAULT_NUM_ITEMS,
    DISTRICTS_PER_WAREHOUSE,
    MAX_ORDER_LINES,
    TpccScale,
)


def build_tpcc(
    warehouses: int,
    num_items: int = DEFAULT_NUM_ITEMS,
    mix: TpccMix | None = None,
    seed: int = 7,
) -> tuple[Database, ProcedureRegistry, TpccGenerator]:
    """Load a TPC-C instance and return (database, procedures, generator)."""
    scale = TpccScale(warehouses=warehouses, num_items=num_items)
    db = load_tpcc(scale, seed=seed)
    registry = ProcedureRegistry()
    register_procedures(registry, scale)
    generator = TpccGenerator(scale, mix=mix, seed=seed)
    return db, registry, generator


__all__ = [
    "build_tpcc",
    "load_tpcc",
    "tpcc_nbytes",
    "tpcc_partition_spec",
    "register_procedures",
    "TpccGenerator",
    "TpccMix",
    "TpccScale",
    "DELAYED_COLUMNS",
    "SPLIT_COLUMNS",
    "HOT_TABLES",
    "CUSTOMERS_PER_DISTRICT",
    "DISTRICTS_PER_WAREHOUSE",
    "DEFAULT_NUM_ITEMS",
    "MAX_ORDER_LINES",
]

"""TPC-C partitioning: everything hangs off the warehouse.

The classic TPC-C partition map (Calvin, H-Store) keys ownership on the
warehouse id embedded in each primary key: district keys are
``w*10 + d``, customer keys ``(w*10 + d)*3000 + c``, stock keys
``w*num_items + i``.  A ``div_mod`` rule per table recovers ``w`` and
owns the row at ``w % shards``.

Two table families do *not* anchor a transaction's home:

* **item** — a read-only catalog; real deployments replicate it, here
  its reads are simply forwarded to the mod-owner's conflict slice.
* **orders / new_order / order_line / history** — keyed by client-side
  counters, so they take the default ``mod`` rule; a single-home
  NewOrder still inserts rows that hash to other shards, and those
  installs flow through the engine's central deterministic insert step.

The classifier therefore derives homes from warehouse-anchored keys
only: NewOrder and Payment from the district warehouse plus the paying
customer's warehouse (Payment's 15% remote customers are the workload's
multi-home source), OrderStatus from the customer's warehouse,
StockLevel and Delivery from their warehouse parameter.
"""

from __future__ import annotations

from repro.shard.partition import MOD, BoundPartition, PartitionSpec, TableRule, div_mod
from repro.txn.transaction import Transaction
from repro.workloads.tpcc.schema import (
    CUSTOMERS_PER_DISTRICT,
    DISTRICTS_PER_WAREHOUSE,
)

_CUSTOMER_DIVISOR = DISTRICTS_PER_WAREHOUSE * CUSTOMERS_PER_DISTRICT


def _rules(database) -> dict[str, TableRule]:
    return {
        "warehouse": MOD,
        "district": div_mod(DISTRICTS_PER_WAREHOUSE),
        "customer": div_mod(_CUSTOMER_DIVISOR),
        "stock": div_mod(max(1, database.table("item").num_rows)),
        "item": MOD,
    }


def _classify(txn: Transaction, part: BoundPartition) -> tuple[int, ...]:
    p = txn.params
    name = txn.procedure_name
    own = part.owner_key
    if name in ("neworder", "payment"):
        # (w, d, c_key, ...): the district warehouse and the customer's
        # warehouse (recovered from the composite key).
        homes = {own("warehouse", p[0]), own("warehouse", p[2] // _CUSTOMER_DIVISOR)}
    elif name == "orderstatus":
        homes = {own("warehouse", p[0] // _CUSTOMER_DIVISOR)}
    elif name in ("stocklevel", "delivery"):
        homes = {own("warehouse", p[0])}
    else:
        # Unknown procedure: conservatively treat it as touching every
        # shard, so it is sequenced deterministically rather than
        # misrouted.
        homes = set(range(part.shards))
    return tuple(sorted(homes))


def tpcc_partition_spec() -> PartitionSpec:
    return PartitionSpec(
        name="tpcc", rules_for=_rules, default=MOD, classify=_classify
    )

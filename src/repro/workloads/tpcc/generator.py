"""TPC-C transaction generation.

Vectorized, seeded and deterministic: the same seed always produces the
same batches, so every engine can be fed identical inputs.

Customer selection for Payment mixes a skewed hot set (a few frequent
shoppers per district) with a NURand tail — this reproduces the paper's
residual Payment abort rate once the high-contention optimizations have
absorbed the warehouse/district hot rows (Table VI; see EXPERIMENTS.md
for calibration).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.txn.transaction import Transaction
from repro.workloads.tpcc.schema import (
    CUSTOMERS_PER_DISTRICT,
    DISTRICTS_PER_WAREHOUSE,
    TpccScale,
)

#: Chance a Payment picks from the district's hot customer set, and the
#: size of that set (calibrated against Table VI; see EXPERIMENTS.md).
HOT_CUSTOMER_PROB = 0.5
HOT_CUSTOMERS_PER_DISTRICT = 4

#: NewOrder's spec-mandated 1% rollback rate.
ROLLBACK_PROB = 0.01

#: TPC-C's 15% remote payments: the customer belongs to another
#: warehouse while the YTD updates stay with the local one.
REMOTE_PAYMENT_PROB = 0.15

_NURAND_C_ITEM = 2177  # C constant for NURand(8191)
_NURAND_C_CUST = 463   # C constant for NURand(1023)


def _nurand_array(
    rng: np.random.Generator, a: int, c: int, n: int, size: int
) -> np.ndarray:
    """Vectorized NURand(A, 0, n-1) with constant ``c``."""
    r1 = rng.integers(0, a + 1, size)
    r2 = rng.integers(0, n, size)
    return ((r1 | r2) + c) % n


@dataclass(frozen=True)
class TpccMix:
    """Fractions of each transaction type in a batch (must sum to 1)."""

    neworder: float = 0.5
    payment: float = 0.5
    orderstatus: float = 0.0
    stocklevel: float = 0.0
    delivery: float = 0.0

    def __post_init__(self) -> None:
        total = (
            self.neworder
            + self.payment
            + self.orderstatus
            + self.stocklevel
            + self.delivery
        )
        if abs(total - 1.0) > 1e-9:
            raise WorkloadError(f"mix fractions sum to {total}, expected 1.0")

    @classmethod
    def neworder_percentage(cls, pct: int) -> "TpccMix":
        """The paper's '{pct}% NewOrder, rest Payment' configurations."""
        return cls(neworder=pct / 100.0, payment=1.0 - pct / 100.0)


class TpccGenerator:
    """Produces batches of TPC-C transactions."""

    def __init__(
        self,
        scale: TpccScale,
        mix: TpccMix | None = None,
        seed: int = 7,
        hot_customer_prob: float = HOT_CUSTOMER_PROB,
        hot_customers: int = HOT_CUSTOMERS_PER_DISTRICT,
        remote_payment_prob: float = REMOTE_PAYMENT_PROB,
    ):
        self.scale = scale
        self.mix = mix or TpccMix()
        self._rng = np.random.default_rng(seed)
        self.hot_customer_prob = hot_customer_prob
        self.hot_customers = hot_customers
        self.remote_payment_prob = remote_payment_prob
        # Unique ids for client-assigned primary keys; offset clear of
        # any loaded rows.
        self._next_order_id = 1_000_000
        self._next_history_id = 1

    # ------------------------------------------------------------------
    def make_batch(self, size: int) -> list[Transaction]:
        """Generate ``size`` fresh transactions following the mix."""
        if size <= 0:
            raise WorkloadError("batch size must be positive")
        rng = self._rng
        mix = self.mix
        thresholds = np.cumsum(
            [mix.neworder, mix.payment, mix.orderstatus, mix.stocklevel, mix.delivery]
        )
        draws = rng.random(size)
        kinds = np.searchsorted(thresholds, draws, side="right")
        kinds = np.minimum(kinds, 4)
        txns: list[Transaction] = []
        for kind in kinds:
            if kind == 0:
                txns.append(self._neworder())
            elif kind == 1:
                txns.append(self._payment())
            elif kind == 2:
                txns.append(self._orderstatus())
            elif kind == 3:
                txns.append(self._stocklevel())
            else:
                txns.append(self._delivery())
        return txns

    # ------------------------------------------------------------------
    def _pick_wd(self) -> tuple[int, int]:
        rng = self._rng
        w = int(rng.integers(0, self.scale.warehouses))
        d = int(rng.integers(0, DISTRICTS_PER_WAREHOUSE))
        return w, d

    def _customer_uniform_nurand(self, w: int, d: int) -> int:
        c = int(
            _nurand_array(self._rng, 1023, _NURAND_C_CUST, CUSTOMERS_PER_DISTRICT, 1)[0]
        )
        return self.scale.customer_key(w, d, c)

    def _customer_skewed(self, w: int, d: int) -> int:
        rng = self._rng
        if rng.random() < self.hot_customer_prob:
            c = int(rng.integers(0, self.hot_customers))
        else:
            c = int(
                _nurand_array(rng, 1023, _NURAND_C_CUST, CUSTOMERS_PER_DISTRICT, 1)[0]
            )
        return self.scale.customer_key(w, d, c)

    # ------------------------------------------------------------------
    def _neworder(self) -> Transaction:
        rng = self._rng
        w, d = self._pick_wd()
        c_key = self._customer_uniform_nurand(w, d)
        n_items = int(rng.integers(5, 16))
        # Uniform item choice: the paper's NewOrder commit rates (88.3%
        # at 32 WH, 63.4% at 8 WH, batch 16384) match the uniform
        # birthday-collision prediction exactly, so their generator did
        # not apply NURand(8191) skew; see EXPERIMENTS.md.
        item_ids = rng.integers(0, self.scale.num_items, n_items)
        quantities = rng.integers(1, 11, n_items)
        o_id = self._next_order_id
        self._next_order_id += 1
        rollback = 1 if rng.random() < ROLLBACK_PROB else 0
        items: list[int] = []
        for i in range(n_items):
            items.append(int(item_ids[i]))
            items.append(int(quantities[i]))
        return Transaction(
            "neworder", (w, d, c_key, o_id, rollback, *items)
        )

    def _payment(self) -> Transaction:
        rng = self._rng
        w, d = self._pick_wd()
        # 15% remote payments: the paying customer lives in another
        # warehouse; the YTD updates stay with the local one (spec 2.5).
        c_w, c_d = w, d
        if (
            self.scale.warehouses > 1
            and rng.random() < self.remote_payment_prob
        ):
            c_w = int(rng.integers(0, self.scale.warehouses - 1))
            if c_w >= w:
                c_w += 1
            c_d = int(rng.integers(0, DISTRICTS_PER_WAREHOUSE))
        c_key = self._customer_skewed(c_w, c_d)
        amount = int(rng.integers(100, 500_001))
        h_id = self._next_history_id
        self._next_history_id += 1
        return Transaction("payment", (w, d, c_key, amount, h_id))

    def _orderstatus(self) -> Transaction:
        w, d = self._pick_wd()
        return Transaction(
            "orderstatus", (self._customer_uniform_nurand(w, d),)
        )

    def _stocklevel(self) -> Transaction:
        rng = self._rng
        w, _ = self._pick_wd()
        threshold = int(rng.integers(10, 21))
        item_ids = rng.integers(0, self.scale.num_items, 20)
        return Transaction(
            "stocklevel", (w, threshold, *(int(i) for i in item_ids))
        )

    def _delivery(self) -> Transaction:
        rng = self._rng
        w, _ = self._pick_wd()
        carrier = int(rng.integers(1, 11))
        # Pre-resolved order ids: sample from already-generated orders
        # (may reference orders whose NewOrder aborted; the procedure
        # is written to tolerate missing keys via KeyNotFound -> logic
        # abort, matching a real pre-resolution miss).
        if self._next_order_id == 1_000_000:
            return Transaction("delivery", (w, carrier))
        o_ids = rng.integers(1_000_000, self._next_order_id, 2)
        return Transaction(
            "delivery", (w, carrier, *(int(o) for o in o_ids))
        )

"""Vectorized twins of the TPC-C stored procedures.

Each twin replays its scalar procedure's exact op-emission order with
NumPy over a :class:`~repro.txn.batch_context.BatchedContext`, stepping
item/order loops position-by-position so every lane's per-op sequence
numbers line up with a per-transaction execution.

Lanes that would need a read-your-own-writes overlay fall back to the
scalar procedure (the engine re-runs them one at a time):

* NewOrder lanes ordering the same item twice (the second stock read
  must see the first decrement);
* Delivery lanes whose pre-resolved orders share a customer (the second
  balance read must see the first credit).

Both are duplicate draws by the generator — rare at real scales — so
nearly every lane stays on the vectorized path.
"""

from __future__ import annotations

import functools

import numpy as np

from repro.txn.batch_context import BatchedContext, ParamColumns
from repro.txn.procedures import ProcedureRegistry
from repro.workloads.tpcc.schema import (
    DISTRICTS_PER_WAREHOUSE,
    MAX_ORDER_LINES,
    TpccScale,
)
from repro.xp import ArrayBackend


def _lane_major_offsets(xp: ArrayBackend, counts: np.ndarray) -> np.ndarray:
    """``[0..counts[0]-1, 0..counts[1]-1, ...]`` as one flat array."""
    total = int(counts.sum())
    starts = xp.cumsum(counts) - counts
    return xp.arange(total, dtype=np.int64) - xp.repeat(starts, counts)


def _segment_sums(
    xp: ArrayBackend, counts: np.ndarray, values: np.ndarray
) -> np.ndarray:
    """Per-lane sums of lane-major ``values``."""
    sums = xp.zeros(counts.size, dtype=np.int64)
    xp.scatter_add(
        sums, xp.repeat(xp.arange(counts.size, dtype=np.int64), counts), values
    )
    return sums


def _dup_in_rows(
    xp: ArrayBackend, matrix: np.ndarray, valid: np.ndarray
) -> np.ndarray:
    """Per-lane: does any value repeat among the valid cells?"""
    if matrix.shape[1] < 2:
        return np.zeros(matrix.shape[0], dtype=bool)
    # invalid cells get distinct negative sentinels so they never match
    probe = xp.where(valid, matrix, -1 - xp.arange(matrix.shape[1], dtype=np.int64))
    srt = xp.sort(probe, axis=1)
    return (srt[:, 1:] == srt[:, :-1]).any(axis=1)


# Twins live at module level (bound to their scale via functools.partial
# at registration) so they stay picklable: the process-parallel executor
# ships them to worker processes, which under the "spawn" start method
# requires importable module-level callables, not closures.


def _neworder_b(scale: TpccScale, bctx: BatchedContext, params: ParamColumns):
    xp = bctx.xp
    lanes = bctx.all_lanes()
    w = params.column(0)
    d = params.column(1)
    c_key = params.column(2)
    o_id = params.column(3)
    rollback = params.column(4)
    n_items = (params.lengths - 5) // 2
    max_items = int(n_items.max()) if lanes.size else 0
    if max_items:
        items = xp.stack(
            [params.column(5 + 2 * j) for j in range(max_items)], axis=1
        )
        qtys = xp.stack(
            [params.column(6 + 2 * j) for j in range(max_items)], axis=1
        )
        valid = xp.arange(max_items, dtype=np.int64) < n_items[:, None]
        # a repeated item id needs the second stock read to see the
        # first decrement — scalar territory
        bctx.fall_back(lanes[_dup_in_rows(xp, items, valid)])

    start = bctx.active_lanes()
    crows, cf = bctx.rows_for_keys("customer", start, c_key[start])
    cur0 = start[cf]
    bctx.read_rows("customer", cur0, crows[cf], "c_discount")
    d_key = w * DISTRICTS_PER_WAREHOUSE + d

    for j in range(max_items):
        cur = xp.flatnonzero(bctx.active_mask() & (n_items > j))
        if not cur.size:
            continue
        irows, if_ = bctx.rows_for_keys("item", cur, items[cur, j])
        cur = cur[if_]
        price = bctx.read_rows("item", cur, irows[if_], "i_price")
        s_key = w[cur] * scale.num_items + items[cur, j]
        srows, sf = bctx.rows_for_keys("stock", cur, s_key)
        cur, sr, price = cur[sf], srows[sf], price[sf]
        qty = qtys[cur, j]
        s_qty = bctx.read_rows("stock", cur, sr, "s_quantity")
        base = s_qty - qty
        new_qty = xp.where(base >= 10, base, base + 91)
        bctx.write("stock", cur, sr, "s_quantity", new_qty)
        bctx.add("stock", cur, sr, "s_ytd", qty)
        bctx.add("stock", cur, sr, "s_order_cnt", 1)
        bctx.insert(
            "order_line",
            cur,
            o_id[cur] * MAX_ORDER_LINES + j,
            {
                "ol_o_id": o_id[cur],
                "ol_i_id": items[cur, j],
                "ol_quantity": qty,
                "ol_amount": price * qty,
            },
        )

    bctx.logic_abort(xp.flatnonzero(bctx.active_mask() & (rollback != 0)))
    rem = bctx.active_lanes()
    ok = bctx.insert(
        "orders",
        rem,
        o_id[rem],
        {"o_c_key": c_key[rem], "o_d_key": d_key[rem], "o_ol_cnt": n_items[rem]},
    )
    rem = rem[ok]
    bctx.insert("new_order", rem, o_id[rem], {"no_d_key": d_key[rem]})


def _payment_b(bctx: BatchedContext, params: ParamColumns):
    lanes = bctx.all_lanes()
    w = params.column(0)
    d = params.column(1)
    c_key = params.column(2)
    amount = params.column(3)
    h_id = params.column(4)
    d_key = w * DISTRICTS_PER_WAREHOUSE + d

    wrows, wf = bctx.rows_for_keys("warehouse", lanes, w)
    l1, wr1 = lanes[wf], wrows[wf]
    bctx.read_rows("warehouse", l1, wr1, "w_tax")
    drows, df = bctx.rows_for_keys("district", l1, d_key[l1])
    l2, dr2, wr2 = l1[df], drows[df], wr1[df]
    bctx.read_rows("district", l2, dr2, "d_tax")
    bctx.add("warehouse", l2, wr2, "w_ytd", amount[l2])
    bctx.add("district", l2, dr2, "d_ytd", amount[l2])
    crows, cf = bctx.rows_for_keys("customer", l2, c_key[l2])
    l3, cr3 = l2[cf], crows[cf]
    balance = bctx.read_rows("customer", l3, cr3, "c_balance")
    bctx.write("customer", l3, cr3, "c_balance", balance - amount[l3])
    bctx.add("customer", l3, cr3, "c_ytd_payment", amount[l3])
    bctx.add("customer", l3, cr3, "c_payment_cnt", 1)
    bctx.insert(
        "history",
        l3,
        h_id[l3],
        {"h_c_key": c_key[l3], "h_d_key": d_key[l3], "h_amount": amount[l3]},
    )


def _orderstatus_b(bctx: BatchedContext, params: ParamColumns):
    xp = bctx.xp
    lanes = bctx.all_lanes()
    c_key = params.column(0)
    crows, cf = bctx.rows_for_keys("customer", lanes, c_key)
    ok = lanes[cf]
    bctx.read_rows("customer", ok, crows[cf], "c_balance")
    # latest order via the secondary index — host work, like the scalar
    # path; the probe keys come back in one explicit D2H (lanes without
    # orders stop here)
    _, orders_t = bctx.resolve("orders")
    lookup = orders_t.secondary["o_c_key"].lookup
    sel, sel_rows = [], []
    # kernellint: allow[KL105] secondary-index probe over one explicit D2H
    for lane, ck in zip(xp.tolist(ok), xp.tolist(c_key[cf])):
        rows = lookup(ck)
        if rows:
            sel.append(lane)
            sel_rows.append(rows[-1])
    if not sel:
        return
    sl = xp.from_host(np.asarray(sel, dtype=np.int64))
    srow = xp.from_host(np.asarray(sel_rows, dtype=np.int64))
    ol_cnt = bctx.read_rows("orders", sl, srow, "o_ol_cnt")
    order_id = bctx.key_at_rows("orders", sl, srow)
    flat_keys = (
        xp.repeat(order_id * MAX_ORDER_LINES, ol_cnt)
        + _lane_major_offsets(xp, ol_cnt)
    )
    keep, flat_rows = bctx.rows_for_flat_keys(
        "order_line", sl, ol_cnt, flat_keys
    )
    bctx.read_var(
        "order_line", sl[keep], ol_cnt[keep], flat_rows, "ol_amount"
    )


def _stocklevel_b(scale: TpccScale, bctx: BatchedContext, params: ParamColumns):
    xp = bctx.xp
    lanes = bctx.all_lanes()
    w = params.column(0)
    n_ids = params.lengths - 2
    max_ids = int(n_ids.max()) if lanes.size else 0
    if not max_ids:
        return
    items = xp.stack(
        [params.column(2 + j) for j in range(max_ids)], axis=1
    )
    valid = xp.arange(max_ids, dtype=np.int64) < n_ids[:, None]
    s_keys = (w[:, None] * scale.num_items + items)[valid]
    keep, flat_rows = bctx.rows_for_flat_keys("stock", lanes, n_ids, s_keys)
    bctx.read_var("stock", lanes[keep], n_ids[keep], flat_rows, "s_quantity")


def _delivery_b(bctx: BatchedContext, params: ParamColumns):
    xp = bctx.xp
    lanes = bctx.all_lanes()
    carrier = params.column(1)
    n_orders = params.lengths - 2
    max_orders = int(n_orders.max()) if lanes.size else 0
    if not max_orders:
        return
    orders_mx = xp.stack(
        [params.column(2 + k) for k in range(max_orders)], axis=1
    )
    valid = xp.arange(max_orders, dtype=np.int64) < n_orders[:, None]

    # pre-resolve every order row against the snapshot index so
    # intra-lane duplicate *customers* can be detected up front (the
    # second balance read would need the first credit's overlay); the
    # probe keys come back to the host in one explicit D2H
    _, orders_t = bctx.resolve("orders")
    get = orders_t.primary.get
    orow_mx = xp.full(orders_mx.shape, -1, dtype=np.int64)
    flat_idx = xp.flatnonzero(valid.reshape(-1))
    flat_keys = orders_mx.reshape(-1)[flat_idx]
    flat_rows = np.fromiter(
        (
            -1 if (slot := get(k)) is None else slot
            # kernellint: allow[KL105] hash-index probe over one explicit D2H
            for k in xp.tolist(flat_keys)
        ),
        dtype=np.int64,
        count=flat_idx.size,
    )
    orow_mx.reshape(-1)[flat_idx] = xp.from_host(flat_rows)
    found = valid & (orow_mx >= 0)
    ckey_mx = bctx.column_of("orders", "o_c_key")[xp.where(found, orow_mx, 0)]
    bctx.fall_back(lanes[_dup_in_rows(xp, ckey_mx, found)])

    for k in range(max_orders):
        cur = xp.flatnonzero(bctx.active_mask() & (n_orders > k))
        if not cur.size:
            continue
        orow = orow_mx[cur, k]
        missing = orow < 0
        # scalar: KeyNotFound at the carrier write, before emission
        bctx.logic_abort(cur[missing])
        cur, orow = cur[~missing], orow[~missing]
        bctx.write("orders", cur, orow, "o_carrier_id", carrier[cur])
        ol_cnt = bctx.read_rows("orders", cur, orow, "o_ol_cnt")
        flat_keys = (
            xp.repeat(orders_mx[cur, k] * MAX_ORDER_LINES, ol_cnt)
            + _lane_major_offsets(xp, ol_cnt)
        )
        keep, flat_rows = bctx.rows_for_flat_keys(
            "order_line", cur, ol_cnt, flat_keys
        )
        cur, orow, ol_cnt = cur[keep], orow[keep], ol_cnt[keep]
        amounts = bctx.read_var(
            "order_line", cur, ol_cnt, flat_rows, "ol_amount"
        )
        totals = _segment_sums(xp, ol_cnt, amounts)
        c_key = bctx.read_rows("orders", cur, orow, "o_c_key")
        crows, cf = bctx.rows_for_keys("customer", cur, c_key)
        cur2, cr2 = cur[cf], crows[cf]
        balance = bctx.read_rows("customer", cur2, cr2, "c_balance")
        bctx.write("customer", cur2, cr2, "c_balance", balance + totals[cf])
        bctx.add("customer", cur2, cr2, "c_delivery_cnt", 1)


def register_batched_procedures(
    registry: ProcedureRegistry, scale: TpccScale
) -> None:
    """Register the vectorized twins bound to ``scale``."""
    registry.register_batched(
        "neworder", functools.partial(_neworder_b, scale)
    )
    registry.register_batched("payment", _payment_b)
    registry.register_batched("orderstatus", _orderstatus_b)
    registry.register_batched(
        "stocklevel", functools.partial(_stocklevel_b, scale)
    )
    registry.register_batched("delivery", _delivery_b)

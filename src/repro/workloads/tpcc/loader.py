"""TPC-C database population (vectorized)."""

from __future__ import annotations

import numpy as np

from repro.storage.database import Database
from repro.workloads.tpcc.schema import (
    ALL_SCHEMAS,
    CUSTOMERS_PER_DISTRICT,
    DISTRICTS_PER_WAREHOUSE,
    TpccScale,
)


def load_tpcc(scale: TpccScale, seed: int = 42) -> Database:
    """Build and populate a TPC-C database at the given scale.

    Initial values follow the spec's spirit with integer types: taxes
    are per-10000 fractions, prices cents, stock quantities 10..100.
    """
    rng = np.random.default_rng(seed)
    db = Database("tpcc")
    for schema in ALL_SCHEMAS:
        # Orders-side tables start empty and grow; give them headroom.
        capacity = 4096 if schema.table_name in ("orders", "new_order", "order_line", "history") else 1024
        db.create_table(schema, capacity=capacity)

    w = scale.warehouses
    warehouse_keys = np.arange(w, dtype=np.int64)
    db.table("warehouse").bulk_load(
        warehouse_keys,
        {
            "w_tax": rng.integers(0, 2001, w),
            "w_ytd": np.full(w, 3_000_000, dtype=np.int64),
        },
    )

    nd = scale.num_districts
    db.table("district").bulk_load(
        np.arange(nd, dtype=np.int64),
        {
            "d_tax": rng.integers(0, 2001, nd),
            "d_ytd": np.full(nd, 300_000, dtype=np.int64),
            "d_next_o_id": np.full(nd, 3001, dtype=np.int64),
        },
    )

    nc = scale.num_customers
    db.table("customer").bulk_load(
        np.arange(nc, dtype=np.int64),
        {
            "c_discount": rng.integers(0, 5001, nc),
            "c_balance": np.full(nc, -1000, dtype=np.int64),
            "c_ytd_payment": np.full(nc, 1000, dtype=np.int64),
            "c_payment_cnt": np.ones(nc, dtype=np.int64),
            "c_delivery_cnt": np.zeros(nc, dtype=np.int64),
        },
    )

    ni = scale.num_items
    db.table("item").bulk_load(
        np.arange(ni, dtype=np.int64),
        {
            "i_price": rng.integers(100, 10001, ni),
            "i_im_id": rng.integers(1, 10001, ni),
        },
    )

    ns = scale.num_stock
    db.table("stock").bulk_load(
        np.arange(ns, dtype=np.int64),
        {
            "s_quantity": rng.integers(10, 101, ns),
            "s_ytd": np.zeros(ns, dtype=np.int64),
            "s_order_cnt": np.zeros(ns, dtype=np.int64),
            "s_remote_cnt": np.zeros(ns, dtype=np.int64),
        },
    )

    # OrderStatus needs "a customer's latest order".
    db.table("orders").add_secondary_index("o_c_key")
    # Delivery consumes the oldest undelivered order per district.
    db.table("new_order").add_secondary_index("no_d_key")
    return db


def tpcc_nbytes(scale: TpccScale) -> int:
    """Estimated resident bytes of a freshly loaded instance (used by
    memory-mode planning in benches without loading the data)."""
    per_row = {s.table_name: s.row_bytes for s in ALL_SCHEMAS}
    return (
        scale.warehouses * per_row["warehouse"]
        + scale.num_districts * per_row["district"]
        + scale.num_customers * per_row["customer"]
        + scale.num_items * per_row["item"]
        + scale.num_stock * per_row["stock"]
    )

"""TPC-C schema, adapted as the paper does.

All attributes are integers ("CUDA does not support strings"), composite
primary keys are flattened into one int64, and order/history keys are
pre-assigned by the client so that hash indexes suffice (the paper:
"we can only predefine the primary key values of query items").

Key encodings (all zero-based internally):

* warehouse  : ``w``
* district   : ``w * 10 + d``
* customer   : ``(w * 10 + d) * CUSTOMERS_PER_DISTRICT + c``
* item       : ``i``
* stock      : ``w * num_items + i``
* orders     : the generator's unique order id (monotonic counter)
* new_order  : same order id
* order_line : ``order_id * MAX_ORDER_LINES + line``
* history    : the transaction's unique history id
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.schema import Schema, make_schema

DISTRICTS_PER_WAREHOUSE = 10
CUSTOMERS_PER_DISTRICT = 3000
DEFAULT_NUM_ITEMS = 100_000
MAX_ORDER_LINES = 16

WAREHOUSE = make_schema("warehouse", "w_id", "w_tax", "w_ytd")
DISTRICT = make_schema("district", "d_id", "d_tax", "d_ytd", "d_next_o_id")
CUSTOMER = make_schema(
    "customer",
    "c_id",
    "c_discount",
    "c_balance",
    "c_ytd_payment",
    "c_payment_cnt",
    "c_delivery_cnt",
)
ITEM = make_schema("item", "i_id", "i_price", "i_im_id")
STOCK = make_schema(
    "stock", "s_id", "s_quantity", "s_ytd", "s_order_cnt", "s_remote_cnt"
)
ORDERS = make_schema(
    "orders", "o_id", "o_c_key", "o_d_key", "o_entry_d", "o_carrier_id", "o_ol_cnt"
)
NEW_ORDER = make_schema("new_order", "no_o_id", "no_d_key")
ORDER_LINE = make_schema(
    "order_line", "ol_id", "ol_o_id", "ol_i_id", "ol_quantity", "ol_amount"
)
HISTORY = make_schema("history", "h_id", "h_c_key", "h_d_key", "h_amount")

ALL_SCHEMAS: tuple[Schema, ...] = (
    WAREHOUSE,
    DISTRICT,
    CUSTOMER,
    ITEM,
    STOCK,
    ORDERS,
    NEW_ORDER,
    ORDER_LINE,
    HISTORY,
)


@dataclass(frozen=True)
class TpccScale:
    """Sizing of one TPC-C database instance.

    ``num_items`` scales the item/stock tables; benches shrink it
    together with the batch size to preserve contention ratios
    (E = T/D), as documented in EXPERIMENTS.md.
    """

    warehouses: int
    num_items: int = DEFAULT_NUM_ITEMS

    def district_key(self, w: int, d: int) -> int:
        return w * DISTRICTS_PER_WAREHOUSE + d

    def customer_key(self, w: int, d: int, c: int) -> int:
        return self.district_key(w, d) * CUSTOMERS_PER_DISTRICT + c

    def stock_key(self, w: int, i: int) -> int:
        return w * self.num_items + i

    @property
    def num_districts(self) -> int:
        return self.warehouses * DISTRICTS_PER_WAREHOUSE

    @property
    def num_customers(self) -> int:
        return self.num_districts * CUSTOMERS_PER_DISTRICT

    @property
    def num_stock(self) -> int:
        return self.warehouses * self.num_items

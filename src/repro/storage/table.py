"""Column-oriented in-memory tables.

Storage is structure-of-arrays (one int64 NumPy array per column), which
is both what a GPU engine would keep in global memory and what lets the
simulator's kernels run vectorized.  Rows are addressed by *slot*
(insertion index); the primary index maps keys to slots.  Slots are
never reused, so a slot is a stable item identity for conflict logging.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DuplicateKey, StorageError
from repro.storage.btree import BTreeIndex
from repro.storage.index import PrimaryIndex, SecondaryIndex
from repro.storage.schema import Schema

#: Initial capacity for tables created without an explicit size hint.
_DEFAULT_CAPACITY = 1024


class Table:
    """One table: key array + attribute columns + indexes."""

    def __init__(self, schema: Schema, capacity: int = _DEFAULT_CAPACITY):
        if capacity <= 0:
            raise StorageError("table capacity must be positive")
        self.schema = schema
        self._capacity = capacity
        self._num_rows = 0
        self._keys = np.zeros(capacity, dtype=np.int64)
        self._columns: dict[str, np.ndarray] = {
            c.name: np.full(capacity, c.default, dtype=np.int64)
            for c in schema.columns
        }
        self.primary = PrimaryIndex()
        self.secondary: dict[str, SecondaryIndex] = {}
        #: Optional B-tree over primary keys (range-query extension).
        self.ordered: BTreeIndex | None = None
        #: Keys below this value map to row == key (dense fast path set
        #: up by :meth:`bulk_load`); keys at or above it use the dict.
        self._dense_limit = 0
        #: Device-resident view hook (:mod:`repro.xp.residency`): while
        #: set, device-side scatters may leave host columns stale, and
        #: the host accessors below fence lazily before reading.
        self._resident_view = None

    # -- shape ----------------------------------------------------------------
    def __len__(self) -> int:
        return self._num_rows

    @property
    def name(self) -> str:
        return self.schema.table_name

    @property
    def num_rows(self) -> int:
        return self._num_rows

    @property
    def nbytes(self) -> int:
        """Live data footprint (populated rows only)."""
        return self._num_rows * self.schema.row_bytes

    def _grow(self, needed: int) -> None:
        if self._resident_view is not None:
            # Fence before reallocating so np.resize copies a current
            # prefix; the grown arrays re-upload lazily on next touch.
            self._resident_view.fence()
        new_capacity = self._capacity
        while new_capacity < needed:
            new_capacity *= 2
        self._keys = np.resize(self._keys, new_capacity)
        self._keys[self._capacity:] = 0
        for name, arr in self._columns.items():
            grown = np.resize(arr, new_capacity)
            grown[self._capacity:] = 0
            self._columns[name] = grown
        self._capacity = new_capacity

    # -- ordered (B-tree) index ------------------------------------------------
    def add_ordered_index(self) -> BTreeIndex:
        """Build a B-tree over primary keys, enabling
        :meth:`range_rows`.  Maintained automatically on insert."""
        if self.ordered is not None:
            raise StorageError(f"table {self.name!r} already has an ordered index")
        index = BTreeIndex()
        for row in range(self._num_rows):
            index.insert(int(self._keys[row]), row)
        self.ordered = index
        return index

    def range_rows(self, lo: int, hi: int) -> list[tuple[int, int]]:
        """(key, row) pairs with lo <= key <= hi in key order; requires
        an ordered index."""
        if self.ordered is None:
            raise StorageError(
                f"table {self.name!r} has no ordered index; call "
                f"add_ordered_index() to enable range queries"
            )
        return list(self.ordered.range(lo, hi))

    # -- secondary indexes ------------------------------------------------------
    def add_secondary_index(self, column: str) -> SecondaryIndex:
        """Index rows by the value of ``column``; maintained on insert."""
        if column not in self._columns:
            raise StorageError(
                f"cannot index {self.name!r} on unknown column {column!r}"
            )
        if column in self.secondary:
            raise StorageError(f"secondary index on {column!r} already exists")
        index = SecondaryIndex(column)
        for row in range(self._num_rows):
            index.insert(int(self._columns[column][row]), row)
        self.secondary[column] = index
        return index

    # -- bulk loading ---------------------------------------------------------
    def bulk_load(self, keys: np.ndarray, columns: dict[str, np.ndarray]) -> None:
        """Vectorized population of an empty table.

        ``keys`` must be unique; when they are exactly ``0..n-1`` the
        primary index switches to a dense fast path (no per-key dict),
        which is what makes 10M-row YCSB tables loadable.
        """
        if self._num_rows:
            raise StorageError("bulk_load requires an empty table")
        keys = np.asarray(keys, dtype=np.int64)
        n = keys.size
        if n == 0:
            return
        self._grow(n)
        self._keys[:n] = keys
        for name, values in columns.items():
            col = self.column(name)
            col[:n] = np.asarray(values, dtype=np.int64)
        self._num_rows = n
        if self._resident_view is not None:
            self._resident_view.host_written_all()
        dense = bool(keys[0] == 0 and keys[-1] == n - 1 and np.all(np.diff(keys) == 1))
        if dense:
            self._dense_limit = n
        else:
            if np.unique(keys).size != n:
                raise DuplicateKey("bulk_load keys must be unique")
            for row in range(n):
                self.primary.insert(int(keys[row]), row)
        for column, index in self.secondary.items():
            values = self._columns[column]
            for row in range(n):
                index.insert(int(values[row]), row)
        if self.ordered is not None:
            for row in range(n):
                self.ordered.insert(int(keys[row]), row)

    # -- writes -------------------------------------------------------------
    def insert(self, key: int, values: dict[str, int] | None = None) -> int:
        """Insert a row; returns its slot."""
        if self._resident_view is not None:
            self._resident_view.fence()
        if self._num_rows + 1 > self._capacity:
            self._grow(self._num_rows + 1)
        row = self._num_rows
        if 0 <= key < self._dense_limit:
            raise DuplicateKey(f"primary key {key} already present")
        self.primary.insert(int(key), row)
        self._keys[row] = key
        if values:
            for name, value in values.items():
                if name not in self._columns:
                    raise StorageError(
                        f"table {self.name!r} has no column {name!r}"
                    )
                self._columns[name][row] = value
        self._num_rows += 1
        for column, index in self.secondary.items():
            index.insert(int(self._columns[column][row]), row)
        if self.ordered is not None:
            self.ordered.insert(int(key), row)
        if self._resident_view is not None:
            self._resident_view.host_written_all()
        return row

    def append_keys(self, keys: np.ndarray) -> np.ndarray:
        """Phase one of a vectorized append: claim consecutive slots for
        ``keys`` (new and distinct — the caller dedups against the table
        and within the batch) and register them in the primary index.

        Returns the assigned row slots.  The caller scatters the new
        rows' column payloads, then calls :meth:`index_appended` so the
        secondary/ordered indexes see the final values — the same
        sequence a per-row :meth:`insert` loop produces.
        """
        keys = np.asarray(keys, dtype=np.int64)
        k = keys.size
        if k == 0:
            return keys
        start = self._num_rows
        if start + k > self._capacity:
            self._grow(start + k)
        rows = np.arange(start, start + k, dtype=np.int64)
        self._keys[start:start + k] = keys
        self._num_rows = start + k
        self.primary.bulk_insert(keys.tolist(), rows.tolist())
        return rows

    def index_appended(self, rows: np.ndarray) -> None:
        """Phase two of a vectorized append: secondary and ordered index
        maintenance for ``rows``, in slot order."""
        row_list = rows.tolist()
        for column, index in self.secondary.items():
            ins = index.insert
            for v, row in zip(self._columns[column][rows].tolist(), row_list):
                ins(v, row)
        if self.ordered is not None:
            ins = self.ordered.insert
            for key, row in zip(self._keys[rows].tolist(), row_list):
                ins(key, row)

    def write(self, row: int, column: str, value: int) -> None:
        self._check_row(row)
        self.column(column)[row] = value
        if self._resident_view is not None:
            self._resident_view.host_written(column)

    def add(self, row: int, column: str, delta: int) -> None:
        self._check_row(row)
        self.column(column)[row] += delta
        if self._resident_view is not None:
            self._resident_view.host_written(column)

    # -- reads ------------------------------------------------------------------
    def lookup(self, key: int) -> int:
        """Primary-key lookup; raises :class:`KeyNotFound`."""
        key = int(key)
        if 0 <= key < self._dense_limit:
            return key
        return self.primary.lookup(key)

    def get_row(self, key: int) -> int | None:
        key = int(key)
        if 0 <= key < self._dense_limit:
            return key
        return self.primary.get(key)

    def key_of(self, row: int) -> int:
        self._check_row(row)
        return int(self._keys[row])

    def read(self, row: int, column: str) -> int:
        if not 0 <= row < self._num_rows:
            self._check_row(row)
        if self._resident_view is not None:
            self._resident_view.fence_column(column)
        try:
            return int(self._columns[column][row])
        except KeyError:
            raise StorageError(
                f"table {self.name!r} has no column {column!r}"
            ) from None

    def column(self, name: str) -> np.ndarray:
        """The host array for ``name``; under device residency this is
        the lazy stale-host-read fence (a dirty column ships down here
        once before any host code sees it)."""
        if self._resident_view is not None:
            self._resident_view.fence_column(name)
        try:
            return self._columns[name]
        except KeyError:
            raise StorageError(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    def host_column(self, name: str) -> np.ndarray:
        """The host array for ``name`` *without* the residency fence.
        Only for writers that touch freshly appended slots (the insert
        install path mirrors those device-side via ``note_appended``);
        anything reading existing rows must use :meth:`column`."""
        try:
            return self._columns[name]
        except KeyError:
            raise StorageError(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    def read_many(self, rows, column: str) -> np.ndarray:
        """Vectorized gather of one column at many row slots."""
        return self.column(column)[np.asarray(rows, dtype=np.int64)]

    def keys_array(self) -> np.ndarray:
        return self._keys[: self._num_rows]

    def keys_of_rows(self, rows: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`key_of`: primary keys at many row slots
        (the partition router's cell->owner gather).  Keys live host-
        side even under device residency, so no fence is needed."""
        return self._keys[np.asarray(rows, dtype=np.int64)]

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self._num_rows:
            raise StorageError(
                f"row {row} out of range for table {self.name!r} "
                f"({self._num_rows} rows)"
            )

    # -- copying ------------------------------------------------------------
    def copy(self) -> "Table":
        """Deep copy (used for snapshots and serializability replay)."""
        if self._resident_view is not None:
            self._resident_view.fence()
        clone = Table(self.schema, capacity=max(self._capacity, 1))
        clone._num_rows = self._num_rows
        clone._keys = self._keys.copy()
        clone._columns = {n: a.copy() for n, a in self._columns.items()}
        clone.primary = self.primary.copy()
        clone.secondary = {n: ix.copy() for n, ix in self.secondary.items()}
        clone.ordered = self.ordered.copy() if self.ordered is not None else None
        clone._dense_limit = self._dense_limit
        return clone

    def state_signature(self) -> bytes:
        """A canonical byte representation of live data (rows ordered by
        key), for equality checks in determinism and serializability
        tests.  Canonical ordering matters: two logically identical
        states may have inserted rows in different physical slots."""
        if self._resident_view is not None:
            self._resident_view.fence()
        keys = self._keys[: self._num_rows]
        order = np.argsort(keys, kind="stable")
        parts = [keys[order].tobytes()]
        for name in sorted(self._columns):
            parts.append(self._columns[name][: self._num_rows][order].tobytes())
        return b"".join(parts)

"""In-memory columnar storage: schemas, tables, indexes, snapshots, logs.

This is the shared substrate under every engine in the reproduction —
LTPG and all eight baselines operate on the same :class:`Database` so
that throughput comparisons measure concurrency control, not storage.
"""

from repro.storage.btree import BTreeIndex
from repro.storage.database import Database
from repro.storage.index import PrimaryIndex, SecondaryIndex
from repro.storage.recovery import RecoveryReport, recover
from repro.storage.schema import ColumnDef, Schema, make_schema
from repro.storage.snapshot import Snapshot, SnapshotManager
from repro.storage.table import Table
from repro.storage.wal import BatchLog, BatchRecord, LogRecord

__all__ = [
    "BTreeIndex",
    "Database",
    "RecoveryReport",
    "recover",
    "PrimaryIndex",
    "SecondaryIndex",
    "ColumnDef",
    "Schema",
    "make_schema",
    "Snapshot",
    "SnapshotManager",
    "Table",
    "BatchLog",
    "BatchRecord",
    "LogRecord",
]

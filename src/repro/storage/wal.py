"""Batch logging for determinism and recovery.

The paper: "The CPU also records each batch of transactions on the hard
drive as logs.  LTPG guarantees consistent transaction outcomes by
assigning a unique TID to each transaction in a batch, logging it for
reference.  If re-execution is necessary, the system pulls the
transactions from the log, while preserving their original TIDs."

:class:`BatchLog` records, per batch, every transaction's (tid,
procedure, params) plus the commit decisions, and can replay the whole
history onto a snapshot — which is exactly how the determinism tests
validate that re-running the log reproduces the database state.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import StorageError


@dataclass(frozen=True)
class LogRecord:
    """One transaction as it entered a batch."""

    tid: int
    procedure: str
    params: tuple

    def to_json(self) -> str:
        return json.dumps(
            {"tid": self.tid, "procedure": self.procedure, "params": list(self.params)}
        )

    @classmethod
    def from_json(cls, text: str) -> "LogRecord":
        obj = json.loads(text)
        return cls(tid=obj["tid"], procedure=obj["procedure"], params=tuple(obj["params"]))


@dataclass
class BatchRecord:
    """The log entry for one processed batch."""

    batch_index: int
    records: list[LogRecord]
    committed_tids: list[int] = field(default_factory=list)
    aborted_tids: list[int] = field(default_factory=list)


class BatchLog:
    """An append-only in-memory log of batches (the simulated 'disk')."""

    def __init__(self) -> None:
        self._batches: list[BatchRecord] = []

    def __len__(self) -> int:
        return len(self._batches)

    def append_batch(self, batch_index: int, transactions) -> BatchRecord:
        """Log a batch's inputs before execution."""
        records = [
            LogRecord(tid=t.tid, procedure=t.procedure_name, params=tuple(t.params))
            for t in transactions
        ]
        entry = BatchRecord(batch_index=batch_index, records=records)
        self._batches.append(entry)
        return entry

    def record_outcome(
        self, batch_index: int, committed: list[int], aborted: list[int]
    ) -> None:
        entry = self._find(batch_index)
        entry.committed_tids = sorted(committed)
        entry.aborted_tids = sorted(aborted)

    def _find(self, batch_index: int) -> BatchRecord:
        for entry in reversed(self._batches):
            if entry.batch_index == batch_index:
                return entry
        raise StorageError(f"batch {batch_index} was never logged")

    def batches(self) -> list[BatchRecord]:
        return list(self._batches)

    def dump_lines(self) -> list[str]:
        """Serialized log lines (one JSON record per transaction)."""
        lines = []
        for entry in self._batches:
            for record in entry.records:
                lines.append(
                    json.dumps(
                        {
                            "batch": entry.batch_index,
                            "tid": record.tid,
                            "procedure": record.procedure,
                            "params": list(record.params),
                        }
                    )
                )
        return lines

    def replay(self, run_batch: Callable[[BatchRecord], None]) -> None:
        """Feed every logged batch, in order, to ``run_batch``."""
        for entry in self._batches:
            run_batch(entry)

"""Crash recovery: periodic snapshots + deterministic batch-log replay.

The paper's durability story (§IV): "Database snapshots are saved
regularly to the hard drive for permanent storage.  The CPU also
records each batch of transactions on the hard drive as logs. ...  If
re-execution is necessary, the system pulls the transactions from the
log, while preserving their original TIDs ... the same commit policy
ensures uniform commit results, ensuring LTPG's determinism."

That is exactly the classic deterministic-database recovery argument:
*state = snapshot + replay of logged batches*, with no per-write REDO
records, because re-processing a logged batch through the same
deterministic engine reproduces the same commits.  :func:`recover`
implements it against any engine exposing ``run_batch``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StorageError
from repro.storage.snapshot import Snapshot
from repro.storage.wal import BatchLog, BatchRecord
from repro.txn.transaction import Transaction


@dataclass(frozen=True)
class RecoveryReport:
    """What a recovery pass did."""

    snapshot_batch: int
    batches_replayed: int
    transactions_replayed: int
    final_digest: str


def transactions_from_record(record: BatchRecord) -> list[Transaction]:
    """Rebuild the batch's transactions with their original TIDs."""
    return [
        Transaction(r.procedure, r.params, tid=r.tid) for r in record.records
    ]


def recover(
    snapshot: Snapshot,
    log: BatchLog,
    make_engine,
) -> tuple[object, RecoveryReport]:
    """Restore a database from ``snapshot`` and replay every logged
    batch with index > snapshot.batch_index.

    ``make_engine(database)`` must return an engine whose ``run_batch``
    implements the same deterministic commit policy that produced the
    log (normally a fresh ``LTPGEngine`` with the same config).  Returns
    ``(engine, report)``; the recovered state lives in
    ``engine.database``.

    Determinism does the heavy lifting: because TIDs, batch composition
    and the commit rule are identical, the replay commits exactly the
    transactions the pre-crash run committed — verified by comparing
    digests in the test suite.
    """
    database = snapshot.restore()
    engine = make_engine(database)
    replayed = 0
    txn_count = 0
    # Convention: snapshot.batch_index counts batches already applied
    # when the snapshot was captured, so replay resumes at that index.
    for record in log.batches():
        if record.batch_index < snapshot.batch_index:
            continue
        batch = transactions_from_record(record)
        result = engine.run_batch(batch)
        expected = set(record.committed_tids)
        got = {t.tid for t in result.committed}
        if expected and got != expected:
            raise StorageError(
                f"non-deterministic replay of batch {record.batch_index}: "
                f"expected commits {sorted(expected)[:8]}..., got "
                f"{sorted(got)[:8]}..."
            )
        replayed += 1
        txn_count += len(batch)
    report = RecoveryReport(
        snapshot_batch=snapshot.batch_index,
        batches_replayed=replayed,
        transactions_replayed=txn_count,
        final_digest=database.state_digest(),
    )
    return engine, report

"""Database snapshots.

LTPG is single-version: during a batch, the execution phase reads the
live arrays (which *are* the batch-start snapshot, because all writes
are buffered in local write-sets until write-back), and write-back
installs committed writes in place.  A :class:`Snapshot` object captures
a deep copy of the database for two purposes that need a real copy:

* durability — the paper saves snapshots to disk periodically, and
* verification — the test suite replays committed transactions serially
  against the captured snapshot to check serializability.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.database import Database


@dataclass
class Snapshot:
    """An immutable-by-convention deep copy of a database state."""

    database: Database
    batch_index: int
    digest: str

    @classmethod
    def capture(cls, database: Database, batch_index: int = 0) -> "Snapshot":
        copied = database.copy()
        return cls(database=copied, batch_index=batch_index, digest=copied.state_digest())

    def restore(self) -> Database:
        """A fresh mutable copy of the captured state."""
        return self.database.copy()


class SnapshotManager:
    """Keeps periodic snapshots (the paper's 'saved regularly to the
    hard drive'); in this reproduction they stay in memory."""

    def __init__(self, interval_batches: int = 16, keep: int = 4):
        self.interval_batches = max(1, interval_batches)
        self.keep = max(1, keep)
        self._snapshots: list[Snapshot] = []

    def maybe_capture(self, database: Database, batch_index: int) -> Snapshot | None:
        """Capture if ``batch_index`` hits the interval; returns the new
        snapshot or None."""
        if batch_index % self.interval_batches:
            return None
        snap = Snapshot.capture(database, batch_index)
        self._snapshots.append(snap)
        if len(self._snapshots) > self.keep:
            self._snapshots.pop(0)
        return snap

    @property
    def latest(self) -> Snapshot | None:
        return self._snapshots[-1] if self._snapshots else None

    def __len__(self) -> int:
        return len(self._snapshots)

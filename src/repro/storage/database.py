"""A database: a named collection of tables.

Tables get dense integer ids at creation time; engines use
``(table_id, row_slot)`` pairs as data-item identities for conflict
logging, which is deterministic and cheap to hash on the simulated GPU.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.errors import StorageError
from repro.storage.schema import Schema
from repro.storage.table import Table


class Database:
    """Named tables with stable integer ids."""

    def __init__(self, name: str = "db"):
        self.name = name
        self._tables: list[Table] = []
        self._by_name: dict[str, int] = {}
        self._resolved: dict[str, tuple[int, Table]] = {}

    def create_table(self, schema: Schema, capacity: int = 1024) -> Table:
        if schema.table_name in self._by_name:
            raise StorageError(f"table {schema.table_name!r} already exists")
        table = Table(schema, capacity=capacity)
        self._by_name[schema.table_name] = len(self._tables)
        self._resolved[schema.table_name] = (len(self._tables), table)
        self._tables.append(table)
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[self._by_name[name]]
        except KeyError:
            raise StorageError(f"no table named {name!r}") from None

    def resolve(self, name: str) -> tuple[int, Table]:
        """``(table_id, table)`` in one lookup — the per-operation path
        stored-procedure contexts hit for every access."""
        try:
            return self._resolved[name]
        except KeyError:
            raise StorageError(f"no table named {name!r}") from None

    def table_by_id(self, table_id: int) -> Table:
        if not 0 <= table_id < len(self._tables):
            raise StorageError(f"no table with id {table_id}")
        return self._tables[table_id]

    def table_id(self, name: str) -> int:
        try:
            return self._by_name[name]
        except KeyError:
            raise StorageError(f"no table named {name!r}") from None

    @property
    def tables(self) -> list[Table]:
        return list(self._tables)

    @property
    def num_tables(self) -> int:
        return len(self._tables)

    @property
    def nbytes(self) -> int:
        return sum(t.nbytes for t in self._tables)

    def copy(self) -> "Database":
        clone = Database(self.name)
        clone._tables = [t.copy() for t in self._tables]
        clone._by_name = dict(self._by_name)
        clone._resolved = {
            name: (tid, clone._tables[tid])
            for name, tid in clone._by_name.items()
        }
        return clone

    def partition_profile(self, owner_keys, shards: int) -> dict[str, list[int]]:
        """Per-table live-row counts by owning shard.

        ``owner_keys(table_id, keys) -> owners`` is the partition map
        (a :class:`repro.shard.BoundPartition` method, kept callable-
        typed here so storage stays partition-agnostic).  The result is
        the per-shard balance ledger the sharded bench publishes.
        """
        profile: dict[str, list[int]] = {}
        for table_id, table in enumerate(self._tables):
            owners = np.asarray(owner_keys(table_id, table.keys_array()))
            profile[table.name] = np.bincount(
                owners, minlength=shards
            ).astype(int).tolist()
        return profile

    def state_digest(self) -> str:
        """SHA-256 over all live table data; equal digests mean equal
        database states (used by determinism tests)."""
        h = hashlib.sha256()
        for table in self._tables:
            h.update(table.name.encode())
            h.update(table.state_signature())
        return h.hexdigest()

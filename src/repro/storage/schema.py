"""Table schemas.

The paper stores every attribute as an integer ("All attributes in
tables are set to integer type because CUDA does not support strings"),
so columns are int64 throughout.  A schema names the table, its columns
and the single int64 primary-key column; workloads that need composite
keys (e.g. TPC-C district = (w_id, d_id)) encode them into one int64.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StorageError


@dataclass(frozen=True)
class ColumnDef:
    """One named int64 column."""

    name: str
    default: int = 0

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise StorageError(f"invalid column name {self.name!r}")


@dataclass(frozen=True)
class Schema:
    """A table schema: name, primary-key column, attribute columns."""

    table_name: str
    key_column: str
    columns: tuple[ColumnDef, ...]

    def __post_init__(self) -> None:
        if not self.table_name:
            raise StorageError("table name must be non-empty")
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise StorageError(f"duplicate column in schema {self.table_name!r}")
        if self.key_column in names:
            raise StorageError(
                f"key column {self.key_column!r} must not repeat in columns"
            )

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    @property
    def num_columns(self) -> int:
        """Attribute columns, excluding the key."""
        return len(self.columns)

    @property
    def row_bytes(self) -> int:
        """Bytes per row including the key (int64 everywhere)."""
        return 8 * (self.num_columns + 1)

    def column_index(self, name: str) -> int:
        for i, col in enumerate(self.columns):
            if col.name == name:
                return i
        raise StorageError(
            f"table {self.table_name!r} has no column {name!r}"
        )


def make_schema(table_name: str, key_column: str, *column_names: str) -> Schema:
    """Convenience constructor from bare column names."""
    return Schema(
        table_name=table_name,
        key_column=key_column,
        columns=tuple(ColumnDef(n) for n in column_names),
    )

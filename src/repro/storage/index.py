"""Hash indexes: primary (unique key -> row slot) and secondary
(non-unique key -> row slots).

The paper indexes every table with primary and secondary hash tables and
pre-resolves range-query keys (hash indexes cannot scan).  The secondary
index here supports exactly that access path: equality lookup returning
the matching row slots in insertion order, which is deterministic.
"""

from __future__ import annotations

from repro.errors import DuplicateKey, KeyNotFound


class PrimaryIndex:
    """Unique int key -> row slot."""

    def __init__(self) -> None:
        self._map: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._map)

    def __contains__(self, key: int) -> bool:
        return key in self._map

    def insert(self, key: int, row: int) -> None:
        if key in self._map:
            raise DuplicateKey(f"primary key {key} already present")
        self._map[key] = row

    def bulk_insert(self, keys, rows) -> None:
        """Register many (key, row) pairs at once; the caller guarantees
        the keys are new and distinct (the batched write-back dedups
        before claiming slots)."""
        self._map.update(zip(keys, rows))

    def lookup(self, key: int) -> int:
        try:
            return self._map[key]
        except KeyError:
            raise KeyNotFound(f"primary key {key} not found") from None

    def get(self, key: int) -> int | None:
        return self._map.get(key)

    def keys(self):
        return self._map.keys()

    def copy(self) -> "PrimaryIndex":
        clone = PrimaryIndex()
        clone._map = dict(self._map)
        return clone


class SecondaryIndex:
    """Non-unique int key -> row slots, in deterministic insert order."""

    def __init__(self, name: str):
        self.name = name
        self._map: dict[int, list[int]] = {}

    def __len__(self) -> int:
        return len(self._map)

    def insert(self, key: int, row: int) -> None:
        self._map.setdefault(key, []).append(row)

    def lookup(self, key: int) -> list[int]:
        """All row slots for ``key`` (empty list if none)."""
        return list(self._map.get(key, ()))

    def last(self, key: int) -> int:
        """The most recently inserted row for ``key`` (TPC-C
        OrderStatus-style 'latest order' lookups)."""
        rows = self._map.get(key)
        if not rows:
            raise KeyNotFound(f"secondary index {self.name!r}: key {key} not found")
        return rows[-1]

    def copy(self) -> "SecondaryIndex":
        clone = SecondaryIndex(self.name)
        clone._map = {k: list(v) for k, v in self._map.items()}
        return clone

"""A B-tree ordered index.

The paper supports TPC-C's range-style transactions only through
pre-resolved keys, because its tables are hash-indexed; it names B-tree
integration as future work ("LTPG can be readily extended to support
range queries, by integrating indexing, such as B-trees").  This module
provides that extension: a textbook in-memory B-tree mapping int64 keys
to row slots, with ordered range scans.

The implementation is a real B-tree (node splits, bounded fan-out),
not a sorted list: the structure matters for the simulated cost model
(index probes cost O(height) node reads) and is property-tested against
a sorted-dict oracle.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import DuplicateKey, KeyNotFound, StorageError

#: Maximum keys per node (fan-out - 1); small enough to exercise splits
#: in tests, large enough to keep trees shallow.
DEFAULT_ORDER = 32


@dataclass
class _Node:
    keys: list[int] = field(default_factory=list)
    values: list[int] = field(default_factory=list)  # leaves only
    children: list["_Node"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children


class BTreeIndex:
    """Unique int64 key -> row slot, with ordered iteration."""

    def __init__(self, order: int = DEFAULT_ORDER):
        if order < 3:
            raise StorageError("B-tree order must be at least 3")
        self._order = order
        self._root = _Node()
        self._size = 0
        self._height = 1

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Tree height in node levels (cost-model input: an index probe
        reads this many nodes)."""
        return self._height

    # -- mutation ------------------------------------------------------------
    def insert(self, key: int, value: int) -> None:
        key = int(key)
        root = self._root
        if len(root.keys) >= self._order:
            new_root = _Node(children=[root])
            self._split_child(new_root, 0)
            self._root = new_root
            self._height += 1
        self._insert_nonfull(self._root, key, int(value))
        self._size += 1

    def _split_child(self, parent: _Node, index: int) -> None:
        child = parent.children[index]
        mid = len(child.keys) // 2
        right = _Node()
        if child.is_leaf:
            # Leaf split: right keeps [mid:], separator = right's first
            # key (B+-style, so every key stays in a leaf).
            right.keys = child.keys[mid:]
            right.values = child.values[mid:]
            child.keys = child.keys[:mid]
            child.values = child.values[:mid]
            separator = right.keys[0]
        else:
            separator = child.keys[mid]
            right.keys = child.keys[mid + 1 :]
            right.children = child.children[mid + 1 :]
            child.keys = child.keys[:mid]
            child.children = child.children[: mid + 1]
        parent.keys.insert(index, separator)
        parent.children.insert(index + 1, right)

    def _insert_nonfull(self, node: _Node, key: int, value: int) -> None:
        while not node.is_leaf:
            index = bisect.bisect_right(node.keys, key)
            child = node.children[index]
            if len(child.keys) >= self._order:
                self._split_child(node, index)
                if key >= node.keys[index]:
                    index += 1
                child = node.children[index]
            node = child
        pos = bisect.bisect_left(node.keys, key)
        if pos < len(node.keys) and node.keys[pos] == key:
            raise DuplicateKey(f"key {key} already in B-tree")
        node.keys.insert(pos, key)
        node.values.insert(pos, value)

    # -- queries ------------------------------------------------------------
    def lookup(self, key: int) -> int:
        key = int(key)
        node = self._root
        while not node.is_leaf:
            node = node.children[bisect.bisect_right(node.keys, key)]
        pos = bisect.bisect_left(node.keys, key)
        if pos < len(node.keys) and node.keys[pos] == key:
            return node.values[pos]
        raise KeyNotFound(f"key {key} not found in B-tree")

    def get(self, key: int) -> int | None:
        try:
            return self.lookup(key)
        except KeyNotFound:
            return None

    def __contains__(self, key: int) -> bool:
        return self.get(key) is not None

    def range(self, lo: int, hi: int) -> Iterator[tuple[int, int]]:
        """(key, value) pairs with lo <= key <= hi, in key order."""
        if lo > hi:
            return
        yield from self._range_node(self._root, int(lo), int(hi))

    def _range_node(self, node: _Node, lo: int, hi: int) -> Iterator[tuple[int, int]]:
        if node.is_leaf:
            start = bisect.bisect_left(node.keys, lo)
            for pos in range(start, len(node.keys)):
                if node.keys[pos] > hi:
                    return
                yield node.keys[pos], node.values[pos]
            return
        index = bisect.bisect_right(node.keys, lo)
        for pos in range(index, len(node.children)):
            yield from self._range_node(node.children[pos], lo, hi)
            if pos < len(node.keys) and node.keys[pos] > hi:
                return

    def count_range(self, lo: int, hi: int) -> int:
        return sum(1 for _ in self.range(lo, hi))

    def items(self) -> Iterator[tuple[int, int]]:
        yield from self.range(-(2**62), 2**62)

    def min_key(self) -> int:
        node = self._root
        if not node.keys and node.is_leaf:
            raise KeyNotFound("B-tree is empty")
        while not node.is_leaf:
            node = node.children[0]
        return node.keys[0]

    def max_key(self) -> int:
        node = self._root
        if not node.keys and node.is_leaf:
            raise KeyNotFound("B-tree is empty")
        while not node.is_leaf:
            node = node.children[-1]
        return node.keys[-1]

    def copy(self) -> "BTreeIndex":
        clone = BTreeIndex(self._order)
        for key, value in self.items():
            clone.insert(key, value)
        return clone

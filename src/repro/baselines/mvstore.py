"""A per-batch multi-version store: BOHM's bookkeeping substrate.

BOHM's first phase inserts, for every write in the batch, a placeholder
version tagged with the writer's TID; its second phase resolves every
read to the newest version with TID strictly below the reader's (falling
through to the pre-batch "base" version).  This module implements that
structure for real — the BOHM engine uses it both to validate version
visibility and to extract the chain statistics that drive its cost.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.errors import TransactionError

#: Sentinel TID of the pre-batch base version.
BASE_TID = -1


@dataclass
class VersionChain:
    """Versions of one item, ordered by TID."""

    tids: list[int] = field(default_factory=list)
    values: dict[int, int | None] = field(default_factory=dict)

    def insert_placeholder(self, tid: int) -> None:
        pos = bisect.bisect_left(self.tids, tid)
        if pos < len(self.tids) and self.tids[pos] == tid:
            return  # one version per (item, txn)
        self.tids.insert(pos, tid)
        self.values[tid] = None

    def fill(self, tid: int, value: int) -> None:
        if tid not in self.values:
            raise TransactionError(f"no placeholder for tid {tid}")
        self.values[tid] = value

    def visible_tid(self, reader_tid: int) -> int:
        """TID of the version a reader sees (BASE_TID if none)."""
        pos = bisect.bisect_left(self.tids, reader_tid)
        if pos == 0:
            return BASE_TID
        return self.tids[pos - 1]

    def read(self, reader_tid: int) -> tuple[int, int | None]:
        """(version tid, value) visible to the reader; value is None for
        an unfilled placeholder (the reader must wait) or for BASE_TID
        (read the base table)."""
        tid = self.visible_tid(reader_tid)
        if tid == BASE_TID:
            return BASE_TID, None
        return tid, self.values[tid]

    def __len__(self) -> int:
        return len(self.tids)


class MultiVersionStore:
    """Item -> version chain, for one batch."""

    def __init__(self) -> None:
        self._chains: dict[tuple, VersionChain] = {}
        self.placeholder_count = 0

    def chain(self, item: tuple) -> VersionChain:
        c = self._chains.get(item)
        if c is None:
            c = VersionChain()
            self._chains[item] = c
        return c

    def insert_placeholder(self, item: tuple, tid: int) -> None:
        before = len(self.chain(item))
        self.chain(item).insert_placeholder(tid)
        if len(self.chain(item)) > before:
            self.placeholder_count += 1

    def visible_tid(self, item: tuple, reader_tid: int) -> int:
        c = self._chains.get(item)
        if c is None:
            return BASE_TID
        return c.visible_tid(reader_tid)

    def max_chain(self) -> int:
        if not self._chains:
            return 0
        return max(len(c) for c in self._chains.values())

    def total_versions(self) -> int:
        return sum(len(c) for c in self._chains.values())

    def num_items(self) -> int:
        return len(self._chains)

"""Calvin (Thomson et al., SIGMOD 2012): deterministic locking.

A single-threaded lock manager grants read/write locks in TID order
from pre-declared read/write-sets; worker threads execute transactions
once fully granted.  Functionally this equals serial TID-order
execution (which the shared helper performs); the *cost* comes from a
genuine schedule simulation:

* the lock manager is a serial bottleneck — every lock request costs
  ``grant_ns`` on one thread;
* a transaction starts when (a) the lock manager reaches it, (b) a
  worker core frees up, and (c) every item it writes has been released
  by earlier readers/writers and every item it reads by earlier writers;
* the batch latency is the makespan of that schedule.

Hot items therefore serialize whole chains of transactions, which is
why Calvin's TPC-C numbers collapse under contention in Table II.
"""

from __future__ import annotations

import heapq

from repro.baselines.base import BaselineEngine
from repro.core.stats import BatchStats
from repro.txn.operations import OpKind
from repro.txn.transaction import Transaction


def deterministic_order(transactions: list[Transaction]) -> list[Transaction]:
    """Calvin's agreed-upon total order: ascending TID (stable, so
    equal TIDs keep their admission order).  The sharded engine reuses
    this as its cross-shard sequencer — multi-home transactions commit
    in exactly the order Calvin's lock manager would grant them."""
    return sorted(transactions, key=lambda t: t.tid)


class CalvinEngine(BaselineEngine):
    """Deterministic lock-ordered execution."""

    name = "calvin"

    #: single-threaded lock-manager cost per lock request
    grant_ns: float = 155.0
    #: per-operation execution cost on a worker
    exec_op_ns: float = 420.0
    #: reconnaissance cost per op (Calvin needs read/write-sets up front)
    recon_op_ns: float = 90.0

    def run_batch(self, transactions: list[Transaction]) -> BatchStats:
        stats = self._new_stats(len(transactions))
        self._execute_serial(transactions, stats)

        # --- schedule simulation ---------------------------------------
        cores = [0.0] * self.cpu.num_cores
        heapq.heapify(cores)
        write_release: dict[tuple, float] = {}
        read_release: dict[tuple, float] = {}
        grant_clock = 0.0
        makespan = 0.0
        total_ops = 0
        for txn in deterministic_order(transactions):
            ops = txn.ops
            total_ops += len(ops)
            lock_items_r = set()
            lock_items_w = set()
            for op in ops:
                if op.kind == OpKind.INSERT:
                    continue
                if op.kind == OpKind.READ:
                    lock_items_r.add(op.item())
                else:
                    lock_items_w.add(op.item())
            lock_items_r -= lock_items_w
            grant_clock += (len(lock_items_r) + len(lock_items_w)) * self.grant_ns
            ready = grant_clock
            for item in lock_items_w:
                ready = max(
                    ready,
                    write_release.get(item, 0.0),
                    read_release.get(item, 0.0),
                )
            for item in lock_items_r:
                ready = max(ready, write_release.get(item, 0.0))
            core_free = heapq.heappop(cores)
            start = max(ready, core_free)
            duration = len(ops) * self.exec_op_ns + self.cpu.txn_overhead_ns
            end = start + duration
            heapq.heappush(cores, end)
            for item in lock_items_w:
                write_release[item] = end
            for item in lock_items_r:
                read_release[item] = max(read_release.get(item, 0.0), end)
            makespan = max(makespan, end)

        recon_ns = total_ops * self.recon_op_ns / max(1, self.cpu.num_cores)
        stats.latency_ns = recon_ns + makespan
        return stats

"""Aria (Lu et al., VLDB 2020): deterministic OCC on a multicore CPU.

Implements the actual batch protocol — snapshot execution with local
write-sets, per-item read/write reservations, the WAW/RAW/WAR commit
rule with deterministic reordering — at *row* granularity and without
any of LTPG's GPU-oriented optimizations (no split flags, no delayed
updates, no warp anything).  Aborted transactions retry in the next
batch via the shared driver.

Cost model: two barrier-separated phases on ``cores`` workers; each
operation costs an access plus a reservation CAS; commit applies the
write-set.  Aria's published sweet spot is moderate batches on ~dozens
of cores; those constants live on the class for calibration.
"""

from __future__ import annotations

from repro.baselines.base import BaselineEngine, per_core_ns
from repro.core.stats import BatchStats
from repro.errors import KeyNotFound, TransactionAborted
from repro.txn.context import BufferedContext, apply_local_sets
from repro.txn.operations import OpKind
from repro.txn.transaction import Transaction, TxnStatus


class AriaEngine(BaselineEngine):
    """Deterministic OCC with reordering (the paper's closest relative)."""

    name = "aria"

    #: reservation table CAS cost (ns per op)
    reservation_ns: float = 110.0
    #: per-phase barrier cost across the worker pool (ns)
    barrier_ns: float = 14_000.0
    #: per-operation execution cost (ns); higher than raw op_ns because
    #: Aria interprets generic transactions with snapshot indirection
    exec_op_ns: float = 420.0
    #: whether the deterministic reordering rule is enabled
    reorder: bool = True

    def run_batch(self, transactions: list[Transaction]) -> BatchStats:
        stats = self._new_stats(len(transactions))
        ordered = sorted(transactions, key=lambda t: t.tid)

        # Phase 1: snapshot execution + reservations.
        contexts: dict[int, BufferedContext] = {}
        min_writer: dict[tuple, int] = {}
        min_reader: dict[tuple, int] = {}
        total_ops = 0
        for txn in ordered:
            txn.reset_for_execution()
            stats.total_by_proc[txn.procedure_name] += 1
            ctx = BufferedContext(self.database)
            proc = self.procedures.get(txn.procedure_name)
            try:
                proc(ctx, *txn.params)
            except (TransactionAborted, KeyNotFound):
                txn.status = TxnStatus.LOGIC_ABORTED
                txn.ops = ctx.ops
                stats.logic_aborted += 1
                stats.abort_reasons["logic"] += 1
                total_ops += len(ctx.ops)
                continue
            txn.ops = ctx.ops
            contexts[txn.tid] = ctx
            total_ops += len(ctx.ops)
            for op in ctx.ops:
                if op.kind == OpKind.INSERT:
                    item = (op.table_id, "insert", op.key)
                    prev = min_writer.get(item)
                    if prev is None or txn.tid < prev:
                        min_writer[item] = txn.tid
                    continue
                item = op.item()
                if op.kind != OpKind.READ:  # WRITE and ADD reserve writes
                    prev = min_writer.get(item)
                    if prev is None or txn.tid < prev:
                        min_writer[item] = txn.tid
                if op.kind != OpKind.WRITE:  # READ, and ADD's read half
                    prev = min_reader.get(item)
                    if prev is None or txn.tid < prev:
                        min_reader[item] = txn.tid

        # Phase 2: commit rule + write-back.
        committed_cells = 0
        for txn in ordered:
            ctx = contexts.get(txn.tid)
            if ctx is None:
                continue
            waw = raw = war = False
            for op in ctx.ops:
                if op.kind == OpKind.INSERT:
                    if min_writer[(op.table_id, "insert", op.key)] < txn.tid:
                        waw = True
                    continue
                item = op.item()
                if op.kind != OpKind.READ:
                    if min_writer.get(item, txn.tid) < txn.tid:
                        waw = True
                    if min_reader.get(item, txn.tid) < txn.tid:
                        war = True
                if op.kind != OpKind.WRITE:
                    if min_writer.get(item, txn.tid) < txn.tid:
                        raw = True
            if self.reorder:
                commit = not waw and (not raw or not war)
            else:
                commit = not waw and not raw
            if commit:
                apply_local_sets(self.database, ctx.local)
                committed_cells += len(ctx.local.writes) + len(ctx.local.adds)
                txn.status = TxnStatus.COMMITTED
                stats.committed += 1
                stats.committed_by_proc[txn.procedure_name] += 1
            else:
                txn.status = TxnStatus.ABORTED
                reasons = [
                    n for n, hit in (("waw", waw), ("raw", raw), ("war", war)) if hit
                ]
                txn.abort_reason = "+".join(reasons)
                stats.aborted += 1
                stats.abort_reasons[txn.abort_reason] += 1

        # Cost: execute phase + commit phase, each barrier-terminated.
        work_ns = (
            total_ops * (self.exec_op_ns + 2 * self.reservation_ns)
            + committed_cells * self.exec_op_ns
            + len(transactions) * self.cpu.txn_overhead_ns
        )
        stats.latency_ns = per_core_ns(work_ns, self.cpu.num_cores) + 2 * self.barrier_ns
        return stats

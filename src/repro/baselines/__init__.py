"""The eight comparison systems of the paper's Table II.

CPU systems (30-core cost model): Aria, Calvin, BOHM, PWV, DBx1000
(TicToc), Bamboo.  GPU systems (device cost model): GPUTx, GaccO.

``make_engine(name, db, registry)`` builds any of them by table name.
"""

from __future__ import annotations

from repro.baselines.aria import AriaEngine
from repro.baselines.bamboo import BambooEngine
from repro.baselines.base import BaselineEngine, OpProfile
from repro.baselines.bohm import BohmEngine
from repro.baselines.calvin import CalvinEngine
from repro.baselines.dbx1000 import Dbx1000Engine
from repro.baselines.gacco import GaccoEngine
from repro.baselines.gputx import GpuTxEngine
from repro.baselines.mvstore import MultiVersionStore, VersionChain
from repro.baselines.pwv import PwvEngine
from repro.errors import BenchmarkError
from repro.storage.database import Database
from repro.txn.procedures import ProcedureRegistry

#: All baseline engine classes by their table name.
BASELINES: dict[str, type[BaselineEngine]] = {
    AriaEngine.name: AriaEngine,
    CalvinEngine.name: CalvinEngine,
    BohmEngine.name: BohmEngine,
    PwvEngine.name: PwvEngine,
    Dbx1000Engine.name: Dbx1000Engine,
    BambooEngine.name: BambooEngine,
    GpuTxEngine.name: GpuTxEngine,
    GaccoEngine.name: GaccoEngine,
}


def make_engine(
    name: str, database: Database, procedures: ProcedureRegistry
) -> BaselineEngine:
    """Instantiate a baseline engine by name."""
    try:
        cls = BASELINES[name]
    except KeyError:
        raise BenchmarkError(
            f"unknown baseline {name!r}; choose from {sorted(BASELINES)}"
        ) from None
    return cls(database, procedures)


__all__ = [
    "AriaEngine",
    "BambooEngine",
    "BaselineEngine",
    "OpProfile",
    "BohmEngine",
    "CalvinEngine",
    "Dbx1000Engine",
    "GaccoEngine",
    "GpuTxEngine",
    "PwvEngine",
    "MultiVersionStore",
    "VersionChain",
    "BASELINES",
    "make_engine",
]

"""BOHM (Faleiro & Abadi, VLDB 2015): deterministic MVCC.

Phase 1 (concurrency control): a *partitioned* set of CC threads insert
placeholder versions for every write-set entry, hash-partitioned by
item.  Phase 2 (execution): workers run transactions whose reads
resolve to the newest version below their TID, blocking on unfilled
placeholders — a dataflow whose critical path is the longest
producer/consumer version chain.

The engine builds the version chains for real (see
:mod:`repro.baselines.mvstore`), checks read visibility, and derives
cost from the measured chain statistics.  BOHM commits every
transaction.  Its published single-machine throughput on contended
TPC-C is very low (the paper's Table II: 0.01-0.12 M TPS) — dominated
by its serial batch intake and version-layer maintenance, modeled by
``intake_ns`` per transaction on one thread.
"""

from __future__ import annotations

from repro.baselines.base import BaselineEngine, per_core_ns
from repro.baselines.mvstore import MultiVersionStore
from repro.core.stats import BatchStats
from repro.txn.operations import OpKind
from repro.txn.transaction import Transaction


class BohmEngine(BaselineEngine):
    """Deterministic multi-version concurrency control."""

    name = "bohm"

    #: serial batch-intake / TID-assignment cost per transaction (the
    #: dominant term behind BOHM's published 0.01-0.12 M TPS ceiling)
    intake_ns: float = 42_000.0
    #: version placeholder insertion (phase 1, partitioned)
    version_ns: float = 900.0
    #: per-version-hop cost when reads walk chains (phase 2)
    walk_ns: float = 150.0
    #: per-operation execution cost
    exec_op_ns: float = 260.0

    def run_batch(self, transactions: list[Transaction]) -> BatchStats:
        stats = self._new_stats(len(transactions))
        self._execute_serial(transactions, stats)

        # Phase 1: placeholder insertion, partitioned across CC threads.
        store = MultiVersionStore()
        partition_load = [0] * max(1, self.cpu.num_cores)
        for txn in transactions:
            for op in txn.ops:
                if op.kind in (OpKind.WRITE, OpKind.ADD):
                    item = op.item()
                    store.insert_placeholder(item, txn.tid)
                    partition_load[hash(item) % len(partition_load)] += 1
        phase1_ns = max(partition_load, default=0) * self.version_ns

        # Phase 2: execution with version-resolved reads.  The longest
        # chain is a serial dataflow (each version waits for the
        # previous writer); reads pay a chain walk.
        total_ops = sum(len(t.ops) for t in transactions)
        reads = sum(
            1 for t in transactions for op in t.ops if op.kind == OpKind.READ
        )
        walk_hops = 0
        for txn in transactions:
            for op in txn.ops:
                if op.kind == OpKind.READ:
                    # Validate + count the visibility resolution for real.
                    store.visible_tid(op.item(), txn.tid)
                    walk_hops += 1
        chain_ns = store.max_chain() * self.exec_op_ns
        phase2_ns = (
            per_core_ns(
                total_ops * self.exec_op_ns + walk_hops * self.walk_ns,
                self.cpu.num_cores,
            )
            + chain_ns
        )
        intake = len(transactions) * self.intake_ns
        stats.latency_ns = intake + phase1_ns + phase2_ns
        return stats

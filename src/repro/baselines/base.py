"""Shared machinery for the eight comparison systems of Table II.

Every baseline executes the *same* stored procedures over the *same*
storage layer as LTPG.  The deterministic CPU systems (Calvin, BOHM,
PWV) and the eventually-serializable multicore systems (DBx1000,
Bamboo) produce results equivalent to serial TID-order execution, so
their functional path is exactly that — execute buffered, apply, next —
while their *cost* comes from genuine protocol bookkeeping (lock
schedules, version chains, dependency ranks) driven by the observed
operation streams.  Aria and the GPU systems implement their actual
batch protocols.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.core.stats import BatchStats, RunStats
from repro.errors import KeyNotFound, TransactionAborted
from repro.gpusim.config import CpuConfig
from repro.storage.database import Database
from repro.txn.context import BufferedContext, apply_local_sets
from repro.txn.operations import OpKind, OpRecord
from repro.txn.procedures import ProcedureRegistry
from repro.txn.transaction import Transaction, TxnStatus, assign_tids


@dataclass
class OpProfile:
    """Aggregate operation statistics for one executed batch."""

    reads: int = 0
    writes: int = 0  # WRITEs plus ADDs (both install a value)
    inserts: int = 0
    #: conflict-relevant accesses per item: item -> [tid of writers...]
    writers_per_item: dict = field(default_factory=dict)
    readers_per_item: dict = field(default_factory=dict)

    @property
    def total_ops(self) -> int:
        return self.reads + self.writes + self.inserts

    def max_write_chain(self) -> int:
        """Longest same-item writer chain (the serialization bottleneck
        for lock-ordered and rank-ordered execution)."""
        if not self.writers_per_item:
            return 0
        return max(len(v) for v in self.writers_per_item.values())

    def contended_write_ops(self) -> int:
        """Write operations that share their item with another writer."""
        return sum(
            len(v) for v in self.writers_per_item.values() if len(v) > 1
        )

    def record(self, txn_tid: int, op: OpRecord) -> None:
        if op.kind == OpKind.READ:
            self.reads += 1
            readers = self.readers_per_item.setdefault(op.item(), [])
            if not readers or readers[-1] != txn_tid:  # one entry per txn
                readers.append(txn_tid)
        elif op.kind == OpKind.INSERT:
            self.inserts += 1
        else:
            self.writes += 1
            writers = self.writers_per_item.setdefault(op.item(), [])
            if not writers or writers[-1] != txn_tid:
                writers.append(txn_tid)


class BaselineEngine(abc.ABC):
    """A comparison system: same functional contract as LTPG."""

    #: short system name used in benchmark tables
    name: str = "baseline"

    def __init__(
        self,
        database: Database,
        procedures: ProcedureRegistry,
        cpu: CpuConfig | None = None,
    ):
        self.database = database
        self.procedures = procedures
        self.cpu = cpu or CpuConfig()
        self._batch_counter = 0
        self._next_tid = 0

    # -- functional helpers -----------------------------------------------
    def _execute_serial(
        self, transactions: list[Transaction], stats: BatchStats
    ) -> OpProfile:
        """Execute and apply in TID order (serial-equivalent outcome for
        systems that commit everything); fills per-proc stats and
        returns the op profile that drives the cost model."""
        profile = OpProfile()
        for txn in sorted(transactions, key=lambda t: t.tid):
            txn.reset_for_execution()
            stats.total_by_proc[txn.procedure_name] += 1
            ctx = BufferedContext(self.database)
            proc = self.procedures.get(txn.procedure_name)
            try:
                proc(ctx, *txn.params)
            except (TransactionAborted, KeyNotFound):
                txn.status = TxnStatus.LOGIC_ABORTED
                txn.ops = ctx.ops
                stats.logic_aborted += 1
                stats.abort_reasons["logic"] += 1
                continue
            txn.ops = ctx.ops
            apply_local_sets(self.database, ctx.local)
            txn.status = TxnStatus.COMMITTED
            stats.committed += 1
            stats.committed_by_proc[txn.procedure_name] += 1
            for op in txn.ops:
                profile.record(txn.tid, op)
        return profile

    # -- protocol ------------------------------------------------------------
    @abc.abstractmethod
    def run_batch(self, transactions: list[Transaction]) -> BatchStats:
        """Process one batch; returns its stats.  Implementations must
        set ``latency_ns`` from their protocol cost model."""

    def _new_stats(self, n: int) -> BatchStats:
        stats = BatchStats(
            batch_index=self._batch_counter, num_txns=n, committed=0, aborted=0
        )
        self._batch_counter += 1
        return stats

    # -- driver ------------------------------------------------------------
    def run_transactions(
        self,
        transactions: list[Transaction],
        batch_size: int,
        max_batches: int = 1000,
    ) -> RunStats:
        """Admit, batch, retry aborts, aggregate — mirroring
        :meth:`repro.core.engine.LTPGEngine.run_transactions`."""
        self._next_tid = assign_tids(transactions, self._next_tid)
        run = RunStats()
        pending = list(transactions)
        batches = 0
        while pending and batches < max_batches:
            batch = pending[:batch_size]
            pending = pending[batch_size:]
            stats = self.run_batch(batch)
            run.add(stats)
            retries = [t for t in batch if t.status is TxnStatus.ABORTED]
            retries.sort(key=lambda t: t.tid)
            pending = retries + pending
            batches += 1
        return run


def per_core_ns(total_work_ns: float, cores: int) -> float:
    """Embarrassingly-parallel work spread over the core pool."""
    return total_work_ns / max(1, cores)

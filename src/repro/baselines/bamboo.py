"""Bamboo (Guo et al., SIGMOD 2021): 2PL with early lock release.

Bamboo retires a lock as soon as the holding transaction has finished
*using* the tuple (violating strict 2PL, repairing via cascading-abort
tracking), so a hot tuple's lock chain pipelines: the next writer waits
only for the previous holder's *access*, not its whole transaction.
That makes Bamboo exceptionally fast on hotspot workloads — the paper's
Table II shows it beating every other CPU system on 100% Payment.

Cost model: parallel per-op work plus a hot-chain term whose step is a
single access (``pipe_ns``), plus a small cascading-abort tax computed
from the real writer multiplicities.
"""

from __future__ import annotations

from repro.baselines.base import BaselineEngine, per_core_ns
from repro.core.stats import BatchStats
from repro.txn.transaction import Transaction


class BambooEngine(BaselineEngine):
    """2PL with early lock release (hotspot-pipelined)."""

    name = "bamboo"

    #: per-access cost incl. lock acquire/retire
    exec_op_ns: float = 175.0
    #: pipelined hot-chain step: one access window, not one transaction
    pipe_ns: float = 95.0
    #: probability a dependent transaction cascades into an abort
    cascade_rate: float = 0.03

    def run_batch(self, transactions: list[Transaction]) -> BatchStats:
        stats = self._new_stats(len(transactions))
        profile = self._execute_serial(transactions, stats)

        n = max(1, len(transactions))
        avg_ops = profile.total_ops / n
        cascaded_ops = profile.contended_write_ops() * self.cascade_rate * avg_ops
        work_ns = (
            (profile.total_ops + cascaded_ops) * self.exec_op_ns
            + n * self.cpu.txn_overhead_ns
        )
        hot_chain = profile.max_write_chain()
        stats.latency_ns = (
            per_core_ns(work_ns, self.cpu.num_cores) + hot_chain * self.pipe_ns
        )
        return stats

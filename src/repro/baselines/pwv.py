"""PWV (Faleiro, Abadi & Hellerstein, VLDB 2017): early write
visibility over decomposed transaction fragments.

Each transaction splits into *fragments* — one per table it touches —
and a dependency graph connects fragments that conflict on an item,
ordered by TID.  Because a fragment's writes become visible as soon as
the fragment (not the whole transaction) finishes, the serial chain on
a hot item advances one *fragment* at a time rather than one
transaction at a time, which is why PWV beats Calvin under contention
(Table II) while remaining deterministic and abort-free.

The engine builds the fragment dependency graph for real and derives
the makespan from its critical path.
"""

from __future__ import annotations

from collections import defaultdict

from repro.baselines.base import BaselineEngine, per_core_ns
from repro.core.stats import BatchStats
from repro.txn.operations import OpKind
from repro.txn.transaction import Transaction


class PwvEngine(BaselineEngine):
    """Early write visibility with fragment-level dependencies."""

    name = "pwv"

    #: per-operation execution cost inside a fragment
    exec_op_ns: float = 680.0
    #: dependency-graph construction per fragment (serial-ish planner)
    graph_ns: float = 260.0
    #: fixed fragment dispatch overhead (the hot-chain step size)
    fragment_ns: float = 550.0

    def run_batch(self, transactions: list[Transaction]) -> BatchStats:
        stats = self._new_stats(len(transactions))
        self._execute_serial(transactions, stats)

        # Build fragments: (txn, table) groups of ops.
        fragments: dict[tuple[int, int], list] = defaultdict(list)
        for txn in transactions:
            for op in txn.ops:
                fragments[(txn.tid, op.table_id)].append(op)

        # Critical path: for every item, writer fragments form a chain
        # (TID order); each link costs one fragment dispatch plus its
        # ops.  The longest item chain bounds the makespan under early
        # write visibility.
        writers_per_item: dict[tuple, int] = defaultdict(int)
        for txn in transactions:
            seen: set[tuple] = set()
            for op in txn.ops:
                if op.kind in (OpKind.WRITE, OpKind.ADD):
                    item = op.item()
                    if item not in seen:
                        writers_per_item[item] += 1
                        seen.add(item)
        max_chain = max(writers_per_item.values(), default=0)

        total_ops = sum(len(t.ops) for t in transactions)
        graph_build = len(fragments) * self.graph_ns / max(1, self.cpu.num_cores)
        parallel_work = per_core_ns(
            total_ops * self.exec_op_ns
            + len(transactions) * self.cpu.txn_overhead_ns,
            self.cpu.num_cores,
        )
        chain_ns = max_chain * self.fragment_ns
        stats.latency_ns = graph_build + max(parallel_work, chain_ns)
        return stats

"""DBx1000 with TicToc (Yu et al., SIGMOD 2016) — the multicore OCC
baseline of Table II.

TicToc keeps a (write-ts, read-ts) pair per tuple and computes each
transaction's commit timestamp from the tuples it touched, which lets
many would-be conflicts commit by *timestamp reordering*; genuinely
conflicting validations abort and retry.

The functional outcome is serial TID-order execution (TicToc is
serializable; any order is valid for the benchmark's purposes).  The
*cost* comes from a deterministic interleaving simulation: transactions
run ``cores`` at a time, a transaction validates against the writes of
the transactions concurrent with it (the sliding window), TicToc's
read-timestamp extension rescues read-write overlaps whose intervals
can still be reconciled, and validation failures re-execute — their
wasted work is charged, including repeat offenders on hot tuples.
"""

from __future__ import annotations

from collections import deque

from repro.baselines.base import BaselineEngine, per_core_ns
from repro.core.stats import BatchStats
from repro.txn.operations import OpKind
from repro.txn.transaction import Transaction


class Dbx1000Engine(BaselineEngine):
    """Multicore OCC with TicToc timestamps."""

    name = "dbx1000"

    #: per-access cost incl. timestamp read/extension
    exec_op_ns: float = 225.0
    #: validation cost per transaction attempt
    validate_ns: float = 900.0
    #: serialized latch window on the single hottest tuple, per queued op
    hot_latch_ns: float = 40.0
    #: retries charged before the scheduler backs a transaction off the
    #: hot path (bounded wasted work per transaction)
    max_retries: int = 3

    def _simulate_interleaving(
        self, transactions: list[Transaction]
    ) -> tuple[int, int]:
        """Deterministic window simulation.

        Returns ``(retried_attempts, wasted_ops)``: transactions flow
        through a window of ``cores`` concurrent peers; a transaction
        whose read-or-write set intersects a *write* of a window peer
        aborts and re-enters, unless TicToc's timestamp extension
        rescues it (pure read-vs-write overlaps where this reader is
        the window's first toucher — a deterministic stand-in for "the
        read timestamp could be extended").
        """
        cores = max(1, self.cpu.num_cores)
        ordered = sorted(transactions, key=lambda t: t.tid)
        queue: deque[tuple[Transaction, int]] = deque(
            (t, 0) for t in ordered if t.ops
        )
        window: deque[tuple[int, frozenset, frozenset]] = deque()
        retried = 0
        wasted_ops = 0
        while queue:
            txn, attempt = queue.popleft()
            reads = frozenset(
                op.item() for op in txn.ops if op.kind == OpKind.READ
            )
            writes = frozenset(
                op.item()
                for op in txn.ops
                if op.kind in (OpKind.WRITE, OpKind.ADD)
            )
            conflict = False
            rescued = False
            for peer_tid, _, peer_writes in window:
                if writes & peer_writes:
                    conflict = True
                    break
                overlap = reads & peer_writes
                if overlap:
                    # TicToc extension: the later transaction can often
                    # commit logically before the writer; model the
                    # rescue for the first read-overlap only.
                    if not rescued and txn.tid < peer_tid + len(window):
                        rescued = True
                    else:
                        conflict = True
                        break
            if conflict and attempt < self.max_retries:
                retried += 1
                wasted_ops += len(txn.ops)
                queue.append((txn, attempt + 1))
            # window advances regardless: this attempt occupied a core
            window.append((txn.tid, reads, writes))
            if len(window) > cores:
                window.popleft()
        return retried, wasted_ops

    def run_batch(self, transactions: list[Transaction]) -> BatchStats:
        stats = self._new_stats(len(transactions))
        profile = self._execute_serial(transactions, stats)

        n = max(1, len(transactions))
        retried, wasted_ops = self._simulate_interleaving(transactions)
        work_ns = (
            (profile.total_ops + wasted_ops) * self.exec_op_ns
            + (n + retried) * (self.validate_ns + self.cpu.txn_overhead_ns)
        )
        hot_chain = profile.max_write_chain()
        stats.latency_ns = (
            per_core_ns(work_ns, self.cpu.num_cores)
            + hot_chain * self.hot_latch_ns
        )
        return stats

"""GPUTx (He & Yu, VLDB 2011): the first GPU OLTP engine.

GPUTx runs pre-declared stored procedures as a *bulk* on the GPU,
computing a T-dependency graph over the batch and assigning each
transaction a **rank** — its depth in the conflict order.  Transactions
of equal rank execute in the same kernel pass; the batch needs as many
passes as the deepest chain.  Under contention the deepest chain is the
hot item's writer count, so the pass count explodes and each pass pays
a full kernel launch — the reason GPUTx trails every modern system in
Table II.

The engine computes real ranks from the batch's operation streams and
charges: graph construction, one kernel launch per rank round, the
per-round work, and the host<->device transfers.
"""

from __future__ import annotations

from collections import defaultdict

from repro.baselines.base import BaselineEngine
from repro.core.stats import BatchStats
from repro.gpusim.config import DeviceConfig
from repro.gpusim.device import Device
from repro.storage.database import Database
from repro.txn.operations import OpKind
from repro.txn.procedures import ProcedureRegistry
from repro.txn.transaction import Transaction


class GpuTxEngine(BaselineEngine):
    """Rank-ordered bulk execution on the (simulated) GPU."""

    name = "gputx"

    #: T-dependency-graph construction per op.  Building the graph needs
    #: a global conflict join over the batch's access lists, which GPUTx
    #: runs as a mostly-serial scan — this term is NOT lane-divided and
    #: is what keeps GPUTx under 1 M TPS in Table II.
    graph_op_ns: float = 110.0
    #: per-op execution cost within a rank round (uncoalesced accesses)
    exec_op_ns: float = 2_400.0
    #: bytes per transaction shipped to the device
    txn_param_bytes: int = 64

    def __init__(
        self,
        database: Database,
        procedures: ProcedureRegistry,
        device: Device | None = None,
    ):
        super().__init__(database, procedures)
        self.device = device or Device()

    def run_batch(self, transactions: list[Transaction]) -> BatchStats:
        stats = self._new_stats(len(transactions))
        self._execute_serial(transactions, stats)
        cfg: DeviceConfig = self.device.config

        # Real rank assignment: a transaction's rank is one past the
        # highest rank among earlier transactions it conflicts with
        # (write-write or read-write on any shared item).
        last_writer_rank: dict[tuple, int] = defaultdict(lambda: -1)
        last_reader_rank: dict[tuple, int] = defaultdict(lambda: -1)
        rounds = 0
        ops_total = 0
        for txn in sorted(transactions, key=lambda t: t.tid):
            ops_total += len(txn.ops)
            rank = 0
            reads: set[tuple] = set()
            writes: set[tuple] = set()
            for op in txn.ops:
                if op.kind == OpKind.INSERT:
                    continue
                item = op.item()
                if op.kind == OpKind.READ:
                    reads.add(item)
                    rank = max(rank, last_writer_rank[item] + 1)
                else:
                    writes.add(item)
                    rank = max(
                        rank,
                        last_writer_rank[item] + 1,
                        last_reader_rank[item] + 1,
                    )
            for item in writes:
                last_writer_rank[item] = max(last_writer_rank[item], rank)
            for item in reads:
                last_reader_rank[item] = max(last_reader_rank[item], rank)
            rounds = max(rounds, rank + 1)

        lanes = max(1, min(cfg.total_lanes, max(1, len(transactions))))
        graph_ns = ops_total * self.graph_op_ns + cfg.kernel_launch_ns
        # Each rank round re-launches over the whole batch, masking out
        # transactions of other ranks (the bulk execution model has no
        # compaction), so every round pays a batch-wide scan.
        per_round_work = ops_total * self.exec_op_ns / lanes
        exec_ns = rounds * (cfg.kernel_launch_ns + per_round_work)
        transfer_ns = cfg.transfer_ns(
            len(transactions) * self.txn_param_bytes
        ) + cfg.transfer_ns(len(transactions) * 16)
        stats.transfer_ns = transfer_ns
        stats.latency_ns = graph_ns + exec_ns + transfer_ns
        stats.phase_ns = {"graph": graph_ns, "execute": exec_ns}
        return stats

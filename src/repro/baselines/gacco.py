"""GaccO (Boeschen & Binnig, SIGMOD 2022): the state-of-the-art
GPU-accelerated OLTP baseline.

GaccO pre-processes every batch on the GPU: it materializes an *access
table* of all (item, TID) pairs, sorts it by (item, TID), and derives
per-tuple conflict ranks that the execution kernel then obeys, making
the schedule deterministic without aborts.  Two published optimizations
are modeled faithfully because they decide Table II's shape:

* **exchange operations** — commutative updates (our ADD ops) on
  contended tuples are rewritten into atomics, so a 100% Payment batch
  runs at full parallelism (the paper's ~135 M TPS column);
* **intra-transaction parallelism** — independent ops of one
  transaction run on parallel lanes.

What GaccO cannot avoid: the preprocessing + sort per batch, rank-chain
serialization for *non-commutative* conflicting ops, and CPU<->GPU
secondary-copy synchronization (primary table copies live on the CPU),
which is why its per-batch latency and data-transmission costs exceed
LTPG's in Table IV.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.baselines.base import BaselineEngine
from repro.core.stats import BatchStats
from repro.gpusim.primitives import device_radix_sort
from repro.gpusim.config import DeviceConfig
from repro.gpusim.device import Device
from repro.storage.database import Database
from repro.txn.operations import OpKind
from repro.txn.procedures import ProcedureRegistry
from repro.txn.transaction import Transaction


class GaccoEngine(BaselineEngine):
    """Dependency-ordered deterministic execution with GPU preprocessing."""

    name = "gacco"

    #: access-table build cost per op (uncompacted scatter)
    access_op_ns: float = 800.0
    #: per-op execution cost
    exec_op_ns: float = 1_500.0
    #: serialization step for a non-commutative conflicting op
    chain_step_ns: float = 260.0
    #: atomic cost for an exchange-optimized commutative op
    exchange_ns: float = 30.0
    #: bytes per transaction shipped to the device, and per dirty row
    #: synchronized back to the CPU primary copy
    txn_param_bytes: int = 64
    dirty_row_bytes: int = 48

    def __init__(
        self,
        database: Database,
        procedures: ProcedureRegistry,
        device: Device | None = None,
    ):
        super().__init__(database, procedures)
        self.device = device or Device()

    def run_batch(self, transactions: list[Transaction]) -> BatchStats:
        stats = self._new_stats(len(transactions))
        self._execute_serial(transactions, stats)
        cfg: DeviceConfig = self.device.config

        ops_total = 0
        exchange_ops = 0
        noncommutative_writers: dict[tuple, int] = defaultdict(int)
        dirty_rows: set[tuple] = set()
        access_items: list[int] = []
        access_tids: list[int] = []
        for txn in transactions:
            ops_total += len(txn.ops)
            for op in txn.ops:
                access_items.append((op.table_id << 44) | (max(op.row, 0) << 4))
                access_tids.append(txn.tid)
                if op.kind == OpKind.ADD:
                    exchange_ops += 1
                    dirty_rows.add(op.item())
                elif op.kind == OpKind.WRITE:
                    noncommutative_writers[op.item()] += 1
                    dirty_rows.add(op.item())
                elif op.kind == OpKind.INSERT:
                    dirty_rows.add((op.table_id, "insert", op.key))

        lanes = max(1, min(cfg.total_lanes, max(1, len(transactions))))
        # Preprocessing: materialize the access table, then genuinely
        # radix-sort it by (item, TID) through the device primitive —
        # its bandwidth cost is the paper's T_gs term.
        with self.device.kernel(
            "gacco_preprocess", threads=max(1, ops_total)
        ) as ctx:
            ctx.add_instructions(ops_total * 2)
            ctx.add_global_writes(ops_total)
            if access_items:
                keys = np.asarray(access_items, dtype=np.int64) | (
                    np.asarray(access_tids, dtype=np.int64) & 0xF
                )
                device_radix_sort(keys, key_bits=60, ctx=ctx)
        preprocess_ns = (
            self.device.profiler.entries[-1].duration_ns
            + ops_total * self.access_op_ns / lanes
            + cfg.kernel_launch_ns
        )
        # Execution: parallel work + rank-chain serialization on
        # non-commutative hot items + exchange atomics.
        max_chain = max(noncommutative_writers.values(), default=0)
        exec_ns = (
            ops_total * self.exec_op_ns / lanes
            + max(max_chain - 1, 0) * self.chain_step_ns
            + exchange_ops * self.exchange_ns / lanes
            + cfg.kernel_launch_ns
        )
        # CPU<->GPU synchronization of secondary copies.
        transfer_ns = cfg.transfer_ns(
            len(transactions) * self.txn_param_bytes
        ) + cfg.transfer_ns(len(dirty_rows) * self.dirty_row_bytes)
        stats.transfer_ns = transfer_ns
        stats.latency_ns = preprocess_ns + exec_ns + transfer_ns
        stats.phase_ns = {
            "preprocess": preprocess_ns,
            "execute": exec_ns,
            "transfer": transfer_ns,
        }
        return stats

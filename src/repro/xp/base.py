"""The array-backend protocol: the ~30 primitives the hot path uses.

The batched executor's whole data path — twin emission over a
:class:`~repro.txn.batch_context.BatchedContext`, chunk finalize,
conflict-log registration, delayed-update merge, write-back scatter —
is pure vectorized int64 array code.  :class:`ArrayBackend` names the
primitives that code is allowed to call, so the same twins run on
NumPy (the pinned reference), CuPy or PyTorch (device-resident), or
the ``mockgpu`` contract checker, by passing a different ``xp``.

Conventions every backend must honor:

* **int64 discipline** — all data columns are int64; primitives must
  never silently upcast to float64 (exact equality across backends is
  the correctness contract; see ``mockgpu``'s upcast detector).
* **Stable sorts** — ``argsort(..., stable=True)`` and ``lexsort`` are
  stable; the batched context's byte-identity argument depends on it.
* **Explicit sync points** — ``from_host``/``to_host``/``item``/
  ``tolist`` are the only host<->device crossings.  On the NumPy
  backend they are identity (zero copies); on device backends they are
  the paper's per-batch parameter shipping (H2D) and read/write-set
  shipping (D2H), and they are where ``mockgpu`` counts transfers.
* **Scatter ordering** — ``scatter_add``/``scatter_min`` must apply
  *all* updates (``np.add.at`` semantics, not buffered fancy-index
  assignment).  The engine only ever feeds them commutative updates
  (sums, minima), so apply order across backends cannot change state.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass(frozen=True)
class BackendContract:
    """The machine-readable protocol surface of :class:`ArrayBackend`.

    One source of truth for *both* enforcement layers: ``mockgpu``
    builds its runtime interception (scalar-readback methods, kernel
    dispatch accounting) from this object, and the static kernellint
    pass (:mod:`repro.analysis.kernellint`) derives its allowed-call
    set from the very same object — so the static and dynamic checkers
    cannot drift apart.
    """

    #: The only sanctioned host<->device crossings.
    crossings: tuple[str, ...]
    #: Array methods whose no-axis form is a device reduce plus a
    #: one-word readback (sanctioned, but accounted as D2H traffic).
    scalar_readbacks: tuple[str, ...]
    #: Kernel primitives: every one is a device dispatch.
    kernels: tuple[str, ...]
    #: Scatters safe under any apply order (commutative updates only).
    commutative_scatters: tuple[str, ...]
    #: Assignment scatters: callers must guarantee WAW-disjoint indices.
    assign_scatters: tuple[str, ...]
    #: Non-kernel helpers backends expose (documentation/sync no-ops).
    auxiliary: tuple[str, ...]
    #: The dtype discipline of the hot path (results must never be
    #: floating; see mockgpu's upcast detector).
    dtype: str = "int64"

    def all_methods(self) -> frozenset[str]:
        """Every method name a disciplined call site may use on ``xp``."""
        return frozenset(self.crossings + self.kernels + self.auxiliary)


#: The pinned protocol surface (see the module docstring for the
#: conventions each group must honor).
CONTRACT = BackendContract(
    crossings=("from_host", "to_host", "item", "tolist"),
    scalar_readbacks=("min", "max", "sum", "any", "all"),
    kernels=(
        "asarray", "empty", "zeros", "ones", "full", "arange",
        "concatenate", "stack", "repeat", "broadcast_to", "where",
        "astype",
        "argsort", "lexsort", "sort", "unique", "searchsorted",
        "flatnonzero",
        "cumsum", "bincount",
        "scatter", "scatter_add", "scatter_min",
    ),
    commutative_scatters=("scatter_add", "scatter_min"),
    assign_scatters=("scatter",),
    auxiliary=(
        "kernel_phase", "synchronize", "device_info",
        "transfer_stats", "reset_transfers",
    ),
)


@dataclass
class TransferStats:
    """Host<->device traffic ledger for one backend instance.

    The NumPy backend leaves this at zero (there is no device); device
    backends and ``mockgpu`` account every crossing.  ``implicit_syncs``
    counts device-to-host round-trips that did *not* go through the
    explicit primitives — the contract violations ``mockgpu`` exists to
    catch (always zero on a disciplined hot path).
    """

    h2d_bytes: int = 0
    d2h_bytes: int = 0
    h2d_count: int = 0
    d2h_count: int = 0
    #: kernel-primitive invocations (the dispatch-queue depth proxy)
    dispatches: int = 0
    #: unrouted host round-trips (tolist/int/iter on a device array)
    implicit_syncs: int = 0
    #: (kind, detail) event log of dispatches and syncs, in issue order
    events: list[tuple[str, str]] = field(default_factory=list)

    @property
    def count(self) -> int:
        """Total transfer operations (both directions)."""
        return self.h2d_count + self.d2h_count

    def snapshot(self) -> dict[str, int]:
        return {
            "h2d_bytes": self.h2d_bytes,
            "d2h_bytes": self.d2h_bytes,
            "h2d_count": self.h2d_count,
            "d2h_count": self.d2h_count,
            "count": self.count,
            "dispatches": self.dispatches,
            "implicit_syncs": self.implicit_syncs,
        }


class ArrayBackend:
    """Base backend: delegates unknown attributes to the wrapped
    namespace (so ``xp.int64``, ``xp.iinfo`` etc. resolve) and declares
    the explicit protocol surface subclasses override.

    Subclasses set :attr:`name`, :attr:`module` (the wrapped array
    namespace) and :attr:`is_device` (whether arrays live off-host and
    crossings are real transfers).
    """

    name: str = "base"
    is_device: bool = False

    def __init__(self, module):
        self.module = module
        self.transfers = TransferStats()

    def __getattr__(self, attr):
        # Fallback for numpy-compatible members not in the protocol
        # (dtypes, iinfo, plain element-wise math).  Subclasses with
        # wrapping semantics (mockgpu) override this.
        return getattr(self.module, attr)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ArrayBackend {self.name!r}>"

    # -- transfer ledger ----------------------------------------------------
    def transfer_stats(self) -> TransferStats:
        return self.transfers

    def reset_transfers(self) -> None:
        self.transfers = TransferStats()

    # -- kernel-phase contract ---------------------------------------------
    @contextmanager
    def kernel_phase(self, name: str):
        """Mark a device-kernel region.  ``mockgpu`` forbids implicit
        host round-trips inside it; other backends treat it as a
        documentation no-op (CuPy/torch launches are already async)."""
        yield self

    def synchronize(self) -> None:
        """Block until queued device work completes (a
        ``cudaDeviceSynchronize``); no-op on host backends."""

    # -- host<->device crossings (identity on host backends) ----------------
    def from_host(self, arr):
        """Make a host array device-resident (H2D at a phase boundary)."""
        raise NotImplementedError

    def to_host(self, arr):
        """Materialize a device array on the host (D2H at a phase
        boundary); always returns a plain ``numpy.ndarray``."""
        raise NotImplementedError

    def item(self, x) -> int | float | bool:
        """One scalar off the device (a flag-word readback)."""
        raise NotImplementedError

    def tolist(self, arr) -> list:
        """Whole-array readback as a Python list (host-loop feed)."""
        raise NotImplementedError

    def device_info(self) -> dict[str, object]:
        """Identity block for bench metadata: backend name, library
        version, device description."""
        raise NotImplementedError

    def is_device_array(self, arr) -> bool:
        """Whether ``arr`` is one of this backend's device-resident
        arrays (False on host backends: there is no device side)."""
        return False

    # -- the protocol surface (documented here, bound per backend) ----------
    #: Creation: asarray, empty, zeros, ones, full, arange
    #: Combination: concatenate, stack, repeat, broadcast_to, where
    #: Sorting/search: argsort(stable=), lexsort, sort, unique,
    #:   searchsorted, flatnonzero
    #: Scans/reductions: cumsum, bincount, any, all, min, max, sum
    #: Scatter: scatter (assignment; caller guarantees disjoint
    #:   indices), scatter_add (np.add.at), scatter_min (np.minimum.at)
    #: Casting: astype

    def astype(self, arr, dtype, copy: bool = False):
        return arr.astype(dtype, copy=copy)

    def scatter(self, target, index, values) -> None:
        """``target[index] = values``.  Callers must guarantee disjoint
        indices (the engine's WAW rule does), so apply order across
        backends cannot change state."""
        raise NotImplementedError

    def scatter_add(self, target, index, values) -> None:
        raise NotImplementedError

    def scatter_min(self, target, index, values) -> None:
        raise NotImplementedError


__all__ = ["CONTRACT", "ArrayBackend", "BackendContract", "TransferStats"]

"""Device-resident table residency: the snapshot's authoritative copy
moves device-side (``LTPGConfig.device_resident``).

The baseline engine treats host memory as the authoritative snapshot
and round-trips every phase: the batched context uploads each touched
column per batch (H2D), and the write-back scatter ships every merged
column back (D2H + next-batch H2D).  At batch 2^14 that is hundreds of
megabytes per batch of pure table traffic — the transfer wall both
GPU-OLTP analyses in PAPERS.md identify as the dominant non-kernel
cost.

:class:`ResidencyManager` inverts the ownership: each pinned table's
columns are uploaded to the active backend **once** and stay
authoritative across batches.  Write-back and delayed updates become
device-side scatters into the cached columns (no round trip), and the
steady-state per-batch H2D drops to parameters plus op-proportional
shuttle traffic.

Coherence protocol (the dirty-epoch fence):

* :meth:`DeviceTableView.column` lazily uploads a column on first use
  and revalidates the cached host-array *identity* on every access —
  a table ``_grow`` (``np.resize``) or shm re-export swaps the host
  array out from under the cache, and the view heals and re-uploads.
* Device-side scatters call :meth:`DeviceTableView.mark_dirty`; while
  a column is dirty the host copy is stale.
* Host readers (``Table.read``/``column``/``state_signature``/``copy``
  — validation, recovery, shm export, tests) trigger a **lazy fence**
  through the ``Table._resident_view`` hook: the dirty column ships
  down once (D2H) and the dirty bit clears.  This is the runtime
  stale-host-read check; kernellint's KL106 is its static twin.
* Host writers (``Table.write``/``insert``/``bulk_load``) fence first,
  apply on host, then drop the device copy (lazy re-upload).
* ``Table._grow`` fences *before* reallocating, so ``np.resize``
  always copies a current prefix; the grown column re-uploads lazily
  (amortized-logarithmic thanks to capacity doubling).
* Freshly appended rows (the insert install path) are mirrored
  device-side by :meth:`DeviceTableView.note_appended` as op-sized
  scatters, so inserts do not invalidate the resident column.

Determinism: write-back scatters are WAW-disjoint per (row, group) by
the commit rule and delayed adds are commutative, so applying them on
the device copy instead of the host copy cannot reorder visible state
— the same argument that makes the columnar write-back byte-identical
to the scalar one (ARCHITECTURE §13 spells it out).

On host-identity backends (numpy) ``from_host`` is identity, the
"device" copy *is* the host array, and the manager stays inert
(:attr:`ResidencyManager.active` is False): ``device_resident=1``
under numpy — including the ``parallel_workers`` shm path — is
byte-identical by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_MISSING = object()


@dataclass
class ResidencyStats:
    """Counters for the residency cache (tests assert steady state)."""

    #: full-column uploads (first touch, post-grow, post-host-write)
    uploads: int = 0
    upload_bytes: int = 0
    #: dirty columns fenced back to host (lazy stale-host-read syncs)
    fences: int = 0
    fence_bytes: int = 0
    #: freshly appended cells mirrored device-side (insert installs)
    append_cells: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "uploads": self.uploads,
            "upload_bytes": self.upload_bytes,
            "fences": self.fences,
            "fence_bytes": self.fence_bytes,
            "append_cells": self.append_cells,
        }


class DeviceTableView:
    """The device-resident columns of one table.

    Column keys are column names, plus ``None`` for the key array.
    The view is installed as ``table._resident_view`` so the table's
    host accessors can fence lazily without storage importing xp.
    """

    def __init__(self, table, xp, stats: ResidencyStats) -> None:
        self.table = table
        self.xp = xp
        self.stats = stats
        self._cols: dict[str | None, object] = {}
        self._hosts: dict[str | None, np.ndarray] = {}
        self._dirty: set[str | None] = set()
        #: bumped on every device-side scatter (observability/tests)
        self.device_epoch = 0

    # -- host-array plumbing ------------------------------------------------
    def _host_of(self, name: str | None) -> np.ndarray:
        t = self.table
        return t._keys if name is None else t._columns[name]

    def _drop(self, name: str | None) -> None:
        self._cols.pop(name, None)
        self._hosts.pop(name, None)
        self._dirty.discard(name)

    def _heal(self, name: str | None, host: np.ndarray) -> None:
        """The cached host array was swapped out (``np.resize`` grow or
        shm re-export).  ``_grow`` fences before reallocating and shm
        export copies values, so the new array's prefix already agrees
        with the device copy; healing writes the device prefix over it
        (a value-preserving no-op in those flows, a correction in any
        other identity swap) and drops the stale device copy."""
        if name in self._dirty:
            data = self.xp.to_host(self._cols[name])
            m = min(data.shape[0], host.shape[0])
            if not np.shares_memory(data, host):
                host[:m] = data[:m]
            self.stats.fences += 1
            self.stats.fence_bytes += int(data.nbytes)
        self._drop(name)

    # -- the cache ----------------------------------------------------------
    def column(self, name: str | None):
        """The device-resident array for ``name`` (``None`` = keys),
        uploading on first touch and revalidating host identity."""
        host = self._host_of(name)
        dev = self._cols.get(name, _MISSING)
        if dev is not _MISSING:
            if self._hosts[name] is host:
                return dev
            self._heal(name, host)
        dev = self.xp.from_host(host)
        self._cols[name] = dev
        self._hosts[name] = host
        self.stats.uploads += 1
        self.stats.upload_bytes += int(host.nbytes)
        return dev

    def mark_dirty(self, name: str | None) -> None:
        """A device-side scatter landed in ``name``: host copy stale."""
        self._dirty.add(name)
        self.device_epoch += 1

    @property
    def dirty_columns(self) -> frozenset[str | None]:
        return frozenset(self._dirty)

    # -- the fence (host readers) -------------------------------------------
    def fence_column(self, name: str | None) -> None:
        """Lazy stale-host-read sync: if ``name`` is dirty, ship the
        device copy down and clear the dirty bit."""
        if name not in self._dirty:
            return
        host = self._host_of(name)
        if self._hosts[name] is not host:
            self._heal(name, host)
            return
        data = self.xp.to_host(self._cols[name])
        if not np.shares_memory(data, host):
            host[:] = data
        self._dirty.discard(name)
        self.stats.fences += 1
        self.stats.fence_bytes += int(data.nbytes)

    def fence(self) -> None:
        """Fence every dirty column (full host sync)."""
        for name in list(self._dirty):
            self.fence_column(name)

    # -- host writers -------------------------------------------------------
    def host_written(self, name: str | None) -> None:
        """Host memory took a direct write to ``name`` (after a fence):
        the device copy is now the stale side — drop it."""
        self._drop(name)

    def host_written_all(self) -> None:
        for name in list(self._cols):
            self._drop(name)

    # -- insert installs ----------------------------------------------------
    def note_appended(self, rows: np.ndarray) -> None:
        """Mirror freshly installed host rows into the cached device
        columns (op-sized scatters, not a re-upload).  Appended slots
        were zero on both sides before the install, so only scattering
        the new values is needed; the dirty set is untouched because
        host and device now agree on these cells."""
        if not self._cols:
            return
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return
        xp = self.xp
        idx = None
        for name in list(self._cols):
            host = self._host_of(name)
            if self._hosts[name] is not host:
                # grew mid-install; _grow fenced first, re-upload lazily
                self._heal(name, host)
                continue
            if idx is None:
                idx = xp.from_host(rows)
            xp.scatter(self._cols[name], idx, xp.from_host(host[rows]))
            self.stats.append_cells += int(rows.size)

    # -- teardown -----------------------------------------------------------
    def detach(self) -> None:
        """Fence, drop device copies, and unhook from the table."""
        self.fence()
        self._cols.clear()
        self._hosts.clear()
        if getattr(self.table, "_resident_view", None) is self:
            self.table._resident_view = None


class ResidencyManager:
    """Per-engine registry of :class:`DeviceTableView`\\ s.

    ``tables`` is the pinning policy: an empty set pins every table,
    otherwise only the named tables are cached (others keep the
    baseline round-trip path).  On host-identity backends the manager
    reports :attr:`active` = False and hands out no views — residency
    is meaningful only when crossings are real transfers.
    """

    def __init__(self, xp, database, tables=()) -> None:
        self.xp = xp
        self.database = database
        self.pinned_tables = frozenset(tables)
        self.stats = ResidencyStats()
        self._views: dict[int, DeviceTableView] = {}
        #: False on host-identity backends: views would cache the host
        #: arrays themselves, so the baseline path is already "resident"
        self.active = bool(getattr(xp, "is_device", False))

    def is_pinned(self, table) -> bool:
        return self.active and (
            not self.pinned_tables or table.name in self.pinned_tables
        )

    def view(self, table) -> DeviceTableView | None:
        """The table's view, creating and hooking it on first use;
        ``None`` for unpinned tables and on host backends."""
        if not self.is_pinned(table):
            return None
        v = self._views.get(id(table))
        if v is None:
            v = DeviceTableView(table, self.xp, self.stats)
            self._views[id(table)] = v
            table._resident_view = v
        return v

    def device_column(self, table, name: str | None):
        """The resident device array for ``(table, name)``, or ``None``
        when the table is unpinned (caller falls back to the baseline
        upload path)."""
        v = self.view(table)
        return None if v is None else v.column(name)

    def mark_dirty(self, table, name: str | None) -> None:
        v = self._views.get(id(table))
        if v is not None:
            v.mark_dirty(name)

    def note_appended(self, table, rows: np.ndarray) -> None:
        v = self._views.get(id(table))
        if v is not None:
            v.note_appended(rows)

    def sync_all_to_host(self) -> None:
        """Fence every dirty column (full host sync; device copies are
        kept and stay valid)."""
        for v in self._views.values():
            v.fence()

    def detach(self) -> None:
        """Fence everything and unhook all views (backend swap or
        residency turned off); the manager must not be reused."""
        for v in self._views.values():
            v.detach()
        self._views.clear()


__all__ = ["DeviceTableView", "ResidencyManager", "ResidencyStats"]

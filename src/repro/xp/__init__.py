"""``repro.xp`` — the array-backend shim for the batched hot path.

Selects between the NumPy reference, the ``mockgpu`` contract checker,
and the optional device backends (CuPy, PyTorch) by name:

>>> from repro import xp
>>> backend = xp.get_backend("numpy")      # the pinned reference
>>> backend = xp.get_backend("mockgpu")    # device contract under CI
>>> backend = xp.resolve_backend("auto")   # best available device, else numpy

``get_backend`` raises :class:`~repro.errors.BackendError` for unknown
names and :class:`~repro.errors.BackendUnavailable` when a known
backend's library is missing — callers that validate configuration
(:class:`~repro.core.config.LTPGConfig`) convert the former into
``ConfigError`` at construction time, so a typo'd backend name fails
before any engine state exists.

The numpy backend is a shared singleton (it is stateless: its transfer
ledger is zero by contract); device and mock backends are constructed
fresh per call so each engine owns an isolated transfer ledger.
"""

from __future__ import annotations

from repro.errors import BackendError, BackendUnavailable
from repro.xp.base import CONTRACT, ArrayBackend, BackendContract, TransferStats
from repro.xp.mockgpu import MockGpuBackend
from repro.xp.numpy_backend import NumpyBackend
from repro.xp.residency import DeviceTableView, ResidencyManager, ResidencyStats

#: Names accepted by :func:`get_backend` / ``LTPGConfig.array_backend``
#: ("auto" additionally resolves through :func:`resolve_backend`).
BACKEND_NAMES = ("numpy", "mockgpu", "cupy", "torch")

#: Preference order for ``array_backend="auto"``: real devices first,
#: falling back to the host reference when none is importable.
AUTO_ORDER = ("cupy", "torch", "numpy")

_numpy_singleton: NumpyBackend | None = None


def _build(name: str) -> ArrayBackend:
    if name == "numpy":
        global _numpy_singleton
        if _numpy_singleton is None:
            _numpy_singleton = NumpyBackend()
        return _numpy_singleton
    if name == "mockgpu":
        return MockGpuBackend()
    if name == "cupy":
        from repro.xp.cupy_backend import CupyBackend  # noqa: PLC0415

        return CupyBackend()
    if name == "torch":
        from repro.xp.torch_backend import TorchBackend  # noqa: PLC0415

        return TorchBackend()
    raise BackendError(
        f"unknown array backend {name!r}; expected one of "
        f"{', '.join(BACKEND_NAMES)} or 'auto'"
    )


def get_backend(name: str) -> ArrayBackend:
    """Construct the backend called ``name``.

    Raises :class:`BackendError` for names outside :data:`BACKEND_NAMES`
    and :class:`BackendUnavailable` when the backing library (or its
    device) is absent.  ``"auto"`` is accepted and delegates to
    :func:`resolve_backend`.
    """
    if name == "auto":
        return resolve_backend("auto")
    if not isinstance(name, str) or name not in BACKEND_NAMES:
        raise BackendError(
            f"unknown array backend {name!r}; expected one of "
            f"{', '.join(BACKEND_NAMES)} or 'auto'"
        )
    return _build(name)


def resolve_backend(name: str = "auto") -> ArrayBackend:
    """Like :func:`get_backend`, but ``"auto"`` walks :data:`AUTO_ORDER`
    and returns the first backend that constructs."""
    if name != "auto":
        return get_backend(name)
    for candidate in AUTO_ORDER:
        try:
            return _build(candidate)
        except BackendUnavailable:
            continue
    raise BackendUnavailable(
        "no array backend available (not even numpy?)"
    )  # pragma: no cover - numpy is a hard dependency


def available_backends() -> tuple[str, ...]:
    """The subset of :data:`BACKEND_NAMES` that construct in this
    process (used by bench/CI gates to auto-skip device columns)."""
    out = []
    for name in BACKEND_NAMES:
        try:
            _build(name)
        except BackendUnavailable:
            continue
        out.append(name)
    return tuple(out)


__all__ = [
    "AUTO_ORDER",
    "BACKEND_NAMES",
    "CONTRACT",
    "ArrayBackend",
    "BackendContract",
    "DeviceTableView",
    "MockGpuBackend",
    "NumpyBackend",
    "ResidencyManager",
    "ResidencyStats",
    "TransferStats",
    "available_backends",
    "get_backend",
    "resolve_backend",
]

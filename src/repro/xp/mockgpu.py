"""The ``mockgpu`` backend: NumPy semantics, device discipline.

Arrays produced by this backend are "device-resident" — a zero-copy
:class:`numpy.ndarray` subclass tagged with the owning backend — and
every host<->device crossing is accounted in the transfer ledger:

* ``from_host``/``asarray`` of host data → H2D (bytes + count);
* ``to_host``/``item``/``tolist`` → D2H;
* scalar reductions (``arr.max()`` with no axis) → an 8-byte D2H, the
  device-reduce-plus-readback every real GPU port performs;
* each kernel primitive (``argsort``, ``cumsum``, scatter, ...) →
  one entry in the simulated dispatch queue, logged in issue order so
  tests can assert async-dispatch ordering across phase boundaries.

Inside a :meth:`kernel_phase` region the backend turns *strict*:

* an **implicit** host round-trip — ``int()``, ``bool()``, ``tolist``,
  iteration on a device array — raises :class:`BackendContractError`
  (in non-strict mode it is merely counted in ``implicit_syncs``);
* any primitive returning a **floating** dtype raises: the hot path is
  int64-disciplined, and a float64 result means some call site forgot
  to pin ``dtype`` (this is how the dtype-discipline audit is enforced
  mechanically rather than by review).

Limitations, by design: the mock intercepts *Python-level* host access
(``__int__``/``__bool__``/``__iter__``/``tolist``/``item``) — which is
where real round-trips hide (host loops, data-dependent control flow).
C-level buffer access by a raw ``numpy`` function bypasses it, so the
enforcement is only as complete as the ``xp`` threading; the
cross-backend byte-identity suite covers what the mock cannot.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from repro.errors import BackendContractError
from repro.xp.base import CONTRACT, ArrayBackend


def _make_device_class(backend: "MockGpuBackend") -> type:
    """Build this backend instance's private device-array class.

    The class is per-instance so arrays report to exactly one ledger;
    two concurrent mockgpu engines never cross their counters.
    """

    def _guard(arr, what: str) -> None:
        backend._implicit_access(what, arr)

    def tolist(self):
        _guard(self, "tolist")
        return np.asarray(self).tolist()

    def item(self, *args):
        _guard(self, "item")
        return np.ndarray.item(self, *args)

    def __int__(self):
        _guard(self, "int")
        return int(np.ndarray.item(self))

    def __float__(self):
        _guard(self, "float")
        return float(np.ndarray.item(self))

    def __bool__(self):
        _guard(self, "bool")
        return np.ndarray.__bool__(self)

    def __index__(self):
        _guard(self, "index")
        return np.ndarray.__index__(self)

    def __iter__(self):
        _guard(self, "iter")
        return np.ndarray.__iter__(self)

    def __getitem__(self, idx):
        res = np.ndarray.__getitem__(self, idx)
        if isinstance(res, np.generic):
            # element read off the device (arr[i] yields a host scalar)
            _guard(self, "scalar-index")
        return res

    def _reduction(name: str):
        base = getattr(np.ndarray, name)

        def method(self, axis=None, *args, **kwargs):
            res = base(self, axis, *args, **kwargs)
            if axis is None and np.ndim(res) == 0:
                # device reduce + one-word readback, not a violation
                return backend._scalar_readback(name, res)
            return res

        method.__name__ = name
        return method

    members = {
        "__array_priority__": 15.0,
        "tolist": tolist,
        "item": item,
        "__int__": __int__,
        "__float__": __float__,
        "__bool__": __bool__,
        "__index__": __index__,
        "__iter__": __iter__,
        "__getitem__": __getitem__,
    }
    # the sanctioned scalar-readback set comes from the shared contract
    # (the same object kernellint checks against statically)
    for name in CONTRACT.scalar_readbacks:
        members[name] = _reduction(name)
    return type("MockDeviceArray", (np.ndarray,), members)


class MockGpuBackend(ArrayBackend):
    """NumPy-backed device simulator enforcing the transfer contract."""

    name = "mockgpu"
    is_device = True

    def __init__(self, strict: bool = True) -> None:
        super().__init__(np)
        self.strict = bool(strict)
        self._phase: str | None = None
        #: (primitive, dtype) pairs for every float-typed kernel result
        self.upcasts: list[tuple[str, str]] = []
        self.DeviceArray = _make_device_class(self)

    # -- bookkeeping helpers ------------------------------------------------
    @property
    def phase(self) -> str | None:
        """The active kernel-phase name, or ``None`` between phases."""
        return self._phase

    def is_device_array(self, arr) -> bool:
        return isinstance(arr, self.DeviceArray)

    def _wrap(self, res):
        if isinstance(res, np.ndarray) and not isinstance(res, self.DeviceArray):
            return res.view(self.DeviceArray)
        return res

    def _check_dtype(self, op: str, res):
        if isinstance(res, np.ndarray) and res.dtype.kind == "f":
            self.upcasts.append((op, str(res.dtype)))
            if self.strict:
                raise BackendContractError(
                    f"mockgpu: primitive {op!r} produced dtype {res.dtype}; "
                    "the hot path is int64-disciplined — pin dtype at the "
                    "call site"
                )
        return res

    def _kernel(self, op: str, res):
        """Account one device-kernel dispatch and wrap its result."""
        t = self.transfers
        t.dispatches += 1
        t.events.append(("dispatch", f"{self._phase or 'eager'}:{op}"))
        if isinstance(res, tuple):
            return tuple(self._wrap(self._check_dtype(op, r)) for r in res)
        return self._wrap(self._check_dtype(op, res))

    def _implicit_access(self, what: str, arr) -> None:
        t = self.transfers
        if self._phase is not None:
            t.implicit_syncs += 1
            t.events.append(("implicit", f"{self._phase}:{what}"))
            if self.strict:
                raise BackendContractError(
                    f"mockgpu: implicit host round-trip ({what}) on a device "
                    f"array inside kernel phase {self._phase!r}; route it "
                    "through xp.to_host/xp.item/xp.tolist at a phase boundary"
                )
        else:
            # eager-sync read between phases: legal, but it is traffic
            t.d2h_count += 1
            t.d2h_bytes += int(arr.nbytes)
            t.events.append(("d2h", f"eager:{what}"))

    def _scalar_readback(self, name: str, res):
        t = self.transfers
        t.d2h_count += 1
        t.d2h_bytes += int(getattr(res, "itemsize", 8))
        t.events.append(("d2h", f"{self._phase or 'eager'}:reduce_{name}"))
        if isinstance(res, np.ndarray):  # 0-d device result: unwrap quietly
            return np.ndarray.item(res)
        return res.item() if isinstance(res, np.generic) else res

    # -- kernel-phase contract ---------------------------------------------
    @contextmanager
    def kernel_phase(self, name: str):
        if self._phase is not None:  # nested regions fold into the outer
            yield self
            return
        self._phase = name
        self.transfers.events.append(("phase", f"begin:{name}"))
        try:
            yield self
        finally:
            self._phase = None
            self.transfers.events.append(("phase", f"end:{name}"))
            self.transfers.events.append(("sync", name))

    def synchronize(self) -> None:
        self.transfers.events.append(("sync", self._phase or "host"))

    # -- host<->device crossings --------------------------------------------
    def from_host(self, arr):
        if isinstance(arr, self.DeviceArray):
            return arr
        a = np.asarray(arr)
        self._check_dtype("from_host", a)
        t = self.transfers
        t.h2d_count += 1
        t.h2d_bytes += int(a.nbytes)
        t.events.append(("h2d", f"{self._phase or 'eager'}:{a.nbytes}"))
        return a.view(self.DeviceArray)

    def to_host(self, arr):
        if not isinstance(arr, self.DeviceArray):
            return np.asarray(arr)
        t = self.transfers
        t.d2h_count += 1
        t.d2h_bytes += int(arr.nbytes)
        t.events.append(("d2h", f"{self._phase or 'eager'}:{arr.nbytes}"))
        return np.array(arr, subok=False)

    def item(self, x):
        if isinstance(x, self.DeviceArray):
            t = self.transfers
            t.d2h_count += 1
            t.d2h_bytes += int(x.itemsize)
            t.events.append(("d2h", f"{self._phase or 'eager'}:item"))
            return np.ndarray.item(x)
        return x.item() if isinstance(x, np.generic | np.ndarray) else x

    def tolist(self, arr) -> list:
        if isinstance(arr, self.DeviceArray):
            t = self.transfers
            t.d2h_count += 1
            t.d2h_bytes += int(arr.nbytes)
            t.events.append(("d2h", f"{self._phase or 'eager'}:tolist"))
            return np.asarray(arr).tolist()
        return arr.tolist()

    def device_info(self) -> dict[str, object]:
        return {
            "backend": self.name,
            "library": "numpy",
            "version": np.__version__,
            "device": "mockgpu (contract-checking simulator)",
        }

    # -- creation (device allocations; dtype must be pinned) -----------------
    def asarray(self, obj, dtype=None):
        if isinstance(obj, self.DeviceArray):
            a = obj if dtype is None or obj.dtype == dtype else obj.astype(dtype)
            return self._kernel("asarray", np.asarray(a))
        return self.from_host(np.asarray(obj, dtype=dtype))

    def empty(self, shape, dtype=None):
        return self._kernel("empty", np.empty(shape, dtype=dtype))

    def zeros(self, shape, dtype=None):
        return self._kernel("zeros", np.zeros(shape, dtype=dtype))

    def ones(self, shape, dtype=None):
        return self._kernel("ones", np.ones(shape, dtype=dtype))

    def full(self, shape, fill_value, dtype=None):
        return self._kernel("full", np.full(shape, fill_value, dtype=dtype))

    def arange(self, *args, dtype=None):
        return self._kernel("arange", np.arange(*args, dtype=dtype))

    # -- combination ---------------------------------------------------------
    def concatenate(self, arrays, axis=0):
        return self._kernel("concatenate", np.concatenate(list(arrays), axis=axis))

    def stack(self, arrays, axis=0):
        return self._kernel("stack", np.stack(list(arrays), axis=axis))

    def repeat(self, a, repeats, axis=None):
        return self._kernel("repeat", np.repeat(a, repeats, axis=axis))

    def broadcast_to(self, a, shape):
        return self._kernel("broadcast_to", np.broadcast_to(a, shape))

    def where(self, cond, x=None, y=None):
        if x is None and y is None:
            return self._kernel("where", np.where(cond))
        return self._kernel("where", np.where(cond, x, y))

    def astype(self, arr, dtype, copy: bool = False):
        return self._kernel("astype", np.asarray(arr).astype(dtype, copy=copy))

    # -- sorting / searching -------------------------------------------------
    def argsort(self, a, stable: bool = True, axis: int = -1):
        return self._kernel(
            "argsort", np.argsort(a, axis=axis, kind="stable" if stable else None)
        )

    def lexsort(self, keys):
        return self._kernel("lexsort", np.lexsort(tuple(keys)))

    def sort(self, a, axis: int = -1):
        return self._kernel("sort", np.sort(a, axis=axis))

    def unique(self, a, **kwargs):
        return self._kernel("unique", np.unique(np.asarray(a), **kwargs))

    def searchsorted(self, a, v, side: str = "left"):
        return self._kernel("searchsorted", np.searchsorted(a, v, side=side))

    def flatnonzero(self, a):
        return self._kernel("flatnonzero", np.flatnonzero(a))

    # -- scans / reductions --------------------------------------------------
    def cumsum(self, a, axis=None):
        return self._kernel("cumsum", np.cumsum(a, axis=axis))

    def bincount(self, a, minlength: int = 0):
        return self._kernel("bincount", np.bincount(np.asarray(a), minlength=minlength))

    # -- scatter -------------------------------------------------------------
    def _scatter(self, op: str, ufunc_at, target, index, values) -> None:
        if (
            self.strict
            and self._phase is not None
            and not isinstance(target, self.DeviceArray)
        ):
            raise BackendContractError(
                f"mockgpu: {op} into a host array inside kernel phase "
                f"{self._phase!r}; move the target to the device with "
                "xp.from_host first"
            )
        t = self.transfers
        t.dispatches += 1
        t.events.append(("dispatch", f"{self._phase or 'eager'}:{op}"))
        ufunc_at(np.asarray(target), np.asarray(index), np.asarray(values))

    def scatter(self, target, index, values) -> None:
        def assign(t, i, v):
            t[i] = v

        self._scatter("scatter", assign, target, index, values)

    def scatter_add(self, target, index, values) -> None:
        self._scatter("scatter_add", np.add.at, target, index, values)

    def scatter_min(self, target, index, values) -> None:
        self._scatter("scatter_min", np.minimum.at, target, index, values)


__all__ = ["MockGpuBackend"]

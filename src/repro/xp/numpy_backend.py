"""The NumPy reference backend: the pinned-correct implementation.

Every primitive binds straight to the ``numpy`` function it names, and
the host<->device crossings are identity (there is no device), so the
batched hot path pays zero overhead for running through the shim —
``xp.argsort`` *is* ``np.argsort``.  All other backends are checked
byte-for-byte against this one.
"""

from __future__ import annotations

import platform

import numpy as np

from repro.xp.base import ArrayBackend


class NumpyBackend(ArrayBackend):
    """Host reference backend; crossings are identity, transfers zero."""

    name = "numpy"
    is_device = False

    def __init__(self) -> None:
        super().__init__(np)

    # -- crossings: identity (no copies, no accounting) ---------------------
    def from_host(self, arr):
        return arr

    def to_host(self, arr):
        return arr

    def item(self, x):
        return x.item() if isinstance(x, np.generic | np.ndarray) else x

    def tolist(self, arr) -> list:
        return arr.tolist()

    def device_info(self) -> dict[str, object]:
        return {
            "backend": self.name,
            "library": "numpy",
            "version": np.__version__,
            "device": f"host ({platform.machine()})",
        }

    # -- sorting ------------------------------------------------------------
    @staticmethod
    def argsort(arr, stable: bool = True, axis: int = -1):
        return np.argsort(arr, axis=axis, kind="stable" if stable else None)

    # np.lexsort et al. bind directly through ``__getattr__`` delegation;
    # only primitives whose protocol signature differs are spelled out.

    # -- scatter ------------------------------------------------------------
    @staticmethod
    def scatter(target, index, values) -> None:
        target[index] = values

    @staticmethod
    def scatter_add(target, index, values) -> None:
        np.add.at(target, index, values)

    @staticmethod
    def scatter_min(target, index, values) -> None:
        np.minimum.at(target, index, values)


__all__ = ["NumpyBackend"]

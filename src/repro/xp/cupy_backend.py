"""CuPy backend: the real-device path.

CuPy mirrors the NumPy API closely enough that almost every primitive
binds one-to-one; the differences the shim absorbs are

* ``argsort`` — CuPy's integer argsort is a CUB radix sort, which is
  stable, but takes no ``kind=`` keyword;
* scatter — ``cupyx.scatter_add``/``scatter_min`` replace ``ufunc.at``;
* crossings — ``cp.asarray`` (H2D) and ``cp.asnumpy`` (D2H) are real
  PCIe/NVLink transfers and are accounted in the ledger.

Construction raises :class:`BackendUnavailable` when CuPy is not
installed or no CUDA device answers, so ``get_backend("cupy")`` fails
fast with a clean error instead of a deep ``ImportError`` later.
"""

from __future__ import annotations

from repro.errors import BackendUnavailable
from repro.xp.base import ArrayBackend


class CupyBackend(ArrayBackend):
    """Device-resident backend over CuPy (requires a CUDA device)."""

    name = "cupy"
    is_device = True

    def __init__(self) -> None:
        try:
            import cupy  # noqa: PLC0415 - optional dependency probe
            import cupyx  # noqa: PLC0415

            ndev = cupy.cuda.runtime.getDeviceCount()
        except Exception as exc:  # ImportError or CUDARuntimeError
            raise BackendUnavailable(
                f"cupy backend unavailable: {exc!r}"
            ) from exc
        if ndev < 1:
            raise BackendUnavailable("cupy backend unavailable: no CUDA device")
        super().__init__(cupy)
        self._cupyx = cupyx

    def is_device_array(self, arr) -> bool:
        return isinstance(arr, self.module.ndarray)

    # -- crossings -----------------------------------------------------------
    def from_host(self, arr):
        cp = self.module
        if isinstance(arr, cp.ndarray):
            return arr
        dev = cp.asarray(arr)
        t = self.transfers
        t.h2d_count += 1
        t.h2d_bytes += int(dev.nbytes)
        return dev

    def to_host(self, arr):
        cp = self.module
        if not isinstance(arr, cp.ndarray):
            return arr
        t = self.transfers
        t.d2h_count += 1
        t.d2h_bytes += int(arr.nbytes)
        return cp.asnumpy(arr)

    def item(self, x):
        if isinstance(x, self.module.ndarray):
            t = self.transfers
            t.d2h_count += 1
            t.d2h_bytes += int(x.itemsize)
            return x.item()
        return x.item() if hasattr(x, "item") else x

    def tolist(self, arr) -> list:
        return self.to_host(arr).tolist()

    def synchronize(self) -> None:
        self.module.cuda.get_current_stream().synchronize()

    def device_info(self) -> dict[str, object]:
        cp = self.module
        props = cp.cuda.runtime.getDeviceProperties(cp.cuda.Device().id)
        dev_name = props["name"]
        if isinstance(dev_name, bytes):
            dev_name = dev_name.decode(errors="replace")
        return {
            "backend": self.name,
            "library": "cupy",
            "version": cp.__version__,
            "device": dev_name,
        }

    # -- sorting -------------------------------------------------------------
    def argsort(self, a, stable: bool = True, axis: int = -1):
        # CUB radix argsort over integer keys is stable; stable= is
        # accepted for signature parity with the reference backend.
        return self.module.argsort(a, axis=axis)

    # -- scatter -------------------------------------------------------------
    @staticmethod
    def scatter(target, index, values) -> None:
        # plain fancy assignment: nondeterministic under duplicate
        # indices on a GPU, but callers guarantee disjointness
        target[index] = values

    def scatter_add(self, target, index, values) -> None:
        self._cupyx.scatter_add(target, index, values)

    def scatter_min(self, target, index, values) -> None:
        self._cupyx.scatter_min(target, index, values)


__all__ = ["CupyBackend"]

"""PyTorch backend (experimental): tensors behind a NumPy-shaped proxy.

Torch tensors diverge from the NumPy surface the twins were written
against — ``.size`` is a method, there is no ``astype``/``lexsort``,
dtypes are ``torch.int64`` objects — so device tensors travel inside a
thin :class:`TorchArray` proxy that restores the idioms the hot path
uses (``.size``/``.shape``/``.dtype.kind``, ``astype``, fancy indexing,
in-place arithmetic).  ``lexsort`` is emulated with successive stable
argsorts (least-significant key first), which preserves the reference
ordering exactly.

This backend is exercised only where PyTorch is installed; in this
repository's CI the contract is carried by ``mockgpu`` and the
cross-backend byte-identity suite.  Construction raises
:class:`BackendUnavailable` when torch is missing.
"""

from __future__ import annotations

import numpy as np

from repro.errors import BackendUnavailable
from repro.xp.base import ArrayBackend

_DTYPE_KIND = {"i": "i", "u": "u", "b": "b", "f": "f"}


class _DtypeView:
    """Minimal ``numpy.dtype``-alike for a torch dtype (``kind``/``itemsize``)."""

    def __init__(self, torch_dtype, torch) -> None:
        self._dtype = torch_dtype
        if torch_dtype == torch.bool:
            self.kind, self.itemsize = "b", 1
        elif torch_dtype.is_floating_point:
            self.kind, self.itemsize = "f", torch_dtype.itemsize
        else:
            self.kind, self.itemsize = "i", torch_dtype.itemsize

    def __eq__(self, other) -> bool:
        return self._dtype == other or getattr(other, "_dtype", None) == self._dtype

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"dtype({self._dtype})"


class TorchArray:
    """NumPy-idiom proxy over a device tensor.

    Wraps exactly one tensor; every operation unwraps proxy operands,
    runs on-device, and re-wraps tensor results so device residency is
    sticky through arithmetic, comparisons, indexing, and reductions.
    """

    __slots__ = ("t", "_xp")
    __array_priority__ = 20.0

    def __init__(self, tensor, xp: "TorchBackend") -> None:
        self.t = tensor
        self._xp = xp

    # -- numpy-surface metadata ---------------------------------------------
    @property
    def size(self) -> int:
        return self.t.numel()

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(self.t.shape)

    @property
    def ndim(self) -> int:
        return self.t.dim()

    @property
    def nbytes(self) -> int:
        return self.t.numel() * self.t.element_size()

    @property
    def itemsize(self) -> int:
        return self.t.element_size()

    @property
    def dtype(self) -> _DtypeView:
        return _DtypeView(self.t.dtype, self._xp.module)

    def astype(self, dtype, copy: bool = False):
        target = self._xp._torch_dtype(dtype)
        out = self.t.to(target)
        if copy and out is self.t:
            out = out.clone()
        return TorchArray(out, self._xp)

    def copy(self):
        return TorchArray(self.t.clone(), self._xp)

    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], tuple):
            shape = shape[0]
        return TorchArray(self.t.reshape(shape), self._xp)

    # -- indexing -------------------------------------------------------------
    @staticmethod
    def _unwrap(x):
        if isinstance(x, TorchArray):
            return x.t
        if isinstance(x, tuple):
            return tuple(TorchArray._unwrap(i) for i in x)
        return x

    def __getitem__(self, idx):
        res = self.t[self._unwrap(idx)]
        return TorchArray(res, self._xp) if hasattr(res, "numel") else res

    def __setitem__(self, idx, value) -> None:
        self.t[self._unwrap(idx)] = self._unwrap(value)

    def __len__(self) -> int:
        return self.t.shape[0]

    # -- host crossings (explicit via the backend; these are the escape hatch)
    def item(self):
        return self._xp.item(self)

    def tolist(self) -> list:
        return self._xp.tolist(self)

    def __int__(self) -> int:
        return int(self._xp.item(self))

    def __bool__(self) -> bool:
        if self.t.numel() != 1:
            raise ValueError("truth value of a multi-element array is ambiguous")
        return bool(self._xp.item(self))

    # -- arithmetic / comparison ----------------------------------------------
    def _binop(self, other, fn):
        res = fn(self.t, self._unwrap(other))
        return TorchArray(res, self._xp)

    def __add__(self, o):
        return self._binop(o, lambda a, b: a + b)

    __radd__ = __add__

    def __sub__(self, o):
        return self._binop(o, lambda a, b: a - b)

    def __rsub__(self, o):
        return self._binop(o, lambda a, b: b - a)

    def __mul__(self, o):
        return self._binop(o, lambda a, b: a * b)

    __rmul__ = __mul__

    def __floordiv__(self, o):
        return self._binop(o, lambda a, b: a // b)

    def __mod__(self, o):
        return self._binop(o, lambda a, b: a % b)

    def __neg__(self):
        return TorchArray(-self.t, self._xp)

    def __and__(self, o):
        return self._binop(o, lambda a, b: a & b)

    __rand__ = __and__

    def __or__(self, o):
        return self._binop(o, lambda a, b: a | b)

    __ror__ = __or__

    def __invert__(self):
        return TorchArray(~self.t, self._xp)

    def __iadd__(self, o):
        self.t += self._unwrap(o)
        return self

    def __isub__(self, o):
        self.t -= self._unwrap(o)
        return self

    def __imul__(self, o):
        self.t *= self._unwrap(o)
        return self

    def __iand__(self, o):
        self.t &= self._unwrap(o)
        return self

    def __ior__(self, o):
        self.t |= self._unwrap(o)
        return self

    def __eq__(self, o):  # type: ignore[override]
        return self._binop(o, lambda a, b: a == b)

    def __ne__(self, o):  # type: ignore[override]
        return self._binop(o, lambda a, b: a != b)

    def __lt__(self, o):
        return self._binop(o, lambda a, b: a < b)

    def __le__(self, o):
        return self._binop(o, lambda a, b: a <= b)

    def __gt__(self, o):
        return self._binop(o, lambda a, b: a > b)

    def __ge__(self, o):
        return self._binop(o, lambda a, b: a >= b)

    __hash__ = None  # type: ignore[assignment]

    # -- reductions (host scalars, matching the mockgpu convention) -----------
    def _reduce(self, fn, axis=None):
        if axis is None:
            return fn(self.t).item()
        return TorchArray(fn(self.t, dim=axis), self._xp)

    def min(self, axis=None):
        if axis is None:
            return self.t.min().item()
        return TorchArray(self.t.min(dim=axis).values, self._xp)

    def max(self, axis=None):
        if axis is None:
            return self.t.max().item()
        return TorchArray(self.t.max(dim=axis).values, self._xp)

    def sum(self, axis=None):
        return self._reduce(self._xp.module.sum, axis)

    def any(self, axis=None):
        if axis is None:
            return bool(self.t.any().item())
        return TorchArray(self.t.any(dim=axis), self._xp)

    def all(self, axis=None):
        if axis is None:
            return bool(self.t.all().item())
        return TorchArray(self.t.all(dim=axis), self._xp)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TorchArray({self.t!r})"


class TorchBackend(ArrayBackend):
    """Experimental device backend over PyTorch tensors."""

    name = "torch"
    is_device = True

    def __init__(self, device: str | None = None) -> None:
        try:
            import torch  # noqa: PLC0415 - optional dependency probe
        except Exception as exc:
            raise BackendUnavailable(
                f"torch backend unavailable: {exc!r}"
            ) from exc
        super().__init__(torch)
        if device is None:
            device = "cuda" if torch.cuda.is_available() else "cpu"
        self.device = torch.device(device)

    def _torch_dtype(self, dtype):
        torch = self.module
        if dtype is None or isinstance(dtype, torch.dtype):
            return dtype
        npdt = np.dtype(dtype)
        return {
            "int64": torch.int64,
            "int32": torch.int32,
            "bool": torch.bool,
            "float64": torch.float64,
        }[npdt.name]

    def _wrap(self, t) -> TorchArray:
        return TorchArray(t, self)

    @staticmethod
    def _unwrap(x):
        return TorchArray._unwrap(x)

    def is_device_array(self, arr) -> bool:
        return isinstance(arr, TorchArray)

    # -- crossings -----------------------------------------------------------
    def from_host(self, arr):
        if isinstance(arr, TorchArray):
            return arr
        torch = self.module
        host = np.ascontiguousarray(arr)
        dev = torch.from_numpy(host).to(self.device, copy=True)
        t = self.transfers
        t.h2d_count += 1
        t.h2d_bytes += int(host.nbytes)
        return self._wrap(dev)

    def to_host(self, arr):
        if not isinstance(arr, TorchArray):
            return np.asarray(arr)
        t = self.transfers
        t.d2h_count += 1
        t.d2h_bytes += int(arr.nbytes)
        return arr.t.cpu().numpy()

    def item(self, x):
        if isinstance(x, TorchArray):
            t = self.transfers
            t.d2h_count += 1
            t.d2h_bytes += int(x.itemsize)
            return x.t.item()
        return x.item() if hasattr(x, "item") else x

    def tolist(self, arr) -> list:
        if isinstance(arr, TorchArray):
            return self.to_host(arr).tolist()
        return arr.tolist()

    def synchronize(self) -> None:
        if self.device.type == "cuda":
            self.module.cuda.synchronize(self.device)

    def device_info(self) -> dict[str, object]:
        torch = self.module
        if self.device.type == "cuda":
            name = torch.cuda.get_device_name(self.device)
        else:
            name = "cpu"
        return {
            "backend": self.name,
            "library": "torch",
            "version": torch.__version__,
            "device": name,
        }

    # -- creation ------------------------------------------------------------
    def asarray(self, obj, dtype=None):
        if isinstance(obj, TorchArray):
            return obj.astype(dtype) if dtype is not None else obj
        torch = self.module
        t = torch.as_tensor(
            np.asarray(obj, dtype=dtype), device=self.device
        )
        return self._wrap(t)

    def empty(self, shape, dtype=None):
        return self._wrap(
            self.module.empty(shape, dtype=self._torch_dtype(dtype), device=self.device)
        )

    def zeros(self, shape, dtype=None):
        return self._wrap(
            self.module.zeros(shape, dtype=self._torch_dtype(dtype), device=self.device)
        )

    def ones(self, shape, dtype=None):
        return self._wrap(
            self.module.ones(shape, dtype=self._torch_dtype(dtype), device=self.device)
        )

    def full(self, shape, fill_value, dtype=None):
        return self._wrap(
            self.module.full(
                shape, fill_value, dtype=self._torch_dtype(dtype), device=self.device
            )
        )

    def arange(self, *args, dtype=None):
        return self._wrap(
            self.module.arange(
                *args, dtype=self._torch_dtype(dtype), device=self.device
            )
        )

    # -- combination ---------------------------------------------------------
    def concatenate(self, arrays, axis=0):
        return self._wrap(
            self.module.cat([self._unwrap(a) for a in arrays], dim=axis)
        )

    def stack(self, arrays, axis=0):
        return self._wrap(
            self.module.stack([self._unwrap(a) for a in arrays], dim=axis)
        )

    def repeat(self, a, repeats, axis=None):
        return self._wrap(
            self.module.repeat_interleave(
                self._unwrap(a), self._unwrap(repeats), dim=axis
            )
        )

    def broadcast_to(self, a, shape):
        return self._wrap(self.module.broadcast_to(self._unwrap(a), shape))

    def where(self, cond, x=None, y=None):
        if x is None and y is None:
            return self._wrap(self.module.nonzero(self._unwrap(cond)).reshape(-1))
        return self._wrap(
            self.module.where(self._unwrap(cond), self._unwrap(x), self._unwrap(y))
        )

    def astype(self, arr, dtype, copy: bool = False):
        if isinstance(arr, TorchArray):
            return arr.astype(dtype, copy=copy)
        return self.asarray(arr, dtype=dtype)

    # -- sorting / searching ---------------------------------------------------
    def argsort(self, a, stable: bool = True, axis: int = -1):
        return self._wrap(self.module.argsort(self._unwrap(a), dim=axis, stable=stable))

    def lexsort(self, keys):
        # successive stable argsorts, least-significant key first —
        # exactly np.lexsort's contract
        ks = [self._unwrap(k) for k in keys]
        order = self.module.argsort(ks[0], stable=True)
        for k in ks[1:]:
            order = order[self.module.argsort(k[order], stable=True)]
        return self._wrap(order)

    def sort(self, a, axis: int = -1):
        return self._wrap(self.module.sort(self._unwrap(a), dim=axis).values)

    def unique(self, a, **kwargs):
        res = self.module.unique(self._unwrap(a), **kwargs)
        if isinstance(res, tuple):
            return tuple(self._wrap(r) for r in res)
        return self._wrap(res)

    def searchsorted(self, a, v, side: str = "left"):
        return self._wrap(
            self.module.searchsorted(
                self._unwrap(a), self._unwrap(v), right=(side == "right")
            )
        )

    def flatnonzero(self, a):
        return self._wrap(self.module.nonzero(self._unwrap(a).reshape(-1)).reshape(-1))

    # -- scans ---------------------------------------------------------------
    def cumsum(self, a, axis=None):
        t = self._unwrap(a)
        if axis is None:
            t = t.reshape(-1)
            axis = 0
        return self._wrap(self.module.cumsum(t, dim=axis))

    def bincount(self, a, minlength: int = 0):
        return self._wrap(self.module.bincount(self._unwrap(a), minlength=minlength))

    # -- scatter -------------------------------------------------------------
    def scatter(self, target, index, values) -> None:
        torch = self.module
        tgt = self._unwrap(target)
        idx = self._unwrap(index)
        val = self._unwrap(values)
        if not torch.is_tensor(val):
            val = torch.full_like(idx, val, dtype=tgt.dtype)
        # callers guarantee disjoint indices, so non-accumulating
        # index_put_ cannot race with itself
        tgt.index_put_((idx,), val.to(tgt.dtype), accumulate=False)

    def scatter_add(self, target, index, values) -> None:
        torch = self.module
        tgt = self._unwrap(target)
        idx = self._unwrap(index)
        val = self._unwrap(values)
        if not torch.is_tensor(val):
            val = torch.full_like(idx, val, dtype=tgt.dtype)
        tgt.index_put_((idx,), val.to(tgt.dtype), accumulate=True)

    def scatter_min(self, target, index, values) -> None:
        tgt = self._unwrap(target)
        tgt.scatter_reduce_(
            0, self._unwrap(index), self._unwrap(values), reduce="amin"
        )


__all__ = ["TorchArray", "TorchBackend"]

"""LTPG reproduction: large-batch transaction processing on a simulated
GPU with deterministic optimistic concurrency control.

Subpackages:

* :mod:`repro.gpusim`    — SIMT GPU simulator (the hardware substrate).
* :mod:`repro.storage`   — columnar in-memory storage engine.
* :mod:`repro.txn`       — transactions, contexts, batching.
* :mod:`repro.core`      — the LTPG engine (the paper's contribution).
* :mod:`repro.baselines` — the eight comparison systems of Table II.
* :mod:`repro.workloads` — TPC-C and YCSB generators.
* :mod:`repro.bench`     — harnesses regenerating every paper table/figure.
"""

from repro.core import LTPGConfig, LTPGEngine

__version__ = "1.0.0"

__all__ = ["LTPGConfig", "LTPGEngine", "__version__"]

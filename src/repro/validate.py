"""Self-validation: determinism and serializability checks.

``python -m repro.validate`` runs the library's two core guarantees on
fresh workloads and prints a report:

* **Determinism** — processing the same logged input twice (and
  recovering from a snapshot + log) yields byte-identical database
  states and commit sets.
* **Serializability** — every batch's committed transactions, replayed
  serially in the engine's own witness order, reproduce the engine's
  state exactly.

This is the executable form of the paper's §IV correctness argument,
and a quick health check after modifying the engine.
"""

from __future__ import annotations

import copy
import sys
from dataclasses import dataclass, field

from repro.core import LTPGConfig, LTPGEngine
from repro.storage import Snapshot, recover
from repro.txn import BufferedContext, apply_local_sets, assign_tids
from repro.workloads.tpcc import (
    DELAYED_COLUMNS,
    HOT_TABLES,
    SPLIT_COLUMNS,
    build_tpcc,
)


@dataclass
class ValidationReport:
    checks: list[tuple[str, bool, str]] = field(default_factory=list)

    def record(self, name: str, ok: bool, detail: str = "") -> None:
        self.checks.append((name, ok, detail))

    @property
    def passed(self) -> bool:
        return all(ok for _, ok, _ in self.checks)

    def format(self) -> str:
        lines = []
        for name, ok, detail in self.checks:
            mark = "PASS" if ok else "FAIL"
            suffix = f" ({detail})" if detail else ""
            lines.append(f"[{mark}] {name}{suffix}")
        lines.append(
            "all checks passed" if self.passed else "VALIDATION FAILED"
        )
        return "\n".join(lines)


def _setup(seed: int):
    db, registry, generator = build_tpcc(warehouses=2, num_items=4000, seed=seed)
    config = LTPGConfig(
        batch_size=512,
        delayed_columns=DELAYED_COLUMNS,
        split_columns=SPLIT_COLUMNS,
        hot_tables=HOT_TABLES,
    )
    return db, registry, generator, config


def check_determinism(report: ValidationReport, seed: int = 11) -> None:
    """Same input twice -> same commits, same state."""
    outcomes = []
    for _ in range(2):
        db, registry, generator, config = _setup(seed)
        engine = LTPGEngine(db, registry, config)
        batch = generator.make_batch(512)
        assign_tids(batch, 0)
        result = engine.run_batch(batch)
        outcomes.append(
            (sorted(t.tid for t in result.committed), db.state_digest())
        )
    ok = outcomes[0] == outcomes[1]
    report.record("determinism: identical reruns", ok)


def check_serializability(report: ValidationReport, seed: int = 12) -> None:
    """Committed effects == serial replay in witness order."""
    db, registry, generator, config = _setup(seed)
    reference = db.copy()
    engine = LTPGEngine(db, registry, config)
    batch = generator.make_batch(512)
    assign_tids(batch, 0)
    result = engine.run_batch(batch)
    by_tid = {t.tid: t for t in result.committed}
    for tid in result.serial_order():
        txn = by_tid[tid]
        ctx = BufferedContext(reference)
        registry.get(txn.procedure_name)(ctx, *txn.params)
        apply_local_sets(reference, ctx.local)
    ok = reference.state_digest() == db.state_digest()
    report.record(
        "serializability: witness-order replay",
        ok,
        f"{len(by_tid)} committed of {len(batch)}",
    )


def check_recovery(report: ValidationReport, seed: int = 13) -> None:
    """Snapshot + log replay reproduces the pre-crash state."""
    db, registry, generator, config = _setup(seed)
    engine = LTPGEngine(db, registry, config)
    snapshot = Snapshot.capture(db, batch_index=0)
    pending: list = []
    next_tid = 0
    for _ in range(3):
        batch = pending + generator.make_batch(512 - len(pending))
        next_tid = assign_tids(batch, next_tid)
        result = engine.run_batch(batch)
        pending = result.aborted
    expected = db.state_digest()

    recovered, rec_report = recover(
        snapshot,
        engine.batch_log,
        lambda database: LTPGEngine(database, registry, config),
    )
    ok = rec_report.final_digest == expected
    report.record(
        "recovery: snapshot + log replay",
        ok,
        f"{rec_report.batches_replayed} batches replayed",
    )


def run_validation() -> ValidationReport:
    report = ValidationReport()
    check_determinism(report)
    check_serializability(report)
    check_recovery(report)
    return report


def main(argv: list[str] | None = None) -> int:
    report = run_validation()
    print(report.format())
    return 0 if report.passed else 1


if __name__ == "__main__":
    sys.exit(main())

"""Benchmark harnesses regenerating every table and figure of the
paper's evaluation (Section VI).

Each module exposes ``run(scale=...) -> *Result`` with a ``format()``
method printing the paper-shaped table.  ``python -m repro.bench``
drives them from the command line; the ``benchmarks/`` directory wires
them into pytest-benchmark.
"""

from repro.bench import (
    ablations,
    calibration,
    fig6,
    fig7,
    fullmix,
    serve,
    sweep,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
    table9,
)
from repro.bench.common import ltpg_config, scaled, tpcc_bench
from repro.bench.reporting import format_table, mtps, us
from repro.bench.runner import (
    SteadyStateResult,
    steady_state_baseline_run,
    steady_state_run,
)

__all__ = [
    "ablations",
    "calibration",
    "fig6",
    "fig7",
    "fullmix",
    "serve",
    "sweep",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
    "table9",
    "ltpg_config",
    "scaled",
    "tpcc_bench",
    "format_table",
    "mtps",
    "us",
    "SteadyStateResult",
    "steady_state_baseline_run",
    "steady_state_run",
]

"""Table IV: per-batch latency and data-transmission latency (us),
LTPG vs GaccO, at {8, 64} warehouses x {8192, 65536} batch.

Expected shape: LTPG's batch latency is 2-6x lower than GaccO's (no
preprocessing/sort, smaller transfers), and its transmission latency is
several times lower (read/write-sets + flags vs secondary-copy sync).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines import GaccoEngine
from repro.bench.common import DEFAULT_ROUNDS, ltpg_config, tpcc_bench
from repro.bench.reporting import format_table
from repro.bench.runner import steady_state_baseline_run, steady_state_run

CONFIGS: tuple[tuple[int, int], ...] = (
    (8, 8_192),
    (8, 65_536),
    (64, 8_192),
    (64, 65_536),
)


@dataclass
class Table4Result:
    """(latency_us, transfer_us)[(system, warehouses, batch)]"""

    cells: dict[tuple[str, int, int], tuple[float, float]] = field(
        default_factory=dict
    )

    def format(self) -> str:
        headers = ["system"] + [f"{w}/{b}" for w, b in CONFIGS]
        rows = []
        for system in ("ltpg", "gacco"):
            row: list[object] = [system]
            for w, b in CONFIGS:
                lat, xfer = self.cells.get((system, w, b), (float("nan"),) * 2)
                row.append(f"{lat:,.0f}, {xfer:,.0f}")
            rows.append(row)
        return format_table(
            "Table IV: per-batch latency, transmission latency (us)",
            headers,
            rows,
            note="cell = batch latency, data-transmission latency",
        )


def run(
    scale: float = 8.0,
    rounds: int = DEFAULT_ROUNDS,
    configs: tuple[tuple[int, int], ...] = CONFIGS,
    seed: int = 7,
) -> Table4Result:
    result = Table4Result()
    for warehouses, batch in configs:
        bench = tpcc_bench(
            warehouses, neworder_pct=50, batch_size=batch, scale=scale, seed=seed
        )
        engine = bench.engine(ltpg_config(bench.batch_size))
        r = steady_state_run(engine, bench.generator, bench.batch_size, rounds)
        result.cells[("ltpg", warehouses, batch)] = (
            r.mean_latency_us,
            r.mean_transfer_us,
        )
        bench_g = tpcc_bench(
            warehouses, neworder_pct=50, batch_size=batch, scale=scale, seed=seed
        )
        gacco = GaccoEngine(bench_g.database, bench_g.registry)
        rg = steady_state_baseline_run(
            gacco, bench_g.generator, bench_g.batch_size, rounds
        )
        result.cells[("gacco", warehouses, batch)] = (
            rg.mean_latency_us,
            rg.mean_transfer_us,
        )
    return result

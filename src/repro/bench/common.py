"""Shared setup helpers for the benchmark harnesses.

Every experiment accepts a ``scale`` divisor that shrinks the batch size
and the item-table size *together*, preserving the contention ratios
(``E = T/D`` and the stock birthday-collision rate) that the paper's
commit rates depend on.  ``scale=1`` is the paper's full configuration;
the pytest benchmarks default to a larger divisor so the whole suite
runs in minutes (see EXPERIMENTS.md for full-scale instructions).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import LTPGConfig
from repro.core.engine import LTPGEngine
from repro.gpusim.device import Device
from repro.shard import ShardedEngine, make_engine
from repro.storage.database import Database
from repro.txn.procedures import ProcedureRegistry
from repro.workloads.tpcc import (
    DELAYED_COLUMNS,
    HOT_TABLES,
    SPLIT_COLUMNS,
    TpccGenerator,
    TpccMix,
    build_tpcc,
)

#: The paper's headline configuration.
PAPER_BATCH = 16_384
PAPER_ITEMS = 100_000

#: Default measurement length (the paper runs 5,000 batches; a handful
#: is enough for the simulated clock, which has no warm-up noise).
DEFAULT_ROUNDS = 4


def scaled(value: int, scale: float, minimum: int = 1) -> int:
    """``value / scale`` with a floor, for contention-preserving scaling."""
    return max(minimum, int(round(value / scale)))


def ltpg_config(batch_size: int, **overrides) -> LTPGConfig:
    """An LTPG configuration with the TPC-C optimization markings."""
    defaults = dict(
        batch_size=batch_size,
        delayed_columns=DELAYED_COLUMNS,
        split_columns=SPLIT_COLUMNS,
        hot_tables=HOT_TABLES,
    )
    defaults.update(overrides)
    return LTPGConfig(**defaults)


@dataclass
class TpccBench:
    """One ready-to-run TPC-C setup."""

    database: Database
    registry: ProcedureRegistry
    generator: TpccGenerator
    batch_size: int

    def engine(
        self, config: LTPGConfig | None = None, device: Device | None = None
    ) -> LTPGEngine | ShardedEngine:
        """An engine honoring ``config.shards`` (the sharded wrapper for
        N > 1, the plain engine otherwise)."""
        return make_engine(
            self.database,
            self.registry,
            config or ltpg_config(self.batch_size),
            device=device,
        )


def tpcc_bench(
    warehouses: int,
    neworder_pct: int = 50,
    batch_size: int = PAPER_BATCH,
    scale: float = 1.0,
    seed: int = 7,
    num_items: int = PAPER_ITEMS,
) -> TpccBench:
    """Build a scaled TPC-C benchmark setup."""
    batch = scaled(batch_size, scale, minimum=32)
    items = scaled(num_items, scale, minimum=512)
    db, registry, generator = build_tpcc(
        warehouses=warehouses,
        num_items=items,
        mix=TpccMix.neworder_percentage(neworder_pct),
        seed=seed,
    )
    return TpccBench(db, registry, generator, batch)

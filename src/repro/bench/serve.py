"""Serve-mode bench: end-to-end client latency under the async ingress.

Every other harness in this package feeds the engine pre-assembled
batches, so the only latency it can report is batch residency.  This
one measures what a *client* sees — queue wait while the batch forms,
plus execution — by driving each workload through
:mod:`repro.serve`'s open-loop simulation and reporting nearest-rank
p50/p95/p99 over per-request latencies, alongside goodput (committed
transactions per simulated second).

Unlike ``BENCH_wallclock.json`` these numbers live entirely on the
virtual clock: they are **machine-independent and deterministic** for a
fixed seed set, which is why ``scripts/check_wallclock.py``'s serve
gate can hold p99 to a tight factor without flake, on any host.

Writes ``BENCH_serve.json``; run via ``python -m repro.bench serve``.
"""

from __future__ import annotations

import json
import platform
import sys
from dataclasses import dataclass, field

from repro.bench.reporting import format_table

#: (policy name, max queue wait in us or None for size-only) per row.
#: 25 us is deliberately tighter than the ~32 us a full batch takes to
#: arrive at the default rate, so the deadline policies actually cut
#: early and the latency/throughput trade-off shows up in the table.
POLICY_ROWS: tuple[tuple[str, int | None], ...] = (
    ("size", None),
    ("deadline", 25),
    ("hybrid", 25),
)

WORKLOADS = ("tpcc", "ycsb", "smallbank")

#: The gate cell: production-default policy on the headline workload.
GATE_WORKLOAD = "tpcc"
GATE_POLICY = "hybrid"

#: Open-loop load per cell at scale 1 (divided by ``scale``).
BASE_REQUESTS = 4096
ARRIVAL_RATE_PER_S = 2e6
BATCH_SIZE = 64
MAX_WAIT_US = 25
SEED = 7
ARRIVAL_SEED = 23


def measure_cell(
    workload: str,
    policy: str,
    *,
    requests: int,
    max_wait_us: int | None = MAX_WAIT_US,
) -> dict:
    """One (workload, policy) open-loop run -> JSON-ready row."""
    from repro.serve.api import simulate_serve

    report = simulate_serve(
        workload,
        batch_size=BATCH_SIZE,
        seed=SEED,
        policy=policy,
        max_wait_us=max_wait_us if max_wait_us is not None else MAX_WAIT_US,
        mode="open",
        num_requests=requests,
        rate_per_s=ARRIVAL_RATE_PER_S,
        arrival_seed=ARRIVAL_SEED,
    )
    total = report.submitted + report.shed
    return {
        "workload": workload,
        "policy": policy,
        "requests": total,
        "shed_pct": 100.0 * report.shed / total if total else 0.0,
        "committed": report.committed,
        "retries": report.retries,
        "batches": report.batches,
        "mean_batch": round(report.mean_batch_size, 2),
        "goodput_mtps": report.goodput_tps / 1e6,
        "p50_us": report.latency["p50"] / 1e3,
        "p95_us": report.latency["p95"] / 1e3,
        "p99_us": report.latency["p99"] / 1e3,
        "max_us": report.latency["max"] / 1e3,
        "queue_p99_us": report.queue_wait["p99"] / 1e3,
    }


@dataclass
class ServeBenchResult:
    """All cells of the serve sweep, plus run provenance."""

    rows: list[dict] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    def row(self, workload: str, policy: str) -> dict:
        for row in self.rows:
            if row["workload"] == workload and row["policy"] == policy:
                return row
        raise KeyError(f"no serve row for ({workload}, {policy})")

    def format(self) -> str:
        headers = [
            "workload", "policy", "req", "shed%", "commit", "retry",
            "batches", "mean", "Mtps", "p50us", "p95us", "p99us",
        ]
        table_rows = [
            [
                r["workload"], r["policy"], r["requests"],
                r["shed_pct"], r["committed"], r["retries"], r["batches"],
                r["mean_batch"], r["goodput_mtps"], r["p50_us"],
                r["p95_us"], r["p99_us"],
            ]
            for r in self.rows
        ]
        return format_table(
            "Serve: open-loop client latency by batch policy "
            "(virtual clock, deterministic)",
            headers,
            table_rows,
            note="latency = queue wait + batch residency + execute; "
            "goodput = committed / simulated second",
        )

    def write(self, path: str) -> None:
        payload = {"meta": self.meta, "rows": self.rows}
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")


def run(scale: float = 8.0, rounds: int = 1) -> ServeBenchResult:
    """Sweep every (workload, policy) cell at ``BASE_REQUESTS/scale``
    open-loop requests.  ``rounds > 1`` re-runs each cell and *asserts*
    bit-identical rows — a built-in determinism audit, not averaging
    (there is no noise to average on a virtual clock)."""
    requests = max(int(BASE_REQUESTS / scale), 64)
    result = ServeBenchResult(
        meta={
            "requests_per_cell": requests,
            "arrival_rate_per_s": ARRIVAL_RATE_PER_S,
            "batch_size": BATCH_SIZE,
            "max_wait_us": MAX_WAIT_US,
            "seed": SEED,
            "arrival_seed": ARRIVAL_SEED,
            "scale": scale,
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "clock": "virtual (machine-independent)",
        }
    )
    for workload in WORKLOADS:
        for policy, max_wait_us in POLICY_ROWS:
            row = measure_cell(
                workload, policy, requests=requests, max_wait_us=max_wait_us
            )
            for _ in range(max(rounds - 1, 0)):
                again = measure_cell(
                    workload, policy,
                    requests=requests, max_wait_us=max_wait_us,
                )
                if again != row:
                    raise AssertionError(
                        f"serve cell ({workload}, {policy}) is not "
                        "deterministic across rounds"
                    )
            result.rows.append(row)
    return result


def run_and_write(
    scale: float = 8.0,
    rounds: int = 1,
    path: str = "BENCH_serve.json",
) -> ServeBenchResult:
    """CLI entry point: run the sweep and emit ``BENCH_serve.json``."""
    result = run(scale=scale, rounds=rounds)
    result.write(path)
    return result

"""Benchmark runners shared by every table/figure harness.

The paper measures TPS by running "5,000 transaction batches
back-to-back" at a fixed batch size, with aborted transactions merging
into later (still full) batches.  :func:`steady_state_run` reproduces
that: each round tops the scheduler up with fresh transactions so every
batch is full, and throughput is committed work over simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.engine import LTPGEngine
from repro.core.stats import RunStats
from repro.errors import BenchmarkError
from repro.txn.batch import BatchScheduler


@dataclass(frozen=True)
class SteadyStateResult:
    """Aggregated outcome of a steady-state run."""

    run: RunStats
    #: device wall-clock of the whole run; under batch-to-batch
    #: pipelining this is less than the sum of per-batch latencies
    makespan_ns: float = 0.0
    #: metrics-registry snapshot when the engine ran with
    #: ``LTPGConfig.trace`` (None on untraced runs)
    metrics: dict | None = None

    @property
    def tps(self) -> float:
        if self.makespan_ns > 0:
            return self.run.total_committed / (self.makespan_ns * 1e-9)
        return self.run.throughput_tps

    @property
    def mtps(self) -> float:
        """Throughput in the paper's 10^6 TXs/s unit (makespan-based,
        so overlapped pipeline batches are not double-counted)."""
        return self.tps / 1e6

    @property
    def commit_rate(self) -> float:
        return self.run.mean_commit_rate

    @property
    def mean_latency_us(self) -> float:
        return self.run.mean_latency_ns / 1e3

    @property
    def mean_transfer_us(self) -> float:
        if not self.run.batches:
            return 0.0
        total = sum(b.transfer_ns for b in self.run.batches)
        return total / len(self.run.batches) / 1e3


def steady_state_run(
    engine: LTPGEngine,
    generator,
    batch_size: int,
    num_batches: int,
) -> SteadyStateResult:
    """Run ``num_batches`` full batches; retries merge with fresh load."""
    if num_batches <= 0:
        raise BenchmarkError("need at least one batch")
    scheduler = BatchScheduler(
        batch_size, retry_delay_batches=engine.config.effective_retry_delay
    )
    run = RunStats()
    start_ns = engine.device.elapsed_ns()
    for _ in range(num_batches):
        shortfall = batch_size - min(scheduler.eligible_backlog, batch_size)
        if shortfall > 0:
            scheduler.admit(generator.make_batch(shortfall))
        batch = scheduler.next_batch()
        result = engine.run_batch(batch)
        scheduler.requeue_aborted(result.aborted)
        run.add(result.stats)
    makespan = engine.device.elapsed_ns() - start_ns
    metrics = engine.metrics.snapshot() if engine.metrics is not None else None
    return SteadyStateResult(run=run, makespan_ns=makespan, metrics=metrics)


def steady_state_baseline_run(
    engine,
    generator,
    batch_size: int,
    num_batches: int,
) -> SteadyStateResult:
    """Steady-state driver for a :class:`BaselineEngine` (same topping-up
    semantics; retries are whatever the engine marked ABORTED)."""
    from repro.txn.transaction import TxnStatus, assign_tids

    if num_batches <= 0:
        raise BenchmarkError("need at least one batch")
    run = RunStats()
    pending: list = []
    next_tid = 0
    for _ in range(num_batches):
        if len(pending) < batch_size:
            fresh = generator.make_batch(batch_size - len(pending))
            next_tid = assign_tids(fresh, next_tid)
            pending.extend(fresh)
        batch = pending[:batch_size]
        pending = pending[batch_size:]
        stats = engine.run_batch(batch)
        run.add(stats)
        retries = sorted(
            (t for t in batch if t.status is TxnStatus.ABORTED),
            key=lambda t: t.tid,
        )
        pending = retries + pending
    return SteadyStateResult(run=run)

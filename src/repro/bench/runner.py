"""Benchmark runners shared by every table/figure harness.

The paper measures TPS by running "5,000 transaction batches
back-to-back" at a fixed batch size, with aborted transactions merging
into later (still full) batches.  :func:`steady_state_run` reproduces
that: each round tops the scheduler up with fresh transactions so every
batch is full, and throughput is committed work over simulated time.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass

from repro.core.engine import LTPGEngine
from repro.core.stats import RunStats
from repro.errors import BenchmarkError
from repro.txn.batch import BatchScheduler


@dataclass(frozen=True)
class SteadyStateResult:
    """Aggregated outcome of a steady-state run."""

    run: RunStats
    #: device wall-clock of the whole run; under batch-to-batch
    #: pipelining this is less than the sum of per-batch latencies
    makespan_ns: float = 0.0
    #: metrics-registry snapshot when the engine ran with
    #: ``LTPGConfig.trace`` (None on untraced runs)
    metrics: dict | None = None

    @property
    def tps(self) -> float:
        if self.makespan_ns > 0:
            return self.run.total_committed / (self.makespan_ns * 1e-9)
        return self.run.throughput_tps

    @property
    def mtps(self) -> float:
        """Throughput in the paper's 10^6 TXs/s unit (makespan-based,
        so overlapped pipeline batches are not double-counted)."""
        return self.tps / 1e6

    @property
    def commit_rate(self) -> float:
        return self.run.mean_commit_rate

    @property
    def mean_latency_us(self) -> float:
        return self.run.mean_latency_ns / 1e3

    @property
    def mean_transfer_us(self) -> float:
        if not self.run.batches:
            return 0.0
        total = sum(b.transfer_ns for b in self.run.batches)
        return total / len(self.run.batches) / 1e3


class _AssemblyPrefetcher:
    """Assemble batch *k+1* on a thread while batch *k* executes.

    The workload generators draw their RNG per ``make_batch`` call, so
    replaying an identical run requires the prefetcher to issue the
    exact same sequence of shortfall sizes the synchronous loop would.
    That sequence is knowable one batch early only when the retry delay
    is at least two: right after ``next_batch()`` forms batch *k*, any
    aborts batch *k* will produce become eligible at index ``k + delay
    >= k + 2``, so the eligible backlog — and with it the next
    shortfall — is already final.  :func:`steady_state_run` therefore
    only engages the prefetcher at ``effective_retry_delay >= 2`` and
    verifies the precomputed size at the top of every iteration.

    The generator is only ever touched from this thread while the
    prefetcher is engaged, so its RNG stream stays single-threaded.
    """

    def __init__(self, generator):
        self._gen = generator
        self._req: queue.Queue = queue.Queue(maxsize=1)
        self._res: queue.Queue = queue.Queue(maxsize=1)
        self._thread = threading.Thread(
            target=self._loop, name="assembly-prefetch", daemon=True
        )
        self._thread.start()

    def _loop(self) -> None:
        while True:
            size = self._req.get()
            if size is None:
                return
            try:
                self._res.put(self._gen.make_batch(size) if size > 0 else [])
            except BaseException as exc:  # noqa: B036 - re-raised in take()
                self._res.put(exc)

    def submit(self, size: int) -> None:
        self._req.put(size)

    def take(self) -> list:
        out = self._res.get()
        if isinstance(out, BaseException):
            raise out
        return out

    def close(self) -> None:
        self._req.put(None)
        self._thread.join(timeout=10)


def steady_state_run(
    engine: LTPGEngine,
    generator,
    batch_size: int,
    num_batches: int,
) -> SteadyStateResult:
    """Run ``num_batches`` full batches; retries merge with fresh load.

    With ``LTPGConfig.prefetch_assembly`` the assembly of batch *k+1*
    (generator RNG draws, parameter tuples) overlaps batch *k*'s
    execution on a double-buffer thread; scheduling decisions and
    results are identical either way (see :class:`_AssemblyPrefetcher`).
    """
    if num_batches <= 0:
        raise BenchmarkError("need at least one batch")
    scheduler = BatchScheduler(
        batch_size, retry_delay_batches=engine.config.effective_retry_delay
    )
    # Delay 1 means the next shortfall depends on the current batch's
    # abort count — nothing to overlap; stay synchronous.
    prefetcher = (
        _AssemblyPrefetcher(generator)
        if engine.config.prefetch_assembly
        and engine.config.effective_retry_delay >= 2
        else None
    )
    run = RunStats()
    start_ns = engine.device.elapsed_ns()
    prefetched_size: int | None = None
    try:
        for k in range(num_batches):
            shortfall = batch_size - min(scheduler.eligible_backlog, batch_size)
            if prefetched_size is not None:
                if prefetched_size != shortfall:
                    raise BenchmarkError(
                        "prefetched batch size diverged from the "
                        f"scheduler's shortfall ({prefetched_size} != "
                        f"{shortfall}); assembly prefetch requires "
                        "retry_delay_batches >= 2"
                    )
                fresh = prefetcher.take()
            elif shortfall > 0:
                fresh = generator.make_batch(shortfall)
            else:
                fresh = []
            if fresh:
                scheduler.admit(fresh)
            batch = scheduler.next_batch()
            if prefetcher is not None and k + 1 < num_batches:
                prefetched_size = batch_size - min(
                    scheduler.eligible_backlog, batch_size
                )
                prefetcher.submit(prefetched_size)
            else:
                prefetched_size = None
            result = engine.run_batch(batch)
            scheduler.requeue_aborted(result.aborted)
            run.add(result.stats)
    finally:
        if prefetcher is not None:
            prefetcher.close()
    makespan = engine.device.elapsed_ns() - start_ns
    metrics = engine.metrics.snapshot() if engine.metrics is not None else None
    return SteadyStateResult(run=run, makespan_ns=makespan, metrics=metrics)


def steady_state_baseline_run(
    engine,
    generator,
    batch_size: int,
    num_batches: int,
) -> SteadyStateResult:
    """Steady-state driver for a :class:`BaselineEngine` (same topping-up
    semantics; retries are whatever the engine marked ABORTED)."""
    from repro.txn.transaction import TxnStatus, assign_tids

    if num_batches <= 0:
        raise BenchmarkError("need at least one batch")
    run = RunStats()
    pending: list = []
    next_tid = 0
    for _ in range(num_batches):
        if len(pending) < batch_size:
            fresh = generator.make_batch(batch_size - len(pending))
            next_tid = assign_tids(fresh, next_tid)
            pending.extend(fresh)
        batch = pending[:batch_size]
        pending = pending[batch_size:]
        stats = engine.run_batch(batch)
        run.add(stats)
        retries = sorted(
            (t for t in batch if t.status is TxnStatus.ABORTED),
            key=lambda t: t.tid,
        )
        pending = retries + pending
    return SteadyStateResult(run=run)

"""Table VIII: memory occupancy of standard vs large hash tables (%),
for 8-64 warehouses.

Expected shape: large (dynamic) buckets — allocated only for the tiny
popular tables (warehouse, district) — occupy a fraction of a percent
of total conflict-log memory, roughly constant in the warehouse count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.common import ltpg_config, tpcc_bench
from repro.bench.reporting import format_table
from repro.bench.runner import steady_state_run

WAREHOUSES: tuple[int, ...] = (8, 16, 32, 64)


@dataclass
class Table8Result:
    """(large_pct, standard_pct) per warehouse count."""

    pct: dict[int, tuple[float, float]] = field(default_factory=dict)

    def format(self) -> str:
        headers = ["bucket size"] + [str(w) for w in WAREHOUSES]
        large_row: list[object] = ["large"]
        std_row: list[object] = ["standard"]
        for w in WAREHOUSES:
            large, standard = self.pct.get(w, (float("nan"),) * 2)
            large_row.append(f"{large:.3f}")
            std_row.append(f"{standard:.3f}")
        return format_table(
            "Table VIII: hash-table memory occupancy (%)",
            headers,
            [large_row, std_row],
        )


def run(
    scale: float = 8.0,
    warehouses: tuple[int, ...] = WAREHOUSES,
    seed: int = 7,
) -> Table8Result:
    result = Table8Result()
    for w in warehouses:
        bench = tpcc_bench(w, neworder_pct=50, scale=scale, seed=seed)
        engine = bench.engine(ltpg_config(bench.batch_size))
        # One batch is enough: occupancy is a static property of the
        # batch's popularity verdicts.
        steady_state_run(engine, bench.generator, bench.batch_size, 1)
        standard, large = engine.conflict_log.memory_report()
        total = max(1, standard + large)
        result.pct[w] = (100.0 * large / total, 100.0 * standard / total)
    return result

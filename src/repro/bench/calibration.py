"""Calibration report: measured vs paper targets for the anchors.

``python -m repro.bench calibration`` re-measures the three calibration
anchors documented in EXPERIMENTS.md and prints measured/target ratios.
Run it after touching any cost constant in
:class:`~repro.gpusim.config.DeviceConfig` or a baseline's class-level
knobs; ratios drifting past ~2x mean the shapes in the paper tables are
at risk.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines import make_engine
from repro.bench import table7
from repro.bench.common import ltpg_config, tpcc_bench
from repro.bench.reporting import format_table
from repro.bench.runner import steady_state_baseline_run, steady_state_run

#: Paper Table II, 50% NewOrder / 8 warehouses column (10^6 TXs/s).
PAPER_50_8 = {
    "ltpg": 18.41,
    "gacco": 16.06,
    "bamboo": 4.30,
    "dbx1000": 2.64,
    "pwv": 1.27,
    "aria": 0.60,
    "calvin": 0.39,
    "gputx": 0.02,
    "bohm": 0.02,
}

#: Paper Table VII anchors: (grid, block, hash, s_u) -> mark latency us.
PAPER_TABLE7 = {
    (1024, 1024, 1, 1): 638.0,
    (1024, 1024, 1, 32): 105.0,
    (512, 512, 32, 1): 76.0,
    (512, 512, 32, 32): 37.0,
}


@dataclass
class CalibrationResult:
    rows: list[tuple[str, float, float]] = field(default_factory=list)

    def record(self, anchor: str, measured: float, target: float) -> None:
        self.rows.append((anchor, measured, target))

    def worst_ratio(self) -> float:
        worst = 1.0
        for _, measured, target in self.rows:
            if measured <= 0 or target <= 0:
                return float("inf")
            ratio = max(measured / target, target / measured)
            worst = max(worst, ratio)
        return worst

    def format(self) -> str:
        table_rows = []
        for anchor, measured, target in self.rows:
            ratio = measured / target if target else float("nan")
            table_rows.append([anchor, measured, target, f"{ratio:.2f}x"])
        return format_table(
            "Calibration anchors: measured vs paper",
            ["anchor", "measured", "paper", "ratio"],
            table_rows,
            note=f"worst-case deviation: {self.worst_ratio():.2f}x",
        )


def run(
    scale: float = 8.0,
    rounds: int = 3,
    systems: tuple[str, ...] = tuple(PAPER_50_8),
) -> CalibrationResult:
    result = CalibrationResult()
    for system in systems:
        bench = tpcc_bench(8, neworder_pct=50, scale=scale)
        if system == "ltpg":
            engine = bench.engine(ltpg_config(bench.batch_size))
            r = steady_state_run(engine, bench.generator, bench.batch_size, rounds)
        else:
            engine = make_engine(system, bench.database, bench.registry)
            r = steady_state_baseline_run(
                engine, bench.generator, bench.batch_size, rounds
            )
        result.record(f"TableII 50-8 {system} (MTPS)", r.mtps, PAPER_50_8[system])
    t7 = table7.run()
    for key, target in PAPER_TABLE7.items():
        measured = t7.cells[key].mark_us
        grid, block, h, su = key
        result.record(
            f"TableVII {grid}x{block} hash={h} su={su} (us)", measured, target
        )
    return result

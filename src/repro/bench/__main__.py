"""Command-line driver: ``python -m repro.bench <experiment> [options]``.

Experiments: table2 table3 table4 table5 table6 table7 table8 table9
fig6a fig6b fig7 ablations fullmix sweep calibration wallclock serve all.

``--scale N`` divides batch and item-table sizes by N (contention
ratios are preserved; see EXPERIMENTS.md).  ``--scale 1`` reproduces
the paper's full configuration and can take hours in pure Python.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench import (
    ablations,
    calibration,
    fig6,
    fig7,
    fullmix,
    serve,
    sweep,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
    table9,
    wallclock,
)


def _runners(scale: float, rounds: int, backend: str | None = None):
    return {
        "table2": lambda: table2.run(scale=scale, rounds=rounds),
        "table3": lambda: table3.run(scale=scale, rounds=rounds),
        "table4": lambda: table4.run(scale=scale, rounds=rounds),
        "table5": lambda: table5.run(scale=scale, rounds=rounds),
        "table6": lambda: table6.run(scale=scale, rounds=rounds),
        "table7": lambda: table7.run(),
        "table8": lambda: table8.run(scale=scale),
        "table9": lambda: table9.run(scale=max(scale, 16.0), rounds=min(rounds, 2)),
        "fig6a": lambda: fig6.run_a(scale=scale, rounds=rounds),
        "fig6b": lambda: fig6.run_b(scale=scale, rounds=rounds),
        "fig7": lambda: fig7.run(scale=scale, rounds=min(rounds, 3)),
        "ablations": lambda: ablations.run(scale=scale, rounds=rounds),
        "fullmix": lambda: fullmix.run(scale=scale, rounds=rounds),
        "calibration": lambda: calibration.run(scale=scale, rounds=rounds),
        "sweep": lambda: sweep.run(scale=scale, rounds=rounds),
        # Host wall-clock (not simulated time); writes BENCH_wallclock.json.
        "wallclock": lambda: wallclock.run_and_write(
            scale=scale, rounds=rounds, backend=backend
        ),
        # End-to-end client latency through the async ingress (virtual
        # clock, deterministic); writes BENCH_serve.json.
        "serve": lambda: serve.run_and_write(scale=scale, rounds=rounds),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench", description=__doc__
    )
    parser.add_argument("experiment", help="table2..table9, fig6a, fig6b, fig7, ablations, fullmix, sweep, calibration, wallclock, serve, all")
    parser.add_argument(
        "--scale",
        type=float,
        default=8.0,
        help="divide batch/item sizes by this factor (1 = paper scale)",
    )
    parser.add_argument(
        "--rounds", type=int, default=4, help="measured batches per cell"
    )
    parser.add_argument(
        "--backend",
        default=None,
        help="add a batched[<backend>] column to the wallclock sweep "
        "(repro.xp backend name; skipped when not constructible here)",
    )
    args = parser.parse_args(argv)
    runners = _runners(args.scale, args.rounds, args.backend)
    names = list(runners) if args.experiment == "all" else [args.experiment]
    for name in names:
        if name not in runners:
            parser.error(f"unknown experiment {name!r}; choose from {list(runners)}")
        start = time.time()
        result = runners[name]()
        print(result.format())
        print(f"[{name}: {time.time() - start:.1f}s wall]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Table VI: effect of the high-contention optimizations on commit
rates, at {32, 8} warehouses x {16384, 4096} batch, 50/50 mix.

Expected shape: NewOrder commit rate is unchanged by the optimizations
(~63-88%, set by stock collisions), while Payment's commit rate jumps
from ~(warehouses/payments) — essentially zero — to 50-65%, lifting the
overall rate by 25-30 points.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.common import DEFAULT_ROUNDS, ltpg_config, tpcc_bench
from repro.bench.reporting import format_table
from repro.bench.runner import steady_state_run

CONFIGS: tuple[tuple[int, int], ...] = (
    (32, 16_384),
    (32, 4_096),
    (8, 16_384),
    (8, 4_096),
)


@dataclass
class Table6Cell:
    committed_total: float
    committed_neworder: float
    committed_payment: float
    rate_total: float
    rate_neworder: float
    rate_payment: float


@dataclass
class Table6Result:
    cells: dict[tuple[int, int, bool], Table6Cell] = field(default_factory=dict)

    def format(self) -> str:
        headers = [
            "scale/batch",
            "optimized",
            "commits (all, NO, Pay)",
            "rate % (all, NO, Pay)",
        ]
        rows = []
        for (w, b, opt), c in sorted(
            self.cells.items(), key=lambda kv: (-kv[0][0], -kv[0][1], not kv[0][2])
        ):
            rows.append(
                [
                    f"{w}/{b}",
                    "yes" if opt else "no",
                    f"{c.committed_total:,.0f}, {c.committed_neworder:,.0f}, "
                    f"{c.committed_payment:,.0f}",
                    f"{100 * c.rate_total:.1f}, {100 * c.rate_neworder:.1f}, "
                    f"{100 * c.rate_payment:.2f}",
                ]
            )
        return format_table(
            "Table VI: commit rate with/without high-contention optimization",
            headers,
            rows,
        )


def run(
    scale: float = 8.0,
    rounds: int = DEFAULT_ROUNDS,
    configs: tuple[tuple[int, int], ...] = CONFIGS,
    seed: int = 7,
) -> Table6Result:
    result = Table6Result()
    for warehouses, batch in configs:
        for optimized in (True, False):
            bench = tpcc_bench(
                warehouses,
                neworder_pct=50,
                batch_size=batch,
                scale=scale,
                seed=seed,
            )
            config = ltpg_config(bench.batch_size)
            if not optimized:
                config = config.without_optimizations()
            engine = bench.engine(config)
            r = steady_state_run(engine, bench.generator, bench.batch_size, rounds)
            batches = r.run.batches
            n = len(batches)

            def mean(fn) -> float:
                return sum(fn(b) for b in batches) / n

            result.cells[(warehouses, batch, optimized)] = Table6Cell(
                committed_total=mean(lambda b: b.committed),
                committed_neworder=mean(
                    lambda b: b.committed_by_proc.get("neworder", 0)
                ),
                committed_payment=mean(
                    lambda b: b.committed_by_proc.get("payment", 0)
                ),
                rate_total=mean(lambda b: b.commit_rate),
                rate_neworder=mean(lambda b: b.commit_rate_of("neworder")),
                rate_payment=mean(lambda b: b.commit_rate_of("payment")),
            )
    return result

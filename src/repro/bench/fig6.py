"""Fig. 6: (a) commit rate and latency vs batch size; (b) throughput as
the optimizations are enabled one by one.

Expected shapes (paper):

* 6(a) — latency grows from ~hundreds of microseconds to milliseconds
  across batch sizes 2^8..2^16 while the commit rate stays in the
  50-75%% band.
* 6(b) — relative to the unenhanced engine: batch pipelining adds
  10-15%%, the high-contention bundle (reordering + split flags +
  delayed updates) contributes ~1.75x, and the dynamic hash buckets a
  further 5-10%%.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.bench.common import DEFAULT_ROUNDS, ltpg_config, tpcc_bench
from repro.bench.reporting import format_table
from repro.bench.runner import steady_state_run
from repro.core.pipeline import pipelined

BATCH_SIZES: tuple[int, ...] = tuple(2**k for k in (8, 10, 12, 14, 16))

#: Cumulative optimization steps for Fig 6(b).  Pipelining is measured
#: last: its 10-15% transfer-overlap gain is only observable once the
#: high-contention optimizations stabilize the commit rate (in the
#: unenhanced engine the ever-growing retry backlog swamps it).
STEPS: tuple[str, ...] = (
    "baseline",
    "+high-contention",
    "+hash-buckets",
    "+pipeline",
)


@dataclass
class Fig6aResult:
    commit_rate: dict[int, float] = field(default_factory=dict)
    latency_us: dict[int, float] = field(default_factory=dict)

    def format(self) -> str:
        headers = ["batch size", "commit rate %", "latency (us)"]
        rows = [
            [b, 100 * self.commit_rate[b], self.latency_us[b]]
            for b in sorted(self.commit_rate)
        ]
        return format_table(
            "Fig 6(a): commit rate and latency vs batch size", headers, rows
        )


@dataclass
class Fig6bResult:
    mtps: dict[str, float] = field(default_factory=dict)

    def format(self) -> str:
        base = self.mtps.get(STEPS[0], 0.0) or 1.0
        headers = ["configuration", "throughput (10^6 TXs/s)", "vs baseline"]
        rows = [
            [step, self.mtps[step], f"{self.mtps[step] / base:.2f}x"]
            for step in STEPS
            if step in self.mtps
        ]
        return format_table(
            "Fig 6(b): impact of enabling optimizations one by one",
            headers,
            rows,
        )


def run_a(
    scale: float = 8.0,
    rounds: int = DEFAULT_ROUNDS,
    warehouses: int = 32,
    batch_sizes: tuple[int, ...] = BATCH_SIZES,
    seed: int = 7,
) -> Fig6aResult:
    result = Fig6aResult()
    for batch in batch_sizes:
        bench = tpcc_bench(
            warehouses, neworder_pct=50, batch_size=batch, scale=scale, seed=seed
        )
        engine = bench.engine(ltpg_config(bench.batch_size))
        r = steady_state_run(engine, bench.generator, bench.batch_size, rounds)
        result.commit_rate[batch] = r.commit_rate
        result.latency_us[batch] = r.mean_latency_us
    return result


def _step_config(step_index: int, batch_size: int):
    """Cumulative configurations for Fig 6(b)."""
    config = ltpg_config(batch_size).without_optimizations()
    if step_index >= 1:
        config = dataclasses.replace(
            config,
            logical_reordering=True,
            split_flags=True,
            delayed_update=True,
        )
    if step_index >= 2:
        config = dataclasses.replace(
            config, dynamic_buckets=True, adaptive_warps=True
        )
    if step_index >= 3:
        config = dataclasses.replace(config, pipelined=True)
    return config


def run_b(
    scale: float = 8.0,
    rounds: int = DEFAULT_ROUNDS,
    warehouses: int = 32,
    batch_size: int = 16_384,
    seed: int = 7,
) -> Fig6bResult:
    # The unenhanced configurations re-abort hot Payments for many
    # batches before reaching steady state; measure long enough that
    # the transient washes out of every step equally.
    rounds = max(rounds, 8)
    result = Fig6bResult()
    for i, step in enumerate(STEPS):
        bench = tpcc_bench(
            warehouses, neworder_pct=50, batch_size=batch_size, scale=scale, seed=seed
        )
        config = _step_config(i, bench.batch_size)
        engine = bench.engine(config)
        if config.pipelined:
            with pipelined(engine):
                r = steady_state_run(
                    engine, bench.generator, bench.batch_size, rounds
                )
        else:
            r = steady_state_run(engine, bench.generator, bench.batch_size, rounds)
        result.mtps[step] = r.mtps
    return result

"""Fig. 7: YCSB A-E throughput across batch sizes and data sizes.

The paper uses a Zipfian distribution with alpha = 2.5 (extreme
contention: ~75%% of key draws hit the hottest record), 10 operations
per transaction, and data cardinalities 10^4..10^7.

Expected shape: read-only C is fastest, scan-heavy E slowest (each scan
op touches SCAN_LENGTH rows through the pre-resolved-key path); A/B/D
sit between, with update-heavy A below read-heavy B.  Throughput rises
with batch size as overheads amortize.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.common import scaled
from repro.bench.reporting import format_table
from repro.bench.runner import steady_state_run
from repro.core.config import LTPGConfig
from repro.core.engine import LTPGEngine
from repro.workloads.ycsb import build_ycsb, ycsb_delayed_columns

WORKLOAD_NAMES: tuple[str, ...] = ("a", "b", "c", "d", "e")
BATCH_SIZES: tuple[int, ...] = tuple(2**k for k in (8, 10, 12, 14, 16))
DATA_SIZES: tuple[int, ...] = (10_000, 100_000, 1_000_000, 10_000_000)


@dataclass
class Fig7Result:
    """mtps[(workload, batch_size, data_size)] (paper-label sizes)."""

    mtps: dict[tuple[str, int, int], float] = field(default_factory=dict)

    def format(self) -> str:
        blocks = []
        data_sizes = sorted({k[2] for k in self.mtps})
        batch_sizes = sorted({k[1] for k in self.mtps})
        for n in data_sizes:
            headers = ["workload"] + [f"2^{b.bit_length() - 1}" for b in batch_sizes]
            rows = []
            for wl in WORKLOAD_NAMES:
                row: list[object] = [wl.upper()]
                for b in batch_sizes:
                    row.append(self.mtps.get((wl, b, n), float("nan")))
                rows.append(row)
            blocks.append(
                format_table(
                    f"Fig 7: YCSB throughput (10^6 TXs/s), {n:,} records",
                    headers,
                    rows,
                )
            )
        return "\n\n".join(blocks)


def run(
    scale: float = 8.0,
    rounds: int = 3,
    workloads: tuple[str, ...] = WORKLOAD_NAMES,
    batch_sizes: tuple[int, ...] = (2**10, 2**14),
    data_sizes: tuple[int, ...] = (10_000, 1_000_000),
    zipf_alpha: float = 2.5,
    seed: int = 7,
) -> Fig7Result:
    result = Fig7Result()
    for n in data_sizes:
        records = scaled(n, scale, minimum=256)
        for wl in workloads:
            db, registry, generator = build_ycsb(
                records, workload=wl, zipf_alpha=zipf_alpha, seed=seed
            )
            for batch in batch_sizes:
                bsz = scaled(batch, scale, minimum=32)
                config = LTPGConfig(
                    batch_size=bsz,
                    delayed_columns=ycsb_delayed_columns(),
                    hot_tables=frozenset({"usertable"}),
                )
                engine = LTPGEngine(db, registry, config)
                r = steady_state_run(engine, generator, bsz, rounds)
                result.mtps[(wl, batch, n)] = r.mtps
    return result

"""Full five-transaction TPC-C mix on LTPG (beyond the paper's
NewOrder/Payment focus).

The paper evaluates NewOrder/Payment combinations because they are ~90%
of TPC-C and the only types every comparison system supports; it notes
that OrderStatus, StockLevel and Delivery run through pre-resolved
keys.  This harness exercises the standard full mix
(45/43/4/4/4) end to end and reports per-type commit rates, retry
distribution and latency percentiles — the observability surface a
downstream user would want.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.common import DEFAULT_ROUNDS, ltpg_config, scaled
from repro.bench.reporting import format_table
from repro.bench.runner import steady_state_run
from repro.core.engine import LTPGEngine
from repro.workloads.tpcc import TpccMix, build_tpcc

#: The standard TPC-C transaction mix.
FULL_MIX = TpccMix(
    neworder=0.45, payment=0.43, orderstatus=0.04, stocklevel=0.04, delivery=0.04
)

PROCS = ("neworder", "payment", "orderstatus", "stocklevel", "delivery")


@dataclass
class FullMixResult:
    mtps: float = 0.0
    commit_rate: float = 0.0
    p50_us: float = 0.0
    p99_us: float = 0.0
    per_proc_rate: dict[str, float] = field(default_factory=dict)
    retry_histogram: dict[int, int] = field(default_factory=dict)

    def format(self) -> str:
        headers = ["metric", "value"]
        rows: list[list[object]] = [
            ["throughput (10^6 TXs/s)", self.mtps],
            ["commit rate %", 100 * self.commit_rate],
            ["batch latency p50 (us)", self.p50_us],
            ["batch latency p99 (us)", self.p99_us],
        ]
        for proc in PROCS:
            rows.append(
                [f"{proc} commit %", 100 * self.per_proc_rate.get(proc, 0.0)]
            )
        for attempts in sorted(self.retry_histogram):
            rows.append(
                [f"committed on attempt {attempts}", self.retry_histogram[attempts]]
            )
        return format_table("Full TPC-C mix (45/43/4/4/4) on LTPG", headers, rows)


def run(
    scale: float = 8.0,
    rounds: int = DEFAULT_ROUNDS,
    warehouses: int = 8,
    seed: int = 7,
) -> FullMixResult:
    batch_size = scaled(16_384, scale, minimum=64)
    items = scaled(100_000, scale, minimum=512)
    db, registry, generator = build_tpcc(
        warehouses=warehouses, num_items=items, mix=FULL_MIX, seed=seed
    )
    engine = LTPGEngine(db, registry, ltpg_config(batch_size))
    r = steady_state_run(engine, generator, batch_size, max(rounds, 4))
    result = FullMixResult(
        mtps=r.mtps,
        commit_rate=r.commit_rate,
        p50_us=r.run.latency_percentile(50) / 1e3,
        p99_us=r.run.latency_percentile(99) / 1e3,
    )
    committed: dict[str, int] = {}
    total: dict[str, int] = {}
    retries: dict[int, int] = {}
    for b in r.run.batches:
        for proc, count in b.committed_by_proc.items():
            committed[proc] = committed.get(proc, 0) + count
        for proc, count in b.total_by_proc.items():
            total[proc] = total.get(proc, 0) + count
        for attempts, count in b.commit_attempts.items():
            retries[attempts] = retries.get(attempts, 0) + count
    for proc in PROCS:
        if total.get(proc):
            result.per_proc_rate[proc] = committed.get(proc, 0) / total[proc]
    result.retry_histogram = retries
    return result

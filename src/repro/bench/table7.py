"""Table VII: conflict-log marking/reading latency, standard bucket
(s_u = 1) vs large bucket (s_u = 32).

A synthetic microbenchmark on the simulator: T = grid x block threads
each register a TID into a hash table of H buckets (key = thread id
mod H); large buckets re-hash into ``TID mod s_u`` sub-slots.  Reported
per cell: (mark+read, mark, read) microseconds for s_u = 1 and s_u = 32.

Expected shape: reading is bucket-size-insensitive; marking time is
dominated by the longest same-slot atomic chain, which large buckets cut
by s_u — the benefit grows as the hash table shrinks (more contention).
Absolute marking numbers exceed the paper's because the simulator
charges a fixed per-collision penalty while real hardware coalesces
same-address atomics in L2 (documented in EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bench.reporting import format_table
from repro.gpusim.atomics import collision_profile
from repro.gpusim.device import Device
from repro.gpusim.kernel import LaunchGeometry

GEOMETRIES: tuple[tuple[int, int], ...] = ((1024, 1024), (512, 512))
HASH_SIZES: tuple[int, ...] = (1, 32, 512)
BUCKET_SIZES: tuple[int, ...] = (1, 32)

#: instructions per thread for hashing + bookkeeping in the mark kernel
_MARK_INSTRUCTIONS = 4
_READ_INSTRUCTIONS = 2


@dataclass(frozen=True)
class Triplet:
    total_us: float
    mark_us: float
    read_us: float


@dataclass
class Table7Result:
    """cells[(grid, block, hash_size, bucket_size)] = Triplet"""

    cells: dict[tuple[int, int, int, int], Triplet] = field(default_factory=dict)

    def format(self) -> str:
        headers = ["grid x block"] + [f"hash={h}" for h in HASH_SIZES]
        rows = []
        for grid, block in GEOMETRIES:
            row: list[object] = [f"{grid}x{block}"]
            for h in HASH_SIZES:
                pair = []
                for su in BUCKET_SIZES:
                    t = self.cells[(grid, block, h, su)]
                    pair.append(
                        f"({t.total_us:,.0f},{t.mark_us:,.0f},{t.read_us:,.0f})"
                    )
                row.append(" ".join(pair))
            rows.append(row)
        return format_table(
            "Table VII: bucket latency us — cell = (total,mark,read) for "
            "s_u=1 then s_u=32",
            headers,
            rows,
        )


def _measure(device: Device, grid: int, block: int, hash_size: int, su: int) -> Triplet:
    geometry = LaunchGeometry(grid=grid, block=block)
    threads = geometry.threads
    tids = np.arange(threads, dtype=np.int64)
    # Consecutive warps work on consecutive data items, so a thread's
    # key is decorrelated from its lane id — which is what makes the
    # ``TID mod s_u`` re-hash spread a hot bucket across sub-slots.
    keys = (tids // 32) % hash_size
    slots = keys * su + (tids % su)

    start = device.elapsed_ns()
    with device.kernel("mark", geometry=geometry) as ctx:
        ctx.add_instructions(_MARK_INSTRUCTIONS, per_thread=True)
        ctx.record_atomics(*collision_profile(slots))
    mark_ns = device.elapsed_ns() - start

    start = device.elapsed_ns()
    with device.kernel("read", geometry=geometry) as ctx:
        ctx.add_instructions(_READ_INSTRUCTIONS, per_thread=True)
        ctx.add_global_reads(threads)
    read_ns = device.elapsed_ns() - start

    return Triplet(
        total_us=(mark_ns + read_ns) / 1e3,
        mark_us=mark_ns / 1e3,
        read_us=read_ns / 1e3,
    )


def run(device: Device | None = None) -> Table7Result:
    """This table has no workload dependence; it always runs full-size."""
    device = device or Device()
    result = Table7Result()
    for grid, block in GEOMETRIES:
        for hash_size in HASH_SIZES:
            for su in BUCKET_SIZES:
                result.cells[(grid, block, hash_size, su)] = _measure(
                    device, grid, block, hash_size, su
                )
    return result

"""Table II: throughput of nine systems on TPC-C mixes.

Columns: {50, 100, 0}%% NewOrder x {8, 16, 32, 64} warehouses; cell =
10^6 committed transactions per second.  Expected shape (paper): LTPG
leads GaccO by ~1.2x on mixed and 1.4-1.9x on 100%% NewOrder; GaccO
dominates 100%% Payment via exchange operations; Bamboo > DBx1000 >
PWV > Aria > Calvin > BOHM ~ GPUTx among CPU systems.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines import make_engine
from repro.bench.common import DEFAULT_ROUNDS, ltpg_config, tpcc_bench
from repro.bench.reporting import format_table
from repro.bench.runner import steady_state_baseline_run, steady_state_run

#: Column order matches the paper's header: pct-NewOrder, warehouses.
CONFIGS: tuple[tuple[int, int], ...] = tuple(
    (pct, w) for pct in (50, 100, 0) for w in (8, 16, 32, 64)
)

SYSTEMS: tuple[str, ...] = (
    "dbx1000",
    "bamboo",
    "bohm",
    "pwv",
    "calvin",
    "aria",
    "gputx",
    "gacco",
    "ltpg",
)


@dataclass
class Table2Result:
    """mtps[(system, pct, warehouses)]"""

    mtps: dict[tuple[str, int, int], float] = field(default_factory=dict)

    def configs_present(self) -> list[tuple[int, int]]:
        seen = {(pct, w) for _, pct, w in self.mtps}
        return [cfg for cfg in CONFIGS if cfg in seen]

    def row(self, system: str) -> list[float]:
        return [
            self.mtps.get((system, pct, w), float("nan"))
            for pct, w in self.configs_present()
        ]

    def format(self) -> str:
        configs = self.configs_present()
        headers = ["system"] + [f"{pct}-{w}" for pct, w in configs]
        rows = [
            [system] + self.row(system)
            for system in SYSTEMS
            if any((system, pct, w) in self.mtps for pct, w in configs)
        ]
        return format_table(
            "Table II: TPC-C throughput (10^6 TXs/s)", headers, rows
        )


def run(
    scale: float = 8.0,
    rounds: int = DEFAULT_ROUNDS,
    systems: tuple[str, ...] = SYSTEMS,
    configs: tuple[tuple[int, int], ...] = CONFIGS,
    seed: int = 7,
) -> Table2Result:
    """Regenerate Table II at ``1/scale`` of the paper's batch/item sizes."""
    result = Table2Result()
    for pct, warehouses in configs:
        for system in systems:
            bench = tpcc_bench(
                warehouses, neworder_pct=pct, scale=scale, seed=seed
            )
            if system == "ltpg":
                engine = bench.engine(ltpg_config(bench.batch_size))
                r = steady_state_run(
                    engine, bench.generator, bench.batch_size, rounds
                )
            else:
                baseline = make_engine(system, bench.database, bench.registry)
                r = steady_state_baseline_run(
                    baseline, bench.generator, bench.batch_size, rounds
                )
            result.mtps[(system, pct, warehouses)] = r.mtps
    return result

"""Table V: overhead of copying transaction read/write-sets back to the
CPU, vs batch size {1024, 16384, 65536}.

Expected shape: 25-30 us at 1024 growing roughly linearly to ~300 us at
65536 (fixed DMA latency plus bytes proportional to committed work).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.common import DEFAULT_ROUNDS, ltpg_config, tpcc_bench
from repro.bench.reporting import format_table
from repro.bench.runner import steady_state_run

BATCH_SIZES: tuple[int, ...] = (1_024, 16_384, 65_536)


@dataclass
class Table5Result:
    """rwset copy-back microseconds per batch size (pre-scaling size)."""

    rwset_us: dict[int, float] = field(default_factory=dict)

    def format(self) -> str:
        headers = ["batch size (Txns)"] + [str(b) for b in BATCH_SIZES]
        rows = [["time cost (us)"] + [self.rwset_us.get(b, float("nan")) for b in BATCH_SIZES]]
        return format_table(
            "Table V: read/write-set copy-back overhead", headers, rows
        )


def run(
    scale: float = 8.0,
    rounds: int = DEFAULT_ROUNDS,
    warehouses: int = 32,
    batch_sizes: tuple[int, ...] = BATCH_SIZES,
    seed: int = 7,
) -> Table5Result:
    result = Table5Result()
    for batch in batch_sizes:
        bench = tpcc_bench(
            warehouses, neworder_pct=50, batch_size=batch, scale=scale, seed=seed
        )
        engine = bench.engine(ltpg_config(bench.batch_size))
        r = steady_state_run(engine, bench.generator, bench.batch_size, rounds)
        mean_rwset_ns = sum(b.rwset_ns for b in r.run.batches) / len(r.run.batches)
        result.rwset_us[batch] = mean_rwset_ns / 1e3
    return result

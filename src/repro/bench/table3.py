"""Table III: LTPG's processing capability vs batch size.

Batch sizes 2^8..2^16 across the twelve {pct-NewOrder, warehouses}
configurations.  Expected shape: throughput climbs with batch size as
launch/sync/transfer overheads amortize, peaks near 2^14-2^16, and
dips where per-batch contention (stock collisions at small warehouse
counts) erodes the commit rate — e.g. the paper's 100-8 column peaks
at 2^12-2^14 and falls at 2^16.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.common import DEFAULT_ROUNDS, ltpg_config, tpcc_bench
from repro.bench.reporting import format_table
from repro.bench.runner import steady_state_run
from repro.bench.table2 import CONFIGS

BATCH_SIZES: tuple[int, ...] = tuple(2**k for k in (8, 10, 12, 14, 16))


@dataclass
class Table3Result:
    """mtps[(batch_size, pct, warehouses)] (batch_size pre-scaling)."""

    mtps: dict[tuple[int, int, int], float] = field(default_factory=dict)

    def format(self) -> str:
        headers = ["batch"] + [f"{pct}-{w}" for pct, w in CONFIGS]
        rows = []
        for batch in BATCH_SIZES:
            row: list[object] = [f"2^{batch.bit_length() - 1}"]
            for pct, w in CONFIGS:
                row.append(self.mtps.get((batch, pct, w), float("nan")))
            rows.append(row)
        return format_table(
            "Table III: LTPG throughput vs batch size (10^6 TXs/s)",
            headers,
            rows,
        )


def run(
    scale: float = 8.0,
    rounds: int = DEFAULT_ROUNDS,
    batch_sizes: tuple[int, ...] = BATCH_SIZES,
    configs: tuple[tuple[int, int], ...] = CONFIGS,
    seed: int = 7,
) -> Table3Result:
    result = Table3Result()
    for pct, warehouses in configs:
        for batch in batch_sizes:
            bench = tpcc_bench(
                warehouses,
                neworder_pct=pct,
                batch_size=batch,
                scale=scale,
                seed=seed,
            )
            engine = bench.engine(ltpg_config(bench.batch_size))
            r = steady_state_run(engine, bench.generator, bench.batch_size, rounds)
            result.mtps[(batch, pct, warehouses)] = r.mtps
    return result

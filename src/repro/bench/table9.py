"""Table IX: per-phase time under zero-copy vs unified memory.

The paper runs warehouse scales {32, 512} in zero-copy mode (the
database fits on the device) and {1024, 2048} in unified-memory mode
(it does not), batch 16384.  Expected shape: zero-copy phase times are
flat in database size; unified-memory phase times inflate severely —
especially execution and write-back — because the working set faults
pages in through PCIe.

To keep the harness laptop-sized, the scaled run shrinks the item table
and the simulated device memory together so that the two large scales
genuinely overflow the device, reproducing the paging behaviour rather
than the raw gigabytes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.bench.common import ltpg_config, scaled
from repro.bench.reporting import format_table
from repro.bench.runner import steady_state_run
from repro.core.config import MemoryMode
from repro.core.engine import LTPGEngine
from repro.gpusim.config import DeviceConfig
from repro.gpusim.device import Device
from repro.workloads.tpcc import TpccMix, build_tpcc, tpcc_nbytes
from repro.workloads.tpcc.schema import TpccScale

ZERO_COPY_SCALES: tuple[int, ...] = (32, 512)
UNIFIED_SCALES: tuple[int, ...] = (1024, 2048)


@dataclass
class Table9Result:
    """phase microseconds per warehouse scale."""

    phases: dict[int, dict[str, float]] = field(default_factory=dict)
    modes: dict[int, str] = field(default_factory=dict)

    def format(self) -> str:
        headers = ["scale", "mode", "execute", "conflict", "writeback"]
        rows = []
        for w in sorted(self.phases):
            p = self.phases[w]
            rows.append(
                [
                    w,
                    self.modes[w],
                    p.get("execute", 0.0) / 1e3,
                    p.get("conflict", 0.0) / 1e3,
                    p.get("writeback", 0.0) / 1e3,
                ]
            )
        return format_table(
            "Table IX: per-phase time (us), zero-copy vs unified memory",
            headers,
            rows,
        )


def run(
    scale: float = 32.0,
    rounds: int = 2,
    seed: int = 7,
) -> Table9Result:
    result = Table9Result()
    items = scaled(100_000, scale, minimum=512)
    batch = scaled(16_384, scale, minimum=32)
    # The warehouse *counts* scale down with everything else; rows keep
    # the paper's labels.  The simulated device is sized so that the two
    # unified-memory scales genuinely overflow it.
    effective = {w: scaled(w, scale) for w in ZERO_COPY_SCALES + UNIFIED_SCALES}
    threshold_bytes = tpcc_nbytes(
        TpccScale(warehouses=effective[UNIFIED_SCALES[0]], num_items=items)
    )
    device_config = dataclasses.replace(
        DeviceConfig(), device_memory_bytes=int(threshold_bytes * 0.9)
    )
    for w in ZERO_COPY_SCALES + UNIFIED_SCALES:
        db, registry, generator = build_tpcc(
            warehouses=effective[w],
            num_items=items,
            mix=TpccMix.neworder_percentage(50),
            seed=seed,
        )
        mode = (
            MemoryMode.ZERO_COPY if w in ZERO_COPY_SCALES else MemoryMode.UNIFIED
        )
        config = ltpg_config(batch, memory_mode=mode)
        engine = LTPGEngine(db, registry, config, Device(device_config))
        r = steady_state_run(engine, generator, batch, rounds)
        totals = r.run.phase_totals()
        n = max(1, r.run.num_batches)
        result.phases[w] = {k: v / n for k, v in totals.items()}
        result.modes[w] = mode.value
    return result

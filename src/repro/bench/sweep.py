"""Contention sweep: the paper's §VI-F discussion, quantified.

"The sweet spot for LTPG is scenarios with medium to high loads and
less frequent access to popular data. ... when there is a higher
frequency of popular data accesses, LTPG may experience more
transaction aborts.  In such situations, the high-contention
optimization scheme is effective at reducing the abort rate."

This harness sweeps the Payment hot-customer probability (the knob that
controls how often transactions touch popular rows) and measures LTPG's
throughput and commit rate with the high-contention optimizations on
and off — making the sweet spot and the optimization's rescue visible
as two curves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.common import DEFAULT_ROUNDS, ltpg_config, scaled
from repro.bench.reporting import format_table
from repro.bench.runner import steady_state_run
from repro.core.engine import LTPGEngine
from repro.workloads.tpcc import TpccGenerator, TpccMix, build_tpcc
from repro.workloads.tpcc.schema import TpccScale

HOT_PROBS: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0)


@dataclass
class SweepResult:
    """(mtps, commit_rate)[(hot_prob, optimized)]"""

    cells: dict[tuple[float, bool], tuple[float, float]] = field(
        default_factory=dict
    )

    def format(self) -> str:
        headers = [
            "hot-access prob",
            "optimized M/s",
            "optimized commit %",
            "unoptimized M/s",
            "unoptimized commit %",
        ]
        rows = []
        for prob in sorted({k[0] for k in self.cells}):
            opt = self.cells[(prob, True)]
            raw = self.cells[(prob, False)]
            rows.append(
                [f"{prob:.2f}", opt[0], 100 * opt[1], raw[0], 100 * raw[1]]
            )
        return format_table(
            "Contention sweep (SectionVI-F): hot-data access frequency",
            headers,
            rows,
        )


def run(
    scale: float = 8.0,
    rounds: int = DEFAULT_ROUNDS,
    warehouses: int = 8,
    hot_probs: tuple[float, ...] = HOT_PROBS,
    seed: int = 7,
) -> SweepResult:
    result = SweepResult()
    batch = scaled(16_384, scale, minimum=64)
    items = scaled(100_000, scale, minimum=512)
    for prob in hot_probs:
        for optimized in (True, False):
            db, registry, _ = build_tpcc(
                warehouses=warehouses,
                num_items=items,
                mix=TpccMix.neworder_percentage(50),
                seed=seed,
            )
            generator = TpccGenerator(
                scale=TpccScale(warehouses=warehouses, num_items=items),
                mix=TpccMix.neworder_percentage(50),
                seed=seed,
                hot_customer_prob=prob,
            )
            config = ltpg_config(batch)
            if not optimized:
                config = config.without_optimizations()
            engine = LTPGEngine(db, registry, config)
            r = steady_state_run(engine, generator, batch, rounds)
            result.cells[(prob, optimized)] = (r.mtps, r.commit_rate)
    return result

"""Design-choice ablations beyond the paper's own tables (DESIGN.md §5).

Four studies:

* **warp division** — adaptive grouping by sub-transaction type vs the
  naive thread-per-transaction mapping; reports warp divergence events
  and the throughput delta (paper §V-B's motivation, quantified).
* **retry delay** — re-executing aborts one vs two batches later
  (the pipeline's §V-E trade-off) at equal, non-pipelined timing.
* **reordering** — the deterministic commit rule with and without
  logical reordering (Aria's rule vs plain deterministic OCC).
* **B-tree scans** — YCSB-E through pre-resolved keys vs the ordered
  index with phantom protection (the range-query extension's price).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.bench.common import DEFAULT_ROUNDS, ltpg_config, tpcc_bench
from repro.bench.reporting import format_table
from repro.bench.runner import steady_state_run


@dataclass
class AblationResult:
    """label -> (mtps, commit_rate, extra metric)."""

    title: str
    metric_name: str
    rows: dict[str, tuple[float, float, float]] = field(default_factory=dict)

    def format(self) -> str:
        headers = ["variant", "throughput (M/s)", "commit rate %", self.metric_name]
        table_rows = [
            [label, mtps, 100 * rate, extra]
            for label, (mtps, rate, extra) in self.rows.items()
        ]
        return format_table(self.title, headers, table_rows)


def run_warp_division(
    scale: float = 8.0, rounds: int = DEFAULT_ROUNDS, warehouses: int = 8
) -> AblationResult:
    """Adaptive warp grouping vs naive task parallelism."""
    result = AblationResult(
        "Ablation: adaptive warp division", "divergence events/batch"
    )
    for adaptive in (True, False):
        bench = tpcc_bench(warehouses, neworder_pct=50, scale=scale)
        config = dataclasses.replace(
            ltpg_config(bench.batch_size), adaptive_warps=adaptive
        )
        engine = bench.engine(config)
        r = steady_state_run(engine, bench.generator, bench.batch_size, rounds)
        divergence = sum(
            s.divergent_branches
            for s in engine.device.profiler.kernel_stats
            if s.name == "execute"
        ) / max(1, r.run.num_batches)
        label = "grouped (adaptive)" if adaptive else "naive (per-txn)"
        result.rows[label] = (r.mtps, r.commit_rate, divergence)
    return result


def run_retry_delay(
    scale: float = 8.0, rounds: int = DEFAULT_ROUNDS, warehouses: int = 8
) -> AblationResult:
    """Retry one batch later vs the pipeline's forced two."""
    result = AblationResult(
        "Ablation: abort retry delay", "mean batch latency (us)"
    )
    for delay in (1, 2):
        bench = tpcc_bench(warehouses, neworder_pct=50, scale=scale)
        config = dataclasses.replace(
            ltpg_config(bench.batch_size), retry_delay_batches=delay
        )
        engine = bench.engine(config)
        r = steady_state_run(
            engine, bench.generator, bench.batch_size, max(rounds, 6)
        )
        result.rows[f"retry +{delay}"] = (
            r.mtps, r.commit_rate, r.mean_latency_us
        )
    return result


def run_reordering(
    scale: float = 8.0, rounds: int = DEFAULT_ROUNDS, warehouses: int = 8
) -> AblationResult:
    """Aria-style logical reordering vs plain deterministic OCC."""
    result = AblationResult(
        "Ablation: logical reordering", "raw-abort share %"
    )
    for reorder in (True, False):
        bench = tpcc_bench(warehouses, neworder_pct=50, scale=scale)
        config = dataclasses.replace(
            ltpg_config(bench.batch_size), logical_reordering=reorder
        )
        engine = bench.engine(config)
        r = steady_state_run(engine, bench.generator, bench.batch_size, rounds)
        raw_aborts = sum(
            count
            for b in r.run.batches
            for reason, count in b.abort_reasons.items()
            if "raw" in reason and "waw" not in reason
        )
        total = max(1, sum(b.aborted for b in r.run.batches))
        label = "with reordering" if reorder else "without reordering"
        result.rows[label] = (r.mtps, r.commit_rate, 100 * raw_aborts / total)
    return result


def run_all(scale: float = 8.0, rounds: int = DEFAULT_ROUNDS) -> list[AblationResult]:
    return [
        run_warp_division(scale=scale, rounds=rounds),
        run_retry_delay(scale=scale, rounds=rounds),
        run_reordering(scale=scale, rounds=rounds),
        run_btree_scans(scale=scale, rounds=rounds),
    ]


@dataclass
class _AllResults:
    results: list[AblationResult]

    def format(self) -> str:
        return "\n\n".join(r.format() for r in self.results)


def run(scale: float = 8.0, rounds: int = DEFAULT_ROUNDS) -> _AllResults:
    """CLI entry point: every ablation."""
    return _AllResults(run_all(scale=scale, rounds=rounds))


def run_btree_scans(
    scale: float = 8.0, rounds: int = DEFAULT_ROUNDS, records: int = 100_000
) -> AblationResult:
    """YCSB-E scans: pre-resolved keys (the paper's hash-only mode) vs
    the B-tree range-query extension with phantom protection."""
    from repro.core.config import LTPGConfig
    from repro.core.engine import LTPGEngine
    from repro.workloads.ycsb import build_ycsb, ycsb_delayed_columns

    result = AblationResult(
        "Ablation: YCSB-E scan access path", "commit rate of scans %"
    )
    batch = max(64, int(round(16_384 / scale)))
    n = max(512, int(round(records / scale)))
    for btree in (False, True):
        db, registry, generator = build_ycsb(
            n, workload="e", seed=7, btree_scans=btree
        )
        config = LTPGConfig(
            batch_size=batch,
            delayed_columns=ycsb_delayed_columns(),
            hot_tables=frozenset({"usertable"}),
        )
        engine = LTPGEngine(db, registry, config)
        r = steady_state_run(engine, generator, batch, rounds)
        label = "B-tree range scans" if btree else "pre-resolved keys"
        result.rows[label] = (r.mtps, r.commit_rate, 100 * r.commit_rate)
    return result

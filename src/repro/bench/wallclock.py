"""Host wall-clock of the engine's phases: batched vs columnar vs reference.

Every other harness in this package reports the *simulated* GPU clock,
which is deliberately identical across the three execute-phase
implementations (``LTPGConfig.columnar_ops`` / ``batched_exec``; the
differential tests in ``tests/test_columnar_equivalence.py`` and
``tests/test_batched_equivalence.py`` pin that down).  This harness
measures the one thing that *does* differ: how long the host takes to
run each phase.  It sweeps batch sizes 2^10..2^16 on TPC-C 50/50 and
reports per-batch seconds for all three paths, plus two speedup series
recorded in ``BENCH_wallclock.json`` (see docs/ARCHITECTURE.md for how
to read it): reference/columnar on execute+conflict (the PR 1 headline)
and columnar/batched on execute and total (the batched-executor
headline).  A ``sharded`` column (N shards driving N process workers
through the multi-shard engine) and a per-shard balance ledger ride
along; the ``sequencer`` entry in that column is the host cost of the
deterministic router.

Methodology: per (batch size, path) a fresh benchmark database is built
from the same seed, one warm-up batch is run, then ``rounds`` measured
batches; the per-phase time is the elementwise *minimum* across rounds
(the least-noise estimator for a deterministic computation on a shared
host).  Unlike the simulated-clock harnesses, these numbers are
machine-dependent — compare ratios, not absolute seconds.
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import sys
from dataclasses import dataclass, field

import numpy as np

from repro.bench.common import ltpg_config, tpcc_bench
from repro.bench.reporting import format_metrics, format_table
from repro.core.stats import RunStats

#: The paper's batch-size sweep (Fig. 6a uses the same span).
BATCH_SIZES: tuple[int, ...] = tuple(2**k for k in range(10, 17))

#: Engine phases as reported by ``LTPGEngine.last_host_phase_s``.
PHASES: tuple[str, ...] = ("execute", "conflict", "writeback", "assemble")

#: The acceptance batch size (2^14, the paper's headline batch).
HEADLINE_BATCH = 16_384


@dataclass
class WallclockResult:
    """Per-batch host seconds by phase, for both op paths."""

    #: path name -> batch size -> phase -> seconds per batch (min of rounds)
    seconds: dict[str, dict[int, dict[str, float]]] = field(default_factory=dict)
    meta: dict[str, object] = field(default_factory=dict)
    #: observability summary (``RunStats.metrics_summary``) from a short
    #: traced run at the headline batch — the timed sweep stays untraced
    metrics: dict = field(default_factory=dict)
    #: path name -> batch size -> engine phase -> transfer-ledger deltas
    #: (``h2d_bytes``/``d2h_bytes``/...) of one steady-state batch, for
    #: every ledger-backed path and every batch-size column — this is
    #: what makes the ``device_resident`` transfer win visible across
    #: the sweep, not just at the traced headline batch
    transfers: dict[str, dict[int, dict[str, dict[str, int]]]] = field(
        default_factory=dict
    )
    #: multi-shard extras: shard count, per-table balance ledger
    #: (rows by owning shard), and the ``shard`` metrics block from a
    #: short traced sharded run at the headline batch
    sharded: dict = field(default_factory=dict)

    def exec_conflict(self, path: str, batch: int) -> float:
        phases = self.seconds[path][batch]
        return phases["execute"] + phases["conflict"]

    def exec_conflict_writeback(self, path: str, batch: int) -> float:
        phases = self.seconds[path][batch]
        return phases["execute"] + phases["conflict"] + phases["writeback"]

    def speedup(self, batch: int) -> float:
        """Reference / columnar on the execute+conflict phases."""
        return self.exec_conflict("reference", batch) / max(
            self.exec_conflict("columnar", batch), 1e-12
        )

    def batched_speedup(self, batch: int, phase: str = "execute") -> float:
        """Columnar / batched on one phase (or ``total``)."""
        return self.seconds["columnar"][batch][phase] / max(
            self.seconds["batched"][batch][phase], 1e-12
        )

    def parallel_speedup(self, batch: int, phase: str = "execute") -> float:
        """Batched (in-process) / parallel on one phase (or ``total``)."""
        return self.seconds["batched"][batch][phase] / max(
            self.seconds["parallel"][batch][phase], 1e-12
        )

    def sharded_speedup(self, batch: int) -> float:
        """Batched (in-process, unsharded) / sharded on the detection
        pipeline (execute+conflict+writeback) — the ``--sharded-floor``
        gate's ratio."""
        return self.exec_conflict_writeback("batched", batch) / max(
            self.exec_conflict_writeback("sharded", batch), 1e-12
        )

    def backend_paths(self) -> list[str]:
        """The optional per-backend columns (``batched[<backend>]``)."""
        return sorted(p for p in self.seconds if p.startswith("batched["))

    def format(self) -> str:
        have_batched = "batched" in self.seconds
        have_parallel = "parallel" in self.seconds
        have_sharded = "sharded" in self.seconds
        backends = self.backend_paths()
        headers = [
            "batch size",
            "columnar exec+conf (s)",
            "reference exec+conf (s)",
            "speedup",
        ]
        if have_batched:
            headers += ["batched exec (s)", "batched speedup (exec)"]
        if have_parallel:
            headers += ["parallel exec (s)", "parallel speedup (exec)"]
        if have_sharded and have_batched:
            headers += ["sharded e+c+w (s)", "sharded speedup (e+c+w)"]
        headers += [f"{p} exec (s)" for p in backends]
        rows = []
        for b in sorted(self.seconds.get("columnar", {})):
            row = [
                b,
                self.exec_conflict("columnar", b),
                self.exec_conflict("reference", b),
                f"{self.speedup(b):.2f}x",
            ]
            if have_batched:
                row += [
                    self.seconds["batched"][b]["execute"],
                    f"{self.batched_speedup(b):.2f}x",
                ]
            if have_parallel:
                row += [
                    self.seconds["parallel"][b]["execute"],
                    f"{self.parallel_speedup(b):.2f}x",
                ]
            if have_sharded and have_batched:
                row += [
                    self.exec_conflict_writeback("sharded", b),
                    f"{self.sharded_speedup(b):.2f}x",
                ]
            row += [self.seconds[p][b]["execute"] for p in backends]
            rows.append(row)
        table = format_table(
            "Host wall-clock per batch: parallel vs batched vs columnar "
            "vs reference op path (TPC-C 50/50)",
            headers,
            rows,
            note="speedup = reference / columnar on execute+conflict; "
            "batched speedup = columnar / batched on execute; "
            "parallel speedup = batched / parallel on execute; "
            "sharded speedup = batched / sharded on "
            "execute+conflict+writeback; "
            "simulated-time results are identical by construction.",
        )
        if self.sharded:
            sheaders = ["table", "rows by owning shard"]
            srows = [
                [name, " / ".join(str(c) for c in counts)]
                for name, counts in sorted(
                    self.sharded.get("balance_ledger", {}).items()
                )
            ]
            table += "\n\n" + format_table(
                f"Per-shard balance ledger "
                f"({self.sharded.get('shards')} shards, headline database)",
                sheaders,
                srows,
                note="live rows per table by owning shard under the "
                "workload's partition map; counter-keyed tables use the "
                "default mod rule.",
            )
        if self.transfers:
            xheaders = ["path", "batch size", "H2D (MB/batch)", "D2H (MB/batch)"]
            xrows = []
            for p in sorted(self.transfers):
                for b in sorted(self.transfers[p]):
                    phases = self.transfers[p][b]
                    h2d = sum(d.get("h2d_bytes", 0) for d in phases.values())
                    d2h = sum(d.get("d2h_bytes", 0) for d in phases.values())
                    xrows.append([p, b, f"{h2d / 1e6:.1f}", f"{d2h / 1e6:.1f}"])
            table += "\n\n" + format_table(
                "Steady-state transfer ledger per batch (mockgpu/device "
                "backends only)",
                xheaders,
                xrows,
                note="one post-warm-up batch per cell; per-phase splits "
                "are in BENCH_wallclock.json under transfers_per_batch.",
            )
        if self.metrics:
            table += "\n\n" + format_metrics(
                self.metrics, title="Observability (traced headline batch)"
            )
        return table

    def to_json(self) -> dict:
        return {
            "meta": self.meta,
            "batch_sizes": sorted(self.seconds.get("columnar", {})),
            "seconds_per_batch": {
                path: {str(b): phases for b, phases in by_batch.items()}
                for path, by_batch in self.seconds.items()
            },
            "speedup_execute_conflict": {
                str(b): round(self.speedup(b), 3)
                for b in sorted(self.seconds.get("columnar", {}))
                if b in self.seconds.get("reference", {})
            },
            "speedup_execute_total": {
                str(b): {
                    "execute": round(self.batched_speedup(b, "execute"), 3),
                    "total": round(self.batched_speedup(b, "total"), 3),
                }
                for b in sorted(self.seconds.get("columnar", {}))
                if b in self.seconds.get("batched", {})
            },
            "speedup_parallel": {
                str(b): {
                    "execute": round(self.parallel_speedup(b, "execute"), 3),
                    "total": round(self.parallel_speedup(b, "total"), 3),
                }
                for b in sorted(self.seconds.get("batched", {}))
                if b in self.seconds.get("parallel", {})
            },
            "speedup_sharded": {
                str(b): {
                    "execute_conflict_writeback": round(
                        self.sharded_speedup(b), 3
                    ),
                }
                for b in sorted(self.seconds.get("batched", {}))
                if b in self.seconds.get("sharded", {})
            },
            "sharded": self.sharded,
            "metrics": self.metrics,
            "transfers_per_batch": {
                path: {str(b): phases for b, phases in by_batch.items()}
                for path, by_batch in self.transfers.items()
            },
        }

    def write(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")


def measure_path(
    columnar: bool,
    batch_size: int,
    scale: float = 1.0,
    rounds: int = 2,
    warehouses: int = 32,
    neworder_pct: int = 50,
    seed: int = 7,
    batched: bool = False,
    parallel: int = 0,
    backend: str = "numpy",
    device_resident: bool = False,
    transfers_out: dict | None = None,
    shards: int = 0,
) -> dict[str, float]:
    """Min-of-rounds per-phase host seconds for one op path.

    Builds a fresh database (all paths see byte-identical transaction
    streams for a given seed) and discards one warm-up batch.  A
    ``parallel`` worker count > 0 measures the process-parallel sharded
    execute (implies the batched path); the warm-up batch also absorbs
    the pool start-up and snapshot export.  ``backend`` selects the
    ``repro.xp`` array backend (non-numpy backends require the batched
    path; the warm-up batch also absorbs any device initialization) and
    ``device_resident`` pins table columns device-side across batches.
    ``shards`` > 1 routes the batch through the multi-shard engine
    (implies the batched path; an extra ``sequencer`` entry reports the
    deterministic router's host cost and counts toward ``total``).

    When ``transfers_out`` is given and the backend has a transfer
    ledger, the final measured batch's per-phase ledger deltas are
    stored there (deltas are deterministic per batch index, so the
    last — steadiest — batch is the representative one).
    """
    bench = tpcc_bench(
        warehouses, neworder_pct=neworder_pct, batch_size=batch_size,
        scale=scale, seed=seed,
    )
    config = dataclasses.replace(
        ltpg_config(bench.batch_size),
        columnar_ops=columnar or batched or parallel > 0 or shards > 1,
        batched_exec=batched or parallel > 0 or shards > 1,
        parallel_workers=parallel,
        array_backend=backend,
        device_resident=device_resident,
        shards=shards if shards > 1 else 1,
    )
    phases = PHASES + ("sequencer",) if shards > 1 else PHASES
    engine = bench.engine(config)
    try:
        engine.run_batch(bench.generator.make_batch(bench.batch_size))  # warm-up
        best: dict[str, float] = {}
        for _ in range(max(rounds, 1)):
            engine.run_batch(bench.generator.make_batch(bench.batch_size))
            for phase in phases:
                t = engine.last_host_phase_s.get(phase, 0.0)
                if phase not in best or t < best[phase]:
                    best[phase] = t
        if (
            transfers_out is not None
            and backend != "numpy"
            and engine.last_phase_transfers
        ):
            transfers_out.update(engine.last_phase_transfers)
    finally:
        engine.close()
    best["total"] = sum(best[p] for p in phases)
    return best


def measure_metrics(
    batch_size: int = HEADLINE_BATCH,
    scale: float = 1.0,
    batches: int = 2,
    warehouses: int = 32,
    neworder_pct: int = 50,
    seed: int = 7,
) -> dict:
    """Observability summary from a short traced columnar run.

    Runs a few batches at the (scaled) headline batch size with
    ``LTPGConfig.trace`` enabled and returns
    :meth:`RunStats.metrics_summary`.  This is a separate run on purpose:
    the timed sweep above never pays span/metrics bookkeeping.
    """
    bench = tpcc_bench(
        warehouses, neworder_pct=neworder_pct, batch_size=batch_size,
        scale=scale, seed=seed,
    )
    config = dataclasses.replace(
        ltpg_config(bench.batch_size), columnar_ops=True, trace=True
    )
    engine = bench.engine(config)
    run_stats = RunStats()
    for _ in range(max(batches, 1)):
        batch = bench.generator.make_batch(bench.batch_size)
        run_stats.add(engine.run_batch(batch).stats)
    return run_stats.metrics_summary()


def measure_sharded_profile(
    shards: int,
    batch_size: int = HEADLINE_BATCH,
    scale: float = 1.0,
    batches: int = 2,
    warehouses: int = 32,
    neworder_pct: int = 50,
    seed: int = 7,
) -> dict:
    """Multi-shard extras for ``BENCH_wallclock.json``: the per-table
    balance ledger of the headline database under the workload's
    partition map, plus the ``shard`` block (multi-home fraction,
    balance, sequencer stall) of a short traced sharded run.

    Runs serially (no worker pool) — routing statistics and the ledger
    do not depend on how the shard lanes are executed.
    """
    bench = tpcc_bench(
        warehouses, neworder_pct=neworder_pct, batch_size=batch_size,
        scale=scale, seed=seed,
    )
    config = dataclasses.replace(
        ltpg_config(bench.batch_size),
        columnar_ops=True, batched_exec=True, trace=True, shards=shards,
    )
    engine = bench.engine(config)
    run_stats = RunStats()
    try:
        for _ in range(max(batches, 1)):
            batch = bench.generator.make_batch(bench.batch_size)
            run_stats.add(engine.run_batch(batch).stats)
        part = getattr(engine, "partition", None)
        ledger = part.profile() if part is not None else {}
    finally:
        engine.close()
    return {
        "shards": shards,
        "balance_ledger": ledger,
        "metrics": run_stats.metrics_summary().get("shard", {}),
    }


#: Worker count the ``parallel`` sweep path runs with (the acceptance
#: gate's configuration; ``os.cpu_count()`` decides whether the gate is
#: enforced, not how the measurement runs).
PARALLEL_WORKERS = 4


def run(
    scale: float = 1.0,
    rounds: int = 2,
    batch_sizes: tuple[int, ...] = BATCH_SIZES,
    warehouses: int = 32,
    neworder_pct: int = 50,
    seed: int = 7,
    parallel_workers: int = PARALLEL_WORKERS,
    backend: str | None = None,
) -> WallclockResult:
    """Sweep all op paths; ``backend`` adds an optional per-backend
    column (a ``batched[<backend>]`` series measured through the
    ``repro.xp`` shim) when that backend is constructible here."""
    from repro.xp import available_backends, get_backend

    if backend is not None and backend not in available_backends():
        backend = None  # auto-skip: the device library is absent
    result = WallclockResult()
    result.meta = {
        "workload": f"tpcc neworder={neworder_pct}%",
        "scale": scale,
        "rounds": rounds,
        "warehouses": warehouses,
        "seed": seed,
        "estimator": "min over rounds, one warm-up batch discarded",
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "parallel_workers": parallel_workers,
        # the sharded column runs N shards with N process workers
        "shards": parallel_workers,
        # active array backend + library version: the per-backend
        # column's backend when one was requested, else the reference
        # every standard path runs on
        "array_backend": get_backend(backend or "numpy").device_info(),
    }
    paths = [
        ("sharded", True, True, parallel_workers, "numpy", False, parallel_workers),
        ("parallel", True, True, parallel_workers, "numpy", False, 0),
        ("batched", True, True, 0, "numpy", False, 0),
        ("columnar", True, False, 0, "numpy", False, 0),
        ("reference", False, False, 0, "numpy", False, 0),
    ]
    if backend is not None and backend != "numpy":
        paths.insert(0, (f"batched[{backend}]", True, True, 0, backend, False, 0))
        paths.insert(0, (f"resident[{backend}]", True, True, 0, backend, True, 0))
    for path, columnar, batched, workers, xp_name, resident, shards in paths:
        if path in ("parallel", "sharded") and workers <= 1:
            continue
        by_batch: dict[int, dict[str, float]] = {}
        for batch in batch_sizes:
            transfers: dict[str, dict[str, int]] = {}
            by_batch[batch] = measure_path(
                columnar, batch, scale=scale, rounds=rounds,
                warehouses=warehouses, neworder_pct=neworder_pct, seed=seed,
                batched=batched, parallel=workers, backend=xp_name,
                device_resident=resident, transfers_out=transfers,
                shards=shards,
            )
            if transfers:
                result.transfers.setdefault(path, {})[batch] = transfers
        result.seconds[path] = by_batch
    result.metrics = measure_metrics(
        scale=scale, warehouses=warehouses, neworder_pct=neworder_pct,
        seed=seed,
    )
    if parallel_workers > 1:
        result.sharded = measure_sharded_profile(
            parallel_workers, scale=scale, warehouses=warehouses,
            neworder_pct=neworder_pct, seed=seed,
        )
    return result


def run_and_write(
    scale: float = 1.0,
    rounds: int = 2,
    path: str = "BENCH_wallclock.json",
    **kwargs,
) -> WallclockResult:
    """CLI entry point: run the sweep and emit the JSON trajectory."""
    result = run(scale=scale, rounds=rounds, **kwargs)
    result.write(path)
    return result

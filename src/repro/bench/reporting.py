"""Plain-text table rendering for the benchmark harnesses.

The harnesses print the same rows/columns the paper's tables report, so
a run's output can be diffed against the paper side by side (that
comparison lives in EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    note: str = "",
) -> str:
    """Render a fixed-width text table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = [title, "=" * len(title)]
    header_line = "  ".join(h.rjust(w) for h, w in zip(cells[0], widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells[1:]:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    if note:
        lines.append(note)
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)


def format_metrics(summary: dict, title: str = "Observability metrics") -> str:
    """Render a :meth:`RunStats.metrics_summary` block as text.

    The summary is grouped (``{"atomic": {...}, "warp": {...}, ...}``);
    each group becomes ``group.key  value`` rows so a traced bench run
    prints its contention diagnostics under the main result table.
    """
    rows = []
    for group, values in summary.items():
        if isinstance(values, dict):
            for key, value in values.items():
                rows.append([f"{group}.{key}", value])
        else:
            rows.append([group, values])
    return format_table(title, ["metric", "value"], rows)


def mtps(tps: float) -> float:
    """Transactions/s in the paper's 10^6 unit."""
    return tps / 1e6


def us(ns: float) -> float:
    """Nanoseconds to microseconds."""
    return ns / 1e3

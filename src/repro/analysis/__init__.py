"""Static and simulation-time analyses for the LTPG reproduction.

Four passes, mirroring what ``compute-sanitizer`` and a CUDA linter
would give the real system:

* :mod:`repro.analysis.sanitizer` — shadow access log with racecheck
  (write-write / read-write / atomic-plain hazards between threads with
  no intervening sync point) and memcheck (out-of-bounds indices, reads
  of never-written slots).
* :mod:`repro.analysis.detlint` — determinism linter for stored
  procedures: a static AST pass rejecting nondeterminism sources plus a
  dynamic twin that replays procedures and diffs their op streams.
* :mod:`repro.analysis.kernellint` — static backend-contract,
  determinism, pickle-safety, and twin-drift analysis for the batched
  procedure twins (``KLxxx`` rule codes, SARIF-ready findings).
* :mod:`repro.analysis.passes` — workload-level runners behind
  ``python -m repro.analysis <pass> [--workload tpcc|ycsb|smallbank]``.

This module deliberately re-exports only the dependency-light core
(findings, sanitizer, linter); the engine imports
``repro.analysis.sanitizer`` directly, and the pass runners (which
import the engine) load lazily via the CLI.
"""

from __future__ import annotations

from repro.analysis.detlint import (
    lint_procedure,
    lint_registry,
    lint_source,
    replay_procedure,
    replay_transactions,
)
from repro.analysis.findings import (
    DETLINT,
    KERNELLINT,
    MEMCHECK,
    RACECHECK,
    Finding,
    FindingReport,
)
from repro.analysis.kernellint import (
    RULES,
    lint_pickle_safety,
    lint_registry_twins,
    lint_twin_unit,
    source_unit,
)
from repro.analysis.sanitizer import AccessKind, Sanitizer, ShadowBuffer

__all__ = [
    "AccessKind",
    "DETLINT",
    "Finding",
    "FindingReport",
    "KERNELLINT",
    "MEMCHECK",
    "RACECHECK",
    "RULES",
    "Sanitizer",
    "ShadowBuffer",
    "lint_pickle_safety",
    "lint_procedure",
    "lint_registry",
    "lint_registry_twins",
    "lint_source",
    "lint_twin_unit",
    "replay_procedure",
    "replay_transactions",
    "source_unit",
]

"""The four analysis passes, runnable from the CLI and from pytest.

* ``racecheck`` / ``memcheck`` — run the LTPG engine over a workload
  with the sanitizer attached (``LTPGConfig.sanitize=True``); the three
  phase kernels (execute / conflict / writeback) log shadow accesses,
  and the pass reports that pass's findings.
* ``detlint`` — static AST lint over every registered procedure plus
  the dynamic replay twin over a generated transaction sample.
* ``kernellint`` — static backend-contract, determinism, pickle-safety,
  and twin-drift analysis over every registered batched twin (no engine
  run; see :mod:`repro.analysis.kernellint`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.detlint import lint_registry, replay_transactions
from repro.analysis.findings import (
    DETLINT,
    KERNELLINT,
    MEMCHECK,
    RACECHECK,
    Finding,
    FindingReport,
)
from repro.analysis.kernellint import lint_registry_twins
from repro.analysis.workload import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_BATCHES,
    WorkloadSetup,
    build_workload,
)
from repro.txn.batch import BatchScheduler

PASS_NAMES = (RACECHECK, MEMCHECK, DETLINT, KERNELLINT)


@dataclass
class AnalysisResult:
    """Outcome of one pass over one workload."""

    pass_name: str
    workload: str
    report: FindingReport
    #: Which phase kernels ran under the sanitizer (racecheck/memcheck).
    kernels: list[str] = field(default_factory=list)
    accesses_logged: int = 0
    procedures_checked: int = 0
    batches_run: int = 0

    @property
    def clean(self) -> bool:
        return self.report.clean

    def render(self) -> str:
        head = f"[{self.pass_name}] workload={self.workload}"
        if self.pass_name in (RACECHECK, MEMCHECK):
            head += (
                f" batches={self.batches_run}"
                f" kernels={sorted(set(self.kernels))}"
                f" accesses={self.accesses_logged}"
            )
        else:
            head += f" procedures={self.procedures_checked}"
        return head + "\n" + self.report.render()


def _sanitized_run(
    setup: WorkloadSetup,
    batches: int,
    batch_size: int,
) -> tuple[FindingReport, list[str], int, int]:
    """Run ``batches`` sanitized batches; returns findings + run stats."""
    engine = setup.engine(batch_size=batch_size, sanitize=True)
    sanitizer = engine.sanitizer
    assert sanitizer is not None  # sanitize=True attaches one
    # Admit through the scheduler so transactions get real TIDs and
    # aborted ones retry — the same life cycle a production batch has.
    scheduler = BatchScheduler(
        batch_size, retry_delay_batches=engine.config.effective_retry_delay
    )
    for _ in range(batches):
        scheduler.admit(setup.generator.make_batch(batch_size))
    ran = 0
    while scheduler.has_work() and ran < 2 * batches:
        batch = scheduler.next_batch()
        ran += 1
        if not batch:
            continue
        result = engine.run_batch(batch)
        scheduler.requeue_aborted(result.aborted)
    kernels = [
        entry.name
        for entry in engine.device.profiler.entries
        if entry.kind == "kernel"
    ]
    return sanitizer.report, kernels, sanitizer.accesses_logged, ran


def run_racecheck(
    workload: str = "tpcc",
    batches: int = DEFAULT_BATCHES,
    batch_size: int = DEFAULT_BATCH_SIZE,
    seed: int = 7,
) -> AnalysisResult:
    """Race-check the three LTPG phase kernels over a workload."""
    setup = build_workload(workload, seed=seed)
    full, kernels, accesses, ran = _sanitized_run(setup, batches, batch_size)
    report = FindingReport(full.by_pass(RACECHECK), suppressed=full.suppressed)
    return AnalysisResult(
        RACECHECK, workload, report,
        kernels=kernels, accesses_logged=accesses, batches_run=ran,
    )


def run_memcheck(
    workload: str = "tpcc",
    batches: int = DEFAULT_BATCHES,
    batch_size: int = DEFAULT_BATCH_SIZE,
    seed: int = 7,
) -> AnalysisResult:
    """Bounds/init-check the shadow buffers over a workload run."""
    setup = build_workload(workload, seed=seed)
    full, kernels, accesses, ran = _sanitized_run(setup, batches, batch_size)
    report = FindingReport(full.by_pass(MEMCHECK), suppressed=full.suppressed)
    return AnalysisResult(
        MEMCHECK, workload, report,
        kernels=kernels, accesses_logged=accesses, batches_run=ran,
    )


def run_detlint(
    workload: str = "tpcc",
    batches: int = 1,
    batch_size: int = DEFAULT_BATCH_SIZE,
    seed: int = 7,
    dynamic: bool = True,
) -> AnalysisResult:
    """Lint every registered procedure; optionally replay a sample."""
    setup = build_workload(workload, seed=seed)
    findings: list[Finding] = lint_registry(setup.registry)
    if dynamic:
        sample = setup.generator.make_batch(batch_size)
        findings.extend(
            replay_transactions(setup.database, setup.registry, sample)
        )
    return AnalysisResult(
        DETLINT, workload, FindingReport(findings),
        procedures_checked=len(setup.registry.names()),
    )


def run_kernellint(
    workload: str = "tpcc",
    batches: int = 1,
    batch_size: int = DEFAULT_BATCH_SIZE,
    seed: int = 7,
) -> AnalysisResult:
    """Static lint of every batched twin (no engine run; ``batches``
    and ``batch_size`` are accepted for dispatch uniformity)."""
    setup = build_workload(workload, seed=seed)
    findings, twins, suppressed = lint_registry_twins(setup.registry)
    return AnalysisResult(
        KERNELLINT, workload,
        FindingReport(findings, suppressed=suppressed),
        procedures_checked=twins,
    )


def run_pass(
    pass_name: str,
    workload: str = "tpcc",
    batches: int = DEFAULT_BATCHES,
    batch_size: int = DEFAULT_BATCH_SIZE,
    seed: int = 7,
) -> list[AnalysisResult]:
    """Dispatch one pass (or ``all``); returns one result per pass run."""
    runners = {
        RACECHECK: run_racecheck,
        MEMCHECK: run_memcheck,
        DETLINT: run_detlint,
        KERNELLINT: run_kernellint,
    }
    if pass_name == "all":
        return [
            runner(workload, batches=batches, batch_size=batch_size, seed=seed)
            for runner in runners.values()
        ]
    if pass_name not in runners:
        raise ValueError(
            f"unknown pass {pass_name!r}; expected one of "
            f"{PASS_NAMES + ('all',)}"
        )
    return [
        runners[pass_name](
            workload, batches=batches, batch_size=batch_size, seed=seed
        )
    ]

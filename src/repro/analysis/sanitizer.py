"""GPU sanitizer: shadow access logging with racecheck + memcheck.

Works like ``compute-sanitizer`` does for real CUDA, scaled down to the
SIMT simulator: instrumented code records every shared-memory access as
``(buffer, index, thread, kind, is_atomic)`` into the sanitizer bound to
the running :class:`~repro.gpusim.kernel.KernelContext`.  Kernel launch
boundaries and explicit ``barrier()`` calls are synchronization points;
within one synchronization interval the sanitizer flags

* **write-write** — two plain writes to one address by different threads,
* **read-write** — a plain write racing a plain read by another thread,
* **atomic-plain** — atomic and plain access mixed on one address
  (unsynchronized atomics serialize in *some* order; a plain access
  interleaving with them is exactly the nondeterminism LTPG's
  deterministic tie-breaking exists to avoid),

while all-atomic contention on an address is clean (atomics serialize,
and the deterministic ascending-thread-id schedule fixes the order).

Memcheck runs inline on the same records: each registered buffer keeps a
shadow init-bitmap, so out-of-bounds indices and reads of never-written
slots are reported the moment they happen, in program order.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.analysis.findings import MEMCHECK, RACECHECK, Finding, FindingReport

#: Cap on findings emitted per (buffer, kind) pair; the rest are counted
#: as suppressed so a pathological kernel cannot flood the report.
FINDINGS_PER_BUCKET = 16


class AccessKind(enum.IntEnum):
    """What an instrumented access did to the address."""

    READ = 0
    WRITE = 1


@dataclass
class ShadowBuffer:
    """Shadow state for one tracked allocation.

    ``size=None`` models an unbounded address space (auto-registered
    buffers): no bounds check and no init tracking.  Sized buffers carry
    an init bitmap unless registered fully initialized (``cudaMemset``
    at alloc time, or a snapshot loaded before the batch).
    """

    name: str
    size: int | None
    fully_initialized: bool
    init: np.ndarray | None  # bool bitmap, None when not tracked

    @classmethod
    def make(
        cls, name: str, size: int | None, initialized: bool
    ) -> "ShadowBuffer":
        init = None
        if size is not None and not initialized:
            init = np.zeros(size, dtype=bool)
        return cls(name=name, size=size, fully_initialized=initialized, init=init)

    def grow(self, size: int) -> None:
        if self.size is None or size <= self.size:
            return
        if self.init is not None:
            grown = np.zeros(size, dtype=bool)
            grown[: self.size] = self.init
            self.init = grown
        self.size = size


@dataclass
class _Record:
    """One batch of accesses (vectorized: many threads, one call)."""

    buf: int  # interned buffer id
    indices: np.ndarray
    threads: np.ndarray
    is_write: bool
    is_atomic: bool


class Sanitizer:
    """Shadow access log + racecheck/memcheck analyses.

    Bind to a :class:`~repro.gpusim.device.Device` (``device.sanitizer``)
    and every kernel launch opens a fresh epoch; instrumented primitives
    (:mod:`repro.gpusim.atomics`, :mod:`repro.gpusim.memory`, the warp
    interpreter, the LTPG engine phases) record into it.  Standalone use
    works too: record accesses, then call :meth:`flush`.
    """

    def __init__(self, racecheck: bool = True, memcheck: bool = True):
        self.racecheck_enabled = racecheck
        self.memcheck_enabled = memcheck
        self.report = FindingReport()
        self._buffers: dict[str, ShadowBuffer] = {}
        self._buf_ids: dict[str, int] = {}
        self._buf_names: list[str] = []
        self._kernel = "<ambient>"
        #: Access records of the current synchronization interval.
        self._segment: list[_Record] = []
        self._bucket_counts: dict[tuple[str, str], int] = {}
        #: Totals for reporting (accesses observed, kernels scanned).
        self.accesses_logged = 0
        self.kernels_scanned = 0
        self.barriers_seen = 0

    # -- buffer registry --------------------------------------------------
    def register_buffer(
        self, name: str, size: int | None = None, initialized: bool = True
    ) -> None:
        """Track ``name``; idempotent, growing the bound monotonically.

        Sized + ``initialized=False`` buffers get an init bitmap so
        memcheck can flag reads of never-written slots.
        """
        existing = self._buffers.get(name)
        if existing is None:
            self._buffers[name] = ShadowBuffer.make(name, size, initialized)
            self._intern(name)
        elif size is not None:
            existing.grow(size)

    def _intern(self, name: str) -> int:
        buf_id = self._buf_ids.get(name)
        if buf_id is None:
            buf_id = len(self._buf_names)
            self._buf_ids[name] = buf_id
            self._buf_names.append(name)
        return buf_id

    def _shadow(self, name: str) -> ShadowBuffer:
        shadow = self._buffers.get(name)
        if shadow is None:
            # Auto-register: unbounded, fully initialized.  Explicit
            # registration is what turns on bounds/init tracking.
            shadow = ShadowBuffer.make(name, None, True)
            self._buffers[name] = shadow
            self._intern(name)
        return shadow

    # -- epoch lifecycle --------------------------------------------------
    def begin_kernel(self, name: str) -> None:
        """A kernel launch: a fresh epoch named after the kernel."""
        self._scan_segment()
        self._segment = []
        self._kernel = name

    def end_kernel(self) -> None:
        """Kernel completion is a device-wide synchronization point."""
        self._scan_segment()
        self._segment = []
        self._kernel = "<ambient>"
        self.kernels_scanned += 1

    def barrier(self) -> None:
        """An in-kernel barrier (``__syncthreads``): accesses before and
        after it can never race each other."""
        self._scan_segment()
        self._segment = []
        self.barriers_seen += 1

    def flush(self) -> None:
        """Analyze and clear any pending records (standalone use)."""
        self._scan_segment()
        self._segment = []

    # -- recording --------------------------------------------------------
    def record(
        self,
        buffer: str,
        indices: "np.ndarray | list[int] | int",
        threads: "np.ndarray | list[int] | int",
        kind: AccessKind,
        atomic: bool = False,
    ) -> None:
        """Log one batch of accesses: thread ``threads[i]`` touched
        ``buffer[indices[i]]``.  A scalar ``threads`` broadcasts."""
        idx = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        if idx.size == 0:
            return
        thr = np.asarray(threads, dtype=np.int64)
        if thr.ndim == 0:
            thr = np.full(idx.size, int(thr), dtype=np.int64)
        if thr.size != idx.size:
            raise ValueError("sanitizer record: indices and threads must align")
        self.accesses_logged += idx.size
        shadow = self._shadow(buffer)
        if self.memcheck_enabled:
            idx, thr = self._memcheck(shadow, idx, thr, kind)
            if idx.size == 0:
                return
        if self.racecheck_enabled:
            self._segment.append(
                _Record(
                    buf=self._buf_ids[buffer],
                    indices=idx,
                    threads=thr,
                    is_write=kind == AccessKind.WRITE,
                    is_atomic=atomic,
                )
            )

    # -- memcheck (inline, program order) ---------------------------------
    def _memcheck(
        self,
        shadow: ShadowBuffer,
        idx: np.ndarray,
        thr: np.ndarray,
        kind: AccessKind,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Report OOB / uninit accesses; returns the in-bounds
        (indices, threads) pairs (OOB accesses never reach the race log
        — like real hardware, where they fault instead of landing
        anywhere meaningful)."""
        if shadow.size is None:
            return idx, thr
        oob = (idx < 0) | (idx >= shadow.size)
        if oob.any():
            bad = np.flatnonzero(oob)
            for j in bad[:FINDINGS_PER_BUCKET]:
                self._emit(
                    Finding(
                        MEMCHECK,
                        "out-of-bounds",
                        shadow.name,
                        f"thread {int(thr[j])} {kind.name.lower()} at index "
                        f"{int(idx[j])}, buffer size {shadow.size}",
                        kernel=self._kernel,
                        index=int(idx[j]),
                        threads=(int(thr[j]), int(thr[j])),
                    )
                )
            idx = idx[~oob]
            thr = thr[~oob]
            if idx.size == 0:
                return idx, thr
        if shadow.init is not None:
            if kind == AccessKind.READ:
                uninit = ~shadow.init[idx]
                for j in np.flatnonzero(uninit)[:FINDINGS_PER_BUCKET]:
                    self._emit(
                        Finding(
                            MEMCHECK,
                            "uninitialized-read",
                            shadow.name,
                            f"thread {int(thr[j])} read never-written slot "
                            f"{int(idx[j])}",
                            kernel=self._kernel,
                            index=int(idx[j]),
                            threads=(int(thr[j]), int(thr[j])),
                        )
                    )
            else:
                shadow.init[idx] = True
        return idx, thr

    # -- racecheck (per synchronization interval) -------------------------
    def _scan_segment(self) -> None:
        records = self._segment
        if not records or not self.racecheck_enabled:
            return
        buf = np.concatenate([np.full(r.indices.size, r.buf) for r in records])
        idx = np.concatenate([r.indices for r in records])
        thr = np.concatenate([r.threads for r in records])
        wrt = np.concatenate(
            [np.full(r.indices.size, r.is_write, dtype=bool) for r in records]
        )
        atm = np.concatenate(
            [np.full(r.indices.size, r.is_atomic, dtype=bool) for r in records]
        )
        order = np.lexsort((thr, idx, buf))
        buf, idx, thr, wrt, atm = (
            buf[order], idx[order], thr[order], wrt[order], atm[order]
        )
        new_group = np.empty(buf.size, dtype=bool)
        new_group[0] = True
        new_group[1:] = (buf[1:] != buf[:-1]) | (idx[1:] != idx[:-1])
        starts = np.flatnonzero(new_group)
        ends = np.append(starts[1:], buf.size)
        # Vectorized prefilter: a group needs >= 2 accesses, >= 2 distinct
        # threads, at least one write, and not all-atomic to be suspicious.
        sizes = ends - starts
        multi = sizes > 1
        if not multi.any():
            return
        thread_changes = np.zeros(buf.size, dtype=np.int64)
        thread_changes[1:] = (thr[1:] != thr[:-1]) & ~new_group[1:]
        distinct = np.add.reduceat(thread_changes, starts) + 1
        any_write = np.add.reduceat(wrt.astype(np.int64), starts) > 0
        all_atomic = np.add.reduceat(atm.astype(np.int64), starts) == sizes
        suspicious = multi & (distinct > 1) & any_write & ~all_atomic
        for g in np.flatnonzero(suspicious):
            self._classify_group(
                buf[starts[g]],
                int(idx[starts[g]]),
                thr[starts[g] : ends[g]],
                wrt[starts[g] : ends[g]],
                atm[starts[g] : ends[g]],
            )

    def _classify_group(
        self,
        buf_id: int,
        index: int,
        thr: np.ndarray,
        wrt: np.ndarray,
        atm: np.ndarray,
    ) -> None:
        """Emit race findings for one conflicting (buffer, index)."""
        name = self._buf_names[int(buf_id)]
        plain = ~atm
        plain_w = np.unique(thr[plain & wrt])
        plain_r = np.unique(thr[plain & ~wrt])
        atomic_t = np.unique(thr[atm])
        if plain_w.size >= 2:
            self._emit_race(
                "write-write", name, index,
                (int(plain_w[0]), int(plain_w[1])),
                "unsynchronized writes",
            )
        if plain_w.size and plain_r.size:
            readers = plain_r[plain_r != plain_w[0]]
            if readers.size or plain_w.size > 1:
                writer = int(plain_w[0]) if readers.size else int(plain_w[1])
                reader = int(readers[0]) if readers.size else int(plain_r[0])
                self._emit_race(
                    "read-write", name, index, (writer, reader),
                    "plain read races a write",
                )
        if atomic_t.size and (plain_w.size or plain_r.size):
            plain_t = np.unique(thr[plain])
            others = plain_t[plain_t != atomic_t[0]]
            partner = (
                int(others[0]) if others.size
                else int(atomic_t[1]) if atomic_t.size > 1 else int(plain_t[0])
            )
            if others.size or atomic_t.size > 1:
                self._emit_race(
                    "atomic-plain", name, index, (int(atomic_t[0]), partner),
                    "atomic and plain access mixed on one address",
                )

    def _emit_race(
        self,
        kind: str,
        buffer: str,
        index: int,
        threads: tuple[int, int],
        what: str,
    ) -> None:
        self._emit(
            Finding(
                RACECHECK,
                kind,
                buffer,
                f"{what} at index {index} between threads "
                f"{threads[0]} and {threads[1]} with no sync point",
                kernel=self._kernel,
                index=index,
                threads=threads,
            )
        )

    def _emit(self, finding: Finding) -> None:
        bucket = (finding.subject, finding.kind)
        count = self._bucket_counts.get(bucket, 0)
        self._bucket_counts[bucket] = count + 1
        if count >= FINDINGS_PER_BUCKET:
            self.report.suppressed += 1
            return
        self.report.add(finding)

    # -- results ----------------------------------------------------------
    @property
    def findings(self) -> list[Finding]:
        return self.report.findings

    def findings_for(self, pass_name: str) -> list[Finding]:
        return self.report.by_pass(pass_name)

    @property
    def clean(self) -> bool:
        return self.report.clean

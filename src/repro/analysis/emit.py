"""Machine-readable emitters for analysis results.

Two formats: a plain JSON dump of every finding (for scripting and the
experiment logs) and SARIF 2.1.0 (for code-scanning upload from the CI
``kernellint`` job).  Both accept the ``AnalysisResult`` list the pass
runner returns, so one run can serve the console, the JSON log, and the
SARIF artifact at once.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

from repro.analysis.findings import Finding
from repro.analysis.kernellint import RULES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (passes -> emit)
    from repro.analysis.passes import AnalysisResult

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "repro-analysis"


def _finding_to_json(finding: Finding) -> dict[str, Any]:
    out: dict[str, Any] = {
        "pass": finding.pass_name,
        "kind": finding.kind,
        "subject": finding.subject,
        "message": finding.message,
    }
    if finding.kernel is not None:
        out["kernel"] = finding.kernel
    if finding.index is not None:
        out["index"] = finding.index
    if finding.threads is not None:
        out["threads"] = list(finding.threads)
    if finding.code is not None:
        out["code"] = finding.code
    if finding.file is not None:
        out["file"] = finding.file
    if finding.span is not None:
        out["span"] = list(finding.span)
    return out


def results_to_json(results: list[AnalysisResult]) -> dict[str, Any]:
    """One JSON document for a list of pass runs."""
    return {
        "tool": TOOL_NAME,
        "runs": [
            {
                "pass": res.pass_name,
                "workload": res.workload,
                "clean": res.report.clean,
                "summary": res.report.summary(),
                "suppressed": res.report.suppressed,
                "findings": [
                    _finding_to_json(f) for f in res.report.findings
                ],
            }
            for res in results
        ],
    }


def _sarif_rules() -> list[dict[str, Any]]:
    return [
        {
            "id": code,
            "name": kind,
            "shortDescription": {"text": kind},
        }
        for code, kind in sorted(RULES.items())
    ]


def _finding_to_sarif(finding: Finding) -> dict[str, Any]:
    result: dict[str, Any] = {
        "ruleId": finding.code or f"{finding.pass_name}/{finding.kind}",
        "level": "error",
        "message": {"text": f"{finding.subject}: {finding.message}"},
    }
    if finding.file is not None:
        region: dict[str, Any] = {}
        if finding.span is not None:
            region = {
                "startLine": finding.span[0],
                "endLine": finding.span[1],
            }
        result["locations"] = [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.file},
                    **({"region": region} if region else {}),
                }
            }
        ]
    return result


def results_to_sarif(results: list[AnalysisResult]) -> dict[str, Any]:
    """SARIF 2.1.0 log: one run per analysis invocation."""
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": "https://example.invalid/repro",
                        "rules": _sarif_rules(),
                    }
                },
                "properties": {
                    "pass": res.pass_name,
                    "workload": res.workload,
                    "suppressed": res.report.suppressed,
                },
                "results": [
                    _finding_to_sarif(f) for f in res.report.findings
                ],
            }
            for res in results
        ],
    }


def write_json(path: str, results: list[AnalysisResult]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(results_to_json(results), fh, indent=2, sort_keys=True)
        fh.write("\n")


def write_sarif(path: str, results: list[AnalysisResult]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(results_to_sarif(results), fh, indent=2, sort_keys=True)
        fh.write("\n")


__all__ = [
    "SARIF_SCHEMA",
    "SARIF_VERSION",
    "TOOL_NAME",
    "results_to_json",
    "results_to_sarif",
    "write_json",
    "write_sarif",
]

"""Finding records shared by every analysis pass.

A :class:`Finding` is one defect report — a race, an out-of-bounds
access, an uninitialized read, or a determinism hazard in a stored
procedure.  Passes accumulate findings into a :class:`FindingReport`,
which the CLI turns into human-readable output and an exit code
(0 clean / 1 findings; usage errors exit 2 before a report exists).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

#: Pass identifiers (the CLI's sub-command names).
RACECHECK = "racecheck"
MEMCHECK = "memcheck"
DETLINT = "detlint"
KERNELLINT = "kernellint"


@dataclass(frozen=True)
class Finding:
    """One defect reported by an analysis pass.

    ``subject`` names the shadow buffer (racecheck/memcheck) or the
    stored procedure (detlint/kernellint).  ``threads`` is the
    representative conflicting thread pair for races; ``index`` the
    offending address or source line.  Static passes with a precise
    source anchor additionally carry a stable rule ``code`` (kernellint
    ``KLxxx``), the source ``file``, and a ``span`` of absolute
    ``(start_line, end_line)`` — the fields the SARIF emitter maps onto
    ``ruleId`` and ``physicalLocation``.
    """

    pass_name: str
    kind: str
    subject: str
    message: str
    kernel: str | None = None
    index: int | None = None
    threads: tuple[int, int] | None = None
    code: str | None = None
    file: str | None = None
    span: tuple[int, int] | None = None

    def describe(self) -> str:
        where = f" [kernel={self.kernel}]" if self.kernel else ""
        tag = f"[{self.code}] " if self.code else ""
        loc = ""
        if self.file is not None and self.span is not None:
            loc = f" ({self.file}:{self.span[0]})"
        return (
            f"{self.pass_name}:{self.kind} {tag}{self.subject}{where}: "
            f"{self.message}{loc}"
        )


@dataclass
class FindingReport:
    """Accumulated findings of one analysis run."""

    findings: list[Finding] = field(default_factory=list)
    #: Findings dropped once a (subject, kind) bucket hit its cap.
    suppressed: int = 0

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    def extend(self, findings: list[Finding]) -> None:
        self.findings.extend(findings)

    @property
    def clean(self) -> bool:
        return not self.findings

    def __len__(self) -> int:
        return len(self.findings)

    def by_pass(self, pass_name: str) -> list[Finding]:
        return [f for f in self.findings if f.pass_name == pass_name]

    def counts(self) -> dict[str, int]:
        return dict(Counter(f.kind for f in self.findings))

    def summary(self) -> str:
        if self.clean:
            return "clean: 0 findings"
        parts = ", ".join(f"{k}={c}" for k, c in sorted(self.counts().items()))
        tail = f" (+{self.suppressed} suppressed)" if self.suppressed else ""
        return f"{len(self.findings)} findings: {parts}{tail}"

    def render(self, limit: int = 50) -> str:
        lines = [self.summary()]
        for finding in self.findings[:limit]:
            lines.append("  " + finding.describe())
        if len(self.findings) > limit:
            lines.append(f"  ... and {len(self.findings) - limit} more")
        return "\n".join(lines)

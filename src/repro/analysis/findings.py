"""Finding records shared by every analysis pass.

A :class:`Finding` is one defect report — a race, an out-of-bounds
access, an uninitialized read, or a determinism hazard in a stored
procedure.  Passes accumulate findings into a :class:`FindingReport`,
which the CLI turns into human-readable output and an exit code
(0 clean / 1 findings; usage errors exit 2 before a report exists).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

#: Pass identifiers (the CLI's sub-command names).
RACECHECK = "racecheck"
MEMCHECK = "memcheck"
DETLINT = "detlint"


@dataclass(frozen=True)
class Finding:
    """One defect reported by an analysis pass.

    ``subject`` names the shadow buffer (racecheck/memcheck) or the
    stored procedure (detlint).  ``threads`` is the representative
    conflicting thread pair for races; ``index`` the offending address
    or source line.
    """

    pass_name: str
    kind: str
    subject: str
    message: str
    kernel: str | None = None
    index: int | None = None
    threads: tuple[int, int] | None = None

    def describe(self) -> str:
        where = f" [kernel={self.kernel}]" if self.kernel else ""
        return f"{self.pass_name}:{self.kind} {self.subject}{where}: {self.message}"


@dataclass
class FindingReport:
    """Accumulated findings of one analysis run."""

    findings: list[Finding] = field(default_factory=list)
    #: Findings dropped once a (subject, kind) bucket hit its cap.
    suppressed: int = 0

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    def extend(self, findings: list[Finding]) -> None:
        self.findings.extend(findings)

    @property
    def clean(self) -> bool:
        return not self.findings

    def __len__(self) -> int:
        return len(self.findings)

    def by_pass(self, pass_name: str) -> list[Finding]:
        return [f for f in self.findings if f.pass_name == pass_name]

    def counts(self) -> dict[str, int]:
        return dict(Counter(f.kind for f in self.findings))

    def summary(self) -> str:
        if self.clean:
            return "clean: 0 findings"
        parts = ", ".join(f"{k}={c}" for k, c in sorted(self.counts().items()))
        tail = f" (+{self.suppressed} suppressed)" if self.suppressed else ""
        return f"{len(self.findings)} findings: {parts}{tail}"

    def render(self, limit: int = 50) -> str:
        lines = [self.summary()]
        for finding in self.findings[:limit]:
            lines.append("  " + finding.describe())
        if len(self.findings) > limit:
            lines.append(f"  ... and {len(self.findings) - limit} more")
        return "\n".join(lines)

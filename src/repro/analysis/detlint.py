"""Determinism linter for stored procedures.

LTPG requires every stored procedure to be a pure function of
``(snapshot, params)`` — the deterministic tie-breaking that makes batch
outcomes reproducible assumes re-executing a transaction replays the
exact same operation stream.  This module enforces that two ways:

* **Static pass** — an AST scan of each registered procedure that
  rejects nondeterminism sources: the ``random``/``time``/``secrets``/
  ``uuid`` modules, ``os.urandom``-style process state, ``datetime.now``,
  NumPy's ``random`` namespace, address-dependent builtins (``id``,
  ``hash``, ``object()``), and iteration over unordered ``set``/``dict``
  constructions that feeds writes (GPU ports cannot honor CPython's
  incidental iteration orders).

* **Dynamic twin** — replay each procedure twice against the same
  snapshot (buffered execution never mutates it) and diff the recorded
  :class:`~repro.txn.operations.OpColumns` streams byte for byte.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Any, Callable

from repro.analysis.findings import DETLINT, Finding
from repro.errors import TransactionAborted
from repro.storage.database import Database
from repro.txn.context import BufferedContext
from repro.txn.procedures import ProcedureRegistry
from repro.txn.transaction import Transaction

#: Modules whose mere use inside a procedure is a determinism hazard.
_BANNED_MODULES = frozenset({"random", "time", "secrets", "uuid"})
#: (module root, attribute) pairs that are hazards even though the
#: module itself is fine.
_BANNED_ATTRS = frozenset(
    {
        ("os", "urandom"),
        ("os", "getpid"),
        ("os", "times"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("datetime", "today"),
        ("np", "random"),
        ("numpy", "random"),
    }
)
#: Builtins whose results depend on addresses or hash randomization.
_BANNED_BUILTINS = frozenset({"id", "hash", "object", "input"})
#: Context methods that constitute writes (the effects side).
_WRITE_METHODS = frozenset({"write", "write_at", "add", "insert"})


def _attr_chain(node: ast.AST) -> list[str]:
    """``a.b.c`` -> ``["a", "b", "c"]`` (empty if not a plain chain)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


def _is_unordered_ctor(node: ast.AST, set_names: set[str]) -> str | None:
    """Is ``node`` an unordered collection? Returns 'set'/'dict' or None."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return "set"
        if node.func.id == "dict":
            return "dict"
    if isinstance(node, ast.Name) and node.id in set_names:
        return "set"
    return None


class _ProcedureLinter(ast.NodeVisitor):
    """One procedure's static determinism scan."""

    def __init__(self, proc_name: str):
        self.proc_name = proc_name
        self.findings: list[Finding] = []
        #: Names assigned from set/dict constructors in this function.
        self._unordered_names: set[str] = set()

    def _emit(self, kind: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", None)
        self.findings.append(
            Finding(
                DETLINT,
                kind,
                self.proc_name,
                message + (f" (line {line})" if line is not None else ""),
                index=line,
            )
        )

    # -- nondeterministic names/calls ----------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root in _BANNED_MODULES:
                self._emit(
                    "nondeterministic-module", node,
                    f"imports nondeterministic module {alias.name!r}",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        root = (node.module or "").split(".")[0]
        if root in _BANNED_MODULES:
            self._emit(
                "nondeterministic-module", node,
                f"imports from nondeterministic module {node.module!r}",
            )
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load) and node.id in _BANNED_MODULES:
            self._emit(
                "nondeterministic-call", node,
                f"uses nondeterministic module {node.id!r}",
            )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        chain = _attr_chain(node)
        if len(chain) >= 2 and (chain[0], chain[1]) in _BANNED_ATTRS:
            self._emit(
                "nondeterministic-call", node,
                f"uses nondeterministic source {'.'.join(chain)!r}",
            )
        # chain[0] in _BANNED_MODULES already reported via visit_Name.
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id in _BANNED_BUILTINS:
            self._emit(
                "nondeterministic-call", node,
                f"calls address/hash-dependent builtin {node.func.id!r}()",
            )
        self.generic_visit(node)

    # -- unordered iteration feeding writes ----------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        if _is_unordered_ctor(node.value, self._unordered_names):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._unordered_names.add(target.id)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        flavor = _is_unordered_ctor(node.iter, self._unordered_names)
        if flavor is not None and self._body_writes(node.body):
            self._emit(
                "unordered-iteration", node,
                f"iterates a {flavor} and feeds ctx writes: iteration "
                "order is not part of the deterministic contract",
            )
        self.generic_visit(node)

    @staticmethod
    def _body_writes(body: list[ast.stmt]) -> bool:
        for stmt in body:
            for sub in ast.walk(stmt):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in _WRITE_METHODS
                ):
                    return True
        return False


def lint_source(proc_name: str, source: str) -> list[Finding]:
    """Static determinism scan over one procedure's source text."""
    try:
        tree = ast.parse(textwrap.dedent(source))
    except SyntaxError as exc:
        return [
            Finding(
                DETLINT, "unparseable", proc_name,
                f"could not parse source: {exc}",
            )
        ]
    linter = _ProcedureLinter(proc_name)
    linter.visit(tree)
    return linter.findings


def lint_procedure(proc_name: str, procedure: Callable[..., Any]) -> list[Finding]:
    """Static scan of a registered procedure (source via ``inspect``)."""
    try:
        source = inspect.getsource(procedure)
    except (OSError, TypeError):
        return [
            Finding(
                DETLINT, "unlintable", proc_name,
                "source unavailable (builtin/C callable?): cannot verify "
                "determinism statically",
            )
        ]
    return lint_source(proc_name, source)


def lint_registry(
    registry: ProcedureRegistry, include_batched: bool = True
) -> list[Finding]:
    """Static scan over every procedure in a registry.

    Batched twins run the same determinism contract as their scalar
    originals (the batched executor replays them for tie-breaking too),
    so by default the scan also walks every ``register_batched`` twin,
    reported under the subject ``"<name>[batched]"``.  Twins bound via
    ``functools.partial`` (scale configuration) are unwrapped first.
    """
    findings: list[Finding] = []
    for name in registry.names():
        findings.extend(lint_procedure(name, registry.get(name)))
    if include_batched:
        import functools  # noqa: PLC0415 (keep module deps light)

        for name in registry.batched_names():
            twin = registry.get_batched(name)
            while isinstance(twin, functools.partial):
                twin = twin.func
            findings.extend(lint_procedure(f"{name}[batched]", twin))
    return findings


# -- dynamic twin: replay and diff the op streams -------------------------

def _run_once(
    database: Database, procedure: Callable[..., Any], params: tuple
) -> tuple[bytes, str]:
    """One buffered execution; returns (op-stream bytes, outcome tag).

    Buffered contexts never mutate the database, so repeated runs see
    the identical snapshot.
    """
    ctx = BufferedContext(database)
    try:
        procedure(ctx, *params)
        outcome = "ok"
    except TransactionAborted as exc:
        outcome = f"logic-abort:{exc}"
    return ctx.ops.buffer.tobytes(), outcome


def replay_procedure(
    database: Database,
    proc_name: str,
    procedure: Callable[..., Any],
    params: tuple,
    repeats: int = 2,
) -> list[Finding]:
    """Replay a procedure ``repeats`` times; diff the op streams."""
    baseline_ops, baseline_outcome = _run_once(database, procedure, params)
    for attempt in range(1, repeats):
        ops, outcome = _run_once(database, procedure, params)
        if ops != baseline_ops or outcome != baseline_outcome:
            detail = (
                f"outcome {baseline_outcome!r} vs {outcome!r}"
                if outcome != baseline_outcome
                else f"op streams differ ({len(baseline_ops)//48} vs "
                f"{len(ops)//48} ops or same count, different payload)"
            )
            return [
                Finding(
                    DETLINT,
                    "replay-divergence",
                    proc_name,
                    f"replay {attempt + 1} diverged from replay 1 on an "
                    f"identical snapshot: {detail}",
                )
            ]
    return []


def replay_transactions(
    database: Database,
    registry: ProcedureRegistry,
    transactions: list[Transaction],
    samples_per_procedure: int = 2,
) -> list[Finding]:
    """Replay-check a sample of transactions, a few per procedure."""
    findings: list[Finding] = []
    seen: dict[str, int] = {}
    for txn in transactions:
        count = seen.get(txn.procedure_name, 0)
        if count >= samples_per_procedure:
            continue
        seen[txn.procedure_name] = count + 1
        findings.extend(
            replay_procedure(
                database,
                txn.procedure_name,
                registry.get(txn.procedure_name),
                txn.params,
            )
        )
    return findings

"""Kernel-lint: static analysis of the vectorized ``BatchProcedure`` twins.

The batched hot path runs twins over a pluggable
:class:`~repro.xp.ArrayBackend` and ships them pickled into parallel
workers; mockgpu catches contract violations *at runtime* on the inputs
we happen to execute, while this pass catches them *statically* on every
code path.  Four analyses over every registered twin:

1. **Backend-contract lint** (``KL1xx``) — operations that escape the
   ``ArrayBackend`` protocol: implicit scalar conversions (``int()``,
   ``float()``, ``bool()``, ``.item()``, ``.tolist()``) on device-derived
   arrays, data-dependent branches on device values, raw ``numpy`` calls
   on device data, ``xp`` methods outside the exported
   :data:`~repro.xp.CONTRACT` surface, float literals / true division /
   float dtypes that would trip ``BackendContractError`` at runtime, and
   host-loop readbacks (sanctioned sites carry an explicit allow marker,
   see below).

2. **Determinism lint** (``KL2xx``) — the vectorized extension of
   detlint's taxonomy: order-dependent host reductions over device
   arrays, ``xp.scatter`` targets whose index expression cannot be shown
   WAW-disjoint, iteration over unordered containers feeding emission,
   and the scalar-pass bans (``random``, wall clock) detlint already
   knows.

3. **Pickle-safety lint** (``KL3xx``) — every twin the parallel executor
   dispatches must be a module-level callable with no closure-captured
   state, so ``parallel_workers`` failures surface as lint findings
   instead of opaque worker crashes.

4. **Twin-drift audit** (``KL4xx``) — the static read/write footprint
   (tables, columns, op kinds) of each scalar procedure diffed against
   its twin: columns written scalar-side but never twin-side, missing
   abort/fallback/range guards for hazards the scalar path handles,
   writes the twin performs that the scalar never would.

Sanctioned-but-noteworthy host readbacks (index probes driven by an
explicit ``xp.tolist``/``xp.to_host``) are flagged as ``KL105`` unless
annotated with an inline allow marker on the same or preceding line::

    # kernellint: allow[KL105] host hash-index probe (explicit D2H)
    for k in xp.tolist(keys):
        ...

Scalar reductions (``arr.max()`` with no axis) are *not* findings: the
shared contract models them as one-word readbacks, exactly as mockgpu
accounts them at runtime.

With ``device_resident=1`` the authoritative table snapshot lives on
the device (:class:`~repro.xp.residency.DeviceTableView`), so twin or
helper code that reads a table column through the host-side
:class:`~repro.storage.table.Table` API (``table.column(...)`` or the
private ``._columns``/``._keys`` storage) either observes a stale host
mirror or forces a per-batch fence round-trip — exactly the transfer
residency exists to kill.  Such reads are flagged as ``KL106``; route
them through ``bctx`` (``read_rows``/``column_of``/``rows_for_keys``),
which resolves against the resident device copy, or annotate a
sanctioned host probe with ``# kernellint: allow[KL106]``.
"""

from __future__ import annotations

import ast
import functools
import inspect
import os
import pickle
import re
import sys
import textwrap
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.analysis import detlint
from repro.analysis.findings import KERNELLINT, Finding
from repro.txn.procedures import ProcedureRegistry
from repro.xp.base import CONTRACT

#: Rule code -> finding kind (the stable taxonomy tests assert against).
RULES: dict[str, str] = {
    "KL101": "implicit-sync",
    "KL102": "backend-escape",
    "KL103": "float-upcast",
    "KL105": "host-readback-loop",
    "KL106": "host-table-read",
    "KL201": "order-dependent-reduction",
    "KL202": "scatter-non-disjoint",
    "KL203": "unordered-iteration",
    "KL204": "nondeterministic-source",
    "KL301": "pickle-closure",
    "KL302": "pickle-not-module-level",
    "KL303": "pickle-failure",
    "KL401": "twin-missing-write",
    "KL402": "twin-missing-read",
    "KL403": "twin-missing-abort",
    "KL404": "twin-missing-fallback",
    "KL405": "twin-extra-write",
    "KL406": "twin-missing-range",
}

#: ``BatchedContext`` methods that return device-resident arrays.
_BCTX_DEVICE_METHODS = frozenset({
    "all_lanes", "active_lanes", "active_mask",
    "rows_for_keys", "rows_for_flat_keys",
    "read_rows", "read_keys", "read_block", "read_var", "key_at_rows",
    "insert", "column_of",
})
#: The sanctioned readback points: these take device lane vectors and
#: perform the explicit crossing internally.
_BCTX_SINKS = frozenset({"logic_abort", "fall_back"})
#: Emission methods (the effects side, for the unordered-iteration rule).
_TWIN_WRITE_METHODS = frozenset({
    "write", "add", "insert", "scatter", "scatter_add", "scatter_min",
    "logic_abort", "fall_back",
})
#: Array attributes that are host metadata, never a transfer.
_HOST_ATTRS = frozenset({
    "size", "shape", "ndim", "nbytes", "dtype", "itemsize", "n",
})
#: xp crossings whose *result* is host data (explicit D2H).
_XP_TO_HOST = frozenset({"to_host", "tolist", "item"})
#: Methods allowed on ``xp`` (derived from the shared contract).
_ALLOWED_XP = CONTRACT.all_methods() | {"is_device", "module", "name"}
#: No-axis reductions modeled as sanctioned one-word readbacks.
_SCALAR_READBACKS = frozenset(CONTRACT.scalar_readbacks)
#: Array methods that stay on the device.
_DEVICE_METHODS = frozenset({
    "astype", "copy", "reshape", "ravel", "view", "flatten",
    "transpose", "clip", "take", "repeat", "round", "cumsum", "argsort",
    "nonzero", "squeeze", "sort",
})
#: Float-producing primitives the int64 hot path must never call.
_FLOAT_PRODUCERS = frozenset({"mean", "std", "var", "average"})
#: Float dtype names in ``np.<name>`` / ``xp.<name>`` position.
_FLOAT_DTYPES = frozenset({"float16", "float32", "float64", "double", "half"})

_ALLOW_RE = re.compile(r"#\s*kernellint:\s*allow\[([A-Z0-9,\s]+)\]")

_KEY_COLUMN = "<key>"

Twin = Callable[..., Any]


def _attr_chain(node: ast.AST) -> list[str]:
    """``a.b.c`` -> ``["a", "b", "c"]`` (empty if not a plain chain)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


def unwrap_twin(obj: Any) -> Any:
    """Peel ``functools.partial`` layers down to the underlying callable
    (twins bind their workload scale via ``partial`` at registration)."""
    while isinstance(obj, functools.partial):
        obj = obj.func
    return obj


def _repo_relative(path: str) -> str:
    """Repository-relative source path (stable across checkouts)."""
    import repro

    root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    )
    try:
        rel = os.path.relpath(path, root)
    except ValueError:  # pragma: no cover - windows cross-drive
        return path
    return path if rel.startswith("..") else rel


@dataclass
class SourceUnit:
    """One lintable function: source, AST, and allow-marker map."""

    name: str
    fn: Callable[..., Any]
    file: str
    first_line: int
    source: str
    tree: ast.FunctionDef
    #: absolute line -> codes suppressed on that line
    allow: dict[int, set[str]] = field(default_factory=dict)

    def abs_span(self, node: ast.AST) -> tuple[int, int]:
        start = getattr(node, "lineno", 1) + self.first_line - 1
        end = (getattr(node, "end_lineno", None) or getattr(node, "lineno", 1))
        return (start, end + self.first_line - 1)


def source_unit(name: str, fn: Callable[..., Any]) -> SourceUnit | Finding:
    """Build a :class:`SourceUnit`, or the ``unlintable`` finding."""
    try:
        lines, first_line = inspect.getsourcelines(fn)
        file = inspect.getsourcefile(fn) or "<unknown>"
    except (OSError, TypeError):
        return Finding(
            KERNELLINT, "unlintable", name,
            "source unavailable (builtin/C callable?): cannot lint the "
            "twin statically",
        )
    source = textwrap.dedent("".join(lines))
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:  # pragma: no cover - inspect gave us code
        return Finding(
            KERNELLINT, "unparseable", name, f"could not parse source: {exc}"
        )
    func = next(
        (n for n in tree.body if isinstance(n, ast.FunctionDef)), None
    )
    if func is None:
        return Finding(
            KERNELLINT, "unlintable", name,
            "source does not contain a function definition",
        )
    allow: dict[int, set[str]] = {}
    for offset, text in enumerate(lines):
        match = _ALLOW_RE.search(text)
        if match:
            codes = {c.strip() for c in match.group(1).split(",") if c.strip()}
            allow[first_line + offset] = codes
    return SourceUnit(
        name, fn, _repo_relative(file), first_line, source, func, allow
    )


class _TwinLinter(ast.NodeVisitor):
    """Taint-tracking scan of one twin (or helper) body.

    Run twice: a taint-only pass to reach a fixpoint over loop-carried
    assignments, then an emitting pass that reports findings.  Taint is
    monotone (a name once device-tainted stays tainted), which
    over-approximates but never misses a device value.
    """

    def __init__(
        self,
        unit: SourceUnit,
        bctx_name: str | None,
        params_name: str | None,
        xp_names: set[str],
        tainted: set[str],
    ) -> None:
        self.unit = unit
        self.bctx = bctx_name
        self.params = params_name
        self.xp_names = set(xp_names)
        self.tainted = set(tainted)
        self.disjoint: set[str] = set()
        self.emitting = False
        self.findings: list[Finding] = []
        self.suppressed = 0
        #: module-level helper names this unit calls (resolved later)
        self.helper_calls: set[str] = set()

    # -- finding emission ---------------------------------------------------
    def _emit(self, code: str, node: ast.AST, message: str) -> None:
        if not self.emitting:
            return
        span = self.unit.abs_span(node)
        line = span[0]
        for probe in (line, line - 1):
            if code in self.unit.allow.get(probe, set()):
                self.suppressed += 1
                return
        self.findings.append(
            Finding(
                KERNELLINT, RULES[code], self.unit.name,
                message + f" (line {line})",
                index=line, code=code, file=self.unit.file, span=span,
            )
        )

    # -- expression classification -----------------------------------------
    def _is_xp(self, node: ast.AST) -> bool:
        return isinstance(node, ast.Name) and node.id in self.xp_names

    def _is_bctx_xp_attr(self, node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Attribute)
            and node.attr == "xp"
            and isinstance(node.value, ast.Name)
            and node.value.id == self.bctx
        )

    def _is_crossing_call(self, node: ast.AST) -> bool:
        """``xp.to_host(...)`` / ``xp.tolist(...)`` / ``xp.item(...)``."""
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _XP_TO_HOST
            and (
                self._is_xp(node.func.value)
                or self._is_bctx_xp_attr(node.func.value)
            )
        )

    def _is_scalar_readback(self, node: ast.AST) -> bool:
        """``arr.max()`` with no axis: a sanctioned one-word readback."""
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _SCALAR_READBACKS
            and self._taint(node.func.value)
        ):
            return False
        if node.args:
            first = node.args[0]
            if not (isinstance(first, ast.Constant) and first.value is None):
                return False
        for kw in node.keywords:
            if kw.arg == "axis" and not (
                isinstance(kw.value, ast.Constant) and kw.value.value is None
            ):
                return False
        return True

    def _taint(self, node: ast.AST | None) -> bool:
        """Does evaluating ``node`` yield device-resident data?"""
        if node is None:
            return False
        if isinstance(node, ast.Name):
            return node.id in self.tainted
        if isinstance(node, ast.Attribute):
            if node.attr in _HOST_ATTRS:
                return False
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == self.params
                and node.attr in ("lengths", "padded")
            ):
                return True
            return self._taint(node.value)
        if isinstance(node, ast.Call):
            return self._call_taint(node)
        if isinstance(node, ast.Subscript):
            return self._taint(node.value) or self._taint(node.slice)
        if isinstance(node, ast.BinOp):
            return self._taint(node.left) or self._taint(node.right)
        if isinstance(node, ast.BoolOp):
            return any(self._taint(v) for v in node.values)
        if isinstance(node, ast.UnaryOp):
            return self._taint(node.operand)
        if isinstance(node, ast.Compare):
            return self._taint(node.left) or any(
                self._taint(c) for c in node.comparators
            )
        if isinstance(node, ast.IfExp):
            return self._taint(node.body) or self._taint(node.orelse)
        if isinstance(node, (ast.Tuple, ast.List)):
            return any(self._taint(e) for e in node.elts)
        if isinstance(node, ast.NamedExpr):
            return self._taint(node.value)
        if isinstance(node, ast.Starred):
            return self._taint(node.value)
        return False

    def _call_taint(self, node: ast.Call) -> bool:
        func = node.func
        if isinstance(func, ast.Attribute):
            base, attr = func.value, func.attr
            if self._is_xp(base) or self._is_bctx_xp_attr(base):
                return attr not in _XP_TO_HOST
            if isinstance(base, ast.Name) and base.id == self.bctx:
                return attr in _BCTX_DEVICE_METHODS
            if isinstance(base, ast.Name) and base.id == self.params:
                return attr in ("column",)
            if self._is_scalar_readback(node):
                return False
            if self._taint(base):
                # device-array method: tolist/item cross back to host
                # (flagged as implicit syncs by the rules pass)
                if attr in ("tolist", "item"):
                    return False
                return True
            # e.g. np.fromiter(...) — tainted iff an argument is
            return any(self._taint(a) for a in node.args) or any(
                self._taint(k.value) for k in node.keywords
            )
        if isinstance(func, ast.Name):
            name = func.id
            if name in ("int", "float", "bool", "len", "sum", "sorted",
                        "list", "tuple", "zip", "enumerate", "range",
                        "set", "frozenset", "dict", "str", "abs"):
                return False
            # module-level helper: result assumed device when fed device
            return any(self._taint(a) for a in node.args) or any(
                self._taint(k.value) for k in node.keywords
            )
        return False

    def _is_disjoint(self, node: ast.AST) -> bool:
        """Can ``node`` be shown to hold pairwise-distinct indices?"""
        if isinstance(node, ast.Name):
            return node.id in self.disjoint
        if isinstance(node, ast.Subscript):
            # masking/slicing a disjoint vector keeps elements distinct
            return self._is_disjoint(node.value)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                if (
                    self._is_xp(func.value) or self._is_bctx_xp_attr(func.value)
                ) and func.attr in ("flatnonzero", "arange", "unique"):
                    return True
                if (
                    isinstance(func.value, ast.Name)
                    and func.value.id == self.bctx
                    and func.attr in ("all_lanes", "active_lanes")
                ):
                    return True
        return False

    # -- assignments / taint propagation -------------------------------------
    def _bind(self, target: ast.AST, tainted: bool, disjoint: bool) -> None:
        if isinstance(target, ast.Name):
            if tainted:
                self.tainted.add(target.id)
            if disjoint:
                self.disjoint.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, tainted, disjoint)

    def visit_Assign(self, node: ast.Assign) -> None:
        value = node.value
        # x = bctx.xp / x = xp: track backend aliases
        if self._is_bctx_xp_attr(value) or self._is_xp(value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.xp_names.add(target.id)
            return
        if (
            isinstance(value, (ast.Tuple, ast.List))
            and len(node.targets) == 1
            and isinstance(node.targets[0], (ast.Tuple, ast.List))
            and len(node.targets[0].elts) == len(value.elts)
        ):
            for tgt, val in zip(node.targets[0].elts, value.elts):
                self._bind(tgt, self._taint(val), self._is_disjoint(val))
        else:
            tainted = self._taint(value)
            disjoint = self._is_disjoint(value)
            for target in node.targets:
                self._bind(target, tainted, disjoint)
        self.visit(value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if self._taint(node.value):
            self._bind(node.target, True, False)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._bind(node.target, self._taint(node.value), False)
            self.visit(node.value)

    # -- control flow rules ---------------------------------------------------
    def _check_branch(self, node: ast.stmt, test: ast.AST) -> None:
        if self._taint(test):
            self._emit(
                "KL101", test,
                "data-dependent branch on a device value: the truth test "
                "is an implicit D2H sync — read it back explicitly "
                "(xp.item / .any() readback) at a phase boundary",
            )

    def visit_If(self, node: ast.If) -> None:
        self._check_branch(node, node.test)
        self.generic_visit(node)

    def visit_While(self, node: ast.While) -> None:
        self._check_branch(node, node.test)
        self.generic_visit(node)

    def visit_Assert(self, node: ast.Assert) -> None:
        self._check_branch(node, node.test)
        self.generic_visit(node)

    def visit_IfExp(self, node: ast.IfExp) -> None:
        if self._taint(node.test):
            self._emit(
                "KL101", node.test,
                "conditional expression branches on a device value "
                "(implicit D2H sync)",
            )
        self.generic_visit(node)

    # -- loops ----------------------------------------------------------------
    def _readback_loop_sources(self, iter_node: ast.AST) -> bool:
        """Is the loop iterable an explicit whole-array readback?"""
        if self._is_crossing_call(iter_node):
            return True
        if isinstance(iter_node, ast.Call) and isinstance(
            iter_node.func, ast.Name
        ) and iter_node.func.id in ("zip", "enumerate"):
            return any(self._readback_loop_sources(a) for a in iter_node.args)
        return False

    def visit_For(self, node: ast.For) -> None:
        flavor = detlint._is_unordered_ctor(node.iter, set())
        if flavor is not None and _body_emits(node.body):
            self._emit(
                "KL203", node,
                f"iterates a {flavor} and feeds batched emission: "
                "iteration order is not part of the deterministic "
                "contract",
            )
        if self._taint(node.iter):
            self._emit(
                "KL101", node.iter,
                "iterates a device array on the host (implicit per-element "
                "D2H); read it back once via xp.tolist/xp.to_host",
            )
            self._bind(node.target, True, False)
        elif self._readback_loop_sources(node.iter):
            self._emit(
                "KL105", node,
                "host loop over an explicit device readback: sanctioned "
                "sync points must carry a '# kernellint: allow[KL105]' "
                "marker",
            )
        self.visit(node.iter)
        for stmt in node.body:
            self.visit(stmt)
        for stmt in node.orelse:
            self.visit(stmt)

    def _visit_comprehension(
        self, node: ast.GeneratorExp | ast.ListComp | ast.SetComp
    ) -> None:
        for gen in node.generators:
            if self._taint(gen.iter):
                self._emit(
                    "KL101", gen.iter,
                    "comprehension iterates a device array on the host "
                    "(implicit per-element D2H)",
                )
            elif self._readback_loop_sources(gen.iter):
                self._emit(
                    "KL105", gen.iter,
                    "host comprehension over an explicit device readback: "
                    "sanctioned sync points must carry a "
                    "'# kernellint: allow[KL105]' marker",
                )
            self.visit(gen.iter)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._visit_comprehension(node)

    # -- calls ----------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        any_tainted_arg = any(self._taint(a) for a in node.args) or any(
            self._taint(k.value) for k in node.keywords
        )
        if isinstance(func, ast.Name):
            fid = func.id
            if fid in ("int", "float", "bool") and any_tainted_arg:
                self._emit(
                    "KL101", node,
                    f"implicit scalar conversion {fid}() on a device value "
                    "outside a sanctioned readback; use xp.item at a phase "
                    "boundary",
                )
            elif fid in ("sum", "sorted", "max", "min") and any_tainted_arg:
                self._emit(
                    "KL201", node,
                    f"host builtin {fid}() reduces/orders a device array "
                    "element-by-element: order-dependent and an implicit "
                    "sync — use the xp reduction primitives",
                )
            elif fid in ("list", "tuple", "set", "iter") and any_tainted_arg:
                self._emit(
                    "KL101", node,
                    f"{fid}() materializes a device array on the host "
                    "(implicit D2H); use xp.tolist/xp.to_host explicitly",
                )
            elif fid not in dir(__import__("builtins")):
                self.helper_calls.add(fid)
        elif isinstance(func, ast.Attribute):
            chain = _attr_chain(func)
            root = chain[0] if chain else None
            if root in ("np", "numpy") and any_tainted_arg:
                self._emit(
                    "KL102", node,
                    f"raw numpy call {'.'.join(chain)}() on device-derived "
                    "data escapes the ArrayBackend protocol; route it "
                    "through xp",
                )
            elif (
                self._is_xp(func.value) or self._is_bctx_xp_attr(func.value)
            ) and func.attr not in _ALLOWED_XP:
                self._emit(
                    "KL102", node,
                    f"xp.{func.attr}() is not part of the exported "
                    "ArrayBackend protocol surface "
                    "(repro.xp.CONTRACT); backends are only required to "
                    "implement the contract",
                )
            elif func.attr in _FLOAT_PRODUCERS and (
                any_tainted_arg or self._taint(func.value)
            ):
                self._emit(
                    "KL103", node,
                    f"{func.attr}() produces a floating dtype: the hot "
                    "path is int64-disciplined "
                    "(BackendContractError at runtime under mockgpu)",
                )
            elif func.attr in ("item", "tolist") and self._taint(func.value):
                self._emit(
                    "KL101", node,
                    f".{func.attr}() on a device array is an implicit host "
                    f"round-trip; use xp.{func.attr}(...) at a phase "
                    "boundary",
                )
            elif func.attr == "astype" and self._taint(func.value):
                self._check_float_dtype_arg(node)
            elif func.attr == "scatter" and (
                self._is_xp(func.value) or self._is_bctx_xp_attr(func.value)
            ):
                self._check_scatter(node)
            elif func.attr in ("column", "host_column") and not (
                isinstance(func.value, ast.Name)
                and func.value.id in (self.params, self.bctx)
            ):
                self._emit(
                    "KL106", node,
                    f".{func.attr}() reads a table column through the "
                    "host-side Table API: under device residency the "
                    "authoritative copy is the DeviceTableView, so this "
                    "either observes a stale host mirror or forces a "
                    "per-batch fence round-trip — route the read through "
                    "bctx (read_rows/column_of), or mark a sanctioned "
                    "host probe with '# kernellint: allow[KL106]'",
                )
        self.generic_visit(node)

    def _check_float_dtype_arg(self, node: ast.Call) -> None:
        for arg in list(node.args) + [k.value for k in node.keywords]:
            is_float_name = isinstance(arg, ast.Name) and arg.id == "float"
            chain = _attr_chain(arg)
            is_float_attr = bool(chain) and chain[-1] in _FLOAT_DTYPES
            if is_float_name or is_float_attr:
                self._emit(
                    "KL103", node,
                    "astype to a floating dtype breaks the int64 "
                    "discipline of the batched hot path",
                )

    def _check_scatter(self, node: ast.Call) -> None:
        if len(node.args) < 2:
            return
        index = node.args[1]
        if not self._is_disjoint(index):
            self._emit(
                "KL202", node,
                "xp.scatter (assignment scatter) with an index expression "
                "that cannot be shown WAW-disjoint: apply order would "
                "change state across backends — use scatter_add/"
                "scatter_min (commutative) or derive the index from "
                "flatnonzero/arange/unique",
            )

    # -- literals -------------------------------------------------------------
    def visit_Constant(self, node: ast.Constant) -> None:
        if isinstance(node.value, float):
            self._emit(
                "KL103", node,
                f"float literal {node.value!r} in twin code: any float "
                "operand upcasts the int64 data path "
                "(BackendContractError at runtime under mockgpu)",
            )

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, ast.Div) and (
            self._taint(node.left) or self._taint(node.right)
        ):
            self._emit(
                "KL103", node,
                "true division (/) on device data produces float64; use "
                "floor division (//) to stay int64",
            )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr in ("_columns", "_keys") and not self._is_xp(node.value):
            self._emit(
                "KL106", node,
                f"._{node.attr.lstrip('_')} touches Table's private host "
                "storage directly, bypassing the residency fence: under "
                "device residency the host ndarray may be stale — use the "
                "bctx device path or '# kernellint: allow[KL106]' for a "
                "sanctioned host probe",
            )
        if node.attr in _FLOAT_DTYPES:
            chain = _attr_chain(node)
            if chain and chain[0] in ("np", "numpy") or self._is_xp(node.value):
                self._emit(
                    "KL103", node,
                    f"float dtype {'.'.join(chain) or node.attr} referenced "
                    "in twin code: the hot path is int64-disciplined",
                )
        self.generic_visit(node)

    # skip nested function definitions (helpers are linted separately)
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if node is self.unit.tree:
            self.generic_visit(node)

    def run(self) -> tuple[list[Finding], int]:
        """Taint fixpoint, then one emitting pass."""
        for _ in range(10):
            before = (len(self.tainted), len(self.disjoint),
                      len(self.xp_names))
            self.visit(self.unit.tree)
            if (len(self.tainted), len(self.disjoint),
                    len(self.xp_names)) == before:
                break
        self.emitting = True
        self.visit(self.unit.tree)
        return self.findings, self.suppressed


def _body_emits(body: list[ast.stmt]) -> bool:
    for stmt in body:
        for sub in ast.walk(stmt):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in _TWIN_WRITE_METHODS
            ):
                return True
    return False


def _twin_arg_names(func: ast.FunctionDef) -> tuple[str | None, str | None]:
    """The (bctx, params) parameter names of a twin definition.

    By convention twins are ``fn([bound...,] bctx, params)``; fall back
    to the last two positional parameters when the names differ.
    """
    names = [a.arg for a in func.args.args]
    bctx = "bctx" if "bctx" in names else (
        names[-2] if len(names) >= 2 else None
    )
    params = "params" if "params" in names else (
        names[-1] if names else None
    )
    return bctx, params


def lint_twin_unit(unit: SourceUnit) -> tuple[list[Finding], int, set[str]]:
    """Backend-contract + determinism lint of one twin.

    Returns ``(findings, suppressed, helper_names)`` where
    ``helper_names`` are same-module functions the twin calls (linted
    separately by :func:`lint_registry_twins`).
    """
    bctx, params = _twin_arg_names(unit.tree)
    linter = _TwinLinter(
        unit, bctx, params,
        xp_names={"xp"} if any(
            a.arg == "xp" for a in unit.tree.args.args
        ) else set(),
        tainted=set(),
    )
    findings, suppressed = linter.run()
    findings.extend(_banned_source_findings(unit))
    return findings, suppressed, linter.helper_calls


def lint_helper_unit(unit: SourceUnit) -> tuple[list[Finding], int]:
    """Lint a module-level helper a twin calls.

    Every parameter except the backend/context conventions
    (``xp``/``bctx``/``scale``/``params``) is assumed device-resident.
    """
    names = [a.arg for a in unit.tree.args.args]
    tainted = {
        n for n in names if n not in ("xp", "bctx", "scale", "params", "self")
    }
    linter = _TwinLinter(
        unit,
        "bctx" if "bctx" in names else None,
        "params" if "params" in names else None,
        xp_names={"xp"} if "xp" in names else set(),
        tainted=tainted,
    )
    findings, suppressed = linter.run()
    findings.extend(_banned_source_findings(unit))
    return findings, suppressed


def _banned_source_findings(unit: SourceUnit) -> list[Finding]:
    """The scalar determinism bans (detlint taxonomy) mapped to KL204."""
    out: list[Finding] = []
    for f in detlint.lint_source(unit.name, unit.source):
        if f.kind not in ("nondeterministic-module", "nondeterministic-call"):
            continue
        line = (f.index or 1) + unit.first_line - 1
        out.append(
            Finding(
                KERNELLINT, RULES["KL204"], unit.name,
                f"{f.message.split(' (line')[0]} (line {line})",
                index=line, code="KL204", file=unit.file, span=(line, line),
            )
        )
    return out


# -- pickle-safety lint -------------------------------------------------------

def lint_pickle_safety(proc_name: str, twin_obj: Any) -> list[Finding]:
    """Verify a registered twin can ship to spawn-started workers."""
    findings: list[Finding] = []
    subject = f"{proc_name}[batched]"
    fn = unwrap_twin(twin_obj)
    file: str | None = None
    span: tuple[int, int] | None = None
    if inspect.isfunction(fn):
        try:
            _, first = inspect.getsourcelines(fn)
            file = _repo_relative(inspect.getsourcefile(fn) or "<unknown>")
            span = (first, first)
        except (OSError, TypeError):
            pass
        if fn.__name__ == "<lambda>" or "<locals>" in fn.__qualname__:
            findings.append(
                Finding(
                    KERNELLINT, RULES["KL302"], subject,
                    f"twin {fn.__qualname__!r} is not a module-level "
                    "callable: spawn-started workers import twins by "
                    "module attribute, so lambdas/local defs crash the "
                    "pool at dispatch",
                    code="KL302", file=file, span=span,
                )
            )
        elif getattr(
            sys.modules.get(fn.__module__), fn.__name__, None
        ) is not fn:
            findings.append(
                Finding(
                    KERNELLINT, RULES["KL302"], subject,
                    f"twin {fn.__qualname__!r} is not reachable as "
                    f"{fn.__module__}.{fn.__name__}: pickling resolves "
                    "twins by module attribute",
                    code="KL302", file=file, span=span,
                )
            )
        if fn.__closure__:
            captured = ", ".join(fn.__code__.co_freevars)
            findings.append(
                Finding(
                    KERNELLINT, RULES["KL301"], subject,
                    f"twin {fn.__qualname__!r} captures closure state "
                    f"({captured}): bind configuration via "
                    "functools.partial at registration instead",
                    code="KL301", file=file, span=span,
                )
            )
    if not findings:
        try:
            pickle.dumps(twin_obj)
        except Exception as exc:
            findings.append(
                Finding(
                    KERNELLINT, RULES["KL303"], subject,
                    f"twin does not pickle ({exc!r}): the parallel "
                    "executor cannot dispatch it to worker processes",
                    code="KL303", file=file, span=span,
                )
            )
    return findings


# -- twin-drift audit ---------------------------------------------------------

@dataclass(frozen=True)
class Access:
    """One static footprint entry: op kind on (table, column)."""

    kind: str  # read | write | add | insert
    table: str
    column: str


@dataclass
class Footprint:
    """The static read/write footprint of one procedure body."""

    accesses: set[Access] = field(default_factory=set)
    aborts: bool = False
    falls_back: bool = False
    ranges: bool = False
    #: (table, column) pairs read *and* written inside one loop — the
    #: read-your-own-writes hazards that demand a fallback guard.
    loop_rmw: set[tuple[str, str]] = field(default_factory=set)

    def writes(self) -> set[Access]:
        return {a for a in self.accesses if a.kind in ("write", "add", "insert")}

    def reads(self) -> set[Access]:
        return {a for a in self.accesses if a.kind == "read"}


#: ctx-method -> (kind, index of the column argument); -1 = key column,
#: -2 = dict-literal insert payload.
_SCALAR_METHODS: dict[str, tuple[str, int]] = {
    "read": ("read", 2),
    "read_at": ("read", 2),
    "range_read": ("read", 3),
    "write": ("write", 2),
    "write_at": ("write", 2),
    "add": ("add", 2),
    "insert": ("insert", -2),
    "key_at": ("read", -1),
}
_TWIN_METHODS: dict[str, tuple[str, int]] = {
    "read_rows": ("read", 3),
    "read_keys": ("read", 3),
    "read_block": ("read", 3),
    "read_var": ("read", 4),
    "column_of": ("read", 1),
    "key_at_rows": ("read", -1),
    "write": ("write", 3),
    "add": ("add", 3),
    "insert": ("insert", -2),
}


class _FootprintVisitor(ast.NodeVisitor):
    def __init__(
        self,
        ctx_name: str,
        methods: dict[str, tuple[str, int]],
        abort_methods: frozenset[str],
        fallback_methods: frozenset[str],
        range_methods: frozenset[str],
    ) -> None:
        self.ctx = ctx_name
        self.methods = methods
        self.abort_methods = abort_methods
        self.fallback_methods = fallback_methods
        self.range_methods = range_methods
        self.fp = Footprint()
        self._loop_depth = 0
        self._loop_reads: list[set[tuple[str, str]]] = []
        self._loop_writes: list[set[tuple[str, str]]] = []

    def _record(self, node: ast.Call, attr: str) -> None:
        if attr in self.abort_methods:
            self.fp.aborts = True
        if attr in self.fallback_methods:
            self.fp.falls_back = True
        if attr in self.range_methods:
            self.fp.ranges = True
        spec = self.methods.get(attr)
        if spec is None or not node.args:
            return
        kind, col_idx = spec
        table_arg = node.args[0]
        if not (
            isinstance(table_arg, ast.Constant)
            and isinstance(table_arg.value, str)
        ):
            return
        table = table_arg.value
        if attr == "range_read":
            self.fp.ranges = True
        if col_idx == -1:
            self._add(kind, table, _KEY_COLUMN)
        elif col_idx == -2:
            payload = node.args[-1]
            if isinstance(payload, ast.Dict):
                for key in payload.keys:
                    if isinstance(key, ast.Constant) and isinstance(
                        key.value, str
                    ):
                        self._add(kind, table, key.value)
        elif col_idx < len(node.args):
            col_arg = node.args[col_idx]
            if isinstance(col_arg, ast.Constant) and isinstance(
                col_arg.value, str
            ):
                self._add(kind, table, col_arg.value)

    def _add(self, kind: str, table: str, column: str) -> None:
        self.fp.accesses.add(Access(kind, table, column))
        if self._loop_depth and column != _KEY_COLUMN:
            if kind == "read":
                self._loop_reads[-1].add((table, column))
            elif kind in ("write", "add"):
                self._loop_writes[-1].add((table, column))

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == self.ctx
        ):
            self._record(node, func.attr)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._loop_depth += 1
        self._loop_reads.append(set())
        self._loop_writes.append(set())
        self.generic_visit(node)
        reads = self._loop_reads.pop()
        writes = self._loop_writes.pop()
        self._loop_depth -= 1
        rmw = reads & writes
        if self._loop_depth:
            # nested loops fold into the enclosing loop's sets
            self._loop_reads[-1] |= reads
            self._loop_writes[-1] |= writes
        self.fp.loop_rmw |= rmw


def extract_footprint(
    unit: SourceUnit,
    ctx_name: str,
    methods: dict[str, tuple[str, int]],
    abort_methods: frozenset[str],
    fallback_methods: frozenset[str],
    range_methods: frozenset[str],
) -> Footprint:
    visitor = _FootprintVisitor(
        ctx_name, methods, abort_methods, fallback_methods, range_methods
    )
    visitor.visit(unit.tree)
    return visitor.fp


def scalar_footprint(unit: SourceUnit) -> Footprint:
    """Static footprint of a scalar procedure (ctx = first parameter)."""
    args = unit.tree.args.args
    ctx = args[0].arg if args else "ctx"
    return extract_footprint(
        unit, ctx, _SCALAR_METHODS,
        abort_methods=frozenset({"abort"}),
        fallback_methods=frozenset(),
        range_methods=frozenset({"range_read"}),
    )


def twin_footprint(unit: SourceUnit) -> Footprint:
    """Static footprint of a vectorized twin."""
    bctx, _ = _twin_arg_names(unit.tree)
    return extract_footprint(
        unit, bctx or "bctx", _TWIN_METHODS,
        abort_methods=frozenset({"logic_abort"}),
        fallback_methods=frozenset({"fall_back"}),
        range_methods=frozenset({"range_predicate"}),
    )


def drift_findings(
    proc_name: str,
    scalar_unit: SourceUnit,
    twin_unit: SourceUnit,
) -> list[Finding]:
    """Diff the scalar procedure's footprint against its twin's."""
    scalar = scalar_footprint(scalar_unit)
    twin = twin_footprint(twin_unit)
    subject = f"{proc_name}[batched]"
    anchor = twin_unit.abs_span(twin_unit.tree)
    span = (anchor[0], anchor[0])

    def finding(code: str, message: str) -> Finding:
        return Finding(
            KERNELLINT, RULES[code], subject, message,
            index=span[0], code=code, file=twin_unit.file, span=span,
        )

    out: list[Finding] = []
    for acc in sorted(
        scalar.writes() - twin.writes(),
        key=lambda a: (a.kind, a.table, a.column),
    ):
        out.append(
            finding(
                "KL401",
                f"scalar path {acc.kind}s {acc.table}.{acc.column} but the "
                "twin never does: coverage drift — committed state would "
                "diverge between executors",
            )
        )
    for acc in sorted(
        scalar.reads() - twin.reads(),
        key=lambda a: (a.table, a.column),
    ):
        out.append(
            finding(
                "KL402",
                f"scalar path reads {acc.table}.{acc.column} but the twin "
                "never does: the twin's conflict footprint is narrower "
                "than the scalar truth",
            )
        )
    for acc in sorted(
        twin.writes() - scalar.writes(),
        key=lambda a: (a.kind, a.table, a.column),
    ):
        out.append(
            finding(
                "KL405",
                f"twin {acc.kind}s {acc.table}.{acc.column} but the scalar "
                "path never does: the twin writes state its scalar twin "
                "would not",
            )
        )
    if scalar.aborts and not (twin.aborts or twin.falls_back):
        out.append(
            finding(
                "KL403",
                "scalar path has a logic abort (ctx.abort) but the twin "
                "neither logic_aborts nor falls back: aborting lanes "
                "would commit under the batched executor",
            )
        )
    if scalar.loop_rmw and not twin.falls_back:
        locs = ", ".join(f"{t}.{c}" for t, c in sorted(scalar.loop_rmw))
        out.append(
            finding(
                "KL404",
                f"scalar path read-modify-writes {locs} inside a loop (a "
                "read-your-own-writes hazard across iterations) but the "
                "twin has no fall_back guard for hazard lanes",
            )
        )
    if scalar.ranges and not (twin.ranges or twin.falls_back):
        out.append(
            finding(
                "KL406",
                "scalar path records a range predicate (range_read) but "
                "the twin neither emits range_predicate nor falls back: "
                "phantom protection is lost on the batched path",
            )
        )
    return out


# -- registry-level driver ----------------------------------------------------

def lint_registry_twins(
    registry: ProcedureRegistry,
) -> tuple[list[Finding], int, int]:
    """All four analyses over every registered twin.

    Returns ``(findings, twins_checked, suppressed)``.
    """
    findings: list[Finding] = []
    suppressed = 0
    helper_seen: set[tuple[str, str]] = set()
    names = registry.batched_names()
    for name in names:
        twin_obj = registry.get_batched(name)
        findings.extend(lint_pickle_safety(name, twin_obj))
        fn = unwrap_twin(twin_obj)
        unit = source_unit(f"{name}[batched]", fn)
        if isinstance(unit, Finding):
            findings.append(unit)
            continue
        twin_findings, twin_suppressed, helpers = lint_twin_unit(unit)
        findings.extend(twin_findings)
        suppressed += twin_suppressed
        # same-module helpers the twin calls are part of its data path
        for helper_name in sorted(helpers):
            helper = getattr(fn, "__globals__", {}).get(helper_name)
            if not (
                inspect.isfunction(helper)
                and helper.__module__ == fn.__module__
            ):
                continue
            key = (helper.__module__, helper_name)
            if key in helper_seen:
                continue
            helper_seen.add(key)
            helper_unit = source_unit(
                f"{helper.__module__}.{helper_name}", helper
            )
            if isinstance(helper_unit, Finding):
                findings.append(helper_unit)
                continue
            helper_findings, helper_suppressed = lint_helper_unit(helper_unit)
            findings.extend(helper_findings)
            suppressed += helper_suppressed
        # twin-drift audit against the scalar ground truth
        scalar_unit = source_unit(name, registry.get(name))
        if not isinstance(scalar_unit, Finding):
            findings.extend(drift_findings(name, scalar_unit, unit))
    return findings, len(names), suppressed


__all__ = [
    "RULES",
    "Access",
    "Footprint",
    "SourceUnit",
    "drift_findings",
    "lint_helper_unit",
    "lint_pickle_safety",
    "lint_registry_twins",
    "lint_twin_unit",
    "scalar_footprint",
    "source_unit",
    "twin_footprint",
    "unwrap_twin",
]

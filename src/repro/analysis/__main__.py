"""``python -m repro.analysis`` entry point."""

from __future__ import annotations

import sys

from repro.analysis.cli import main

sys.exit(main())

"""Workload construction for the analysis passes.

Builds the same three workloads the benchmarks run (TPC-C, YCSB-A,
SmallBank) at an analysis-friendly scale, with each workload's LTPG
optimization markings (delayed/split columns, hot tables) so the
sanitized engine exercises the exact phase kernels the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol

from repro.core.config import LTPGConfig
from repro.core.engine import LTPGEngine
from repro.storage.database import Database
from repro.txn.procedures import ProcedureRegistry
from repro.txn.transaction import Transaction

WORKLOAD_NAMES = ("tpcc", "ycsb", "smallbank")

#: Analysis-scale sizing: big enough to hit every phase-kernel code path
#: (conflicts, inserts, delayed adds, hot buckets), small enough that a
#: sanitized run finishes in seconds.
DEFAULT_BATCH_SIZE = 512
DEFAULT_BATCHES = 3


class _Generator(Protocol):
    def make_batch(self, size: int) -> list[Transaction]: ...


@dataclass
class WorkloadSetup:
    """Everything an analysis pass needs to run one workload."""

    name: str
    database: Database
    registry: ProcedureRegistry
    generator: _Generator
    config_kwargs: dict[str, Any] = field(default_factory=dict)

    def engine(
        self,
        batch_size: int = DEFAULT_BATCH_SIZE,
        sanitize: bool = True,
        **overrides: Any,
    ) -> LTPGEngine:
        kwargs: dict[str, Any] = dict(self.config_kwargs)
        kwargs.update(overrides)
        config = LTPGConfig(batch_size=batch_size, sanitize=sanitize, **kwargs)
        return LTPGEngine(self.database, self.registry, config)


def build_workload(name: str, seed: int = 7) -> WorkloadSetup:
    """Build one of the named workloads at analysis scale."""
    if name == "tpcc":
        from repro.workloads.tpcc import (
            DELAYED_COLUMNS,
            HOT_TABLES,
            SPLIT_COLUMNS,
            TpccMix,
            build_tpcc,
        )

        db, registry, generator = build_tpcc(
            warehouses=2,
            num_items=4096,
            mix=TpccMix.neworder_percentage(50),
            seed=seed,
        )
        return WorkloadSetup(
            name, db, registry, generator,
            config_kwargs=dict(
                delayed_columns=DELAYED_COLUMNS,
                split_columns=SPLIT_COLUMNS,
                hot_tables=HOT_TABLES,
            ),
        )
    if name == "ycsb":
        from repro.workloads.ycsb import build_ycsb, ycsb_delayed_columns

        db, registry, generator = build_ycsb(
            num_records=4096, workload="a", zipf_alpha=2.5, seed=seed
        )
        return WorkloadSetup(
            name, db, registry, generator,
            config_kwargs=dict(
                delayed_columns=ycsb_delayed_columns(),
                hot_tables=frozenset({"usertable"}),
            ),
        )
    if name == "smallbank":
        from repro.workloads.smallbank import build_smallbank

        db, registry, generator = build_smallbank(
            num_accounts=4096, zipf_alpha=1.2, seed=seed
        )
        return WorkloadSetup(name, db, registry, generator)
    raise ValueError(
        f"unknown workload {name!r}; expected one of {WORKLOAD_NAMES}"
    )

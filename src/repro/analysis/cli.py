"""Command line driver: ``python -m repro.analysis <pass> [options]``.

Passes: ``racecheck`` ``memcheck`` ``detlint`` ``kernellint`` ``all``.

Exit-code conventions (shared with ``scripts/run_analysis.py``):

* ``0`` — every requested pass ran and reported zero findings.
* ``1`` — at least one finding (race, OOB/uninit access, determinism
  hazard).
* ``2`` — usage error (unknown pass/workload, bad arguments).
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.passes import run_pass
from repro.analysis.workload import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_BATCHES,
    WORKLOAD_NAMES,
)

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "GPU sanitizer (racecheck + memcheck) for the SIMT simulator "
            "and a determinism linter for stored procedures."
        ),
    )
    parser.add_argument(
        "pass_name",
        metavar="pass",
        choices=("racecheck", "memcheck", "detlint", "kernellint", "all"),
        help="which analysis to run",
    )
    parser.add_argument(
        "--workload",
        choices=WORKLOAD_NAMES,
        default="tpcc",
        help="workload to drive the engine with (default: tpcc)",
    )
    parser.add_argument(
        "--batches",
        type=int,
        default=DEFAULT_BATCHES,
        help=f"sanitized batches to run (default: {DEFAULT_BATCHES})",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=DEFAULT_BATCH_SIZE,
        help=f"transactions per batch (default: {DEFAULT_BATCH_SIZE})",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--json-out",
        metavar="PATH",
        default=None,
        help="also write the findings as a JSON document",
    )
    parser.add_argument(
        "--sarif-out",
        metavar="PATH",
        default=None,
        help="also write the findings as a SARIF 2.1.0 log",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on usage errors and 0 on --help; preserve it.
        return int(exc.code or 0)
    if args.batches <= 0 or args.batch_size <= 0:
        print("error: --batches and --batch-size must be positive",
              file=sys.stderr)
        return EXIT_USAGE
    results = run_pass(
        args.pass_name,
        workload=args.workload,
        batches=args.batches,
        batch_size=args.batch_size,
        seed=args.seed,
    )
    findings = 0
    for result in results:
        print(result.render())
        findings += len(result.report)
    if args.json_out or args.sarif_out:
        from repro.analysis import emit  # noqa: PLC0415 (optional output)

        if args.json_out:
            emit.write_json(args.json_out, results)
        if args.sarif_out:
            emit.write_sarif(args.sarif_out, results)
    return EXIT_FINDINGS if findings else EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())

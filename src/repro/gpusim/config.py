"""Device configuration for the SIMT GPU simulator.

The simulator is calibrated loosely against the NVIDIA RTX A6000 used in
the paper (84 SMs, 48 GiB GDDR6, PCIe 4.0 x16).  Absolute latencies are
analytical-model constants, not measurements; what matters for the
reproduction is that the *relative* costs (atomic serialization vs. plain
instruction, PCIe transfer vs. on-device access, page fault vs. resident
access) have realistic ratios so that the paper's experimental shapes are
reproduced from first principles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DeviceError

#: Number of lanes (threads) that execute one instruction in lock-step.
WARP_SIZE = 32


@dataclass(frozen=True)
class DeviceConfig:
    """Static description of a simulated GPU.

    Parameters mirror the knobs that the LTPG paper's performance
    depends on.  All time constants are in nanoseconds unless suffixed
    otherwise.
    """

    name: str = "sim-a6000"
    #: Streaming multiprocessors; each retires ``lanes_per_sm`` lanes/cycle.
    num_sms: int = 84
    #: Concurrent hardware lanes per SM (CUDA cores per SM on Ampere).
    lanes_per_sm: int = 128
    warp_size: int = WARP_SIZE
    max_threads_per_block: int = 1024
    #: Device memory capacity in bytes (48 GiB on the A6000).
    device_memory_bytes: int = 48 * 1024**3

    # --- per-event costs (ns) ------------------------------------------
    # Effective per-event lane costs for branchy, uncoalesced OLTP
    # kernels (latency-bound, low occupancy).  Calibrated so that the
    # simulated engine reproduces the paper's absolute throughput bands
    # (10-25 M TPS on TPC-C batches); see EXPERIMENTS.md "Calibration".
    #: Cost of one arithmetic/control instruction per thread.
    instruction_ns: float = 25.0
    #: Uncoalesced global-memory read per thread.
    global_read_ns: float = 150.0
    #: Uncoalesced global-memory write per thread.
    global_write_ns: float = 190.0
    #: Shared-memory access per thread.
    shared_access_ns: float = 15.0
    #: Base cost of an uncontended atomic operation.
    atomic_ns: float = 250.0
    #: Extra cost for each *serialized* atomic on the same address, i.e.
    #: the penalty paid by the k-th colliding thread.
    atomic_conflict_ns: float = 700.0
    #: Extra replay cost for a warp that diverges at a branch (both paths
    #: execute, masked).
    divergence_ns: float = 800.0
    #: Fixed kernel-launch overhead.
    kernel_launch_ns: float = 4_000.0
    #: Cost of ``cudaDeviceSynchronize``.
    device_sync_ns: float = 2_500.0

    #: Device-memory bandwidth for *coalesced* streaming access
    #: (GDDR6 on the A6000: ~768 GB/s; usable ~700).  Coalesced traffic
    #: is bandwidth-bound device-wide, unlike the per-lane latency
    #: costs above.
    memory_bandwidth_bytes_per_ns: float = 700.0

    # --- host <-> device transfers -------------------------------------
    #: PCIe 4.0 x16 effective bandwidth.
    pcie_bandwidth_gbps: float = 24.0
    #: Fixed per-transfer latency (driver + DMA setup).
    pcie_latency_ns: float = 8_000.0
    #: Multiplier on global access cost when the buffer lives in
    #: zero-copy (host-pinned) memory and is accessed from a kernel.
    zero_copy_access_factor: float = 3.0

    # --- unified memory -------------------------------------------------
    #: Unified-memory page size (matches CUDA's 64 KiB migration granule).
    um_page_bytes: int = 64 * 1024
    #: Cost of servicing one page fault (migration over PCIe + handling).
    um_page_fault_ns: float = 6_000.0
    #: Fraction of device memory usable as the unified-memory resident
    #: set before pages start getting evicted.
    um_resident_fraction: float = 0.85

    def __post_init__(self) -> None:
        if self.num_sms <= 0 or self.lanes_per_sm <= 0:
            raise DeviceError("device must have positive SM/lane counts")
        if self.warp_size <= 0:
            raise DeviceError("warp size must be positive")
        if self.max_threads_per_block % self.warp_size:
            raise DeviceError("block size limit must be warp aligned")

    @property
    def total_lanes(self) -> int:
        """Peak number of lanes retiring work concurrently."""
        return self.num_sms * self.lanes_per_sm

    def transfer_ns(self, nbytes: int) -> float:
        """Time to move ``nbytes`` across PCIe in one DMA transfer."""
        if nbytes < 0:
            raise DeviceError("transfer size must be non-negative")
        if nbytes == 0:
            return 0.0
        return self.pcie_latency_ns + nbytes / self.pcie_bandwidth_gbps


@dataclass(frozen=True)
class CpuConfig:
    """Cost model for the multicore CPU baselines (2x Xeon Gold 6326;
    the paper schedules 30 cores)."""

    name: str = "sim-xeon-6326"
    num_cores: int = 30
    clock_ghz: float = 2.9
    #: One simple record operation (hash probe + field touch) per core.
    op_ns: float = 55.0
    #: Cost of taking/releasing one lock or latch.
    lock_ns: float = 48.0
    #: Cost of a CAS / atomic fetch-add on shared state.
    atomic_ns: float = 30.0
    #: Cost of allocating + stitching one record version (MVCC systems).
    version_ns: float = 130.0
    #: Cost of an aborted transaction's wasted work, as a fraction of its
    #: executed ops that must be repeated.
    abort_retry_factor: float = 1.0
    #: Per-transaction fixed overhead (begin/commit bookkeeping).
    txn_overhead_ns: float = 220.0

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise DeviceError("CPU model needs at least one core")

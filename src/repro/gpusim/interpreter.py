"""A small lock-step SIMT interpreter.

This models what actually happens inside one warp: 32 lanes execute the
*same* instruction stream, and a data-dependent branch splits the warp
into masked subsets that execute both paths serially (branch
divergence).  LTPG's adaptive warp division exists to avoid exactly this
effect, so having a real interpreter lets the tests demonstrate — not
just assert — that grouping sub-transactions by type removes divergence.

The ISA is deliberately tiny.  A *program* is a list of instruction
tuples operating on named per-lane registers:

``("const", dst, imm)``            dst <- imm
``("mov", dst, src)``              dst <- src
``("add"|"sub"|"mul"|"mod", dst, a, b)``  dst <- a OP b
``("lane", dst)``                  dst <- lane id within the warp
``("ld", dst, mem, addr)``         dst <- memory[mem][addr]
``("st", mem, addr, src)``         memory[mem][addr] <- src
``("atomic_min"|"atomic_add", mem, addr, src, old)``
``("iflt", a, b)`` / ``("ifeq", a, b)``   begin masked region where a<b / a==b
``("else",)`` / ``("endif",)``     close/flip the masked region
``("barrier",)``                   block-wide sync point (a no-op
                                   functionally; tells an attached
                                   sanitizer that accesses before and
                                   after cannot race)
``("halt",)``                      stop all lanes

Warp-communication primitives (the delayed-update merge of the paper's
Example 3 is built from these):

``("shfl_up", dst, src, delta)``   dst <- src from ``delta`` lanes below
``("prefix_sum", dst, src)``       inclusive prefix sum over active lanes
``("reduce_add", dst, src)``       every active lane gets the warp total
``("last_lane", dst)``             1 on the highest active lane, else 0

Registers are int64; memory operands name arrays in the ``memory`` dict.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DeviceError
from repro.gpusim.atomics import AtomicArray, collision_profile
from repro.gpusim.config import WARP_SIZE


@dataclass
class WarpStats:
    """Events observed while interpreting one warp."""

    instructions_issued: int = 0
    divergent_branches: int = 0
    atomic_ops: int = 0
    atomic_serialized: int = 0
    atomic_max_chain: int = 0


class Warp:
    """Executes a program over ``width`` lanes in lock-step."""

    _BINOPS = {
        "add": np.add,
        "sub": np.subtract,
        "mul": np.multiply,
        "mod": np.mod,
    }

    def __init__(self, width: int = WARP_SIZE):
        if width <= 0:
            raise DeviceError("warp width must be positive")
        self.width = width

    def run(
        self,
        program: list[tuple],
        memory: dict[str, np.ndarray | AtomicArray] | None = None,
        active: np.ndarray | None = None,
        sanitizer=None,
        thread_base: int = 0,
    ) -> WarpStats:
        """Interpret ``program`` over all lanes; returns warp statistics.

        ``active`` optionally masks off lanes from the start (e.g. a
        partially-filled trailing warp).  When a ``sanitizer``
        (:class:`~repro.gpusim.kernel.SanitizerHook`) is passed, every
        ``ld``/``st``/atomic is logged with thread id
        ``thread_base + lane`` and ``("barrier",)`` becomes a sync point.
        """
        memory = memory or {}
        if sanitizer is not None:
            from repro.analysis.sanitizer import AccessKind

            read_kind, write_kind = AccessKind.READ, AccessKind.WRITE
        else:
            read_kind = write_kind = None
        lane_ids = np.arange(self.width, dtype=np.int64) + int(thread_base)

        def sanitize(mname: str, idx, lanes, kind, atomic: bool = False) -> None:
            if sanitizer is not None:
                sanitizer.record(mname, idx, lane_ids[lanes], kind, atomic=atomic)

        regs: dict[str, np.ndarray] = {}
        mask = (
            np.ones(self.width, dtype=bool)
            if active is None
            else np.asarray(active, dtype=bool).copy()
        )
        if mask.shape != (self.width,):
            raise DeviceError("active mask must have one entry per lane")
        stats = WarpStats()
        # Each stack frame is (mask_before_if, taken_mask); on `else` we
        # switch execution to the complementary lanes.
        mask_stack: list[tuple[np.ndarray, np.ndarray]] = []

        def reg(name: str) -> np.ndarray:
            if name not in regs:
                regs[name] = np.zeros(self.width, dtype=np.int64)
            return regs[name]

        def mem(name: str) -> np.ndarray:
            try:
                target = memory[name]
            except KeyError:
                raise DeviceError(f"unknown memory operand {name!r}") from None
            return target.data if isinstance(target, AtomicArray) else target

        pc = 0
        while pc < len(program):
            instr = program[pc]
            op = instr[0]
            stats.instructions_issued += 1
            if op == "halt":
                break
            if op == "const":
                _, dst, imm = instr
                np.copyto(reg(dst), int(imm), where=mask)
            elif op == "mov":
                _, dst, src = instr
                np.copyto(reg(dst), reg(src), where=mask)
            elif op == "lane":
                _, dst = instr
                np.copyto(reg(dst), np.arange(self.width, dtype=np.int64), where=mask)
            elif op in self._BINOPS:
                _, dst, a, b = instr
                result = self._BINOPS[op](reg(a), reg(b))
                np.copyto(reg(dst), result, where=mask)
            elif op == "ld":
                _, dst, mname, addr = instr
                arr = mem(mname)
                idx = reg(addr)[mask]
                sanitize(mname, idx, mask, read_kind)
                reg(dst)[mask] = arr[idx]
            elif op == "st":
                _, mname, addr, src = instr
                arr = mem(mname)
                idx = reg(addr)[mask]
                sanitize(mname, idx, mask, write_kind)
                arr[idx] = reg(src)[mask]
            elif op in ("atomic_min", "atomic_add"):
                _, mname, addr, src, old = instr
                sanitize(mname, reg(addr)[mask], mask, write_kind, atomic=True)
                self._atomic(op, memory[mname], reg, addr, src, old, mask, stats)
            elif op == "barrier":
                if sanitizer is not None:
                    sanitizer.barrier()
            elif op == "shfl_up":
                _, dst, src, delta = instr
                delta = int(delta)
                shifted = reg(src).copy()
                if delta > 0:
                    shifted[delta:] = reg(src)[:-delta]
                np.copyto(reg(dst), shifted, where=mask)
                stats.instructions_issued += 0  # one instr, counted above
            elif op == "prefix_sum":
                _, dst, src = instr
                # log2(width) shfl+add rounds on real hardware
                stats.instructions_issued += max(self.width.bit_length() - 1, 0)
                values = np.where(mask, reg(src), 0)
                np.copyto(reg(dst), np.cumsum(values), where=mask)
            elif op == "reduce_add":
                _, dst, src = instr
                stats.instructions_issued += max(self.width.bit_length() - 1, 0)
                total = int(np.where(mask, reg(src), 0).sum())
                np.copyto(reg(dst), total, where=mask)
            elif op == "last_lane":
                _, dst = instr
                flags = np.zeros(self.width, dtype=np.int64)
                active = np.flatnonzero(mask)
                if active.size:
                    flags[active[-1]] = 1
                np.copyto(reg(dst), flags, where=mask)
            elif op in ("iflt", "ifeq"):
                _, a, b = instr
                cond = reg(a) < reg(b) if op == "iflt" else reg(a) == reg(b)
                taken = mask & cond
                not_taken = mask & ~cond
                if taken.any() and not_taken.any():
                    stats.divergent_branches += 1
                mask_stack.append((mask, taken))
                mask = taken
            elif op == "else":
                if not mask_stack:
                    raise DeviceError("'else' without matching 'if'")
                before, taken = mask_stack[-1]
                mask = before & ~taken
            elif op == "endif":
                if not mask_stack:
                    raise DeviceError("'endif' without matching 'if'")
                mask, _ = mask_stack.pop()
            else:
                raise DeviceError(f"unknown instruction {op!r}")
            pc += 1

        if mask_stack:
            raise DeviceError("program ended inside an 'if' region")
        return stats

    def _atomic(
        self,
        op: str,
        target: np.ndarray | AtomicArray,
        reg,
        addr: str,
        src: str,
        old: str,
        mask: np.ndarray,
        stats: WarpStats,
    ) -> None:
        arr = target.data if isinstance(target, AtomicArray) else target
        idx = reg(addr)[mask]
        vals = reg(src)[mask]
        total, serialized, chain = collision_profile(np.asarray(idx))
        stats.atomic_ops += total
        stats.atomic_serialized += serialized
        stats.atomic_max_chain = max(stats.atomic_max_chain, chain)
        olds = np.empty(len(idx), dtype=np.int64)
        for j in range(len(idx)):  # serialized, ascending-lane order
            olds[j] = arr[idx[j]]
            if op == "atomic_min":
                if vals[j] < arr[idx[j]]:
                    arr[idx[j]] = vals[j]
            else:
                arr[idx[j]] = arr[idx[j]] + vals[j]
        reg(old)[mask] = olds

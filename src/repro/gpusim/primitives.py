"""Device primitives: prefix sum, radix sort, histogram.

The GPU engines in this reproduction lean on three classic data-parallel
building blocks — GaccO sorts its access table, LTPG's delayed updates
merge deltas with segmented prefix sums, and popularity detection is a
histogram.  Each primitive here *executes* functionally (NumPy) while
recording the hardware events a CUDA implementation would generate, so
callers get both the result and an honest cost contribution on their
:class:`~repro.gpusim.kernel.KernelContext`.

Cost shapes: prefix sum and radix sort stream memory with perfectly
coalesced access, so they are charged as *bandwidth* (bytes over the
device's memory bandwidth) plus per-element instructions; the histogram
scatters atomics at arbitrary addresses, so it keeps the per-lane
atomic accounting with the real per-bin collision profile.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import DeviceError
from repro.gpusim.atomics import collision_profile
from repro.gpusim.kernel import KernelContext

#: Bits consumed per radix-sort pass (matches CUB's default).
RADIX_BITS = 8


def device_prefix_sum(values, ctx: KernelContext | None = None) -> np.ndarray:
    """Inclusive prefix sum with Blelloch-sweep cost accounting."""
    arr = np.asarray(values, dtype=np.int64)
    if arr.ndim != 1:
        raise DeviceError("prefix sum expects a one-dimensional array")
    if ctx is not None and arr.size:
        passes = max(1, math.ceil(math.log2(max(arr.size, 2))))
        ctx.add_instructions(arr.size)
        ctx.add_coalesced_bytes(arr.size * 16 * passes)  # read + write
    return np.cumsum(arr)


def device_radix_sort(
    keys,
    values=None,
    key_bits: int = 64,
    ctx: KernelContext | None = None,
):
    """LSD radix sort; returns sorted keys (and gathered values).

    The result is exact (``np.argsort`` stable order); the cost model
    charges ``ceil(key_bits / 8)`` count+scatter passes, which is what
    dominates GaccO's preprocessing time.
    """
    arr = np.asarray(keys, dtype=np.int64)
    if arr.ndim != 1:
        raise DeviceError("radix sort expects a one-dimensional array")
    if not 1 <= key_bits <= 64:
        raise DeviceError("key_bits must be in 1..64")
    order = np.argsort(arr, kind="stable")
    if ctx is not None and arr.size:
        passes = math.ceil(key_bits / RADIX_BITS)
        ctx.add_instructions(arr.size * passes)
        # count read + scatter read + scatter write, 8B keys, coalesced
        ctx.add_coalesced_bytes(arr.size * passes * 24)
    sorted_keys = arr[order]
    if values is None:
        return sorted_keys
    vals = np.asarray(values)
    if vals.shape[0] != arr.size:
        raise DeviceError("values must align with keys")
    return sorted_keys, vals[order]


def device_histogram(
    keys,
    num_bins: int,
    ctx: KernelContext | None = None,
) -> np.ndarray:
    """Per-bin counts via one atomicAdd per element.

    The real per-bin collision profile flows into the context, so a
    skewed key distribution costs serialization time exactly like the
    conflict log's hot buckets.
    """
    if num_bins <= 0:
        raise DeviceError("histogram needs at least one bin")
    arr = np.asarray(keys, dtype=np.int64)
    if arr.ndim != 1:
        raise DeviceError("histogram expects a one-dimensional array")
    bins = arr % num_bins
    counts = np.bincount(bins, minlength=num_bins)[:num_bins]
    if ctx is not None and arr.size:
        ctx.add_global_reads(arr.size)
        ctx.record_atomics(*collision_profile(bins))
    return counts


def device_segmented_reduce(
    segment_ids,
    values,
    ctx: KernelContext | None = None,
) -> dict[int, int]:
    """Sum ``values`` per segment (the delayed-update merge shape):
    warp-level prefix sums within segments plus one write per segment."""
    ids = np.asarray(segment_ids, dtype=np.int64)
    vals = np.asarray(values, dtype=np.int64)
    if ids.shape != vals.shape:
        raise DeviceError("segment ids and values must align")
    if ids.size == 0:
        return {}
    order = np.argsort(ids, kind="stable")
    sids = ids[order]
    svals = vals[order]
    boundaries = np.flatnonzero(np.diff(sids)) + 1
    starts = np.concatenate(([0], boundaries))
    totals = np.add.reduceat(svals, starts)
    if ctx is not None:
        passes = max(1, math.ceil(math.log2(max(ids.size, 2))))
        ctx.add_instructions(ids.size * passes)
        ctx.add_shared_accesses(ids.size)
        ctx.add_global_writes(int(starts.size))
    return {int(sids[s]): int(t) for s, t in zip(starts, totals)}

"""Per-device profiler: a timeline of kernels, transfers and syncs.

The bench harness reads the profiler to report phase-level breakdowns
(e.g. Table IX's execution / conflict-detection / write-back split).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.gpusim.costmodel import KernelTiming
from repro.gpusim.kernel import KernelStats
from repro.gpusim.stream import Stream


@dataclass(frozen=True)
class TimelineEntry:
    """One completed unit of simulated work."""

    kind: str  # "kernel" | "transfer" | "sync"
    name: str
    stream: str
    start_ns: float
    duration_ns: float

    @property
    def end_ns(self) -> float:
        return self.start_ns + self.duration_ns


class Profiler:
    """Accumulates timeline entries and per-kernel statistics.

    ``streams`` (the owning device's live stream table, shared by
    reference so streams created later are covered too) lets
    :meth:`reset` rewind the clocks along with the history: a profiler
    reset means "start a fresh timeline", and a fresh timeline whose
    streams still sit at their old timestamps would record every
    subsequent entry with a nonzero epoch offset — back-to-back runs on
    one device would then produce different traces for identical work.
    """

    def __init__(self, streams: dict[str, Stream] | None = None) -> None:
        self.entries: list[TimelineEntry] = []
        self.kernel_stats: list[KernelStats] = []
        self.kernel_timings: list[KernelTiming] = []
        self._streams = streams

    def record(self, entry: TimelineEntry) -> None:
        self.entries.append(entry)

    def record_kernel(self, stats: KernelStats, timing: KernelTiming) -> None:
        self.kernel_stats.append(stats)
        self.kernel_timings.append(timing)

    def reset(self) -> None:
        """Drop history *and* rewind the stream clocks to zero, so the
        next run's first entry starts at ``start_ns=0`` again."""
        self.entries.clear()
        self.kernel_stats.clear()
        self.kernel_timings.clear()
        if self._streams:
            for stream in self._streams.values():
                stream.time_ns = 0.0
                stream.busy_ns = 0.0

    # -- queries ------------------------------------------------------------
    def total_ns(self, kind: str | None = None, name_prefix: str = "") -> float:
        """Sum of durations, optionally filtered by kind and name prefix."""
        return sum(
            e.duration_ns
            for e in self.entries
            if (kind is None or e.kind == kind) and e.name.startswith(name_prefix)
        )

    def by_kernel(self) -> dict[str, float]:
        """Total simulated time per kernel name."""
        totals: dict[str, float] = defaultdict(float)
        for e in self.entries:
            if e.kind == "kernel":
                totals[e.name] += e.duration_ns
        return dict(totals)

    def transfer_ns(self) -> float:
        return self.total_ns(kind="transfer")

    def last_kernel_stats(self, name: str) -> KernelStats | None:
        for stats in reversed(self.kernel_stats):
            if stats.name == name:
                return stats
        return None

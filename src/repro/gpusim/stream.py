"""CUDA-style streams and events for the simulator.

Each stream carries an independent timeline (its "ready" timestamp in
simulated nanoseconds).  Work enqueued on a stream starts at the
stream's current time; ``Event``s let one stream wait on another, which
is how the batch-to-batch pipeline (paper §V-E) overlaps the copy of
batch *n+1* with the execution of batch *n*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import DeviceError

if TYPE_CHECKING:  # imported for annotations only; no runtime cycle
    from repro.trace.tracer import Tracer


@dataclass
class Event:
    """A recorded point on a stream's timeline."""

    name: str
    timestamp_ns: float = 0.0
    recorded: bool = False
    #: flow-arrow id assigned by an attached tracer (-1 = untraced)
    flow_id: int = -1


class Stream:
    """An in-order queue of simulated work with its own clock."""

    def __init__(self, name: str, tracer: "Tracer | None" = None):
        self.name = name
        self.time_ns = 0.0
        self.busy_ns = 0.0
        #: optional span recorder: record/wait event pairs become flow
        #: arrows so cross-stream ordering is visible in the trace
        self.tracer = tracer
        self._destroyed = False

    def _check(self) -> None:
        if self._destroyed:
            raise DeviceError(f"stream {self.name!r} has been destroyed")

    def enqueue(self, duration_ns: float, not_before_ns: float = 0.0) -> float:
        """Run a unit of work of ``duration_ns`` on this stream; it may
        not start before ``not_before_ns``.  Returns the completion time.
        """
        self._check()
        if duration_ns < 0:
            raise DeviceError("work duration must be non-negative")
        start = max(self.time_ns, not_before_ns)
        self.time_ns = start + duration_ns
        self.busy_ns += duration_ns
        return self.time_ns

    def record_event(self, event: Event) -> Event:
        self._check()
        event.timestamp_ns = self.time_ns
        event.recorded = True
        if self.tracer is not None:
            event.flow_id = self.tracer.flow_start(
                event.name, self.name, event.timestamp_ns
            )
        return event

    def wait_event(self, event: Event) -> None:
        """Stall this stream until ``event`` has completed."""
        self._check()
        if not event.recorded:
            raise DeviceError(f"event {event.name!r} has not been recorded")
        self.time_ns = max(self.time_ns, event.timestamp_ns)
        if self.tracer is not None and event.flow_id >= 0:
            self.tracer.flow_finish(
                event.name, event.flow_id, self.name, self.time_ns
            )

    def advance_to(self, time_ns: float) -> None:
        self._check()
        self.time_ns = max(self.time_ns, time_ns)

    def destroy(self) -> None:
        self._destroyed = True

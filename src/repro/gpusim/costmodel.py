"""Analytical timing model for the SIMT simulator.

A kernel's simulated duration is the sum of

* launch overhead,
* *throughput time*: total per-thread work divided by the machine's lane
  count (work executes at full occupancy until the grid drains),
* *serialization time*: the longest atomic chain on a single address
  times the per-collision penalty — this is the critical path that no
  amount of parallelism hides, and the quantity LTPG's dynamic hash
  buckets attack,
* divergence replay and page-fault stalls.

This mirrors a classic roofline-with-critical-path model: wide enough to
show throughput effects (bigger batches amortize launch cost), sharp
enough to show contention effects (hot keys serialize).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.gpusim.config import DeviceConfig
from repro.gpusim.kernel import KernelStats


@dataclass(frozen=True)
class KernelTiming:
    """Breakdown of one kernel's simulated duration (nanoseconds)."""

    launch_ns: float
    throughput_ns: float
    serialization_ns: float
    divergence_ns: float
    page_fault_ns: float

    @property
    def total_ns(self) -> float:
        return (
            self.launch_ns
            + self.throughput_ns
            + self.serialization_ns
            + self.divergence_ns
            + self.page_fault_ns
        )


class CostModel:
    """Turns :class:`KernelStats` into simulated time for one device."""

    def __init__(self, config: DeviceConfig):
        self.config = config

    def kernel_timing(self, stats: KernelStats) -> KernelTiming:
        cfg = self.config
        work_ns = (
            stats.instructions * cfg.instruction_ns
            + stats.global_reads * cfg.global_read_ns
            + stats.global_writes * cfg.global_write_ns
            + stats.shared_accesses * cfg.shared_access_ns
            + stats.atomic_ops * cfg.atomic_ns
            + stats.zero_copy_accesses
            * cfg.global_read_ns
            * (cfg.zero_copy_access_factor - 1.0)
        )
        lanes = max(1, min(cfg.total_lanes, max(stats.threads, 1)))
        throughput_ns = work_ns / lanes
        # Same-address atomics serialize, but the hardware combines them
        # hierarchically (warp-level aggregation + L2 merging), so the
        # critical path grows sub-linearly in the chain length.  A
        # square-root law with the per-collision constant reproduces the
        # paper's Table VII across three orders of magnitude of
        # contention (see EXPERIMENTS.md "Calibration").
        chain = max(stats.atomic_max_chain - 1, 0)
        serialization_ns = math.sqrt(chain) * cfg.atomic_conflict_ns
        # Spread-out collisions that are not on the single hottest address
        # still cost retries; amortize them across the machine.
        amortized = max(stats.atomic_serialized - chain, 0)
        serialization_ns += amortized * cfg.atomic_conflict_ns / lanes
        divergence_ns = (
            stats.divergent_branches * cfg.divergence_ns / max(1, lanes // cfg.warp_size)
        )
        page_fault_ns = stats.um_page_faults * cfg.um_page_fault_ns
        bandwidth_ns = stats.coalesced_bytes / cfg.memory_bandwidth_bytes_per_ns
        throughput_ns += bandwidth_ns
        return KernelTiming(
            launch_ns=cfg.kernel_launch_ns,
            throughput_ns=throughput_ns,
            serialization_ns=serialization_ns,
            divergence_ns=divergence_ns,
            page_fault_ns=page_fault_ns,
        )

    def kernel_ns(self, stats: KernelStats) -> float:
        return self.kernel_timing(stats).total_ns

    def sync_ns(self) -> float:
        """Cost of a ``cudaDeviceSynchronize`` between phases."""
        return self.config.device_sync_ns

"""A SIMT GPU simulator: the hardware substrate for the LTPG reproduction.

The real paper runs on an NVIDIA RTX A6000.  This package provides a
functional + analytical stand-in: kernels execute as NumPy code while
recording the hardware events (instructions, memory traffic, atomic
collisions, branch divergence, page faults) that an analytical cost
model converts into simulated time.  See DESIGN.md §2 for why this
substitution preserves the paper's experimental shapes.

Public surface:

* :class:`DeviceConfig`, :class:`CpuConfig` — calibration constants.
* :class:`Device` — streams, kernel launches, copies, synchronize.
* :class:`AtomicArray` — CUDA-style atomics with contention accounting.
* :class:`LaunchGeometry`, :class:`KernelContext`, :class:`KernelStats`.
* :class:`Warp` — a genuine lock-step SIMT interpreter for fine-grained
  correctness tests and divergence microbenches.
"""

from repro.gpusim.atomics import AtomicArray, collision_profile
from repro.gpusim.config import WARP_SIZE, CpuConfig, DeviceConfig
from repro.gpusim.costmodel import CostModel, KernelTiming
from repro.gpusim.device import DEFAULT_STREAM, Device
from repro.gpusim.interpreter import Warp, WarpStats
from repro.gpusim.kernel import KernelContext, KernelStats, LaunchGeometry
from repro.gpusim.memory import DeviceBuffer, MemoryManager, MemorySpace, PageTracker
from repro.gpusim.occupancy import (
    KernelResources,
    OccupancyResult,
    SmLimits,
    effective_lanes,
    occupancy,
)
from repro.gpusim.profiler import Profiler, TimelineEntry
from repro.gpusim.stream import Event, Stream

__all__ = [
    "WARP_SIZE",
    "AtomicArray",
    "collision_profile",
    "CpuConfig",
    "DeviceConfig",
    "CostModel",
    "KernelTiming",
    "DEFAULT_STREAM",
    "Device",
    "Warp",
    "WarpStats",
    "KernelContext",
    "KernelStats",
    "LaunchGeometry",
    "KernelResources",
    "OccupancyResult",
    "SmLimits",
    "effective_lanes",
    "occupancy",
    "DeviceBuffer",
    "MemoryManager",
    "MemorySpace",
    "PageTracker",
    "Profiler",
    "TimelineEntry",
    "Event",
    "Stream",
]

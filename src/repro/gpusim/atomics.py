"""Atomic operations over simulated device arrays.

Real GPU atomics on the same address serialize; the paper's dynamic hash
bucket design exists precisely to shorten those serialization chains.
:class:`AtomicArray` provides both scalar CUDA-style atomics
(``atomic_min``/``atomic_add``/``atomic_cas``/``atomic_exch``) and
vectorized batch forms that model *many threads issuing one atomic each*.
Every call records, into the bound :class:`~repro.gpusim.kernel.KernelContext`,
how many operations collided and the longest per-address chain.

The batch forms are deterministic: ties are resolved as if threads issued
their operations in ascending thread-id order, which matches the
deterministic schedule LTPG relies on for reproducibility.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import DeviceError
from repro.gpusim.kernel import KernelContext


def _as_index_array(indices) -> np.ndarray:
    idx = np.asarray(indices, dtype=np.int64)
    if idx.ndim != 1:
        raise DeviceError("atomic batch indices must be one-dimensional")
    return idx


def collision_profile(indices: np.ndarray) -> tuple[int, int, int]:
    """Return ``(total_ops, serialized_ops, max_chain)`` for a batch of
    atomic operations addressed by ``indices``.

    ``serialized_ops`` is the number of operations that wait behind an
    earlier op on the same address (i.e. ``count - 1`` summed over
    addresses); ``max_chain`` is the largest per-address count.
    """
    total = int(indices.size)
    if total == 0:
        return 0, 0, 0
    _, counts = np.unique(np.asarray(indices), return_counts=True)
    serialized = int((counts - 1).sum())
    return total, serialized, int(counts.max())


class AtomicArray:
    """A flat int64 device array supporting CUDA-style atomics.

    The array owns its storage (a NumPy array standing in for global
    memory).  Bind a :class:`KernelContext` with :meth:`bind` before use
    inside a kernel so contention statistics flow into the cost model;
    unbound use is allowed for tests.
    """

    def __init__(
        self,
        size: int,
        fill: int = 0,
        dtype=np.int64,
        name: str | None = None,
    ):
        if size < 0:
            raise DeviceError("atomic array size must be non-negative")
        self.data = np.full(size, fill, dtype=dtype)
        self._ctx: Optional[KernelContext] = None
        #: Shadow-buffer name for sanitizer attribution.  Unnamed arrays
        #: stay invisible to racecheck/memcheck (tests, scratch state).
        self.name = name

    def __len__(self) -> int:
        return len(self.data)

    def bind(self, ctx: Optional[KernelContext]) -> "AtomicArray":
        """Attach (or detach, with ``None``) the recording context."""
        self._ctx = ctx
        if (
            ctx is not None
            and ctx.sanitizer is not None
            and self.name is not None
        ):
            ctx.sanitizer.register_buffer(self.name, size=int(self.data.size))
        return self

    def fill(self, value: int) -> None:
        self.data.fill(value)

    def _record(self, total: int, serialized: int, max_chain: int) -> None:
        if self._ctx is not None:
            self._ctx.record_atomics(total, serialized, max_chain)

    def _sanitize(self, idx: np.ndarray, threads) -> None:
        """Log atomic accesses into an attached sanitizer, if any."""
        ctx = self._ctx
        if ctx is None or ctx.sanitizer is None or self.name is None:
            return
        from repro.analysis.sanitizer import AccessKind

        ctx.sanitizer.record(self.name, idx, threads, AccessKind.WRITE, atomic=True)

    def _check_scalar_index(self, index: int) -> int:
        i = int(index)
        if not 0 <= i < self.data.size:
            self._sanitize(np.asarray([i], dtype=np.int64), 0)
            raise DeviceError(
                f"atomic index {i} out of bounds for array of size {self.data.size}"
            )
        return i

    def _check_batch_indices(self, idx: np.ndarray) -> np.ndarray:
        """Reject negative or out-of-range batch indices.

        CUDA would silently corrupt memory here (and NumPy would wrap
        negative indices); the simulator raises :class:`DeviceError`
        instead, after reporting the bad addresses to the sanitizer so a
        memcheck pass names them.
        """
        bad = (idx < 0) | (idx >= self.data.size)
        if bad.any():
            bad_idx = idx[bad]
            self._sanitize(bad_idx, np.flatnonzero(bad))
            raise DeviceError(
                f"atomic batch indices out of bounds for array of size "
                f"{self.data.size}: {bad_idx[:8].tolist()}"
                + ("..." if bad_idx.size > 8 else "")
            )
        return idx

    # -- scalar atomics (return the OLD value, like CUDA) ----------------
    def atomic_min(self, index: int, value: int) -> int:
        index = self._check_scalar_index(index)
        self._sanitize(np.asarray([index], dtype=np.int64), 0)
        old = int(self.data[index])
        if value < old:
            self.data[index] = value
        self._record(1, 0, 1)
        return old

    def atomic_max(self, index: int, value: int) -> int:
        index = self._check_scalar_index(index)
        self._sanitize(np.asarray([index], dtype=np.int64), 0)
        old = int(self.data[index])
        if value > old:
            self.data[index] = value
        self._record(1, 0, 1)
        return old

    def atomic_add(self, index: int, value: int) -> int:
        index = self._check_scalar_index(index)
        self._sanitize(np.asarray([index], dtype=np.int64), 0)
        old = int(self.data[index])
        self.data[index] = old + value
        self._record(1, 0, 1)
        return old

    def atomic_exch(self, index: int, value: int) -> int:
        index = self._check_scalar_index(index)
        self._sanitize(np.asarray([index], dtype=np.int64), 0)
        old = int(self.data[index])
        self.data[index] = value
        self._record(1, 0, 1)
        return old

    def atomic_cas(self, index: int, compare: int, value: int) -> int:
        index = self._check_scalar_index(index)
        self._sanitize(np.asarray([index], dtype=np.int64), 0)
        old = int(self.data[index])
        if old == compare:
            self.data[index] = value
        self._record(1, 0, 1)
        return old

    # -- batch atomics: one op per simulated thread ----------------------
    def atomic_min_many(self, indices, values) -> None:
        """All threads issue ``atomic_min(indices[i], values[i])``."""
        idx = self._check_batch_indices(_as_index_array(indices))
        vals = np.asarray(values, dtype=self.data.dtype)
        if idx.size != vals.size:
            raise DeviceError("indices and values must have equal length")
        self._sanitize(idx, np.arange(idx.size, dtype=np.int64))
        self._record(*collision_profile(idx))
        np.minimum.at(self.data, idx, vals)

    def atomic_max_many(self, indices, values) -> None:
        idx = self._check_batch_indices(_as_index_array(indices))
        vals = np.asarray(values, dtype=self.data.dtype)
        if idx.size != vals.size:
            raise DeviceError("indices and values must have equal length")
        self._sanitize(idx, np.arange(idx.size, dtype=np.int64))
        self._record(*collision_profile(idx))
        np.maximum.at(self.data, idx, vals)

    def atomic_add_many(self, indices, values) -> None:
        idx = self._check_batch_indices(_as_index_array(indices))
        vals = np.asarray(values, dtype=self.data.dtype)
        if idx.size != vals.size:
            raise DeviceError("indices and values must have equal length")
        self._sanitize(idx, np.arange(idx.size, dtype=np.int64))
        self._record(*collision_profile(idx))
        np.add.at(self.data, idx, vals)

    def atomic_exch_many(self, indices, values) -> np.ndarray:
        """All threads exchange; the *last* thread (highest thread id)
        wins, matching a serialized ascending-id schedule.  Returns the
        values each thread observed as 'old' under that schedule."""
        idx = self._check_batch_indices(_as_index_array(indices))
        vals = np.asarray(values, dtype=self.data.dtype)
        if idx.size != vals.size:
            raise DeviceError("indices and values must have equal length")
        self._sanitize(idx, np.arange(idx.size, dtype=np.int64))
        self._record(*collision_profile(idx))
        old = np.empty_like(vals)
        for i in range(idx.size):  # serialized semantics, order = thread id
            old[i] = self.data[idx[i]]
            self.data[idx[i]] = vals[i]
        return old

    def atomic_min_with_old(self, indices, values) -> np.ndarray:
        """``atomic_min`` per thread, returning each thread's observed old
        value under the deterministic ascending-thread-id schedule.

        The conflict log uses this to discover whether a thread's TID
        became the bucket minimum.
        """
        idx = self._check_batch_indices(_as_index_array(indices))
        vals = np.asarray(values, dtype=self.data.dtype)
        if idx.size != vals.size:
            raise DeviceError("indices and values must have equal length")
        self._sanitize(idx, np.arange(idx.size, dtype=np.int64))
        self._record(*collision_profile(idx))
        # Deterministic serialization without a Python loop: sort ops by
        # (address, thread id); within an address, thread i observes the
        # running minimum of the initial value and all earlier values.
        order = np.argsort(idx, kind="stable")
        sidx = idx[order]
        svals = vals[order]
        boundaries = np.flatnonzero(np.diff(sidx)) + 1
        starts = np.concatenate(([0], boundaries))
        old_sorted = np.empty_like(svals)
        initial = self.data[sidx]
        # old[i] = min(initial, svals[start..i-1]); computed per segment.
        for s, e in zip(starts, np.concatenate((starts[1:], [sidx.size]))):
            run = initial[s]
            for j in range(s, e):
                old_sorted[j] = run
                if svals[j] < run:
                    run = svals[j]
            self.data[sidx[s]] = run
        old = np.empty_like(old_sorted)
        old[order] = old_sorted
        return old

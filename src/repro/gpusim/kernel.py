"""Kernel launch geometry and per-kernel event accounting.

The simulator executes kernels *functionally* (plain Python / NumPy code)
while the kernel records the events that would have occurred on real
hardware — instructions, global loads/stores, atomics and their
collisions, divergent branches.  The :class:`~repro.gpusim.costmodel.CostModel`
turns the recorded :class:`KernelStats` into simulated nanoseconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.errors import DeviceError
from repro.gpusim.config import DeviceConfig


@runtime_checkable
class SanitizerHook(Protocol):
    """What a kernel-attached sanitizer must provide.

    The concrete implementation lives in :mod:`repro.analysis.sanitizer`;
    gpusim only depends on this interface so the simulator stays
    importable without the analysis layer.
    """

    def begin_kernel(self, name: str) -> None: ...

    def end_kernel(self) -> None: ...

    def barrier(self) -> None: ...

    def register_buffer(
        self, name: str, size: int | None = None, initialized: bool = True
    ) -> None: ...

    def record(
        self, buffer: str, indices, threads, kind, atomic: bool = False
    ) -> None: ...


@dataclass(frozen=True)
class LaunchGeometry:
    """CUDA-style ``<<<grid, block>>>`` launch shape (1-D)."""

    grid: int
    block: int

    def __post_init__(self) -> None:
        if self.grid <= 0 or self.block <= 0:
            raise DeviceError("grid and block dimensions must be positive")

    @property
    def threads(self) -> int:
        return self.grid * self.block

    def warps(self, warp_size: int) -> int:
        per_block = math.ceil(self.block / warp_size)
        return self.grid * per_block

    @classmethod
    def for_threads(cls, n_threads: int, block: int = 256) -> "LaunchGeometry":
        """A geometry with at least ``n_threads`` threads, one thread per
        work item (the usual grid-stride-free mapping)."""
        if n_threads <= 0:
            raise DeviceError("kernel needs at least one thread")
        block = min(block, n_threads) if n_threads < block else block
        grid = math.ceil(n_threads / block)
        return cls(grid=grid, block=block)


@dataclass
class KernelStats:
    """Events recorded during one (functional) kernel execution.

    ``atomic_max_chain`` is the length of the longest serialization chain
    observed on a single atomic address — the quantity that dominates
    conflict-log marking latency in the paper (Table VII).
    """

    name: str = "kernel"
    threads: int = 0
    instructions: int = 0
    global_reads: int = 0
    global_writes: int = 0
    shared_accesses: int = 0
    atomic_ops: int = 0
    atomic_serialized: int = 0
    atomic_max_chain: int = 0
    divergent_branches: int = 0
    zero_copy_accesses: int = 0
    um_page_faults: int = 0
    #: streaming (coalesced) device-memory traffic in bytes — costed
    #: against the device bandwidth, not per-lane latency
    coalesced_bytes: int = 0

    def merge(self, other: "KernelStats") -> None:
        """Accumulate ``other`` into this record (used when one logical
        phase is split over several helper passes)."""
        self.threads = max(self.threads, other.threads)
        self.instructions += other.instructions
        self.global_reads += other.global_reads
        self.global_writes += other.global_writes
        self.shared_accesses += other.shared_accesses
        self.atomic_ops += other.atomic_ops
        self.atomic_serialized += other.atomic_serialized
        self.atomic_max_chain = max(self.atomic_max_chain, other.atomic_max_chain)
        self.divergent_branches += other.divergent_branches
        self.zero_copy_accesses += other.zero_copy_accesses
        self.um_page_faults += other.um_page_faults
        self.coalesced_bytes += other.coalesced_bytes


class KernelContext:
    """Recording handle passed to functional kernel bodies.

    A kernel body calls the ``add_*`` methods to describe the work a real
    CUDA kernel would perform.  Atomic arrays (:mod:`repro.gpusim.atomics`)
    record into the context automatically when bound to it.
    """

    def __init__(self, name: str, geometry: LaunchGeometry, config: DeviceConfig):
        self.name = name
        self.geometry = geometry
        self.config = config
        self.stats = KernelStats(name=name, threads=geometry.threads)
        #: Optional shadow-access recorder (set by the device at launch
        #: when one is attached); instrumented primitives feed it.
        self.sanitizer: SanitizerHook | None = None
        #: Free-form annotations that end up in the kernel's trace span
        #: ``args`` when a tracer is attached (e.g. the conflict log's
        #: per-side registration counts).  Always recordable; simply
        #: discarded when no tracer consumes them.
        self.trace_args: dict[str, float] = {}

    # -- explicit event recording ---------------------------------------
    def add_instructions(self, count: int, per_thread: bool = False) -> None:
        n = count * self.geometry.threads if per_thread else count
        self.stats.instructions += int(n)

    def add_global_reads(self, count: int) -> None:
        self.stats.global_reads += int(count)

    def add_global_writes(self, count: int) -> None:
        self.stats.global_writes += int(count)

    def add_shared_accesses(self, count: int) -> None:
        self.stats.shared_accesses += int(count)

    def add_divergent_branches(self, count: int) -> None:
        self.stats.divergent_branches += int(count)

    def add_zero_copy_accesses(self, count: int) -> None:
        self.stats.zero_copy_accesses += int(count)

    def add_coalesced_bytes(self, nbytes: int) -> None:
        self.stats.coalesced_bytes += int(nbytes)

    def add_page_faults(self, count: int) -> None:
        self.stats.um_page_faults += int(count)

    def add_trace_arg(self, key: str, value: float) -> None:
        """Annotate this launch's trace span (accumulates on repeats)."""
        self.trace_args[key] = self.trace_args.get(key, 0) + value

    def record_atomics(self, total_ops: int, serialized: int, max_chain: int) -> None:
        """Record a batch of atomic operations.

        ``serialized`` counts operations that had to wait behind another
        op on the same address; ``max_chain`` is the longest per-address
        chain (its length bounds the critical path).
        """
        self.stats.atomic_ops += int(total_ops)
        self.stats.atomic_serialized += int(serialized)
        self.stats.atomic_max_chain = max(self.stats.atomic_max_chain, int(max_chain))

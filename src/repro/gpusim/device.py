"""The simulated GPU device: launch kernels, copy data, synchronize.

Kernels execute *functionally* — the body is a Python callable that does
the real work with NumPy and records hardware events on the provided
:class:`~repro.gpusim.kernel.KernelContext`.  The device converts those
events into simulated time with the cost model and advances the target
stream's clock, so an engine built on top of :class:`Device` gets both
correct results and a hardware-plausible timeline.

Typical use::

    device = Device()
    with device.kernel("execute", threads=batch_size) as ctx:
        ...  # NumPy work + ctx.add_* recording
    device.synchronize()
    elapsed = device.elapsed_ns()
"""

from __future__ import annotations

import contextlib
from typing import Iterator

from repro.errors import DeviceError
from repro.gpusim.config import DeviceConfig
from repro.gpusim.costmodel import CostModel
from repro.gpusim.kernel import KernelContext, LaunchGeometry, SanitizerHook
from repro.gpusim.memory import MemoryManager
from repro.gpusim.profiler import Profiler, TimelineEntry
from repro.gpusim.stream import Event, Stream
from repro.trace.tracer import Tracer

#: Name of the stream used when the caller does not pass one.
DEFAULT_STREAM = "stream0"


class Device:
    """One simulated GPU with streams, memory, a profiler and a clock."""

    def __init__(self, config: DeviceConfig | None = None):
        self.config = config or DeviceConfig()
        self.cost_model = CostModel(self.config)
        self.memory = MemoryManager(self.config)
        self._streams: dict[str, Stream] = {DEFAULT_STREAM: Stream(DEFAULT_STREAM)}
        # The profiler shares the stream table so resetting it rewinds
        # the clocks too (a fresh timeline must start at start_ns=0).
        self.profiler = Profiler(streams=self._streams)
        #: Optional sanitizer (see :mod:`repro.analysis.sanitizer`).
        #: When attached, every kernel launch opens a sanitizer epoch and
        #: the launch context carries the hook for instrumented code.
        self.sanitizer: SanitizerHook | None = None
        #: Optional span recorder (see :mod:`repro.trace`).  When
        #: attached, kernels, transfers and syncs emit spans on their
        #: stream's track alongside the profiler's flat timeline.
        self.tracer: Tracer | None = None

    def attach_tracer(self, tracer: Tracer | None) -> None:
        """Attach (or detach, with ``None``) a span recorder.  Existing
        streams adopt it so their events emit flow arrows."""
        self.tracer = tracer
        for stream in self._streams.values():
            stream.tracer = tracer

    def attach_sanitizer(self, sanitizer: SanitizerHook | None) -> None:
        """Attach (or detach, with ``None``) a shadow-access recorder.

        The memory manager shares it so allocations register shadow
        buffers automatically.
        """
        self.sanitizer = sanitizer
        self.memory.attach_sanitizer(sanitizer)

    # -- streams -----------------------------------------------------------
    def stream(self, name: str = DEFAULT_STREAM) -> Stream:
        """Get (creating on first use) the named stream."""
        if name not in self._streams:
            self._streams[name] = Stream(name, tracer=self.tracer)
        return self._streams[name]

    def create_event(self, name: str) -> Event:
        return Event(name=name)

    # -- kernels -------------------------------------------------------------
    @contextlib.contextmanager
    def kernel(
        self,
        name: str,
        threads: int | None = None,
        geometry: LaunchGeometry | None = None,
        stream: str = DEFAULT_STREAM,
    ) -> Iterator[KernelContext]:
        """Launch a functional kernel; the body runs inside the ``with``.

        Exactly one of ``threads`` / ``geometry`` must be given.  On exit
        the recorded stats are costed and the stream clock advances.
        """
        if (threads is None) == (geometry is None):
            raise DeviceError("pass exactly one of threads= or geometry=")
        if geometry is None:
            geometry = LaunchGeometry.for_threads(int(threads))
        ctx = KernelContext(name, geometry, self.config)
        sanitizer = self.sanitizer
        if sanitizer is not None:
            ctx.sanitizer = sanitizer
            sanitizer.begin_kernel(name)
        yield ctx
        if sanitizer is not None:
            # Kernel completion is a synchronization point: analyze the
            # epoch's shadow log.  (If the body raised, the epoch is
            # discarded by the next begin_kernel instead.)
            sanitizer.end_kernel()
        timing = self.cost_model.kernel_timing(ctx.stats)
        s = self.stream(stream)
        start = s.time_ns
        s.enqueue(timing.total_ns)
        self.profiler.record(
            TimelineEntry("kernel", name, stream, start, timing.total_ns)
        )
        self.profiler.record_kernel(ctx.stats, timing)
        if self.tracer is not None:
            stats = ctx.stats
            args: dict[str, object] = {
                "threads": stats.threads,
                "instructions": stats.instructions,
                "global_reads": stats.global_reads,
                "global_writes": stats.global_writes,
                "atomic_ops": stats.atomic_ops,
                "atomic_serialized": stats.atomic_serialized,
                "atomic_max_chain": stats.atomic_max_chain,
                "divergent_branches": stats.divergent_branches,
                "launch_ns": timing.launch_ns,
                "serialization_ns": timing.serialization_ns,
                "divergence_ns": timing.divergence_ns,
            }
            args.update(ctx.trace_args)
            self.tracer.complete(
                name, stream, start, timing.total_ns, cat="kernel", args=args
            )

    # -- transfers -------------------------------------------------------------
    def copy(
        self,
        nbytes: int,
        kind: str,
        name: str = "copy",
        stream: str = DEFAULT_STREAM,
    ) -> float:
        """Enqueue a host<->device DMA; returns its duration in ns.

        ``kind`` is ``"h2d"`` or ``"d2h"`` (informational — PCIe is
        symmetric in this model).
        """
        if kind not in ("h2d", "d2h"):
            raise DeviceError(f"unknown copy kind {kind!r}")
        duration = self.memory.transfer_cost_ns(nbytes)
        s = self.stream(stream)
        start = s.time_ns
        s.enqueue(duration)
        self.profiler.record(
            TimelineEntry("transfer", f"{name}:{kind}", stream, start, duration)
        )
        if self.tracer is not None:
            self.tracer.complete(
                f"{name}:{kind}", stream, start, duration,
                cat="transfer", args={"bytes": nbytes},
            )
        return duration

    # -- synchronization ----------------------------------------------------
    def synchronize(self) -> float:
        """``cudaDeviceSynchronize``: align all stream clocks; returns the
        device time after the sync."""
        latest = max(s.time_ns for s in self._streams.values())
        latest += self.cost_model.sync_ns()
        for s in self._streams.values():
            s.advance_to(latest)
        self.profiler.record(
            TimelineEntry("sync", "device_sync", "*", latest, 0.0)
        )
        if self.tracer is not None:
            for name in self._streams:
                self.tracer.instant("device_sync", name, latest)
        return latest

    def elapsed_ns(self) -> float:
        """Current device time (max over stream clocks)."""
        return max(s.time_ns for s in self._streams.values())

    def reset_clock(self) -> None:
        """Zero every stream clock and drop profiler history.  Memory
        allocations and unified-memory residency survive (they model
        persistent device state)."""
        self.profiler.reset()  # rewinds the shared stream clocks too

"""CUDA-style occupancy calculation.

Occupancy — the fraction of a SM's warp slots actually resident — is
what lets GPUs hide memory latency; branchy OLTP kernels with large
register footprints run at low occupancy, which is one reason the
effective per-access costs in :mod:`repro.gpusim.config` are so much
larger than raw ALU latencies.

:func:`occupancy` reproduces the standard occupancy-calculator rules:
resident blocks per SM are limited by (i) the warp-slot budget, (ii)
the register file, (iii) shared memory, and (iv) the hardware block
cap; occupancy follows from the winner of those limits.  The cost model
can scale its throughput term by the result via
:meth:`~repro.gpusim.costmodel.CostModel` callers passing an effective
lane count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import DeviceError
from repro.gpusim.config import DeviceConfig


@dataclass(frozen=True)
class SmLimits:
    """Per-SM hardware budgets (defaults: Ampere GA102, the A6000)."""

    max_warps: int = 48
    max_blocks: int = 16
    registers: int = 65_536
    shared_memory_bytes: int = 100 * 1024

    def __post_init__(self) -> None:
        if min(self.max_warps, self.max_blocks, self.registers) <= 0:
            raise DeviceError("SM limits must be positive")


@dataclass(frozen=True)
class KernelResources:
    """What one block of the kernel consumes."""

    threads_per_block: int
    registers_per_thread: int = 32
    shared_bytes_per_block: int = 0

    def __post_init__(self) -> None:
        if self.threads_per_block <= 0:
            raise DeviceError("block must have at least one thread")
        if self.registers_per_thread < 0 or self.shared_bytes_per_block < 0:
            raise DeviceError("resource usage must be non-negative")


@dataclass(frozen=True)
class OccupancyResult:
    """Outcome of the occupancy calculation."""

    blocks_per_sm: int
    warps_per_sm: int
    occupancy: float
    #: which budget capped the result:
    #: "warps" | "blocks" | "registers" | "shared_memory"
    limiter: str

    @property
    def active_threads_per_sm(self) -> int:
        return self.warps_per_sm * 32


def occupancy(
    resources: KernelResources,
    limits: SmLimits | None = None,
    warp_size: int = 32,
) -> OccupancyResult:
    """Resident blocks/warps per SM and the resulting occupancy."""
    limits = limits or SmLimits()
    warps_per_block = math.ceil(resources.threads_per_block / warp_size)

    by_warps = limits.max_warps // warps_per_block
    by_blocks = limits.max_blocks
    regs_per_block = (
        resources.registers_per_thread * warps_per_block * warp_size
    )
    by_registers = (
        limits.registers // regs_per_block if regs_per_block else by_blocks
    )
    if resources.shared_bytes_per_block:
        by_shared = limits.shared_memory_bytes // resources.shared_bytes_per_block
    else:
        by_shared = by_blocks

    blocks = min(by_warps, by_blocks, by_registers, by_shared)
    if blocks <= 0:
        raise DeviceError(
            "kernel resources exceed a whole SM "
            f"(block needs {regs_per_block} registers, "
            f"{resources.shared_bytes_per_block} B shared)"
        )
    caps = {
        "warps": by_warps,
        "blocks": by_blocks,
        "registers": by_registers,
        "shared_memory": by_shared,
    }
    limiter = min(caps, key=lambda k: caps[k])
    warps = blocks * warps_per_block
    return OccupancyResult(
        blocks_per_sm=blocks,
        warps_per_sm=warps,
        occupancy=warps / limits.max_warps,
        limiter=limiter,
    )


def effective_lanes(
    config: DeviceConfig,
    resources: KernelResources,
    limits: SmLimits | None = None,
) -> int:
    """Lane count scaled by occupancy — plug into throughput estimates
    for kernels whose resource footprint is known."""
    result = occupancy(resources, limits, warp_size=config.warp_size)
    return max(
        config.warp_size,
        int(config.total_lanes * result.occupancy),
    )

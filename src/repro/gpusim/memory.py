"""Simulated device memory spaces and host<->device transfers.

Three placement modes matter to LTPG (paper §V-E, Table IX):

* **device** — ordinary global memory; accesses cost ``global_read_ns``.
* **zero-copy** — host-pinned memory mapped into the device; kernel
  accesses cross PCIe and cost ``zero_copy_access_factor`` times more.
* **unified** — CUDA managed memory; accesses to non-resident pages
  fault and migrate at ``um_page_fault_ns`` each, with an LRU resident
  set bounded by device capacity.

Buffers are NumPy arrays; the :class:`MemoryManager` tracks capacity and
produces transfer/page-fault costs for the cost model.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.errors import DeviceError, OutOfDeviceMemory
from repro.gpusim.config import DeviceConfig
from repro.gpusim.kernel import SanitizerHook


class MemorySpace(enum.Enum):
    """Where a buffer lives, which determines its access cost."""

    DEVICE = "device"
    ZERO_COPY = "zero_copy"
    UNIFIED = "unified"
    HOST = "host"


@dataclass
class DeviceBuffer:
    """An allocation in one of the simulated memory spaces.

    :meth:`load` / :meth:`store` are the *instrumented* access path:
    they perform the gather/scatter and, when the owning manager has a
    sanitizer attached, log each access into its shadow log so
    racecheck/memcheck see plain (non-atomic) traffic.  Kernel code may
    still index :attr:`array` directly — that models an access the
    sanitizer cannot see, exactly like uninstrumented CUDA.
    """

    name: str
    array: np.ndarray
    space: MemorySpace
    sanitizer: SanitizerHook | None = field(default=None, repr=False, compare=False)

    @property
    def nbytes(self) -> int:
        return int(self.array.nbytes)

    def load(self, indices, threads=0) -> np.ndarray:
        """Sanitizer-visible gather: ``array[indices]`` with each access
        attributed to ``threads`` (scalar broadcasts)."""
        idx = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        if self.sanitizer is not None:
            from repro.analysis.sanitizer import AccessKind

            self.sanitizer.record(self.name, idx, threads, AccessKind.READ)
        return self.array[np.clip(idx, 0, max(self.array.size - 1, 0))]

    def store(self, indices, values, threads=0) -> None:
        """Sanitizer-visible scatter: ``array[indices] = values``."""
        idx = np.atleast_1d(np.asarray(indices, dtype=np.int64))
        if self.sanitizer is not None:
            from repro.analysis.sanitizer import AccessKind

            self.sanitizer.record(self.name, idx, threads, AccessKind.WRITE)
        ok = (idx >= 0) & (idx < self.array.size)
        vals = np.broadcast_to(
            np.asarray(values, dtype=self.array.dtype), idx.shape
        )
        self.array[idx[ok]] = vals[ok]


class PageTracker:
    """LRU resident-set model for unified memory.

    Pages are identified by ``(buffer_name, page_index)``.  ``touch``
    returns the number of faults the access incurred, after admitting the
    pages (evicting least-recently-used pages if over capacity).
    """

    def __init__(self, capacity_pages: int):
        if capacity_pages <= 0:
            raise DeviceError("unified-memory resident set must hold >= 1 page")
        self.capacity_pages = capacity_pages
        self._resident: OrderedDict[tuple[str, int], None] = OrderedDict()
        self.total_faults = 0

    def touch(self, buffer_name: str, page_indices) -> int:
        """Access the given pages; return how many faulted."""
        faults = 0
        for page in page_indices:
            key = (buffer_name, int(page))
            if key in self._resident:
                self._resident.move_to_end(key)
            else:
                faults += 1
                self._resident[key] = None
                if len(self._resident) > self.capacity_pages:
                    self._resident.popitem(last=False)
        self.total_faults += faults
        return faults

    def resident_pages(self) -> int:
        return len(self._resident)

    def clear(self) -> None:
        self._resident.clear()


class MemoryManager:
    """Allocation and transfer accounting for one simulated device."""

    def __init__(self, config: DeviceConfig):
        self.config = config
        self._buffers: dict[str, DeviceBuffer] = {}
        self._device_bytes_used = 0
        #: Shared with :class:`~repro.gpusim.device.Device` via
        #: ``attach_sanitizer``; new allocations register shadow buffers.
        self.sanitizer: SanitizerHook | None = None
        capacity_pages = max(
            1,
            int(
                config.device_memory_bytes
                * config.um_resident_fraction
                // config.um_page_bytes
            ),
        )
        self.pages = PageTracker(capacity_pages)

    def attach_sanitizer(self, sanitizer: SanitizerHook | None) -> None:
        """Attach (or detach) a shadow recorder; existing allocations are
        registered as already-initialized shadow buffers."""
        self.sanitizer = sanitizer
        for buf in self._buffers.values():
            buf.sanitizer = sanitizer
            if sanitizer is not None:
                sanitizer.register_buffer(
                    buf.name, size=int(buf.array.size), initialized=True
                )

    # -- allocation -------------------------------------------------------
    def alloc(
        self,
        name: str,
        shape,
        dtype=np.int64,
        space: MemorySpace = MemorySpace.DEVICE,
        fill: int | float | None = 0,
    ) -> DeviceBuffer:
        """Allocate a named buffer in the given space.

        ``fill=None`` models ``cudaMalloc`` without a memset: contents are
        zeros functionally, but a memcheck-enabled sanitizer treats every
        slot as uninitialized until first written.
        """
        if name in self._buffers:
            raise DeviceError(f"buffer {name!r} already allocated")
        array = np.full(shape, 0 if fill is None else fill, dtype=dtype)
        buf = DeviceBuffer(name=name, array=array, space=space)
        if space is MemorySpace.DEVICE:
            if self._device_bytes_used + buf.nbytes > self.config.device_memory_bytes:
                raise OutOfDeviceMemory(
                    f"allocating {buf.nbytes} bytes for {name!r} exceeds "
                    f"device capacity {self.config.device_memory_bytes}"
                )
            self._device_bytes_used += buf.nbytes
        self._buffers[name] = buf
        if self.sanitizer is not None:
            buf.sanitizer = self.sanitizer
            self.sanitizer.register_buffer(
                name, size=int(array.size), initialized=fill is not None
            )
        return buf

    def free(self, name: str) -> None:
        buf = self._buffers.pop(name, None)
        if buf is None:
            raise DeviceError(f"buffer {name!r} is not allocated")
        if buf.space is MemorySpace.DEVICE:
            self._device_bytes_used -= buf.nbytes

    def get(self, name: str) -> DeviceBuffer:
        try:
            return self._buffers[name]
        except KeyError:
            raise DeviceError(f"buffer {name!r} is not allocated") from None

    @property
    def device_bytes_used(self) -> int:
        return self._device_bytes_used

    @property
    def device_bytes_free(self) -> int:
        return self.config.device_memory_bytes - self._device_bytes_used

    def fits_on_device(self, nbytes: int) -> bool:
        """Would an allocation of ``nbytes`` fit in remaining capacity?"""
        return nbytes <= self.device_bytes_free

    # -- transfers ---------------------------------------------------------
    def transfer_cost_ns(self, nbytes: int) -> float:
        """Cost of one host<->device DMA of ``nbytes``."""
        return self.config.transfer_ns(nbytes)

    # -- unified memory -----------------------------------------------------
    def unified_touch(self, buffer_name: str, byte_offsets) -> int:
        """Record accesses at the given byte offsets of a unified buffer;
        returns the number of page faults incurred."""
        buf = self.get(buffer_name)
        if buf.space is not MemorySpace.UNIFIED:
            raise DeviceError(f"buffer {buffer_name!r} is not unified memory")
        offsets = np.asarray(byte_offsets, dtype=np.int64)
        pages = np.unique(offsets // self.config.um_page_bytes)
        return self.pages.touch(buffer_name, pages)

    def unified_touch_rows(
        self, buffer_name: str, row_indices, row_bytes: int
    ) -> int:
        """Convenience: touch unified pages covering whole rows."""
        rows = np.asarray(row_indices, dtype=np.int64)
        return self.unified_touch(buffer_name, rows * row_bytes)

"""Transaction layer: operations, contexts, procedures, batching,
sub-transaction decomposition.

Shared by LTPG and every baseline so that engine comparisons isolate
the concurrency-control protocol.
"""

from repro.txn.batch import BatchScheduler
from repro.txn.context import (
    BufferedContext,
    LocalSets,
    apply_local_sets,
    execute_buffered,
)
from repro.txn.decompose import (
    ExecutionPlan,
    plan,
    plan_arrays,
    plan_grouped,
    plan_naive,
)
from repro.txn.operations import (
    NUM_OP_KINDS,
    OpColumns,
    OpKind,
    OpRecord,
    column_name,
    intern_column,
)
from repro.txn.procedures import Procedure, ProcedureRegistry
from repro.txn.transaction import Transaction, TxnStatus, assign_tids

__all__ = [
    "BatchScheduler",
    "BufferedContext",
    "LocalSets",
    "apply_local_sets",
    "execute_buffered",
    "ExecutionPlan",
    "plan",
    "plan_arrays",
    "plan_grouped",
    "plan_naive",
    "NUM_OP_KINDS",
    "OpColumns",
    "OpKind",
    "OpRecord",
    "column_name",
    "intern_column",
    "Procedure",
    "ProcedureRegistry",
    "Transaction",
    "TxnStatus",
    "assign_tids",
]

"""Execution contexts for stored procedures.

Every engine in this reproduction executes procedures *optimistically
buffered*: reads hit the database snapshot (overlaid with the
transaction's own writes), while writes, adds and inserts accumulate in
local sets.  The engine then decides commit order and calls
:func:`apply_local_sets` for the winners.  This matches LTPG's
execution phase ("all operations are conducted using the local read and
write sets, thus avoiding data updates before write-back") and gives the
deterministic baselines a common, undo-free substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import StorageError, TransactionAborted, TransactionError
from repro.storage.database import Database
from repro.txn.operations import KEY_COLUMN, OpColumns, OpKind, intern_column
from repro.txn.operations import _COLUMN_IDS  # interner fast path

_READ = int(OpKind.READ)
_WRITE = int(OpKind.WRITE)
_ADD = int(OpKind.ADD)
_INSERT = int(OpKind.INSERT)
_EMPTY_COL = intern_column("")
_KEY_COL = intern_column(KEY_COLUMN)
_COL_ID = _COLUMN_IDS.get


@dataclass(slots=True)
class LocalSets:
    """A transaction's buffered effects."""

    #: (table_id, row, column) -> last written value
    writes: dict[tuple[int, int, str], int] = field(default_factory=dict)
    #: (table_id, row, column) -> accumulated delta
    adds: dict[tuple[int, int, str], int] = field(default_factory=dict)
    #: (table_id, key) -> column values
    inserts: dict[tuple[int, int], dict[str, int]] = field(default_factory=dict)

    @property
    def nbytes(self) -> int:
        """Device bytes to ship this set back to the CPU for snapshot
        merging (key + value per updated cell, packed rows for inserts)
        — the quantity behind Table V's copy-back cost."""
        cells = len(self.writes) + len(self.adds)
        insert_bytes = sum(8 + 4 * len(v) for v in self.inserts.values())
        return 8 * cells + insert_bytes


class BufferedContext:
    """The context handed to stored procedures.

    Records every operation into a columnar :class:`OpColumns` buffer
    (the conflict log's input; indexable as :class:`OpRecord` views) and
    maintains read-your-own-writes semantics.
    """

    __slots__ = ("_db", "_resolve", "ops", "_emit", "local", "ranges")

    def __init__(self, database: Database):
        self._db = database
        self._resolve = database.resolve
        self.ops = OpColumns()
        # Bound C-level extend of the flat op buffer: recording an op is
        # one call with a 6-tuple (kind, table, row, col_id, value, key).
        self._emit = self.ops.buffer.extend
        self.local = LocalSets()
        #: (table_id, lo, hi) predicates from range reads — consumed by
        #: the engine's phantom detection (range-query extension).
        self.ranges: list[tuple[int, int, int]] = []

    # -- reads -------------------------------------------------------------
    def read(self, table: str, key: int, column: str) -> int:
        """Read ``column`` of the row with primary key ``key``.

        Sees the transaction's own uncommitted inserts (read-your-own-
        writes extends to new rows)."""
        table_id, t = self._resolve(table)
        local = self.local
        if local.inserts:
            own = local.inserts.get((table_id, int(key)))
            if own is not None:
                default = dict(
                    (c.name, c.default) for c in t.schema.columns
                ).get(column)
                if column not in t.schema.column_names:
                    raise TransactionError(
                        f"table {table!r} has no column {column!r}"
                    )
                value = own.get(column, default)
                self._emit(
                    (_READ, table_id, -1, intern_column(column), int(value), int(key))
                )
                return int(value)
        # Inlined Table.lookup / Table.read (this is the hottest path in
        # the repo; rows from the primary index never need bounds checks).
        key = int(key)
        row = key if 0 <= key < t._dense_limit else t.primary.lookup(key)
        loc = (table_id, row, column)
        value = local.writes.get(loc)
        if value is None:
            try:
                value = int(t._columns[column][row])
            except KeyError:
                raise StorageError(
                    f"table {t.name!r} has no column {column!r}"
                ) from None
        value += local.adds.get(loc, 0)
        col_id = _COL_ID(column)
        if col_id is None:
            col_id = intern_column(column)
        self._emit((_READ, table_id, row, col_id, value, 0))
        return value

    def read_at(self, table: str, row: int, column: str) -> int:
        """Read by row slot (for rows found via a secondary index)."""
        table_id, t = self._resolve(table)
        return self._slot_read(t, table_id, row, column)

    def _read_slot(self, table_id: int, row: int, column: str) -> int:
        return self._slot_read(self._db.table_by_id(table_id), table_id, row, column)

    def _slot_read(self, t, table_id: int, row: int, column: str) -> int:
        loc = (table_id, row, column)
        local = self.local
        value = local.writes.get(loc)
        if value is None:
            value = t.read(row, column)
        value += local.adds.get(loc, 0)
        col_id = _COL_ID(column)
        if col_id is None:
            col_id = intern_column(column)
        self._emit((_READ, table_id, row, col_id, int(value), 0))
        return value

    def key_at(self, table: str, row: int) -> int:
        """Read a row's primary key (counts as a read of the row)."""
        table_id, t = self._resolve(table)
        key = t.key_of(row)
        self._emit((_READ, table_id, row, _KEY_COL, int(key), 0))
        return key

    def last_row_by_secondary(self, table: str, index: str, skey: int) -> int:
        """Most recent row slot under a secondary index key.

        Only sees rows that existed at batch start (hash indexes are
        rebuilt at write-back), which is the paper's pre-resolved-key
        semantics for range-style lookups.
        """
        t = self._db.table(table)
        try:
            sec = t.secondary[index]
        except KeyError:
            raise TransactionError(
                f"table {table!r} has no secondary index {index!r}"
            ) from None
        return sec.last(skey)

    def range_read(
        self, table: str, lo: int, hi: int, column: str, limit: int | None = None
    ) -> list[int]:
        """Read ``column`` of every row with ``lo <= key <= hi`` through
        the table's B-tree (the range-query extension; the table needs
        :meth:`~repro.storage.table.Table.add_ordered_index`).

        The predicate itself is recorded so the engine can abort this
        transaction if an earlier-TID transaction *inserts* into the
        range (phantom protection).
        """
        table_id, t = self._resolve(table)
        pairs = t.range_rows(lo, hi)
        if limit is not None:
            pairs = pairs[:limit]
        self.ranges.append((table_id, int(lo), int(hi)))
        return [self._slot_read(t, table_id, row, column) for _, row in pairs]

    def rows_by_secondary(self, table: str, index: str, skey: int) -> list[int]:
        t = self._db.table(table)
        try:
            sec = t.secondary[index]
        except KeyError:
            raise TransactionError(
                f"table {table!r} has no secondary index {index!r}"
            ) from None
        return sec.lookup(skey)

    # -- writes -------------------------------------------------------------
    def write(self, table: str, key: int, column: str, value: int) -> None:
        table_id, t = self._resolve(table)
        key = int(key)
        row = key if 0 <= key < t._dense_limit else t.primary.lookup(key)
        loc = (table_id, row, column)
        local = self.local
        local.writes[loc] = value = int(value)
        local.adds.pop(loc, None)  # write overrides pending adds
        col_id = _COL_ID(column)
        if col_id is None:
            col_id = intern_column(column)
        self._emit((_WRITE, table_id, row, col_id, value, 0))

    def write_at(self, table: str, row: int, column: str, value: int) -> None:
        table_id, _ = self._resolve(table)
        loc = (table_id, row, column)
        local = self.local
        local.writes[loc] = value = int(value)
        local.adds.pop(loc, None)  # write overrides pending adds
        col_id = _COL_ID(column)
        if col_id is None:
            col_id = intern_column(column)
        self._emit((_WRITE, table_id, row, col_id, value, 0))

    def add(self, table: str, key: int, column: str, delta: int) -> None:
        """Commutative ``column += delta`` (delayed-update eligible)."""
        table_id, t = self._resolve(table)
        key = int(key)
        row = key if 0 <= key < t._dense_limit else t.primary.lookup(key)
        loc = (table_id, row, column)
        adds = self.local.adds
        adds[loc] = adds.get(loc, 0) + (delta := int(delta))
        col_id = _COL_ID(column)
        if col_id is None:
            col_id = intern_column(column)
        self._emit((_ADD, table_id, row, col_id, delta, 0))

    def insert(self, table: str, key: int, values: dict[str, int]) -> None:
        table_id, t = self._resolve(table)
        if t.get_row(int(key)) is not None:
            # Unique violation against the snapshot: deterministic
            # logic-level rollback (not a concurrency-control abort).
            raise TransactionAborted(f"duplicate key {key} in {table!r}")
        ikey = (table_id, int(key))
        if ikey in self.local.inserts:
            raise TransactionError(
                f"transaction inserts key {key} into {table!r} twice"
            )
        self.local.inserts[ikey] = {c: int(v) for c, v in values.items()}
        self._emit((_INSERT, table_id, -1, _EMPTY_COL, 0, int(key)))

    # -- control -------------------------------------------------------------
    def abort(self, reason: str = "user abort") -> None:
        """Logic-initiated rollback (e.g. TPC-C's 1% NewOrder abort)."""
        raise TransactionAborted(reason)


def apply_local_sets(database: Database, local: LocalSets) -> None:
    """Install one committed transaction's buffered effects.

    Insert keys that already exist are ignored (the conflict-detection
    phase is responsible for ensuring a unique winner; replay helpers
    reuse this function after the winner has been picked).
    """
    for (table_id, row, column), value in local.writes.items():
        database.table_by_id(table_id).write(row, column, value)
    for (table_id, row, column), delta in local.adds.items():
        database.table_by_id(table_id).add(row, column, delta)
    for (table_id, key), values in local.inserts.items():
        table = database.table_by_id(table_id)
        if table.get_row(key) is None:
            table.insert(key, values)


def execute_buffered(database: Database, procedure, params: tuple) -> BufferedContext:
    """Run a procedure against a fresh buffered context.

    Returns the context; raises :class:`TransactionAborted` if the
    procedure rolled itself back (caller decides how to record that).
    """
    ctx = BufferedContext(database)
    procedure(ctx, *params)
    return ctx

"""Execution contexts for stored procedures.

Every engine in this reproduction executes procedures *optimistically
buffered*: reads hit the database snapshot (overlaid with the
transaction's own writes), while writes, adds and inserts accumulate in
local sets.  The engine then decides commit order and calls
:func:`apply_local_sets` for the winners.  This matches LTPG's
execution phase ("all operations are conducted using the local read and
write sets, thus avoiding data updates before write-back") and gives the
deterministic baselines a common, undo-free substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TransactionAborted, TransactionError
from repro.storage.database import Database
from repro.txn.operations import OpKind, OpRecord


@dataclass
class LocalSets:
    """A transaction's buffered effects."""

    #: (table_id, row, column) -> last written value
    writes: dict[tuple[int, int, str], int] = field(default_factory=dict)
    #: (table_id, row, column) -> accumulated delta
    adds: dict[tuple[int, int, str], int] = field(default_factory=dict)
    #: (table_id, key) -> column values
    inserts: dict[tuple[int, int], dict[str, int]] = field(default_factory=dict)

    @property
    def nbytes(self) -> int:
        """Device bytes to ship this set back to the CPU for snapshot
        merging (key + value per updated cell, packed rows for inserts)
        — the quantity behind Table V's copy-back cost."""
        cells = len(self.writes) + len(self.adds)
        insert_bytes = sum(8 + 4 * len(v) for v in self.inserts.values())
        return 8 * cells + insert_bytes


class BufferedContext:
    """The context handed to stored procedures.

    Records every operation as an :class:`OpRecord` (the conflict log's
    input) and maintains read-your-own-writes semantics.
    """

    def __init__(self, database: Database):
        self._db = database
        self.ops: list[OpRecord] = []
        self.local = LocalSets()
        #: (table_id, lo, hi) predicates from range reads — consumed by
        #: the engine's phantom detection (range-query extension).
        self.ranges: list[tuple[int, int, int]] = []

    # -- reads -------------------------------------------------------------
    def read(self, table: str, key: int, column: str) -> int:
        """Read ``column`` of the row with primary key ``key``.

        Sees the transaction's own uncommitted inserts (read-your-own-
        writes extends to new rows)."""
        table_id = self._db.table_id(table)
        own = self.local.inserts.get((table_id, int(key)))
        if own is not None:
            t = self._db.table_by_id(table_id)
            default = dict(
                (c.name, c.default) for c in t.schema.columns
            ).get(column)
            if column not in t.schema.column_names:
                raise TransactionError(
                    f"table {table!r} has no column {column!r}"
                )
            value = own.get(column, default)
            self.ops.append(
                OpRecord(OpKind.READ, table_id, -1, column, int(value), key=int(key))
            )
            return int(value)
        t = self._db.table_by_id(table_id)
        row = t.lookup(key)
        return self._read_slot(table_id, row, column)

    def read_at(self, table: str, row: int, column: str) -> int:
        """Read by row slot (for rows found via a secondary index)."""
        return self._read_slot(self._db.table_id(table), row, column)

    def _read_slot(self, table_id: int, row: int, column: str) -> int:
        loc = (table_id, row, column)
        t = self._db.table_by_id(table_id)
        value = self.local.writes.get(loc)
        if value is None:
            value = t.read(row, column)
        value += self.local.adds.get(loc, 0)
        self.ops.append(OpRecord(OpKind.READ, table_id, row, column, value))
        return value

    def key_at(self, table: str, row: int) -> int:
        """Read a row's primary key (counts as a read of the row)."""
        table_id = self._db.table_id(table)
        t = self._db.table_by_id(table_id)
        key = t.key_of(row)
        self.ops.append(OpRecord(OpKind.READ, table_id, row, "__key__", key))
        return key

    def last_row_by_secondary(self, table: str, index: str, skey: int) -> int:
        """Most recent row slot under a secondary index key.

        Only sees rows that existed at batch start (hash indexes are
        rebuilt at write-back), which is the paper's pre-resolved-key
        semantics for range-style lookups.
        """
        t = self._db.table(table)
        try:
            sec = t.secondary[index]
        except KeyError:
            raise TransactionError(
                f"table {table!r} has no secondary index {index!r}"
            ) from None
        return sec.last(skey)

    def range_read(
        self, table: str, lo: int, hi: int, column: str, limit: int | None = None
    ) -> list[int]:
        """Read ``column`` of every row with ``lo <= key <= hi`` through
        the table's B-tree (the range-query extension; the table needs
        :meth:`~repro.storage.table.Table.add_ordered_index`).

        The predicate itself is recorded so the engine can abort this
        transaction if an earlier-TID transaction *inserts* into the
        range (phantom protection).
        """
        table_id = self._db.table_id(table)
        t = self._db.table_by_id(table_id)
        pairs = t.range_rows(lo, hi)
        if limit is not None:
            pairs = pairs[:limit]
        self.ranges.append((table_id, int(lo), int(hi)))
        return [self._read_slot(table_id, row, column) for _, row in pairs]

    def rows_by_secondary(self, table: str, index: str, skey: int) -> list[int]:
        t = self._db.table(table)
        try:
            sec = t.secondary[index]
        except KeyError:
            raise TransactionError(
                f"table {table!r} has no secondary index {index!r}"
            ) from None
        return sec.lookup(skey)

    # -- writes -------------------------------------------------------------
    def write(self, table: str, key: int, column: str, value: int) -> None:
        table_id = self._db.table_id(table)
        t = self._db.table_by_id(table_id)
        row = t.lookup(key)
        self.write_at(table, row, column, value)

    def write_at(self, table: str, row: int, column: str, value: int) -> None:
        table_id = self._db.table_id(table)
        loc = (table_id, row, column)
        self.local.writes[loc] = int(value)
        self.local.adds.pop(loc, None)  # write overrides pending adds
        self.ops.append(OpRecord(OpKind.WRITE, table_id, row, column, int(value)))

    def add(self, table: str, key: int, column: str, delta: int) -> None:
        """Commutative ``column += delta`` (delayed-update eligible)."""
        table_id = self._db.table_id(table)
        t = self._db.table_by_id(table_id)
        row = t.lookup(key)
        loc = (table_id, row, column)
        self.local.adds[loc] = self.local.adds.get(loc, 0) + int(delta)
        self.ops.append(OpRecord(OpKind.ADD, table_id, row, column, int(delta)))

    def insert(self, table: str, key: int, values: dict[str, int]) -> None:
        table_id = self._db.table_id(table)
        if self._db.table_by_id(table_id).get_row(int(key)) is not None:
            # Unique violation against the snapshot: deterministic
            # logic-level rollback (not a concurrency-control abort).
            raise TransactionAborted(f"duplicate key {key} in {table!r}")
        ikey = (table_id, int(key))
        if ikey in self.local.inserts:
            raise TransactionError(
                f"transaction inserts key {key} into {table!r} twice"
            )
        self.local.inserts[ikey] = {c: int(v) for c, v in values.items()}
        self.ops.append(
            OpRecord(OpKind.INSERT, table_id, -1, "", 0, key=int(key))
        )

    # -- control -------------------------------------------------------------
    def abort(self, reason: str = "user abort") -> None:
        """Logic-initiated rollback (e.g. TPC-C's 1% NewOrder abort)."""
        raise TransactionAborted(reason)


def apply_local_sets(database: Database, local: LocalSets) -> None:
    """Install one committed transaction's buffered effects.

    Insert keys that already exist are ignored (the conflict-detection
    phase is responsible for ensuring a unique winner; replay helpers
    reuse this function after the winner has been picked).
    """
    for (table_id, row, column), value in local.writes.items():
        database.table_by_id(table_id).write(row, column, value)
    for (table_id, row, column), delta in local.adds.items():
        database.table_by_id(table_id).add(row, column, delta)
    for (table_id, key), values in local.inserts.items():
        table = database.table_by_id(table_id)
        if table.get_row(key) is None:
            table.insert(key, values)


def execute_buffered(database: Database, procedure, params: tuple) -> BufferedContext:
    """Run a procedure against a fresh buffered context.

    Returns the context; raises :class:`TransactionAborted` if the
    procedure rolled itself back (caller decides how to record that).
    """
    ctx = BufferedContext(database)
    procedure(ctx, *params)
    return ctx

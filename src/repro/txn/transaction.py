"""Transactions and their lifecycle.

A transaction is a named stored procedure plus integer parameters plus a
TID.  TIDs are assigned once, on first admission to a batch, and are
*preserved across re-executions* — the paper relies on this for
determinism ("If re-execution is necessary, the system pulls the
transactions from the log, while preserving their original TIDs").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.txn.operations import OpColumns, OpRecord


class TxnStatus(enum.Enum):
    PENDING = "pending"
    EXECUTED = "executed"
    COMMITTED = "committed"
    ABORTED = "aborted"  # concurrency-control abort: will be re-executed
    LOGIC_ABORTED = "logic_aborted"  # procedure rolled itself back: final


@dataclass
class Transaction:
    """One transaction instance flowing through an engine."""

    procedure_name: str
    params: tuple
    tid: int = -1
    status: TxnStatus = TxnStatus.PENDING
    #: How many batches this transaction has been through (1 = first try).
    attempts: int = 0
    #: Operation stream from the most recent execution — an
    #: :class:`OpColumns` buffer after running under an engine (its
    #: indexing yields :class:`OpRecord` views), or a plain list.
    ops: OpColumns | list[OpRecord] = field(default_factory=list)
    #: Why the last conflict-detection pass aborted it (for diagnostics):
    #: one of "", "waw", "raw", "war", "raw+war", "logic".
    abort_reason: str = ""

    def reset_for_execution(self) -> None:
        """Clear per-attempt state before (re-)executing."""
        self.ops = []
        self.status = TxnStatus.PENDING
        self.abort_reason = ""
        self.attempts += 1

    @property
    def is_final(self) -> bool:
        return self.status in (TxnStatus.COMMITTED, TxnStatus.LOGIC_ABORTED)

    def __repr__(self) -> str:  # compact, for test failure messages
        return (
            f"Txn(tid={self.tid}, {self.procedure_name}, "
            f"{self.status.value}, attempts={self.attempts})"
        )


def assign_tids(transactions: list[Transaction], start: int) -> int:
    """Assign consecutive TIDs to transactions that lack one; returns the
    next unused TID.  Already-assigned TIDs (re-executions) are kept."""
    next_tid = start
    for txn in transactions:
        if txn.tid < 0:
            txn.tid = next_tid
            next_tid += 1
    return next_tid

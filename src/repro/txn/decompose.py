"""Transaction decomposition and adaptive warp division (paper §V-B).

LTPG splits each transaction into fine-grained sub-transactions (its
individual operations) and groups sub-transactions of the same type —
same :class:`~repro.txn.operations.OpKind` on the same table — into
dedicated warps, so all 32 lanes of a warp execute identical
instructions.  The alternative ("naive" task parallelism, one thread
per transaction) makes lanes of one warp walk different instruction
streams and diverge at every mismatched step.

:func:`plan_grouped` and :func:`plan_naive` compute both assignments
over the same executed batch and report warp counts, lane utilization
and divergence events; the engine feeds those numbers to the simulator.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.gpusim.config import WARP_SIZE
from repro.txn.operations import OpKind
from repro.txn.transaction import Transaction


@dataclass(frozen=True)
class ExecutionPlan:
    """The shape of one phase's warp assignment."""

    mode: str  # "grouped" | "naive"
    total_ops: int
    warps: int
    #: Lanes that carry an op, divided by lanes launched.
    utilization: float
    #: Warp-level divergence events (branch splits both-paths-executed).
    divergent_branches: int
    #: ops per (kind, table_id) group — the warp classes.
    group_sizes: dict[tuple[int, int], int]

    @property
    def threads(self) -> int:
        return self.warps * WARP_SIZE


def _ops_by_group(transactions: list[Transaction]) -> dict[tuple[int, int], int]:
    groups: dict[tuple[int, int], int] = defaultdict(int)
    for txn in transactions:
        for op in txn.ops:
            groups[(int(op.kind), op.table_id)] += 1
    return dict(groups)


def plan_grouped(transactions: list[Transaction]) -> ExecutionPlan:
    """Adaptive warp division: one warp class per (op kind, table).

    Within a class every lane runs the same instruction stream, so the
    only waste is the partially-filled trailing warp of each class; no
    divergence occurs.
    """
    groups = _ops_by_group(transactions)
    total_ops = sum(groups.values())
    warps = sum(-(-count // WARP_SIZE) for count in groups.values())
    lanes = warps * WARP_SIZE
    return ExecutionPlan(
        mode="grouped",
        total_ops=total_ops,
        warps=warps,
        utilization=total_ops / lanes if lanes else 1.0,
        divergent_branches=0,
        group_sizes=groups,
    )


def plan_naive(transactions: list[Transaction]) -> ExecutionPlan:
    """Task parallelism: thread *i* executes transaction *i* start to
    finish; 32 consecutive transactions share a warp.

    At each step, the warp must serially execute one masked pass per
    distinct op class present among its active lanes — every extra class
    is a divergence event.
    """
    groups = _ops_by_group(transactions)
    total_ops = sum(groups.values())
    warps = -(-len(transactions) // WARP_SIZE) if transactions else 0
    divergence = 0
    lane_steps = 0
    for w in range(warps):
        members = transactions[w * WARP_SIZE : (w + 1) * WARP_SIZE]
        depth = max((len(t.ops) for t in members), default=0)
        lane_steps += depth * WARP_SIZE
        for step in range(depth):
            classes = {
                (int(t.ops[step].kind), t.ops[step].table_id)
                for t in members
                if step < len(t.ops)
            }
            if len(classes) > 1:
                divergence += len(classes) - 1
    return ExecutionPlan(
        mode="naive",
        total_ops=total_ops,
        warps=warps,
        utilization=total_ops / lane_steps if lane_steps else 1.0,
        divergent_branches=divergence,
        group_sizes=groups,
    )


def plan(transactions: list[Transaction], grouped: bool) -> ExecutionPlan:
    """Dispatch on the adaptive-warp-division toggle."""
    return plan_grouped(transactions) if grouped else plan_naive(transactions)

"""Transaction decomposition and adaptive warp division (paper §V-B).

LTPG splits each transaction into fine-grained sub-transactions (its
individual operations) and groups sub-transactions of the same type —
same :class:`~repro.txn.operations.OpKind` on the same table — into
dedicated warps, so all 32 lanes of a warp execute identical
instructions.  The alternative ("naive" task parallelism, one thread
per transaction) makes lanes of one warp walk different instruction
streams and diverge at every mismatched step.

:func:`plan_grouped` and :func:`plan_naive` compute both assignments
over the same executed batch and report warp counts, lane utilization
and divergence events; the engine feeds those numbers to the simulator.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.gpusim.config import WARP_SIZE
from repro.txn.operations import OpKind
from repro.txn.transaction import Transaction


@dataclass(frozen=True)
class ExecutionPlan:
    """The shape of one phase's warp assignment."""

    mode: str  # "grouped" | "naive"
    total_ops: int
    warps: int
    #: Lanes that carry an op, divided by lanes launched.
    utilization: float
    #: Warp-level divergence events (branch splits both-paths-executed).
    divergent_branches: int
    #: ops per (kind, table_id) group — the warp classes.
    group_sizes: dict[tuple[int, int], int]

    @property
    def threads(self) -> int:
        return self.warps * WARP_SIZE


def _ops_by_group(transactions: list[Transaction]) -> dict[tuple[int, int], int]:
    groups: dict[tuple[int, int], int] = defaultdict(int)
    for txn in transactions:
        for op in txn.ops:
            groups[(int(op.kind), op.table_id)] += 1
    return dict(groups)


def plan_grouped(transactions: list[Transaction]) -> ExecutionPlan:
    """Adaptive warp division: one warp class per (op kind, table).

    Within a class every lane runs the same instruction stream, so the
    only waste is the partially-filled trailing warp of each class; no
    divergence occurs.
    """
    groups = _ops_by_group(transactions)
    total_ops = sum(groups.values())
    warps = sum(-(-count // WARP_SIZE) for count in groups.values())
    lanes = warps * WARP_SIZE
    return ExecutionPlan(
        mode="grouped",
        total_ops=total_ops,
        warps=warps,
        utilization=total_ops / lanes if lanes else 1.0,
        divergent_branches=0,
        group_sizes=groups,
    )


def plan_naive(transactions: list[Transaction]) -> ExecutionPlan:
    """Task parallelism: thread *i* executes transaction *i* start to
    finish; 32 consecutive transactions share a warp.

    At each step, the warp must serially execute one masked pass per
    distinct op class present among its active lanes — every extra class
    is a divergence event.
    """
    groups = _ops_by_group(transactions)
    total_ops = sum(groups.values())
    warps = -(-len(transactions) // WARP_SIZE) if transactions else 0
    divergence = 0
    lane_steps = 0
    for w in range(warps):
        members = transactions[w * WARP_SIZE : (w + 1) * WARP_SIZE]
        depth = max((len(t.ops) for t in members), default=0)
        lane_steps += depth * WARP_SIZE
        for step in range(depth):
            classes = {
                (int(t.ops[step].kind), t.ops[step].table_id)
                for t in members
                if step < len(t.ops)
            }
            if len(classes) > 1:
                divergence += len(classes) - 1
    return ExecutionPlan(
        mode="naive",
        total_ops=total_ops,
        warps=warps,
        utilization=total_ops / lane_steps if lane_steps else 1.0,
        divergent_branches=divergence,
        group_sizes=groups,
    )


def plan(transactions: list[Transaction], grouped: bool) -> ExecutionPlan:
    """Dispatch on the adaptive-warp-division toggle."""
    return plan_grouped(transactions) if grouped else plan_naive(transactions)


# -- columnar (array) planning ------------------------------------------------
# The engine's columnar hot path has the whole batch's op stream as flat
# arrays already; these planners produce the exact same ExecutionPlan as
# their object-walking twins above without materializing OpRecords.


def _group_sizes_from_arrays(
    kinds: np.ndarray, tables: np.ndarray
) -> dict[tuple[int, int], int]:
    if kinds.size == 0:
        return {}
    span = int(tables.max()) + 1
    enc = kinds * span + tables
    uniq, counts = np.unique(enc, return_counts=True)
    return {
        (int(e // span), int(e % span)): int(c) for e, c in zip(uniq, counts)
    }


def plan_grouped_arrays(kinds: np.ndarray, tables: np.ndarray) -> ExecutionPlan:
    """Array twin of :func:`plan_grouped` over flat batch op columns."""
    groups = _group_sizes_from_arrays(kinds, tables)
    total_ops = int(kinds.size)
    warps = sum(-(-count // WARP_SIZE) for count in groups.values())
    lanes = warps * WARP_SIZE
    return ExecutionPlan(
        mode="grouped",
        total_ops=total_ops,
        warps=warps,
        utilization=total_ops / lanes if lanes else 1.0,
        divergent_branches=0,
        group_sizes=groups,
    )


def plan_naive_arrays(
    kinds: np.ndarray, tables: np.ndarray, counts: np.ndarray
) -> ExecutionPlan:
    """Array twin of :func:`plan_naive`.

    ``counts[i]`` is the number of ops of transaction *i*; ops are laid
    out transaction-major in ``kinds``/``tables``.
    """
    groups = _group_sizes_from_arrays(kinds, tables)
    total_ops = int(kinds.size)
    n_txns = int(counts.size)
    warps = -(-n_txns // WARP_SIZE) if n_txns else 0
    if warps == 0:
        return ExecutionPlan("naive", 0, 0, 1.0, 0, groups)
    warp_of_txn = np.arange(n_txns, dtype=np.int64) // WARP_SIZE
    depth = np.zeros(warps, dtype=np.int64)
    np.maximum.at(depth, warp_of_txn, counts)
    lane_steps = int(depth.sum()) * WARP_SIZE
    divergence = 0
    if total_ops:
        txn_of_op = np.repeat(np.arange(n_txns, dtype=np.int64), counts)
        offsets = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(counts)[:-1])
        )
        step = np.arange(total_ops, dtype=np.int64) - offsets[txn_of_op]
        warp = warp_of_txn[txn_of_op]
        span = int(tables.max()) + 1
        cls = kinds * span + tables
        # Distinct (warp, step, class) triples, then distinct classes per
        # (warp, step): every class beyond the first is one divergence
        # event — identical to the per-step set arithmetic above.
        order = np.lexsort((cls, step, warp))
        w, s, c = warp[order], step[order], cls[order]
        new_triple = np.ones(total_ops, dtype=bool)
        new_triple[1:] = (w[1:] != w[:-1]) | (s[1:] != s[:-1]) | (c[1:] != c[:-1])
        new_step = np.ones(total_ops, dtype=bool)
        new_step[1:] = (w[1:] != w[:-1]) | (s[1:] != s[:-1])
        divergence = int(new_triple.sum()) - int(new_step.sum())
    return ExecutionPlan(
        mode="naive",
        total_ops=total_ops,
        warps=warps,
        utilization=total_ops / lane_steps if lane_steps else 1.0,
        divergent_branches=divergence,
        group_sizes=groups,
    )


def plan_arrays(
    kinds: np.ndarray, tables: np.ndarray, counts: np.ndarray, grouped: bool
) -> ExecutionPlan:
    """Columnar dispatch on the adaptive-warp-division toggle."""
    if grouped:
        return plan_grouped_arrays(kinds, tables)
    return plan_naive_arrays(kinds, tables, counts)

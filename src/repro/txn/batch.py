"""Batch formation and abort re-scheduling.

The scheduler admits client transactions, forms fixed-size batches,
assigns TIDs on first admission (kept across re-executions), and
re-queues concurrency-control aborts:

* normally into the *next* batch,
* under the batch-to-batch pipeline (paper §V-E) into the batch *two*
  slots later, because batch *n+1*'s inputs are already in flight to the
  GPU while batch *n* executes.

Aborted transactions carry their original (smaller) TIDs, so on retry
they outrank the newer transactions in conflict detection — the
starvation-freedom argument the paper inherits from Aria.
"""

from __future__ import annotations

from collections import deque

from repro.errors import TransactionError
from repro.txn.transaction import Transaction, assign_tids


class BatchScheduler:
    """Forms batches from new arrivals plus retry traffic."""

    def __init__(self, batch_size: int, retry_delay_batches: int = 1):
        if batch_size <= 0:
            raise TransactionError("batch size must be positive")
        if retry_delay_batches < 1:
            raise TransactionError("retry delay must be at least one batch")
        self.batch_size = batch_size
        self.retry_delay_batches = retry_delay_batches
        self._pending: deque[Transaction] = deque()
        #: retries that are eligible now, kept sorted by TID at pop time
        self._retries: list[Transaction] = []
        #: batch_index -> retries that become eligible at that index
        self._delayed: dict[int, list[Transaction]] = {}
        self._next_tid = 0
        self.batch_index = 0

    # -- intake -----------------------------------------------------------
    def admit(self, transactions) -> None:
        """Queue newly arrived transactions."""
        self._pending.extend(transactions)

    def requeue_aborted(self, transactions) -> None:
        """Schedule concurrency-control aborts for re-execution.

        Called after the failing batch ran, i.e. ``batch_index`` has
        already advanced past it; a delay of one means "the very next
        batch formed from now".
        """
        eligible_at = self.batch_index + self.retry_delay_batches - 1
        for txn in transactions:
            if txn.tid < 0:
                raise TransactionError("aborted transaction was never admitted")
            self._delayed.setdefault(eligible_at, []).append(txn)

    # -- batch formation ------------------------------------------------------
    def next_batch(self) -> list[Transaction]:
        """Form the next batch: eligible retries first (TID order), then
        new arrivals, up to ``batch_size``.  Assigns fresh TIDs to the
        new arrivals and advances the batch index."""
        newly_eligible = self._delayed.pop(self.batch_index, [])
        self._retries.extend(newly_eligible)
        self._retries.sort(key=lambda t: t.tid)

        batch: list[Transaction] = []
        take = min(len(self._retries), self.batch_size)
        batch.extend(self._retries[:take])
        del self._retries[:take]
        while len(batch) < self.batch_size and self._pending:
            batch.append(self._pending.popleft())

        self._next_tid = assign_tids(batch, self._next_tid)
        self.batch_index += 1
        return batch

    # -- introspection -----------------------------------------------------
    @property
    def backlog(self) -> int:
        """Transactions admitted or retried but not yet batched."""
        delayed = sum(len(v) for v in self._delayed.values())
        return len(self._pending) + len(self._retries) + delayed

    @property
    def eligible_backlog(self) -> int:
        """Transactions that can join the *next* batch — excludes
        retries still serving their pipeline delay.  Steady-state
        drivers use this to decide how much fresh load to admit."""
        return (
            len(self._pending)
            + len(self._retries)
            + len(self._delayed.get(self.batch_index, ()))
        )

    def has_work(self) -> bool:
        return self.backlog > 0

"""Batched execution context: one context per procedure *group*.

Scalar execution runs every transaction through its own
:class:`~repro.txn.context.BufferedContext`; the batched executor
(``LTPGConfig.batched_exec``) instead groups a batch by procedure name
and hands each group a single :class:`BatchedContext`.  A vectorized
``BatchProcedure`` then reads snapshot columns with NumPy gathers,
computes all lanes' effects at once, and emits op/write-set *chunks*
into columnar arrays — the host analog of the paper's adaptive warp
division (§IV-C), where sub-transactions of one type share a warp so the
same instruction stream runs data-parallel across lanes.

Byte-identity with the scalar path is preserved structurally:

* every emitted op carries its lane and a per-lane sequence number, so
  :meth:`BatchedContext.finalize` can lexsort chunks back into exactly
  the order a per-transaction execution would have recorded;
* lanes that hit a case the vectorized code cannot express (duplicate
  keys needing read-your-own-writes, etc.) are *fallback* lanes — their
  chunk contributions are discarded and the engine re-runs them through
  the scalar procedure, which is identical by construction;
* logic aborts are masks: a dead lane keeps the ops it emitted before
  the abort and contributes empty local sets, exactly like the scalar
  ``TransactionAborted`` path.

The group's resolved effects land in :class:`GroupLocals` — flat
``(txn, table, row, col, value)`` arrays (the columnar ``LocalSets``)
that the engine's write-back phase installs with masked grouped
scatters instead of per-transaction ``apply_local_sets`` calls.
"""

from __future__ import annotations

from itertools import chain

import numpy as np

from repro.errors import TransactionError
from repro.storage.database import Database
from repro.txn.operations import (
    KEY_COLUMN,
    OP_FIELDS,
    OpKind,
    column_name,
    intern_column,
)
from repro.xp import ArrayBackend, get_backend

_READ = int(OpKind.READ)
_WRITE = int(OpKind.WRITE)
_ADD = int(OpKind.ADD)
_INSERT = int(OpKind.INSERT)
_EMPTY_COL = intern_column("")
_KEY_COL = intern_column(KEY_COLUMN)


def pack_sort_key(
    *fields: np.ndarray, xp: ArrayBackend | None = None
) -> np.ndarray | None:
    """Fold non-negative sort fields (major first) into one int64 key so
    a single radix argsort can replace a multi-key lexsort.  Returns
    ``None`` when any field is negative or the combined ranges cannot
    fit 62 bits (the caller falls back to ``xp.lexsort``).

    Runs on whichever backend owns ``fields``; pass ``xp`` so the packed
    key stays device-resident (the min/max range probes are one-word
    readbacks either way — device reductions with a scalar result).
    """
    spans = []
    width = 1
    for f in fields:
        if int(f.min()) < 0:
            return None
        s = int(f.max()) + 1
        spans.append(s)
        width *= s
        if width >= 1 << 62:
            return None
    if xp is None:
        packed = fields[0].astype(np.int64, copy=True)
    else:
        packed = xp.astype(fields[0], np.int64, copy=True)
    for f, s in zip(fields[1:], spans[1:]):
        packed *= s
        packed += f
    return packed


def _append_scalar(xp: ArrayBackend, arr, value: int):
    """``np.append(arr, value)`` that stays on ``arr``'s device."""
    return xp.concatenate((arr, xp.asarray([value], dtype=np.int64)))


class ParamColumns:
    """A group's transaction parameters as padded int64 columns.

    ``padded[lane, i]`` is parameter ``i`` of lane ``lane`` (0 past the
    lane's actual parameter count); ``lengths[lane]`` is that count.
    """

    __slots__ = ("padded", "lengths", "n", "xp")

    def __init__(self, params_list: list[tuple], xp: ArrayBackend | None = None):
        self.xp = xp if xp is not None else get_backend("numpy")
        self.n = len(params_list)
        lengths = np.fromiter(
            map(len, params_list), dtype=np.int64, count=self.n
        )
        max_len = int(lengths.max()) if self.n else 0
        padded = np.zeros((self.n, max_len), dtype=np.int64)
        if max_len:
            flat = np.fromiter(
                chain.from_iterable(params_list),
                dtype=np.int64,
                count=int(lengths.sum()),
            )
            padded[np.arange(max_len) < lengths[:, None]] = flat
        # the per-batch parameter shipping: one H2D of the padded
        # parameter matrix per group (identity on the host backend)
        self.lengths = self.xp.from_host(lengths)
        self.padded = self.xp.from_host(padded)

    def column(self, i: int) -> np.ndarray:
        """Parameter ``i`` across all lanes (0 where absent)."""
        if i >= self.padded.shape[1]:
            return self.xp.zeros(self.n, dtype=np.int64)
        return self.padded[:, i]


class GroupLocals:
    """One group's resolved buffered effects, columnar.

    ``writes``/``adds`` are flat ``(txn, table, row, col_id, value)``
    int64 arrays (the columnar ``LocalSets``); ``delayed`` carries the
    extracted delayed-column deltas.  Inserts are columnar too —
    ``(i_txn, i_seq, i_table, i_key)`` arrays plus ``(i_chunk, i_pos)``
    locators into ``i_meta``, a list of ``(names, values_matrix)``
    payload chunks — and only materialize per-row at write-back, where
    :meth:`iter_inserts` walks them in (transaction, emission) order.
    ``nbytes_by_txn`` and ``delayed_count_by_txn`` reproduce the scalar
    accounting exactly.
    """

    _NUM_ARRAYS = 21

    __slots__ = (
        "w_txn", "w_table", "w_row", "w_col", "w_val",
        "a_txn", "a_table", "a_row", "a_col", "a_val",
        "d_txn", "d_table", "d_row", "d_col", "d_val",
        "i_txn", "i_seq", "i_table", "i_key", "i_chunk", "i_pos",
        "i_meta", "nbytes_by_txn", "delayed_count_by_txn",
    )

    def __init__(self, num_txns: int):
        e = np.empty(0, dtype=np.int64)
        for name in self.__slots__[:self._NUM_ARRAYS]:
            setattr(self, name, e)
        self.i_meta: list[tuple] = []
        self.nbytes_by_txn = np.zeros(num_txns, dtype=np.int64)
        self.delayed_count_by_txn = np.zeros(num_txns, dtype=np.int64)

    # -- batch-wide accumulation ------------------------------------------
    @staticmethod
    def merge(parts: list["GroupLocals"], num_txns: int) -> "GroupLocals":
        out = GroupLocals(num_txns)
        for name in out.__slots__[:out._NUM_ARRAYS]:
            if name == "i_chunk":
                continue  # needs per-part offsets, handled below
            setattr(
                out,
                name,
                np.concatenate([getattr(p, name) for p in parts])
                if parts else np.empty(0, dtype=np.int64),
            )
        chunk_parts = []
        for p in parts:
            chunk_parts.append(p.i_chunk + len(out.i_meta))
            out.i_meta.extend(p.i_meta)
            out.nbytes_by_txn += p.nbytes_by_txn
            out.delayed_count_by_txn += p.delayed_count_by_txn
        out.i_chunk = (
            np.concatenate(chunk_parts) if parts else np.empty(0, dtype=np.int64)
        )
        return out

    @staticmethod
    def concat_shards(
        parts: list["GroupLocals"], lane_offsets: list[int], num_lanes: int
    ) -> "GroupLocals":
        """Concatenate per-shard locals (each keyed by shard-local lane)
        into one group-level locals keyed by group lane.

        ``lane_offsets[i]`` is shard i's first group lane; shards cover
        contiguous lane ranges in order, so the per-txn arrays simply
        concatenate.  ``i_seq`` values get a per-shard base offset: the
        whole-group finalize numbers insert emissions globally, but
        write-back only uses ``i_seq`` to order inserts *within* one
        transaction — and a transaction's inserts never span shards — so
        any shard-monotone renumbering reproduces identical outcomes.
        """
        out = GroupLocals(0)
        pieces: dict[str, list[np.ndarray]] = {
            name: [] for name in out.__slots__[:out._NUM_ARRAYS]
        }
        chunk_off = 0
        seq_off = 0
        for part, off in zip(parts, lane_offsets):
            for name, dest in pieces.items():
                arr = getattr(part, name)
                if name.endswith("_txn"):
                    arr = arr + off
                elif name == "i_seq":
                    arr = arr + seq_off
                elif name == "i_chunk":
                    arr = arr + chunk_off
                dest.append(arr)
            out.i_meta.extend(part.i_meta)
            chunk_off += len(part.i_meta)
            seq_off += part.i_seq.size
        empty = np.empty(0, dtype=np.int64)
        for name, arrs in pieces.items():
            setattr(out, name, np.concatenate(arrs) if arrs else empty)
        zeros = np.zeros(num_lanes, dtype=np.int64)
        out.nbytes_by_txn = (
            np.concatenate([p.nbytes_by_txn for p in parts]) if parts else zeros
        )
        out.delayed_count_by_txn = (
            np.concatenate([p.delayed_count_by_txn for p in parts])
            if parts else zeros
        )
        return out

    def rekeyed(self, idx_arr: np.ndarray, num_txns: int) -> "GroupLocals":
        """Re-key lane-indexed locals to batch positions: ``idx_arr``
        maps lane -> batch index (the group's transaction positions)."""
        out = GroupLocals(num_txns)
        for name in self.__slots__[:self._NUM_ARRAYS]:
            if name.endswith("_txn"):
                setattr(out, name, idx_arr[getattr(self, name)])
            else:
                setattr(out, name, getattr(self, name))
        out.i_meta = self.i_meta
        out.nbytes_by_txn[idx_arr] = self.nbytes_by_txn
        out.delayed_count_by_txn[idx_arr] = self.delayed_count_by_txn
        return out

    def iter_inserts(self, commit: np.ndarray | None = None):
        """Insert records in (transaction, emission) order — the slot
        assignment the scalar write-back produces.  Yields
        ``(txn_idx, table_id, key, names, values)`` rows, restricted to
        committed transactions when ``commit`` is given."""
        if self.i_txn.size == 0:
            return
        order = np.lexsort((self.i_seq, self.i_txn))
        if commit is not None:
            order = order[commit[self.i_txn[order]]]
        meta = self.i_meta
        rows_cache: dict[int, list] = {}
        for txn, tbl, key, ch, pos in zip(
            self.i_txn[order].tolist(),
            self.i_table[order].tolist(),
            self.i_key[order].tolist(),
            self.i_chunk[order].tolist(),
            self.i_pos[order].tolist(),
        ):
            names, vals = meta[ch]
            rows = rows_cache.get(ch)
            if rows is None:
                rows = rows_cache[ch] = vals.tolist()
            yield txn, tbl, key, names, rows[pos]

    def add_scalar_locals(self, txn_idx: int, local, delayed_adds) -> None:
        """Fold one scalar-executed transaction's ``LocalSets`` (and its
        extracted delayed deltas) into columnar rows."""
        rows_w = [
            (txn_idx, t, row, intern_column(col), val)
            for (t, row, col), val in local.writes.items()
        ]
        rows_a = [
            (txn_idx, t, row, intern_column(col), val)
            for (t, row, col), val in local.adds.items()
        ]
        rows_d = [
            (txn_idx, t, row, intern_column(col), val)
            for t, row, col, val in delayed_adds
        ]
        for prefix, rows in (("w", rows_w), ("a", rows_a), ("d", rows_d)):
            if not rows:
                continue
            arr = np.asarray(rows, dtype=np.int64)
            for field, suffix in enumerate(("txn", "table", "row", "col", "val")):
                name = f"{prefix}_{suffix}"
                setattr(self, name, np.concatenate((getattr(self, name), arr[:, field])))
        if local.inserts:
            k = len(local.inserts)
            head = np.empty((k, 4), dtype=np.int64)
            base = len(self.i_meta)
            for seq, ((t, key), values) in enumerate(local.inserts.items()):
                head[seq] = (txn_idx, seq, t, key)
                self.i_meta.append((
                    tuple(values),
                    np.asarray([list(values.values())], dtype=np.int64),
                ))
            self.i_txn = np.concatenate((self.i_txn, head[:, 0]))
            self.i_seq = np.concatenate((self.i_seq, head[:, 1]))
            self.i_table = np.concatenate((self.i_table, head[:, 2]))
            self.i_key = np.concatenate((self.i_key, head[:, 3]))
            self.i_chunk = np.concatenate((
                self.i_chunk, np.arange(base, base + k, dtype=np.int64)
            ))
            self.i_pos = np.concatenate((
                self.i_pos, np.zeros(k, dtype=np.int64)
            ))
        self.nbytes_by_txn[txn_idx] += local.nbytes
        self.delayed_count_by_txn[txn_idx] += len(delayed_adds)


class BatchedContext:
    """The vectorized execution context handed to a ``BatchProcedure``.

    Lanes are the group's transactions, in batch order.  All emission
    methods take a ``lanes`` index array and aligned value arrays; they
    must only be called with lanes that are still :attr:`active`.
    """

    def __init__(
        self,
        database: Database,
        params_list: list[tuple],
        delayed_mask_fn=None,
        xp: ArrayBackend | None = None,
        residency=None,
    ):
        self._db = database
        #: the array backend all emission/finalize math runs on
        self.xp = xp if xp is not None else get_backend("numpy")
        #: engine-owned device-resident table cache
        #: (:class:`~repro.xp.residency.ResidencyManager`); when set,
        #: snapshot columns come from it instead of re-uploading
        self._residency = residency
        #: device-resident snapshot columns, shipped once per group
        self._dev_cols: dict[tuple[int, str], np.ndarray] = {}
        self.n = len(params_list)
        self.params = ParamColumns(params_list, xp=self.xp)
        #: lanes not yet logic-aborted and not sent to fallback
        self.active = np.ones(self.n, dtype=bool)
        #: lanes that logic-aborted (keep emitted ops, empty locals)
        self.aborted = np.zeros(self.n, dtype=bool)
        #: lanes to re-run through the scalar procedure
        self.fallback = np.zeros(self.n, dtype=bool)
        self._delayed_mask_fn = delayed_mask_fn
        # op chunks: (lanes, kind, table, rows, col, values, keys); the
        # scalar fields broadcast at finalize.  Chunks append in program
        # order, so each lane's ops appear across chunks exactly in the
        # order a per-transaction execution would record them — a stable
        # sort by lane at finalize is all the reordering ever needed.
        self._chunks: list[tuple] = []
        # insert payloads: (lanes, table_id, keys, names, values_matrix)
        # — value columns stay vectorized until finalize.
        self._ins_chunks: list[tuple] = []
        # range predicates: (lane, table_id, lo, hi) in emission order
        self._range_chunks: list[tuple] = []

    # -- lane management ----------------------------------------------------
    # The active/aborted/fallback masks are *host* control state: twins
    # index them freely, and the engine consults them after the phase.
    # Lane index vectors handed to twins are device-resident.
    def all_lanes(self) -> np.ndarray:
        return self.xp.arange(self.n, dtype=np.int64)

    def active_lanes(self) -> np.ndarray:
        return self.xp.flatnonzero(self.active)

    def logic_abort(self, lanes: np.ndarray) -> None:
        """Deterministic logic abort: the lanes keep their emitted ops,
        contribute empty local sets, and stop executing."""
        lanes = self.xp.to_host(lanes)
        self.aborted[lanes] = True
        self.active[lanes] = False

    def fall_back(self, lanes: np.ndarray) -> None:
        """Send lanes to the scalar procedure: everything they emitted
        is discarded and the engine re-runs them one at a time."""
        lanes = self.xp.to_host(lanes)
        self.fallback[lanes] = True
        self.active[lanes] = False

    def active_mask(self) -> np.ndarray:
        """The :attr:`active` mask as a device array (one H2D per call —
        twins re-ship it after host-side abort/fallback updates when a
        loop needs data-dependent lane selection on the device)."""
        return self.xp.from_host(self.active)

    # -- snapshot access -----------------------------------------------------
    def resolve(self, table: str):
        """(table_id, table) — same lookup the scalar context uses."""
        return self._db.resolve(table)

    def _column(self, t, column: str) -> np.ndarray:
        """Snapshot column, device-resident under a device backend.

        With an engine residency cache the column comes from the
        persistent :class:`~repro.xp.residency.DeviceTableView` — it
        was uploaded once for the whole session, not per group, and it
        carries every committed write-back since.  Otherwise each
        (table, column) ships to the device at most once per group —
        the per-batch column shipping the paper's kernels assume.  On
        the host backend this is the column itself (zero copies).
        """
        if not self.xp.is_device:
            return t._keys if column is None else t.column(column)
        if self._residency is not None:
            dev = self._residency.device_column(t, column)
            if dev is not None:
                return dev
        col = t._keys if column is None else t.column(column)
        key = (id(t), column)
        dev = self._dev_cols.get(key)
        if dev is None:
            dev = self._dev_cols[key] = self.xp.from_host(col)
        return dev

    def column_of(self, table: str, column: str | None) -> np.ndarray:
        """Snapshot column as a backend array (device-resident and
        cached under a device backend); ``None`` gives the key column.
        Twins use this for raw gathers that emit no op (pre-resolution
        probes)."""
        _, t = self._db.resolve(table)
        return self._column(t, column)

    def dense_limit(self, table: str) -> int:
        """Keys below this resolve to their own row slot (twins use it
        to decide when a vectorized range is safe without index descent)."""
        return self._db.table(table)._dense_limit

    def rows_for_keys(
        self, table: str, lanes: np.ndarray, keys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Resolve primary keys to row slots.

        Returns ``(rows, found)`` aligned with ``lanes``; lanes whose
        key is missing are logic-aborted (the scalar ``KeyNotFound``
        path) and carry ``found=False`` / ``rows=-1``.
        """
        xp = self.xp
        _, t = self._db.resolve(table)
        keys = xp.asarray(keys, dtype=np.int64)
        dense = (keys >= 0) & (keys < t._dense_limit)
        rows = xp.where(dense, keys, -1)
        found = dense.copy()
        if not dense.all():
            # hash-index probes are host work: read the probe keys back
            # explicitly, resolve, and ship the slots down in one go
            get = t.primary.get
            nd = xp.flatnonzero(~dense)
            slots = np.fromiter(
                (
                    -1 if (slot := get(k)) is None else slot
                    for k in xp.tolist(keys[nd])
                ),
                dtype=np.int64,
                count=nd.size,
            )
            dslots = xp.from_host(slots)
            hit = dslots >= 0
            rows[nd[hit]] = dslots[hit]
            found[nd[hit]] = True
        missing = ~found
        if missing.any():
            self.logic_abort(lanes[missing])
        return rows, found

    def rows_for_flat_keys(
        self,
        table: str,
        lanes: np.ndarray,
        counts: np.ndarray,
        flat_keys: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Resolve a lane-major variable-length key list (``counts[i]``
        keys for lane ``i``).

        Lanes with any missing key are sent to :meth:`fall_back` — the
        scalar re-run reproduces the exact mid-sequence abort — so the
        vectorized caller only ever proceeds with fully-resolved lanes.
        Returns ``(keep, flat_rows)``: the per-lane keep mask and the
        row slots of the kept lanes' keys (still lane-major).
        """
        xp = self.xp
        _, t = self._db.resolve(table)
        keys = xp.asarray(flat_keys, dtype=np.int64)
        dense = (keys >= 0) & (keys < t._dense_limit)
        rows = xp.where(dense, keys, -1)
        nd = xp.flatnonzero(~dense)
        if nd.size:
            get = t.primary.get
            slots = np.fromiter(
                (
                    -1 if (slot := get(k)) is None else slot
                    for k in xp.tolist(keys[nd])
                ),
                dtype=np.int64,
                count=nd.size,
            )
            dslots = xp.from_host(slots)
            hit = dslots >= 0
            rows[nd[hit]] = dslots[hit]
        missing = rows < 0
        bad = np.zeros(lanes.size, dtype=bool)
        if missing.any():
            np.logical_or.at(
                bad, np.repeat(np.arange(lanes.size), counts), missing
            )
            self.fall_back(lanes[bad])
        keep = ~bad
        return keep, rows[xp.repeat(keep, counts)]

    # -- op emission ---------------------------------------------------------
    def _emit(
        self, lanes, kind, table_id, rows, col_id, values, keys=0
    ) -> None:
        self._chunks.append((lanes, kind, table_id, rows, col_id, values, keys))

    def read_rows(
        self, table: str, lanes: np.ndarray, rows: np.ndarray, column: str
    ) -> np.ndarray:
        """Gather-read ``column`` at ``rows`` (snapshot values; callers
        guarantee no read-your-own-writes overlay applies — lanes that
        need one must :meth:`fall_back`)."""
        if lanes.size == 0:
            return np.empty(0, dtype=np.int64)
        table_id, t = self._db.resolve(table)
        values = self._column(t, column)[rows]
        self._emit(lanes, _READ, table_id, rows, intern_column(column), values)
        return values

    def read_keys(
        self, table: str, lanes: np.ndarray, keys: np.ndarray, column: str
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """:meth:`rows_for_keys` + :meth:`read_rows` in one call.

        Returns ``(values, rows, found)``; values/rows are compacted to
        the found lanes (``lanes[found]``)."""
        rows, found = self.rows_for_keys(table, lanes, keys)
        ok_lanes = lanes[found]
        ok_rows = rows[found]
        return self.read_rows(table, ok_lanes, ok_rows, column), ok_rows, found

    def read_block(
        self,
        table: str,
        lanes: np.ndarray,
        rows_per_lane: np.ndarray,
        column: str,
    ) -> np.ndarray:
        """Emit ``k`` consecutive reads per lane in one chunk.

        ``rows_per_lane`` is ``(len(lanes), k)`` row slots; returns the
        gathered values in the same shape (scan fast path)."""
        if lanes.size == 0:
            return np.empty((0, 0), dtype=np.int64)
        table_id, t = self._db.resolve(table)
        k = rows_per_lane.shape[1]
        flat_rows = rows_per_lane.reshape(-1)
        values = self._column(t, column)[flat_rows]
        self._emit(
            self.xp.repeat(lanes, k), _READ, table_id, flat_rows,
            intern_column(column), values,
        )
        return values.reshape(lanes.size, k)

    def read_var(
        self,
        table: str,
        lanes: np.ndarray,
        counts: np.ndarray,
        flat_rows: np.ndarray,
        column: str,
    ) -> np.ndarray:
        """Variable-per-lane gather: lane ``i`` reads ``counts[i]``
        rows, given lane-major in ``flat_rows``.  Returns the flat
        gathered values."""
        if lanes.size == 0:
            return np.empty(0, dtype=np.int64)
        table_id, t = self._db.resolve(table)
        values = self._column(t, column)[flat_rows]
        self._emit(
            self.xp.repeat(lanes, counts), _READ, table_id, flat_rows,
            intern_column(column), values,
        )
        return values

    def key_at_rows(
        self, table: str, lanes: np.ndarray, rows: np.ndarray
    ) -> np.ndarray:
        """Read each row's primary key (the scalar ``key_at``)."""
        if lanes.size == 0:
            return np.empty(0, dtype=np.int64)
        table_id, t = self._db.resolve(table)
        keys = self._column(t, None)[rows]
        self._emit(lanes, _READ, table_id, rows, _KEY_COL, keys)
        return keys

    def write(
        self, table: str, lanes: np.ndarray, rows: np.ndarray, column: str, values
    ) -> None:
        if lanes.size == 0:
            return
        table_id, _ = self._db.resolve(table)
        self._emit(lanes, _WRITE, table_id, rows, intern_column(column), values)

    def add(
        self, table: str, lanes: np.ndarray, rows: np.ndarray, column: str, deltas
    ) -> None:
        if lanes.size == 0:
            return
        table_id, _ = self._db.resolve(table)
        self._emit(lanes, _ADD, table_id, rows, intern_column(column), deltas)

    def insert(
        self,
        table: str,
        lanes: np.ndarray,
        keys: np.ndarray,
        values: dict[str, np.ndarray],
    ) -> np.ndarray:
        """Vectorized insert.  Lanes whose key already exists in the
        snapshot logic-abort (the scalar ``TransactionAborted`` path);
        returns the mask of lanes that inserted."""
        if lanes.size == 0:
            return np.zeros(0, dtype=bool)
        xp = self.xp
        table_id, t = self._db.resolve(table)
        keys = xp.asarray(keys, dtype=np.int64)
        exists = (keys >= 0) & (keys < t._dense_limit)
        nd = xp.flatnonzero(~exists)
        if nd.size:
            has = t.primary.__contains__
            hits = np.fromiter(
                map(has, xp.tolist(keys[nd])), dtype=bool, count=nd.size
            )
            exists[nd[hits]] = True
        if exists.any():
            self.logic_abort(lanes[exists])
        ok = ~exists
        ok_lanes = lanes[ok]
        if ok_lanes.size == 0:
            return ok
        ok_keys = keys[ok]
        names = tuple(values)
        cols = xp.stack(
            [xp.broadcast_to(xp.asarray(values[c], dtype=np.int64), lanes.shape)[ok]
             for c in names],
            axis=1,
        ) if names else np.zeros((ok_lanes.size, 0), dtype=np.int64)
        self._ins_chunks.append((ok_lanes, table_id, ok_keys, names, cols))
        self._emit(ok_lanes, _INSERT, table_id, -1, _EMPTY_COL, 0, ok_keys)
        return ok

    def range_predicate(
        self, table: str, lanes: np.ndarray, lo: np.ndarray, hi: np.ndarray
    ) -> None:
        """Record phantom-protection predicates (the scalar
        ``ctx.ranges`` list), one per lane."""
        table_id, _ = self._db.resolve(table)
        self._range_chunks.append(
            (lanes, table_id, self.xp.asarray(lo, dtype=np.int64),
             self.xp.asarray(hi, dtype=np.int64))
        )

    # -- finalize -------------------------------------------------------------
    def finalize(self) -> tuple:
        """Resolve chunks into per-lane op streams and columnar locals.

        Returns ``(flat_ops, counts, locals, ranges_by_lane)`` where
        ``flat_ops`` is the lexsorted ``(total, OP_FIELDS)`` matrix over
        non-fallback lanes, ``counts`` the per-lane op counts, and
        ``locals`` a :class:`GroupLocals` keyed by *lane* (the engine
        re-keys to batch positions).
        """
        xp = self.xp
        n = self.n
        if self._chunks:
            sizes = [c[0].size for c in self._chunks]
            total = sum(sizes)
            cols = xp.empty((7, total), dtype=np.int64)
            pos = 0
            for chunk, size in zip(self._chunks, sizes):
                block = cols[:, pos:pos + size]
                for f in range(7):
                    block[f] = chunk[f]
                pos += size
            lane = cols[0]
            # stable by lane: chunks already hold each lane's ops in
            # program order, so no secondary sort key is needed; lane
            # fits int32, which halves the radix passes
            if self.fallback.any():
                fb = xp.from_host(self.fallback)
                keep = xp.flatnonzero(~fb[lane])
                perm = keep[
                    xp.argsort(xp.astype(lane[keep], np.int32), stable=True)
                ]
            else:
                perm = xp.argsort(xp.astype(lane, np.int32), stable=True)
            lane = lane[perm]
            mat = xp.empty((perm.size, OP_FIELDS), dtype=np.int64)
            for f in range(1, 7):
                mat[:, f - 1] = cols[f, perm]
            counts = xp.bincount(lane, minlength=n)
        else:
            mat = np.empty((0, OP_FIELDS), dtype=np.int64)
            counts = np.zeros(n, dtype=np.int64)
            lane = np.empty(0, dtype=np.int64)

        locals_ = self._resolve_locals(mat, lane)
        ranges_by_lane: dict[int, list[tuple[int, int, int]]] = {}
        for lanes, table_id, lo, hi in self._range_chunks:
            lanes_h = xp.to_host(lanes)
            lo_h, hi_h = xp.to_host(lo), xp.to_host(hi)
            m = ~self.fallback[lanes_h] & ~self.aborted[lanes_h]
            for i in np.flatnonzero(m):
                ranges_by_lane.setdefault(int(lanes_h[i]), []).append(
                    (table_id, int(lo_h[i]), int(hi_h[i]))
                )
        # the finalize boundary is the read/write-set shipping step: op
        # matrix and per-lane counts come back to the host in one D2H
        return xp.to_host(mat), xp.to_host(counts), locals_, ranges_by_lane

    def _resolve_locals(self, mat: np.ndarray, lane: np.ndarray) -> GroupLocals:
        """Columnar twin of ``LocalSets`` semantics: last write per
        location wins, a write kills earlier adds on its location, adds
        after the last write sum, delayed-column adds split out."""
        xp = self.xp
        locals_ = GroupLocals(self.n)
        if xp.is_device:
            # per-txn accounting accumulates on-device until the final
            # D2H at the bottom of this method
            locals_.nbytes_by_txn = xp.from_host(locals_.nbytes_by_txn)
            locals_.delayed_count_by_txn = xp.from_host(
                locals_.delayed_count_by_txn
            )
        if lane.size:
            live = ~xp.from_host(self.aborted)[lane]
        else:
            live = np.zeros(0, dtype=bool)
        kind = mat[:, 0]
        wa = live & ((kind == _WRITE) | (kind == _ADD))
        if wa.any():
            l = lane[wa]
            t = mat[wa, 1]
            r = mat[wa, 2]
            c = mat[wa, 3]
            v = mat[wa, 4]
            is_w = kind[wa] == _WRITE
            if self._delayed_mask_fn is not None:
                dl = self._delayed_mask_fn(t, c) & ~is_w
            else:
                dl = np.zeros(l.size, dtype=bool)
            # delayed adds: sum per (lane, table, row, col)
            if dl.any():
                dt, dr, dc, dlane, dv = t[dl], r[dl], c[dl], l[dl], v[dl]
                packed = pack_sort_key(dlane, dt, dr, dc, xp=xp)
                order = (
                    xp.argsort(packed, stable=True)
                    if packed is not None
                    else xp.lexsort((dc, dr, dt, dlane))
                )
                dlane, dt, dr, dc, dv = (
                    dlane[order], dt[order], dr[order], dc[order], dv[order]
                )
                new = xp.empty(dlane.size, dtype=bool)
                new[0] = True
                new[1:] = (
                    (dlane[1:] != dlane[:-1]) | (dt[1:] != dt[:-1])
                    | (dr[1:] != dr[:-1]) | (dc[1:] != dc[:-1])
                )
                first = xp.flatnonzero(new)
                # int64 segment sums as cumsum differences at segment
                # boundaries (exact; bincount weights would round-trip
                # through float64)
                cs = xp.cumsum(dv)
                last = _append_scalar(xp, first[1:], dv.size) - 1
                locals_.d_txn = dlane[first]
                locals_.d_table = dt[first]
                locals_.d_row = dr[first]
                locals_.d_col = dc[first]
                locals_.d_val = cs[last] - cs[first] + dv[first]
                locals_.delayed_count_by_txn += xp.bincount(
                    locals_.d_txn, minlength=self.n
                )
            nk = ~dl
            if nk.any():
                l2, t2, r2, c2, v2, w2 = l[nk], t[nk], r[nk], c[nk], v[nk], is_w[nk]
                # the sort is stable, so within each (lane, loc) segment
                # the emission order survives as the index order
                packed = pack_sort_key(l2, t2, r2, c2, xp=xp)
                order = (
                    xp.argsort(packed, stable=True)
                    if packed is not None
                    else xp.lexsort((c2, r2, t2, l2))
                )
                l2, t2, r2, c2, v2, w2 = (
                    l2[order], t2[order], r2[order], c2[order],
                    v2[order], w2[order],
                )
                new = xp.empty(l2.size, dtype=bool)
                new[0] = True
                new[1:] = (
                    (l2[1:] != l2[:-1]) | (t2[1:] != t2[:-1])
                    | (r2[1:] != r2[:-1]) | (c2[1:] != c2[:-1])
                )
                seg = xp.cumsum(new) - 1
                nseg = int(new.sum())
                # last write position per segment (-1 when none): wi is
                # ascending, so plain fancy assignment leaves each
                # segment its final (= last) write index
                last_w = xp.full(nseg, -1, dtype=np.int64)
                wi = xp.flatnonzero(w2)
                if wi.size:
                    last_w[seg[wi]] = wi
                has_w = last_w >= 0
                if has_w.any():
                    widx = last_w[has_w]
                    locals_.w_txn = l2[widx]
                    locals_.w_table = t2[widx]
                    locals_.w_row = r2[widx]
                    locals_.w_col = c2[widx]
                    locals_.w_val = v2[widx]
                # adds surviving: non-write entries past the segment's
                # last write, summed per segment via cumsum differences
                # (exact int64, no float round-trip)
                idx = xp.arange(l2.size, dtype=np.int64)
                surv = ~w2 & (idx > last_w[seg])
                if surv.any():
                    aseg = seg[surv]
                    sv = v2[surv]
                    anew = xp.empty(aseg.size, dtype=bool)
                    anew[0] = True
                    anew[1:] = aseg[1:] != aseg[:-1]
                    astart = xp.flatnonzero(anew)
                    cs = xp.cumsum(sv)
                    alast = _append_scalar(xp, astart[1:], sv.size) - 1
                    first_of_seg = xp.flatnonzero(new)
                    fi = first_of_seg[aseg[astart]]
                    locals_.a_txn = l2[fi]
                    locals_.a_table = t2[fi]
                    locals_.a_row = r2[fi]
                    locals_.a_col = c2[fi]
                    locals_.a_val = cs[alast] - cs[astart] + sv[astart]
            cells = xp.bincount(locals_.w_txn, minlength=self.n) + xp.bincount(
                locals_.a_txn, minlength=self.n
            )
            locals_.nbytes_by_txn += 8 * cells
        # inserts: materialize ordered records, with intra-transaction
        # duplicate detection (the scalar TransactionError)
        if self._ins_chunks:
            parts = []
            # no fallback and no aborts => every chunk survives whole;
            # skip the per-chunk lane readback entirely
            clean = not (self.fallback.any() or self.aborted.any())
            for el, table_id, keys, names, vals in self._ins_chunks:
                if clean:
                    parts.append((el, table_id, keys, names, vals))
                    continue
                el_h = xp.to_host(el)
                m = ~self.fallback[el_h] & ~self.aborted[el_h]
                if m.all():
                    parts.append((el, table_id, keys, names, vals))
                elif m.any():
                    parts.append((el[m], table_id, keys[m], names, vals[m]))
            if parts:
                L = xp.concatenate([p[0] for p in parts])
                T = xp.concatenate(
                    [xp.full(p[0].size, p[1], dtype=np.int64) for p in parts]
                )
                K = xp.concatenate([p[2] for p in parts])
                if L.size > 1:
                    packed = pack_sort_key(L, T, K, xp=xp)
                    order = (
                        xp.argsort(packed, stable=True)
                        if packed is not None
                        else xp.lexsort((K, T, L))
                    )
                    Ls, Ts, Ks = L[order], T[order], K[order]
                    d = (
                        (Ls[1:] == Ls[:-1]) & (Ts[1:] == Ts[:-1])
                        & (Ks[1:] == Ks[:-1])
                    )
                    if d.any():
                        Ts_h, Ks_h = xp.to_host(Ts), xp.to_host(Ks)
                        i = int(np.flatnonzero(xp.to_host(d))[0]) + 1
                        tname = self._db.table_by_id(int(Ts_h[i])).name
                        raise TransactionError(
                            f"transaction inserts key {int(Ks_h[i])} into "
                            f"{tname!r} twice"
                        )
                nb = xp.concatenate([
                    xp.full(p[0].size, 8 + 4 * len(p[3]), dtype=np.int64)
                    for p in parts
                ])
                xp.scatter_add(locals_.nbytes_by_txn, L, nb)
                # columnar insert records: chunks append in program
                # order, so the global emission position doubles as the
                # per-lane sequence number
                sizes = np.fromiter(
                    (p[0].size for p in parts), dtype=np.int64, count=len(parts)
                )
                locals_.i_txn = L
                locals_.i_table = T
                locals_.i_key = K
                locals_.i_seq = np.arange(L.size, dtype=np.int64)
                locals_.i_chunk = np.repeat(
                    np.arange(len(parts), dtype=np.int64), sizes
                )
                starts = np.cumsum(sizes) - sizes
                locals_.i_pos = locals_.i_seq - np.repeat(starts, sizes)
                locals_.i_meta = [(p[3], xp.to_host(p[4])) for p in parts]
        # read/write-set shipping: the group's resolved locals land on
        # the host here, in one transfer per array (identity on numpy)
        for name in GroupLocals.__slots__[:GroupLocals._NUM_ARRAYS]:
            setattr(locals_, name, xp.to_host(getattr(locals_, name)))
        locals_.nbytes_by_txn = xp.to_host(locals_.nbytes_by_txn)
        locals_.delayed_count_by_txn = xp.to_host(locals_.delayed_count_by_txn)
        return locals_


__all__ = [
    "BatchedContext",
    "GroupLocals",
    "ParamColumns",
    "column_name",
]

"""Operation records: the uniform language between stored procedures and
concurrency-control engines.

A stored procedure executes against a context (:mod:`repro.txn.context`)
and leaves behind a stream of operations — reads, full-value writes,
commutative adds, and inserts.  Every engine in this repo (LTPG and all
baselines) consumes the same records, which is what makes the
cross-system benchmarks apples-to-apples.

Storage layout
--------------
Operations are recorded *columnar*: :class:`OpColumns` keeps one typed
field per op attribute (kind / table / row / column-id / value / key)
so the LTPG engine can consume a whole batch with NumPy array
operations instead of walking Python objects.  Column names are
interned process-wide (:func:`intern_column`) so the column field is an
``int64`` like everything else.  :class:`OpRecord` remains the
per-operation view — indexing or iterating an :class:`OpColumns`
materializes records on demand, which keeps the baselines and tests
that think in objects working unchanged.
"""

from __future__ import annotations

import enum
from array import array
from dataclasses import dataclass
from typing import Iterator

import numpy as np


class OpKind(enum.IntEnum):
    """The four operation types LTPG decomposes transactions into.

    ``ADD`` is a commutative read-modify-write (``col += delta``); it is
    the operation class eligible for the paper's delayed-update strategy.
    """

    READ = 0
    WRITE = 1
    ADD = 2
    INSERT = 3


@dataclass(frozen=True)
class OpRecord:
    """One executed operation.

    ``row`` is the table row slot for READ/WRITE/ADD; for INSERT it is
    ``-1`` and ``key`` carries the new primary key.  ``value`` is the
    value read, the value written, or the delta added.
    """

    kind: OpKind
    table_id: int
    row: int
    column: str
    value: int
    key: int = 0

    def item(self) -> tuple[int, int]:
        """The data-item identity used for row-level conflict detection."""
        return (self.table_id, self.row)


#: Number of distinct op kinds (used to size per-type warp queues).
NUM_OP_KINDS = len(OpKind)

# -- column interning --------------------------------------------------------
# Column names are few (schemas are small) and live for the process, so a
# global intern table keeps the per-op field numeric everywhere.
_COLUMN_IDS: dict[str, int] = {}
_COLUMN_NAMES: list[str] = []


def intern_column(name: str) -> int:
    """Process-wide id of a column name (stable for the process life)."""
    col_id = _COLUMN_IDS.get(name)
    if col_id is None:
        col_id = len(_COLUMN_NAMES)
        _COLUMN_IDS[name] = col_id
        _COLUMN_NAMES.append(name)
    return col_id


def column_name(col_id: int) -> str:
    """Inverse of :func:`intern_column`."""
    return _COLUMN_NAMES[col_id]


def column_interner_size() -> int:
    """How many distinct column names have been interned so far."""
    return len(_COLUMN_NAMES)


def interned_columns() -> tuple[str, ...]:
    """Snapshot of every interned name in id order (for shipping the
    parent's interner state to worker processes)."""
    return tuple(_COLUMN_NAMES)


def seed_column_interner(names: tuple[str, ...] | list[str]) -> None:
    """Align this process's interner with a parent snapshot.

    Ids are assigned in first-use order, so a worker process must adopt
    the parent's assignment before running any procedure — otherwise the
    int64 column field in shipped op matrices would decode differently.
    Names already interned here must occupy the same ids (anything else
    means the processes diverged before seeding, which is unrecoverable).
    """
    for i, name in enumerate(names):
        if i < len(_COLUMN_NAMES):
            if _COLUMN_NAMES[i] != name:
                raise ValueError(
                    f"column interner mismatch at id {i}: parent has "
                    f"{name!r}, worker has {_COLUMN_NAMES[i]!r}"
                )
        else:
            _COLUMN_IDS[name] = i
            _COLUMN_NAMES.append(name)


# The empty column (inserts) and the key pseudo-column are always present.
_EMPTY_COLUMN_ID = intern_column("")
KEY_COLUMN = "__key__"
_KEY_COLUMN_ID = intern_column(KEY_COLUMN)

#: Fields per op row in :class:`OpColumns` (kind, table, row, col, value, key).
OP_FIELDS = 6


class OpColumns:
    """A growable columnar buffer of operations.

    Appends extend a flat ``array('q')`` (int64) of row-major 6-field
    groups — a single C-level call per op, the cheapest append path
    CPython offers.  Recording hot paths may extend :attr:`buffer`
    directly (6 values at a time); the typed ``(n, 6)`` int64 matrix is
    materialized per access (one memcpy of the buffer), so there is no
    cache to invalidate.  Sequence access (``len``/indexing/iteration)
    yields :class:`OpRecord` views for object-oriented consumers.
    """

    __slots__ = ("_buf",)

    def __init__(self) -> None:
        self._buf = array("q")

    @classmethod
    def from_flat(cls, raw: bytes) -> "OpColumns":
        """Wrap a row-major int64 byte string of 6-field op rows (the
        batched executor's per-transaction slice) — one memcpy."""
        ops = cls()
        ops._buf.frombytes(raw)
        return ops

    # -- recording --------------------------------------------------------
    def append_op(
        self,
        kind: int,
        table_id: int,
        row: int,
        col_id: int,
        value: int,
        key: int = 0,
    ) -> None:
        self._buf.extend((kind, table_id, row, col_id, value, key))

    @property
    def buffer(self) -> array:
        """The flat int64 row-major buffer (engine fast path — bulk
        concatenation across transactions is one memcpy each; do not
        mutate)."""
        return self._buf

    @property
    def raw(self) -> list[tuple[int, int, int, int, int, int]]:
        """The ops as fixed-width tuple rows (copies; test helper)."""
        b = self._buf
        return [tuple(b[i : i + OP_FIELDS]) for i in range(0, len(b), OP_FIELDS)]

    # -- columnar views ---------------------------------------------------
    @property
    def matrix(self) -> np.ndarray:
        """All ops as an ``(n, OP_FIELDS)`` int64 matrix (copies out of
        the append buffer, so later appends never race a live view)."""
        n = len(self._buf) // OP_FIELDS
        return np.frombuffer(self._buf.tobytes(), dtype=np.int64).reshape(
            n, OP_FIELDS
        )

    @property
    def kinds(self) -> np.ndarray:
        return self.matrix[:, 0]

    @property
    def tables(self) -> np.ndarray:
        return self.matrix[:, 1]

    @property
    def rows(self) -> np.ndarray:
        return self.matrix[:, 2]

    @property
    def columns(self) -> np.ndarray:
        """Interned column ids (decode with :func:`column_name`)."""
        return self.matrix[:, 3]

    @property
    def values(self) -> np.ndarray:
        return self.matrix[:, 4]

    @property
    def keys(self) -> np.ndarray:
        return self.matrix[:, 5]

    # -- OpRecord compatibility ------------------------------------------
    def _record(self, index: int) -> OpRecord:
        base = index * OP_FIELDS
        kind, table_id, r, col_id, value, key = self._buf[base : base + OP_FIELDS]
        return OpRecord(
            OpKind(kind), table_id, r, _COLUMN_NAMES[col_id], value, key=key
        )

    def __len__(self) -> int:
        return len(self._buf) // OP_FIELDS

    def __bool__(self) -> bool:
        return bool(self._buf)

    def __iter__(self) -> Iterator[OpRecord]:
        return map(self._record, range(len(self)))

    def __getitem__(self, index):
        n = len(self)
        if isinstance(index, slice):
            return [self._record(i) for i in range(*index.indices(n))]
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError("op index out of range")
        return self._record(index)

    def to_records(self) -> list[OpRecord]:
        """Materialize every op as an :class:`OpRecord` (test helper)."""
        return [self._record(i) for i in range(len(self))]

    def __repr__(self) -> str:
        return f"OpColumns(n={len(self)})"

"""Operation records: the uniform language between stored procedures and
concurrency-control engines.

A stored procedure executes against a context (:mod:`repro.txn.context`)
and leaves behind a stream of :class:`OpRecord` — reads, full-value
writes, commutative adds, and inserts.  Every engine in this repo (LTPG
and all baselines) consumes the same records, which is what makes the
cross-system benchmarks apples-to-apples.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class OpKind(enum.IntEnum):
    """The four operation types LTPG decomposes transactions into.

    ``ADD`` is a commutative read-modify-write (``col += delta``); it is
    the operation class eligible for the paper's delayed-update strategy.
    """

    READ = 0
    WRITE = 1
    ADD = 2
    INSERT = 3


@dataclass(frozen=True)
class OpRecord:
    """One executed operation.

    ``row`` is the table row slot for READ/WRITE/ADD; for INSERT it is
    ``-1`` and ``key`` carries the new primary key.  ``value`` is the
    value read, the value written, or the delta added.
    """

    kind: OpKind
    table_id: int
    row: int
    column: str
    value: int
    key: int = 0

    def item(self) -> tuple[int, int]:
        """The data-item identity used for row-level conflict detection."""
        return (self.table_id, self.row)


#: Number of distinct op kinds (used to size per-type warp queues).
NUM_OP_KINDS = len(OpKind)

"""Stored-procedure registry.

The paper implements transactions as "pre-compiled, stored procedures
using CUDA C++".  Here a procedure is a Python callable
``proc(ctx, *params)`` registered under a name; engines look procedures
up by the name carried on each :class:`~repro.txn.transaction.Transaction`.

Procedures must be deterministic functions of ``(database state,
params)`` — no randomness, no wall-clock — or batch determinism breaks.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import TransactionError

Procedure = Callable[..., None]

#: A vectorized twin of a stored procedure: ``fn(batch_ctx, params)``
#: runs *all* transactions of one group at once over a
#: :class:`~repro.txn.batch_context.BatchedContext` and parameter
#: columns.  Registered separately so every procedure keeps working
#: scalar-only (the engine falls back per transaction).
BatchProcedure = Callable[..., None]


class ProcedureRegistry:
    """Named stored procedures for one workload."""

    def __init__(self) -> None:
        self._procs: dict[str, Procedure] = {}
        self._batched: dict[str, BatchProcedure] = {}
        self._version = 0

    def register(self, name: str, procedure: Procedure | None = None):
        """Register a procedure; usable directly or as a decorator::

            @registry.register("payment")
            def payment(ctx, w_id, d_id, c_id, amount): ...
        """
        if procedure is not None:
            self._store(name, procedure)
            return procedure

        def decorator(fn: Procedure) -> Procedure:
            self._store(name, fn)
            return fn

        return decorator

    def _store(self, name: str, procedure: Procedure) -> None:
        if name in self._procs:
            raise TransactionError(f"procedure {name!r} already registered")
        self._procs[name] = procedure
        self._version += 1

    @property
    def version(self) -> int:
        """Bumped on every registration; lets engines cache lookups and
        invalidate only when the registry actually changes."""
        return self._version

    def register_batched(self, name: str, procedure: BatchProcedure | None = None):
        """Register the vectorized twin of an already-registered scalar
        procedure (decorator-friendly, like :meth:`register`).

        The scalar procedure must exist first: the batched executor
        falls back to it per transaction for lanes the vectorized
        implementation cannot handle (and for differential testing).
        """
        def store(fn: BatchProcedure) -> BatchProcedure:
            if name not in self._procs:
                raise TransactionError(
                    f"cannot register batched twin for unknown procedure "
                    f"{name!r}; register the scalar procedure first"
                )
            if name in self._batched:
                raise TransactionError(
                    f"batched procedure {name!r} already registered"
                )
            self._batched[name] = fn
            self._version += 1
            return fn

        if procedure is not None:
            return store(procedure)
        return store

    def get(self, name: str) -> Procedure:
        try:
            return self._procs[name]
        except KeyError:
            raise TransactionError(f"unknown procedure {name!r}") from None

    def get_batched(self, name: str) -> BatchProcedure | None:
        """The vectorized twin, or ``None`` (caller falls back)."""
        return self._batched.get(name)

    def has_batched(self, name: str) -> bool:
        return name in self._batched

    def batched_names(self) -> list[str]:
        """Names with a registered vectorized twin (sorted; the worker
        pool ships exactly these to child processes)."""
        return sorted(self._batched)

    def __contains__(self, name: str) -> bool:
        return name in self._procs

    def names(self) -> list[str]:
        return sorted(self._procs)

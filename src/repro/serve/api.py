"""High-level serve API: sessions, whole-run reports, one-call sims.

Three layers of convenience over :class:`~repro.serve.orchestrator
.Orchestrator`:

* :class:`ServeSession` — a thin per-tenant client handle (the shape a
  network transport would wrap);
* :func:`serve_run` — drive an *existing* engine with simulated open- or
  closed-loop clients on a fresh virtual clock and collect a
  :class:`ServeReport`;
* :func:`simulate_serve` — build one of the named workloads and serve
  it end to end (what ``python -m repro.serve`` and the bench harness
  call).

Reports carry exact nearest-rank latency percentiles plus goodput in
*simulated* transactions/second — deterministic for a fixed (workload,
policy, seed) triple, which is what lets ``scripts/check_wallclock.py``
gate on p99 without flake.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any

from repro.serve.admission import AdmissionController
from repro.serve.errors import ServeError
from repro.serve.orchestrator import Orchestrator, ServeResponse
from repro.serve.policies import BatchPolicy, make_policy
from repro.serve.workload import (
    ClientProfile,
    ClientStats,
    RequestSource,
    closed_loop,
    open_loop,
)


class ServeSession:
    """A thin client handle bound to one tenant.

    This is the seam a real transport (HTTP handler, RPC stub) would
    occupy: it only knows ``submit``/``post``, never batch mechanics.
    """

    def __init__(self, orchestrator: Orchestrator, tenant: str = "default"):
        self._orchestrator = orchestrator
        self.tenant = tenant

    def post(self, procedure: str, params: tuple) -> asyncio.Future:
        """Fire-and-forget submit; returns the response future."""
        return self._orchestrator.post(procedure, params, self.tenant)

    async def submit(self, procedure: str, params: tuple) -> ServeResponse:
        """Submit and await the transaction's final verdict."""
        return await self._orchestrator.submit(
            procedure, params, self.tenant
        )


@dataclass
class ServeReport:
    """Everything one serve run produced, JSON-ready."""

    workload: str
    mode: str
    policy: dict[str, Any]
    submitted: int
    shed: int
    shed_by_reason: dict[str, int]
    failed: int
    committed: int
    logic_aborted: int
    retries: int
    batches: int
    mean_batch_size: float
    duration_ns: int
    goodput_tps: float
    #: end-to-end latency (queue wait + batch residency + execute), ns
    latency: dict[str, Any] = field(default_factory=dict)
    #: submission -> first batch membership, ns
    queue_wait: dict[str, Any] = field(default_factory=dict)
    metrics: dict[str, Any] = field(default_factory=dict)

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.__dict__, indent=indent, sort_keys=True)

    def format(self) -> str:
        lat, qw = self.latency, self.queue_wait
        lines = [
            f"serve: {self.workload} [{self.mode}-loop, "
            f"policy={self.policy.get('name')}]",
            f"  submitted {self.submitted}  shed {self.shed}  "
            f"failed {self.failed}",
            f"  committed {self.committed}  logic-aborted "
            f"{self.logic_aborted}  retries {self.retries}",
            f"  batches {self.batches}  mean size "
            f"{self.mean_batch_size:.1f}",
            f"  simulated duration {self.duration_ns / 1e6:.3f} ms  "
            f"goodput {self.goodput_tps / 1e6:.3f} Mtps",
            f"  latency   p50 {lat.get('p50', 0) / 1e3:.1f} us  "
            f"p95 {lat.get('p95', 0) / 1e3:.1f} us  "
            f"p99 {lat.get('p99', 0) / 1e3:.1f} us  "
            f"max {lat.get('max', 0) / 1e3:.1f} us",
            f"  queue-wait p50 {qw.get('p50', 0) / 1e3:.1f} us  "
            f"p99 {qw.get('p99', 0) / 1e3:.1f} us",
        ]
        return "\n".join(lines)


def _build_report(
    *,
    workload: str,
    mode: str,
    orchestrator: Orchestrator,
    stats: ClientStats,
    duration_ns: int,
) -> ServeReport:
    snap = orchestrator.metrics.snapshot()
    counters = snap["counters"]
    committed = counters.get("serve.committed", 0)
    sized = [len(r.members) for r in orchestrator.batch_records]
    policy = orchestrator.policy
    policy_info: dict[str, Any] = {
        "name": policy.name,
        "capacity": policy.capacity,
        "describe": policy.describe(),
    }
    max_wait = getattr(policy, "max_wait_ns", None)
    if max_wait is not None:
        policy_info["max_wait_ns"] = max_wait
    return ServeReport(
        workload=workload,
        mode=mode,
        policy=policy_info,
        submitted=stats.submitted,
        shed=stats.shed,
        shed_by_reason=dict(stats.shed_by_reason or {}),
        failed=stats.failed,
        committed=committed,
        logic_aborted=counters.get("serve.logic_aborted", 0),
        retries=counters.get("serve.retries", 0),
        batches=len(sized),
        mean_batch_size=(sum(sized) / len(sized)) if sized else 0.0,
        duration_ns=duration_ns,
        goodput_tps=(committed / (duration_ns * 1e-9)) if duration_ns else 0.0,
        latency=orchestrator.latency.summary(),
        queue_wait=orchestrator.queue_wait.summary(),
        metrics=snap,
    )


def serve_run(
    engine: Any,
    generator: Any,
    *,
    workload: str = "custom",
    policy: BatchPolicy | str = "hybrid",
    max_wait_us: int = 200,
    admission: AdmissionController | None = None,
    profile: ClientProfile | None = None,
    mode: str = "open",
    num_requests: int = 512,
    rate_per_s: float = 2e6,
    poisson: bool = True,
    sessions: int = 32,
    requests_per_session: int = 16,
    think_us: int = 0,
    arrival_seed: int = 23,
    fresh_clocks: bool = True,
    debug: bool | None = None,
) -> ServeReport:
    """Serve ``engine`` from simulated clients on a fresh virtual clock.

    ``fresh_clocks`` rewinds the engine's run-scoped clocks first
    (:meth:`~repro.core.engine.LTPGEngine.reset_run_state`), so the
    serve timeline and the device timeline both start at ``t=0`` and
    back-to-back runs are bit-identical.
    """
    from repro.serve.clock import run_simulation

    if isinstance(policy, str):
        policy = make_policy(
            policy, engine.config.batch_size, max_wait_ns=max_wait_us * 1000
        )
    if fresh_clocks:
        engine.reset_run_state()
    source = RequestSource(generator, profile or ClientProfile())

    async def main() -> tuple[ClientStats, int, Orchestrator]:
        orch = Orchestrator(engine, policy=policy, admission=admission)
        if mode == "open":
            stats = await open_loop(
                orch,
                source,
                num_requests=num_requests,
                rate_per_s=rate_per_s,
                poisson=poisson,
                rng_seed=arrival_seed,
            )
        elif mode == "closed":
            stats = await closed_loop(
                orch,
                source,
                sessions=sessions,
                requests_per_session=requests_per_session,
                think_ns=think_us * 1000,
            )
        else:
            raise ServeError(
                f"unknown serve mode {mode!r}; expected 'open' or 'closed'"
            )
        return stats, orch.clock.now_ns(), orch

    stats, duration_ns, orch = run_simulation(main(), debug=debug)
    return _build_report(
        workload=workload,
        mode=mode,
        orchestrator=orch,
        stats=stats,
        duration_ns=duration_ns,
    )


def simulate_serve(
    workload: str = "tpcc",
    *,
    batch_size: int = 64,
    seed: int = 7,
    trace: bool = False,
    engine_overrides: dict[str, Any] | None = None,
    **run_kwargs: Any,
) -> ServeReport:
    """Build one of the named workloads and serve it end to end.

    Accepts every :func:`serve_run` keyword; returns its report.  The
    engine is closed before returning — pass ``trace=True`` plus a
    ``trace_out`` path via the CLI to keep a Chrome trace of the run.
    """
    from repro.analysis.workload import build_workload

    trace_out = run_kwargs.pop("trace_out", None)
    setup = build_workload(workload, seed=seed)
    overrides = dict(engine_overrides or {})
    if trace or trace_out:
        overrides["trace"] = True
    engine = setup.engine(batch_size=batch_size, **overrides)
    try:
        report = serve_run(
            engine, setup.generator, workload=workload, **run_kwargs
        )
        if trace_out and engine.tracer is not None:
            engine.tracer.write(trace_out)
    finally:
        engine.close()
    return report

"""Typed errors of the serving layer (:mod:`repro.serve`).

Admission control communicates *why* a request was shed through the
exception type, not a string: clients (and the backpressure tests)
dispatch on :class:`QueueFullRejected` vs :class:`TenantThrottled`
rather than parsing messages.  Everything derives from
:class:`ServeError` -> :class:`~repro.errors.ReproError`, so existing
"catch library failures" handlers keep working.
"""

from __future__ import annotations

from repro.errors import ReproError


class ServeError(ReproError):
    """Base class for ingress/orchestrator failures."""


class VirtualTimeDeadlock(ServeError):
    """Raised by the virtual-time event loop when every task is blocked
    on something that can never happen in simulated time (a future no
    scheduled callback will ever resolve).  A real-time loop would hang
    forever here; the virtual loop turns the hang into a diagnosis."""


class IngressClosed(ServeError):
    """Raised when a request is submitted after the session closed its
    ingress (drain in progress or completed)."""


class AdmissionRejected(ServeError):
    """Base class for admission-control sheds.

    Attributes carry the decision context so clients can implement
    typed backoff policies without string parsing.
    """

    #: short machine-readable reason, also used as the metrics label
    reason: str = "rejected"

    def __init__(self, message: str, *, tenant: str, queue_depth: int):
        super().__init__(message)
        self.tenant = tenant
        self.queue_depth = queue_depth


class QueueFullRejected(AdmissionRejected):
    """The bounded ingress queue is at capacity; the request was shed."""

    reason = "queue_full"

    def __init__(self, *, tenant: str, queue_depth: int, max_depth: int):
        super().__init__(
            f"ingress queue full ({queue_depth}/{max_depth}); request from "
            f"tenant {tenant!r} shed",
            tenant=tenant,
            queue_depth=queue_depth,
        )
        self.max_depth = max_depth


class TenantThrottled(AdmissionRejected):
    """The tenant's token bucket is empty; the request was shed before
    it could crowd out other tenants' queue capacity."""

    reason = "tenant_throttled"

    def __init__(
        self, *, tenant: str, queue_depth: int, retry_after_ns: int
    ):
        super().__init__(
            f"tenant {tenant!r} throttled (token bucket empty; next token "
            f"in {retry_after_ns} ns)",
            tenant=tenant,
            queue_depth=queue_depth,
        )
        #: virtual-clock nanoseconds until the bucket refills one token
        self.retry_after_ns = retry_after_ns


class BatchExecutionError(ServeError):
    """The engine raised while executing the batch this request was cut
    into.  The orchestrator fails every future of the affected batch
    with one of these (cause preserved) and keeps serving later
    batches."""

    def __init__(self, batch_index: int, cause: BaseException):
        super().__init__(
            f"engine failed while executing serve batch {batch_index}: "
            f"{cause!r}"
        )
        self.batch_index = batch_index
        self.cause = cause

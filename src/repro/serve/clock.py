"""Virtual-time asyncio: deterministic simulated clocks for the ingress.

The serving layer is a *simulation*, like everything else in this repo:
client arrival times and batch deadlines live on a virtual clock, and
engine execution advances it by the batch's *simulated* latency
(``BatchStats.latency_ns``), never by host time.  Two pieces make that
work with stock asyncio:

* :class:`VirtualTimeLoop` — a selector event loop whose ``time()`` is a
  virtual value that *jumps* to the earliest scheduled callback whenever
  the ready queue is empty.  No wall-clock sleeping ever happens: a
  10-second simulated run finishes in milliseconds, and every timestamp
  is a deterministic function of the scheduled work (asyncio breaks
  timer ties by insertion order, which is itself deterministic).
* :class:`SimClock` — the nanosecond-resolution facade the orchestrator
  and clients use (``now_ns`` / ``sleep_ns``).  Tests inject it (or run
  under :func:`run_simulation`) so every policy decision is
  byte-reproducible; the same code runs unchanged on a real-time loop if
  one ever fronts actual network transports.

Because virtual time only advances through the timer heap, a simulation
in which every task waits on a future that no timer or callback will
ever resolve cannot make progress; the loop raises
:class:`~repro.serve.errors.VirtualTimeDeadlock` instead of hanging,
which is what turns "the ingress loop deadlocked" from a CI timeout
into an assertable failure.  (Consequence: real I/O, threads and
executors are out of scope by design — the simulation must be closed.)
"""

from __future__ import annotations

import asyncio
import heapq
import selectors
from typing import Any, Coroutine, TypeVar

from repro.serve.errors import VirtualTimeDeadlock

_T = TypeVar("_T")

#: One virtual nanosecond, in loop-time seconds.
NS = 1e-9


class VirtualTimeLoop(asyncio.SelectorEventLoop):
    """An asyncio event loop running on simulated time.

    ``time()`` returns the virtual clock; ``_run_once`` advances it to
    the earliest scheduled timer whenever nothing is immediately ready,
    so ``asyncio.sleep``/``wait_for`` complete instantly in wall-clock
    terms while preserving their exact timing semantics.
    """

    def __init__(self) -> None:
        super().__init__(selectors.SelectSelector())
        self._virtual_now = 0.0

    def time(self) -> float:
        return self._virtual_now

    def _run_once(self) -> None:
        # Strip cancelled timers so the jump target is a live callback
        # (the base loop would discard them anyway; jumping to one would
        # only advance the clock spuriously).
        scheduled = self._scheduled
        while scheduled and scheduled[0]._cancelled:
            handle = heapq.heappop(scheduled)
            handle._scheduled = False
        if not self._ready:
            if scheduled:
                when = scheduled[0]._when
                if when > self._virtual_now:
                    self._virtual_now = when
            elif not self._stopping:
                raise VirtualTimeDeadlock(
                    "virtual time cannot advance: no ready callbacks and "
                    "no scheduled timers, but the loop was asked to keep "
                    "running — some task is awaiting a future nothing "
                    "will ever resolve"
                )
        super()._run_once()


class SimClock:
    """Nanosecond clock facade over the *running* event loop.

    Integer nanoseconds everywhere: policies and admission arithmetic
    stay exact, and ``round()`` of the loop's float seconds is stable
    for any timestamp below ~2^53 ns (≈104 days of simulated time)."""

    def now_ns(self) -> int:
        return round(asyncio.get_running_loop().time() / NS)

    async def sleep_ns(self, delay_ns: int | float) -> None:
        if delay_ns > 0:
            await asyncio.sleep(delay_ns * NS)
        else:
            await asyncio.sleep(0)


def _cancel_all_tasks(loop: asyncio.AbstractEventLoop) -> None:
    """`asyncio.run`-style teardown: cancel leftovers and let them
    observe the cancellation before the loop closes."""
    tasks = asyncio.all_tasks(loop)
    if not tasks:
        return
    for task in tasks:
        task.cancel()
    loop.run_until_complete(asyncio.gather(*tasks, return_exceptions=True))


def run_simulation(
    main: Coroutine[Any, Any, _T], *, debug: bool | None = None
) -> _T:
    """Run ``main`` to completion on a fresh :class:`VirtualTimeLoop`.

    The drop-in analog of :func:`asyncio.run` for simulated time; the
    loop starts at ``t=0`` so back-to-back simulations produce
    bit-identical timestamps.  ``debug`` forwards to ``set_debug``
    (``None`` keeps asyncio's default, which honors
    ``PYTHONASYNCIODEBUG`` — the CI serve job runs the suite both ways).
    """
    loop = VirtualTimeLoop()
    if debug is not None:
        loop.set_debug(debug)
    try:
        return loop.run_until_complete(main)
    finally:
        try:
            _cancel_all_tasks(loop)
            loop.run_until_complete(loop.shutdown_asyncgens())
        finally:
            loop.close()

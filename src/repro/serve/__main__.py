"""Command-line entry: serve a named workload from simulated clients.

Examples::

    python -m repro.serve --workload tpcc --policy hybrid \
        --requests 2000 --rate 2e6
    python -m repro.serve --workload smallbank --mode closed \
        --sessions 64 --per-session 8 --out serve.json
    python -m repro.serve --workload ycsb --trace-out serve_trace.json

Everything runs on the virtual clock — a multi-second simulated run
returns in well under a second of wall time, and the report is
deterministic for a fixed seed set.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.workload import WORKLOAD_NAMES
from repro.serve.admission import AdmissionController, TenantQuota
from repro.serve.api import simulate_serve
from repro.serve.policies import POLICY_NAMES
from repro.serve.workload import ClientProfile


def _parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve a workload through the async ingress "
        "(virtual clock; no wall-clock sleeping).",
    )
    p.add_argument("--workload", choices=WORKLOAD_NAMES, default="tpcc")
    p.add_argument("--policy", choices=POLICY_NAMES, default="hybrid")
    p.add_argument("--batch-size", type=int, default=64)
    p.add_argument(
        "--max-wait-us",
        type=int,
        default=200,
        help="deadline policies: max batch-forming wait per request",
    )
    p.add_argument("--mode", choices=("open", "closed"), default="open")
    p.add_argument("--requests", type=int, default=1024,
                   help="open loop: total requests to fire")
    p.add_argument("--rate", type=float, default=2e6,
                   help="open loop: mean arrival rate, txns/s (virtual)")
    p.add_argument("--fixed-rate", action="store_true",
                   help="open loop: fixed gaps instead of Poisson")
    p.add_argument("--sessions", type=int, default=32,
                   help="closed loop: concurrent client sessions")
    p.add_argument("--per-session", type=int, default=16,
                   help="closed loop: requests per session")
    p.add_argument("--think-us", type=int, default=0,
                   help="closed loop: think time between requests")
    p.add_argument("--users", type=int, default=1 << 21,
                   help="logical user population (Zipf-sampled)")
    p.add_argument("--zipf", type=float, default=1.1,
                   help="user-popularity Zipf exponent")
    p.add_argument("--tenants", type=int, default=4)
    p.add_argument("--tenant-rate", type=float, default=None,
                   help="per-tenant token-bucket rate (txns/s); "
                   "default: unlimited")
    p.add_argument("--tenant-burst", type=float, default=None,
                   help="per-tenant bucket burst (default: rate/10)")
    p.add_argument("--max-queue-depth", type=int, default=None,
                   help="bounded ingress queue depth")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--arrival-seed", type=int, default=23)
    p.add_argument("--out", default=None,
                   help="write the JSON report here")
    p.add_argument("--trace-out", default=None,
                   help="write a Chrome trace of the run here")
    return p


def main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    admission = None
    if args.tenant_rate is not None or args.max_queue_depth is not None:
        quota = None
        if args.tenant_rate is not None:
            burst = (
                args.tenant_burst
                if args.tenant_burst is not None
                else max(args.tenant_rate / 10, 1.0)
            )
            quota = TenantQuota(rate_per_s=args.tenant_rate, burst=burst)
        kwargs = {"default_quota": quota}
        if args.max_queue_depth is not None:
            kwargs["max_queue_depth"] = args.max_queue_depth
        admission = AdmissionController(**kwargs)

    report = simulate_serve(
        args.workload,
        batch_size=args.batch_size,
        seed=args.seed,
        policy=args.policy,
        max_wait_us=args.max_wait_us,
        mode=args.mode,
        num_requests=args.requests,
        rate_per_s=args.rate,
        poisson=not args.fixed_rate,
        sessions=args.sessions,
        requests_per_session=args.per_session,
        think_us=args.think_us,
        arrival_seed=args.arrival_seed,
        admission=admission,
        profile=ClientProfile(
            num_users=args.users,
            zipf_alpha=args.zipf,
            tenants=args.tenants,
            seed=args.seed + 4,
        ),
        trace_out=args.trace_out,
    )
    print(report.format())
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report.to_json())
            fh.write("\n")
        print(f"report written to {args.out}")
    if args.trace_out:
        print(f"trace written to {args.trace_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

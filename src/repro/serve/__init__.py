"""Async serving front-end for the LTPG batch engine.

The engine commits *batches*; clients submit *single transactions*.
This package is the ingress layer between the two — the part of the
paper's system model that batches a live request stream into the
large GPU batches everything downstream assumes:

* :mod:`repro.serve.clock` — deterministic virtual-time asyncio
  (:class:`VirtualTimeLoop`, :class:`SimClock`, :func:`run_simulation`);
* :mod:`repro.serve.policies` — pluggable batch-cut strategies
  (:class:`SizePolicy`, :class:`DeadlinePolicy`, :class:`HybridPolicy`);
* :mod:`repro.serve.admission` — bounded-queue + per-tenant token-bucket
  admission control with typed shed errors;
* :mod:`repro.serve.orchestrator` — the transport-agnostic core that
  cuts batches, runs the engine, re-queues concurrency-control aborts
  and resolves per-request futures;
* :mod:`repro.serve.workload` — simulated open-/closed-loop client
  populations with Zipf-skewed users;
* :mod:`repro.serve.api` — sessions, reports, and the one-call
  :func:`simulate_serve` the CLI and bench harness use.

Run one from the shell::

    python -m repro.serve --workload tpcc --policy hybrid --requests 2000
"""

from repro.serve.admission import (
    AdmissionController,
    TenantQuota,
    TokenBucket,
)
from repro.serve.api import (
    ServeReport,
    ServeSession,
    serve_run,
    simulate_serve,
)
from repro.serve.clock import SimClock, VirtualTimeLoop, run_simulation
from repro.serve.errors import (
    AdmissionRejected,
    BatchExecutionError,
    IngressClosed,
    QueueFullRejected,
    ServeError,
    TenantThrottled,
    VirtualTimeDeadlock,
)
from repro.serve.orchestrator import (
    BatchRecord,
    Orchestrator,
    ServeResponse,
)
from repro.serve.policies import (
    POLICY_NAMES,
    BatchPolicy,
    DeadlinePolicy,
    HybridPolicy,
    QueueView,
    SizePolicy,
    make_policy,
)
from repro.serve.workload import (
    ClientProfile,
    ClientStats,
    RequestSource,
    closed_loop,
    open_loop,
)

__all__ = [
    "POLICY_NAMES",
    "AdmissionController",
    "AdmissionRejected",
    "BatchExecutionError",
    "BatchPolicy",
    "BatchRecord",
    "ClientProfile",
    "ClientStats",
    "DeadlinePolicy",
    "HybridPolicy",
    "IngressClosed",
    "Orchestrator",
    "QueueFullRejected",
    "QueueView",
    "RequestSource",
    "ServeError",
    "ServeReport",
    "ServeResponse",
    "ServeSession",
    "SimClock",
    "SizePolicy",
    "TenantQuota",
    "TenantThrottled",
    "TokenBucket",
    "VirtualTimeDeadlock",
    "VirtualTimeLoop",
    "closed_loop",
    "make_policy",
    "open_loop",
    "run_simulation",
    "serve_run",
    "simulate_serve",
]

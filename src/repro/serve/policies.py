"""Pluggable "when do we cut a batch" strategies.

LTPG's premise is that huge batches are *formed* from a live stream of
single-transaction requests, and the forming policy is the knob that
trades client latency for GPU-scale throughput: wait longer and the
batch is bigger (better device utilization, worse queue wait); cut
early and clients see low latency but the kernel launches are small.

Each policy is a small strategy object over an immutable
:class:`QueueView` snapshot — the orchestrator asks two questions:

* :meth:`BatchPolicy.should_cut` — cut a batch *now*?
* :meth:`BatchPolicy.next_deadline_ns` — absent new arrivals, at what
  virtual time must the question be asked again (``None`` = only a new
  arrival can change the answer)?

Keeping the decision a pure function of the snapshot is what makes
every policy deterministic on the virtual clock and directly
Hypothesis-testable without an event loop in sight.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.serve.errors import ServeError

#: Registered policy names for CLIs (``make_policy``).
POLICY_NAMES = ("size", "deadline", "hybrid")


@dataclass(frozen=True)
class QueueView:
    """What a policy may look at when deciding to cut."""

    #: requests eligible for the next batch (retries serving a pipeline
    #: delay are excluded — they cannot join it anyway)
    eligible: int
    #: virtual-clock enqueue time of the oldest eligible request
    #: (``None`` when the queue is empty)
    oldest_enqueue_ns: int | None
    #: current virtual time
    now_ns: int
    #: the ingress is closed and flushing its remainder
    draining: bool


class BatchPolicy(ABC):
    """Decides when the ingress queue becomes an execution batch."""

    #: human/CLI name of the strategy
    name: str = "abstract"

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ServeError("batch capacity must be positive")
        #: hard cap on batch size (the scheduler enforces it; policies
        #: use it to cut before the queue overruns a full batch)
        self.capacity = capacity

    @abstractmethod
    def should_cut(self, q: QueueView) -> bool:
        """True when a batch must be cut from this queue state."""

    @abstractmethod
    def next_deadline_ns(self, q: QueueView) -> int | None:
        """Virtual time at which :meth:`should_cut` may flip to True
        without any new arrival, or ``None`` if only arrivals matter."""

    def describe(self) -> str:
        return f"{self.name}(capacity={self.capacity})"


class SizePolicy(BatchPolicy):
    """Cut exactly when a full batch is waiting (throughput-greedy).

    The pre-generated benchmark path in :func:`repro.bench.runner.
    steady_state_run` is this policy with an always-full queue, which is
    why a served stream under ``SizePolicy`` commits byte-identical
    state to the pre-assembled batch sequence (see
    ``tests/test_serve_equivalence.py``).
    """

    name = "size"

    def should_cut(self, q: QueueView) -> bool:
        if q.eligible >= self.capacity:
            return True
        return q.draining and q.eligible > 0

    def next_deadline_ns(self, q: QueueView) -> int | None:
        return None  # only arrivals (or drain) can fill the batch


class DeadlinePolicy(BatchPolicy):
    """Cut when the oldest waiting request has aged ``max_wait_ns``
    (latency-greedy), or when a full batch accumulates first — the
    overflow guard that keeps queue wait bounded under bursts."""

    name = "deadline"

    def __init__(self, capacity: int, max_wait_ns: int):
        super().__init__(capacity)
        if max_wait_ns < 0:
            raise ServeError("max_wait_ns must be >= 0")
        self.max_wait_ns = max_wait_ns

    def should_cut(self, q: QueueView) -> bool:
        if q.eligible <= 0:
            return False
        if q.eligible >= self.capacity or q.draining:
            return True
        assert q.oldest_enqueue_ns is not None
        return q.now_ns - q.oldest_enqueue_ns >= self.max_wait_ns

    def next_deadline_ns(self, q: QueueView) -> int | None:
        if q.eligible <= 0 or q.oldest_enqueue_ns is None:
            return None
        return q.oldest_enqueue_ns + self.max_wait_ns

    def describe(self) -> str:
        return (
            f"{self.name}(capacity={self.capacity}, "
            f"max_wait_ns={self.max_wait_ns})"
        )


class HybridPolicy(DeadlinePolicy):
    """Size-or-deadline: behaviourally the deadline policy's rule set —
    cut at a full batch *or* at the age bound — but tuned as the
    production default: capacity sized for device utilization, deadline
    as the client-latency SLO backstop.  Kept a distinct named strategy
    so configurations read as intent (and so the two can diverge — e.g.
    a load-adaptive deadline — without renaming)."""

    name = "hybrid"


def make_policy(
    name: str,
    capacity: int,
    max_wait_ns: int = 1_000_000,
) -> BatchPolicy:
    """Build a policy by CLI name (see :data:`POLICY_NAMES`)."""
    if name == "size":
        return SizePolicy(capacity)
    if name == "deadline":
        return DeadlinePolicy(capacity, max_wait_ns)
    if name == "hybrid":
        return HybridPolicy(capacity, max_wait_ns)
    raise ServeError(
        f"unknown batch policy {name!r}; expected one of {POLICY_NAMES}"
    )

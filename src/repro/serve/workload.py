"""Simulated client populations driving the ingress.

Two arrival disciplines, both standard in the GPU-transaction-engine
evaluations this repo reproduces:

* **open loop** — requests arrive on an exogenous schedule (Poisson or
  fixed-rate) regardless of completions; the honest way to measure
  latency under a target load, because a slow server cannot slow its
  own arrival process down.
* **closed loop** — N sessions each submit, await the response, think,
  repeat; models a bounded client population and self-throttles.

Logical users are drawn Zipf-skewed from a population of millions
without materializing them: each request samples a user rank, and the
user's tenant is derived from the rank.  Everything draws from one
seeded ``numpy`` generator on the virtual clock, so a (seed, config)
pair names one exact arrival trace — replaying it is what the
determinism tests do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Protocol

import numpy as np

from repro.serve.errors import AdmissionRejected, IngressClosed
from repro.txn.transaction import Transaction
from repro.workloads.rand import ZipfGenerator


class _Generator(Protocol):
    def make_batch(self, size: int) -> list[Transaction]: ...


@dataclass(frozen=True)
class ClientProfile:
    """Shape of the simulated client population."""

    #: logical user population (paper-scale default: two million)
    num_users: int = 1 << 21
    #: Zipf exponent of per-user request frequency
    zipf_alpha: float = 1.1
    #: tenants the users are striped across (admission-control unit)
    tenants: int = 4
    seed: int = 11


class RequestSource:
    """Draws ``(procedure, params, tenant, user)`` request specs.

    Transaction bodies come from an existing workload generator (TPC-C,
    YCSB, SmallBank — anything with ``make_batch``); the user/tenant
    dimension is layered on top for admission control and skew.
    """

    def __init__(self, generator: _Generator, profile: ClientProfile):
        self._generator = generator
        self.profile = profile
        self._zipf = ZipfGenerator(profile.num_users, profile.zipf_alpha)
        self._rng = np.random.default_rng(profile.seed)

    def next_request(self) -> tuple[str, tuple, str, int]:
        txn = self._generator.make_batch(1)[0]
        user = self._zipf.sample_one(self._rng)
        tenant = f"tenant{user % self.profile.tenants}"
        return txn.procedure_name, txn.params, tenant, user


@dataclass
class ClientStats:
    """What the drivers observed (the orchestrator's report merges it)."""

    submitted: int = 0
    shed: int = 0
    shed_by_reason: dict[str, int] | None = None
    failed: int = 0

    def record_shed(self, exc: AdmissionRejected) -> None:
        self.shed += 1
        if self.shed_by_reason is None:
            self.shed_by_reason = {}
        self.shed_by_reason[exc.reason] = (
            self.shed_by_reason.get(exc.reason, 0) + 1
        )


async def open_loop(
    orchestrator: Any,
    source: RequestSource,
    *,
    num_requests: int,
    rate_per_s: float,
    poisson: bool = True,
    rng_seed: int = 23,
) -> ClientStats:
    """Open-loop driver: fire ``num_requests`` at ``rate_per_s`` mean
    arrival rate (virtual time), fire-and-forget; sheds are counted,
    admitted futures are gathered at the end so engine failures surface.
    """
    import asyncio

    stats = ClientStats()
    rng = np.random.default_rng(rng_seed)
    mean_gap_ns = 1e9 / rate_per_s
    futures = []
    for _ in range(num_requests):
        gap = rng.exponential(mean_gap_ns) if poisson else mean_gap_ns
        await orchestrator.clock.sleep_ns(round(gap))
        procedure, params, tenant, _user = source.next_request()
        try:
            futures.append(orchestrator.post(procedure, params, tenant))
            stats.submitted += 1
        except AdmissionRejected as exc:
            stats.record_shed(exc)
    await orchestrator.drain()
    outcomes = await asyncio.gather(*futures, return_exceptions=True)
    stats.failed = sum(1 for o in outcomes if isinstance(o, BaseException))
    return stats


async def closed_loop(
    orchestrator: Any,
    source: RequestSource,
    *,
    sessions: int,
    requests_per_session: int,
    think_ns: int = 0,
    backoff_ns: int = 1000,
) -> ClientStats:
    """Closed-loop driver: ``sessions`` concurrent clients, each
    submit -> await -> think.  Sheds back off and retry (they do not
    count against the session's request budget)."""
    import asyncio

    stats = ClientStats()

    async def one_session(offset: int) -> None:
        # stagger session starts one ns apart so the arrival order is
        # deterministic and not all-at-t=0
        await orchestrator.clock.sleep_ns(offset)
        done = 0
        while done < requests_per_session:
            procedure, params, tenant, _user = source.next_request()
            try:
                await orchestrator.submit(procedure, params, tenant)
                stats.submitted += 1
                done += 1
            except AdmissionRejected as exc:
                stats.record_shed(exc)
                await orchestrator.clock.sleep_ns(backoff_ns)
                continue
            except IngressClosed:
                return
            if think_ns:
                await orchestrator.clock.sleep_ns(think_ns)

    await asyncio.gather(*(one_session(i) for i in range(sessions)))
    await orchestrator.drain()
    return stats

"""Admission control: bounded queue + per-tenant token buckets.

Backpressure sits *in front of* the batch scheduler: a request that
would overrun the bounded ingress queue, or whose tenant has exhausted
its rate budget, is shed immediately with a typed rejection
(:mod:`repro.serve.errors`) instead of being buffered into unbounded
latency.  Shedding at admission is what keeps the latency percentiles
of admitted requests meaningful under overload — the alternative
(infinite queue) converts every overload into unbounded p99.

All arithmetic runs on integer virtual-clock nanoseconds, so admission
decisions are exactly reproducible for a replayed arrival trace.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serve.errors import QueueFullRejected, ServeError, TenantThrottled

#: Queue bound used when the caller does not pick one: a few full
#: batches of the paper's headline size.
DEFAULT_MAX_QUEUE_DEPTH = 65_536


class TokenBucket:
    """Deterministic token bucket on the virtual clock.

    Refill is computed lazily from elapsed virtual nanoseconds in exact
    integer arithmetic (token counts are kept scaled by ``_SCALE``), so
    no float drift can ever make two identical runs disagree about the
    admission of a boundary request.
    """

    __slots__ = ("rate_per_s", "burst", "_scaled", "_last_ns")

    #: one token, in rate-scaled units (token·ns/s)
    _SCALE = 1_000_000_000

    def __init__(self, rate_per_s: int, burst: int):
        if rate_per_s <= 0:
            raise ServeError("token rate must be positive")
        if burst <= 0:
            raise ServeError("token burst must be positive")
        self.rate_per_s = rate_per_s
        self.burst = burst
        # start full: a quiet tenant can always burst
        self._scaled = burst * self._SCALE
        self._last_ns = 0

    def _refill(self, now_ns: int) -> None:
        elapsed = now_ns - self._last_ns
        if elapsed > 0:
            self._scaled = min(
                self.burst * self._SCALE,
                self._scaled + elapsed * self.rate_per_s,
            )
        self._last_ns = max(self._last_ns, now_ns)

    def try_take(self, now_ns: int) -> bool:
        """Take one token if available; never blocks."""
        self._refill(now_ns)
        if self._scaled >= self._SCALE:
            self._scaled -= self._SCALE
            return True
        return False

    def retry_after_ns(self, now_ns: int) -> int:
        """Virtual ns until one token will be available (0 if now)."""
        self._refill(now_ns)
        deficit = self._SCALE - self._scaled
        if deficit <= 0:
            return 0
        # ceil-divide: the first instant the deficit is covered
        return -(-deficit // self.rate_per_s)

    @property
    def tokens(self) -> float:
        """Current (fractional) token count — introspection only."""
        return self._scaled / self._SCALE


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant rate budget (requests/second of virtual time)."""

    rate_per_s: int
    burst: int


class AdmissionController:
    """Decides, per arriving request, admit vs typed shed.

    Two independent guards, checked in order:

    1. **per-tenant token bucket** — a flooding tenant exhausts its own
       budget and is shed with :class:`TenantThrottled` *before* it can
       occupy shared queue capacity, isolating well-behaved tenants;
    2. **bounded queue** — total ingress backlog above
       ``max_queue_depth`` sheds with :class:`QueueFullRejected`.

    ``default_quota=None`` disables rate limiting for tenants without an
    explicit quota (the single-tenant benchmarks run this way).
    """

    def __init__(
        self,
        max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH,
        default_quota: TenantQuota | None = None,
        tenant_quotas: dict[str, TenantQuota] | None = None,
    ):
        if max_queue_depth <= 0:
            raise ServeError("max_queue_depth must be positive")
        self.max_queue_depth = max_queue_depth
        self._default_quota = default_quota
        self._quotas = dict(tenant_quotas or {})
        self._buckets: dict[str, TokenBucket] = {}
        #: sheds by typed reason (mirrors the orchestrator metrics)
        self.shed_counts: dict[str, int] = {}

    def _bucket(self, tenant: str) -> TokenBucket | None:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            quota = self._quotas.get(tenant, self._default_quota)
            if quota is None:
                return None
            bucket = TokenBucket(quota.rate_per_s, quota.burst)
            self._buckets[tenant] = bucket
        return bucket

    def admit(self, tenant: str, queue_depth: int, now_ns: int) -> None:
        """Raise a typed :class:`AdmissionRejected` subclass, or return
        with one tenant token consumed and the request admitted."""
        bucket = self._bucket(tenant)
        if bucket is not None and not bucket.try_take(now_ns):
            self.shed_counts[TenantThrottled.reason] = (
                self.shed_counts.get(TenantThrottled.reason, 0) + 1
            )
            raise TenantThrottled(
                tenant=tenant,
                queue_depth=queue_depth,
                retry_after_ns=bucket.retry_after_ns(now_ns),
            )
        if queue_depth >= self.max_queue_depth:
            self.shed_counts[QueueFullRejected.reason] = (
                self.shed_counts.get(QueueFullRejected.reason, 0) + 1
            )
            raise QueueFullRejected(
                tenant=tenant,
                queue_depth=queue_depth,
                max_depth=self.max_queue_depth,
            )

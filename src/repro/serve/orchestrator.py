"""Transport-agnostic serving core: queue -> policy cut -> engine batch.

The :class:`Orchestrator` is the seam between a live stream of
single-transaction requests and the batch engine.  It owns:

* the ingress queue — the *same* :class:`~repro.txn.batch.BatchScheduler`
  the pre-generated benchmark runners drive, so TID assignment, retry
  ordering (original TIDs first — Aria's starvation-freedom argument)
  and pipeline retry delays are identical between served and
  pre-assembled streams;
* one batch-forming loop task that waits on arrivals/policy deadlines,
  cuts batches via the pluggable :class:`~repro.serve.policies
  .BatchPolicy`, runs them through ``engine.run_batch`` and advances the
  virtual clock by each batch's *simulated* latency;
* per-request futures: committed / logic-aborted requests resolve with a
  :class:`ServeResponse` carrying the full latency breakdown;
  concurrency-control aborts re-enter the ingress queue transparently
  (the client just sees a longer wait and ``attempts > 1``).

Admission control runs synchronously at :meth:`Orchestrator.post` time —
sheds raise typed errors before a future is ever created, so rejected
requests cannot leak resources or deadlock a drain.

Everything observable — responses, metrics, spans, the recorded batch
compositions — is a deterministic function of the arrival trace on the
virtual clock; ``tests/test_serve_equivalence.py`` leans on that to
replay a served schedule as pre-assembled batches and demand
byte-identical final database state.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any

from repro.core.stats import RunStats
from repro.serve.admission import AdmissionController
from repro.serve.clock import SimClock
from repro.serve.errors import BatchExecutionError, IngressClosed
from repro.serve.policies import BatchPolicy, QueueView, SizePolicy
from repro.trace.metrics import LatencyDigest, MetricsRegistry
from repro.txn.batch import BatchScheduler
from repro.txn.transaction import Transaction, TxnStatus

#: Tracer track names for the serve layer (virtual-clock timestamps).
SERVE_BATCH_TRACK = "serve.batches"
SERVE_QUEUE_COUNTER = "serve.queue_depth"


@dataclass(frozen=True)
class ServeResponse:
    """What a client gets back for one admitted request."""

    status: TxnStatus
    tid: int
    attempts: int
    abort_reason: str
    #: virtual-clock timestamps of the request lifecycle
    submit_ns: int
    first_cut_ns: int
    done_ns: int

    @property
    def queue_wait_ns(self) -> int:
        """Time from submission to joining the *first* batch."""
        return self.first_cut_ns - self.submit_ns

    @property
    def service_ns(self) -> int:
        """Time from first batch membership to the final verdict
        (includes retry rounds for rescheduled transactions)."""
        return self.done_ns - self.first_cut_ns

    @property
    def latency_ns(self) -> int:
        """End-to-end client latency: queue wait + batch residency."""
        return self.done_ns - self.submit_ns

    @property
    def committed(self) -> bool:
        return self.status is TxnStatus.COMMITTED


@dataclass
class _Request:
    """Book-keeping for one admitted request."""

    seq: int
    txn: Transaction
    tenant: str
    submit_ns: int
    #: when it (re-)entered the ingress queue — retries refresh this
    enqueue_ns: int
    future: asyncio.Future
    first_cut_ns: int | None = None


@dataclass
class BatchRecord:
    """One cut batch, as the equivalence tests replay it."""

    index: int
    cut_ns: int
    done_ns: int
    #: (request seq, tid) per member, in batch order
    members: list[tuple[int, int]] = field(default_factory=list)


class Orchestrator:
    """The serving core; see the module docstring for the dataflow."""

    def __init__(
        self,
        engine: Any,
        policy: BatchPolicy | None = None,
        admission: AdmissionController | None = None,
        clock: SimClock | None = None,
    ):
        self.engine = engine
        self.policy = policy or SizePolicy(engine.config.batch_size)
        self.admission = admission or AdmissionController()
        self.clock = clock or SimClock()
        #: per-run observability: always-on registry (cheap plain ints)
        self.metrics = MetricsRegistry()
        self.run_stats = RunStats()
        self.latency = LatencyDigest("serve.latency_ns")
        self.queue_wait = LatencyDigest("serve.queue_wait_ns")
        self.batch_records: list[BatchRecord] = []

        self._scheduler = BatchScheduler(
            self.policy.capacity,
            retry_delay_batches=engine.config.effective_retry_delay,
        )
        self._queued: dict[int, _Request] = {}
        self._by_txn: dict[int, _Request] = {}
        self._next_seq = 0
        self._arrival: asyncio.Event | None = None
        self._task: asyncio.Task | None = None
        self._closed = False

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        """Start the batch-forming loop (idempotent; needs a running
        event loop)."""
        if self._task is None:
            self._arrival = asyncio.Event()
            self._task = asyncio.get_running_loop().create_task(
                self._batch_loop(), name="serve-batch-loop"
            )

    async def drain(self) -> None:
        """Close the ingress, flush every queued request (policies cut
        partial batches while draining) and stop the loop task."""
        self._closed = True
        if self._task is None:
            return
        assert self._arrival is not None
        self._arrival.set()
        await self._task
        self._task = None

    async def __aenter__(self) -> "Orchestrator":
        self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.drain()

    # -- ingress -------------------------------------------------------
    def post(
        self, procedure: str, params: tuple, tenant: str = "default"
    ) -> asyncio.Future:
        """Admit one request; returns the future of its
        :class:`ServeResponse`.

        Raises a typed :class:`~repro.serve.errors.AdmissionRejected`
        subclass synchronously when the request is shed, and
        :class:`IngressClosed` after :meth:`drain` began.
        """
        if self._closed:
            raise IngressClosed("ingress is closed; request not admitted")
        self.start()
        now = self.clock.now_ns()
        try:
            self.admission.admit(tenant, len(self._queued), now)
        except Exception:
            self.metrics.counter("serve.shed").inc()
            raise
        txn = Transaction(procedure, tuple(params))
        request = _Request(
            seq=self._next_seq,
            txn=txn,
            tenant=tenant,
            submit_ns=now,
            enqueue_ns=now,
            future=asyncio.get_running_loop().create_future(),
        )
        self._next_seq += 1
        self._scheduler.admit([txn])
        self._queued[request.seq] = request
        self._by_txn[id(txn)] = request
        self.metrics.counter("serve.submitted").inc()
        assert self._arrival is not None
        self._arrival.set()
        return request.future

    async def submit(
        self, procedure: str, params: tuple, tenant: str = "default"
    ) -> ServeResponse:
        """Admit one request and await its response (closed-loop API)."""
        return await self.post(procedure, params, tenant)

    # -- introspection -------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Requests admitted (or awaiting retry) but not yet batched."""
        return len(self._queued)

    def _view(self, draining: bool) -> QueueView:
        eligible = min(
            self._scheduler.eligible_backlog, self.policy.capacity
        )
        oldest = None
        if self._queued:
            oldest = min(r.enqueue_ns for r in self._queued.values())
        return QueueView(
            eligible=eligible,
            oldest_enqueue_ns=oldest,
            now_ns=self.clock.now_ns(),
            draining=draining,
        )

    # -- the batch-forming loop ----------------------------------------
    async def _batch_loop(self) -> None:
        assert self._arrival is not None
        while True:
            if not await self._wait_for_cut():
                return
            await self._run_one_batch()

    async def _wait_for_cut(self) -> bool:
        """Block until a batch should be cut; False = drained, stop."""
        assert self._arrival is not None
        while True:
            if (
                self._scheduler.eligible_backlog == 0
                and self._scheduler.backlog > 0
            ):
                # Only pipeline-delayed retries remain: cut (a possibly
                # empty batch) to advance the batch index they are
                # waiting on — mirrors what the pre-generated runner's
                # fixed batch cadence does implicitly.
                return True
            view = self._view(draining=self._closed)
            if view.eligible > 0 and self.policy.should_cut(view):
                return True
            if self._closed and self._scheduler.backlog == 0:
                return False
            deadline = (
                self.policy.next_deadline_ns(view)
                if view.eligible > 0
                else None
            )
            self._arrival.clear()
            if deadline is None:
                await self._arrival.wait()
            elif deadline <= view.now_ns:
                # numeric guard: a deadline that just passed must cut on
                # the re-check, not busy-wait
                await asyncio.sleep(0)
            else:
                try:
                    await asyncio.wait_for(
                        self._arrival.wait(),
                        timeout=(deadline - view.now_ns) * 1e-9,
                    )
                except asyncio.TimeoutError:
                    pass

    async def _run_one_batch(self) -> None:
        cut_ns = self.clock.now_ns()
        batch = self._scheduler.next_batch()
        record = BatchRecord(
            index=len(self.batch_records), cut_ns=cut_ns, done_ns=cut_ns
        )
        for txn in batch:
            request = self._by_txn[id(txn)]
            del self._queued[request.seq]
            if request.first_cut_ns is None:
                request.first_cut_ns = cut_ns
            record.members.append((request.seq, txn.tid))
        self.batch_records.append(record)
        self.metrics.counter("serve.batches").inc()
        self.metrics.histogram("serve.batch_size").observe(len(batch))
        self.metrics.gauge("serve.queue_depth").set(len(self._queued))
        if not batch:
            # index-advancing empty cut (retry pipeline delay)
            self.engine.run_batch(batch)
            return

        try:
            result = self.engine.run_batch(batch)
        except Exception as exc:
            self._fail_batch(record, batch, exc)
            return
        # Simulated execution time passes on the virtual clock while the
        # device "runs" the batch; fresh arrivals keep queueing.
        await self.clock.sleep_ns(round(result.stats.latency_ns))
        done_ns = self.clock.now_ns()
        record.done_ns = done_ns
        self.run_stats.add(result.stats)

        self._scheduler.requeue_aborted(result.aborted)
        for txn in result.aborted:
            request = self._by_txn[id(txn)]
            request.enqueue_ns = done_ns
            self._queued[request.seq] = request
            self.metrics.counter("serve.retries").inc()
        for txn in result.committed:
            self._resolve(txn, done_ns)
            self.metrics.counter("serve.committed").inc()
        for txn in result.logic_aborted:
            self._resolve(txn, done_ns)
            self.metrics.counter("serve.logic_aborted").inc()

        tracer = getattr(self.engine, "tracer", None)
        if tracer is not None:
            tracer.async_span(
                f"serve.batch[{record.index}]",
                id=record.index,
                start_ns=float(cut_ns),
                end_ns=float(done_ns),
                track=SERVE_BATCH_TRACK,
                cat="serve",
                args={
                    "size": len(batch),
                    "committed": result.stats.committed,
                    "aborted": result.stats.aborted,
                },
            )
            tracer.counter(
                SERVE_QUEUE_COUNTER, float(done_ns), depth=len(self._queued)
            )

    def _resolve(self, txn: Transaction, done_ns: int) -> None:
        request = self._by_txn.pop(id(txn))
        assert request.first_cut_ns is not None
        response = ServeResponse(
            status=txn.status,
            tid=txn.tid,
            attempts=txn.attempts,
            abort_reason=txn.abort_reason,
            submit_ns=request.submit_ns,
            first_cut_ns=request.first_cut_ns,
            done_ns=done_ns,
        )
        self.latency.observe(response.latency_ns)
        self.queue_wait.observe(response.queue_wait_ns)
        self.metrics.histogram("serve.latency_us_pow2").observe(
            1 << max(response.latency_ns // 1000, 1).bit_length()
        )
        if not request.future.done():
            request.future.set_result(response)

    def _fail_batch(
        self, record: BatchRecord, batch: list[Transaction], exc: Exception
    ) -> None:
        """Engine blew up mid-batch: fail exactly this batch's futures
        (cause preserved) and keep the ingress loop alive."""
        self.metrics.counter("serve.batch_failures").inc()
        error = BatchExecutionError(record.index, exc)
        for txn in batch:
            request = self._by_txn.pop(id(txn), None)
            if request is not None and not request.future.done():
                request.future.set_exception(error)

"""Worker-process side of the parallel executor.

Each worker owns a replica :class:`~repro.storage.database.Database`
whose column arrays are read-only views over the parent's shared-memory
segments (see :mod:`repro.parallel.shm`) and runs the parent's pickled
``BatchProcedure`` twins over contiguous lane shards.  Everything a
shard produces — the finalized op matrix, per-lane counts,
:class:`~repro.txn.batch_context.GroupLocals`, range predicates and the
fallback/abort masks — goes back over the pipe for the parent to merge.

Workers are pure functions of (snapshot epoch, shard params): they never
mutate the snapshot, hold no cross-batch state beyond the replica
indexes, and every index mutation replays the parent's exact sequence,
so a shard's output is byte-identical to the same lanes executing
in-process.
"""

from __future__ import annotations

import pickle
from multiprocessing.connection import Connection
from typing import Any

from repro.core.delayed_update import DelayedUpdater
from repro.parallel import shm as shm_mod
from repro.storage.database import Database
from repro.txn.batch_context import BatchedContext
from repro.txn.operations import intern_column, seed_column_interner


def _forwardable(exc: BaseException) -> BaseException:
    """Exceptions travel the pipe pickled; fall back to a ``RuntimeError``
    carrying the repr when the original type cannot be pickled."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return RuntimeError(f"worker exception (unpicklable): {exc!r}")


class _WorkerState:
    def __init__(self, init: dict[str, Any]):
        shm_mod.disable_shm_tracking()
        seed_column_interner(init["columns"])
        self.db = Database(init["db_name"])
        self.segs: dict[int, Any] = {}
        for spec in init["tables"]:
            shm_mod.attach_table(self.db, self.segs, spec)
        self.twins = init["twins"]
        pairs = frozenset(init["delayed_columns"])
        delayed = DelayedUpdater(self.db, pairs, enabled=bool(pairs))
        self.delayed_fn = delayed.delayed_mask if delayed.columns else None

    def apply_deltas(self, deltas: list[tuple]) -> None:
        for delta in deltas:
            kind = delta[0]
            if kind == "intern":
                for name in delta[1]:
                    intern_column(name)
            elif kind == "export":
                shm_mod.attach_table(self.db, self.segs, delta[1])
            elif kind == "append":
                shm_mod.replay_append(self.db, delta[1], delta[2])
            else:
                raise ValueError(f"unknown snapshot delta {kind!r}")

    def run_shard(self, name: str, params: list[tuple]) -> tuple:
        bctx = BatchedContext(self.db, params, delayed_mask_fn=self.delayed_fn)
        self.twins[name](bctx, bctx.params)
        mat, counts, locals_, ranges_by_lane = bctx.finalize()
        return (mat, counts, locals_, ranges_by_lane, bctx.fallback, bctx.aborted)

    def close(self) -> None:
        # Break the table -> shared-view references before detaching so
        # the mappings can actually release.
        for table in self.db._tables:
            table._keys = table._keys[:0].copy()
            table._columns = {n: a[:0].copy() for n, a in table._columns.items()}
        shm_mod.detach_all(self.segs)


def worker_main(conn: Connection) -> None:
    """Entry point of one worker process: one init message, then
    ``(deltas, tasks)`` requests until ``None`` (or EOF) shuts it down."""
    state = None
    try:
        init = conn.recv()
        state = _WorkerState(init)
        conn.send(("ready", None))
        while True:
            try:
                msg = conn.recv()
            except EOFError:
                break
            if msg is None:
                break
            try:
                deltas, tasks = msg
                state.apply_deltas(deltas)
                out = [
                    (gi, state.run_shard(name, params))
                    for gi, name, params in tasks
                ]
            except BaseException as exc:  # noqa: B036 - forwarded to parent
                conn.send(("err", _forwardable(exc)))
                continue
            conn.send(("ok", out))
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    finally:
        if state is not None:
            state.close()
        try:
            conn.close()
        except OSError:
            pass

"""Persistent worker-process pool for the sharded execute phase.

The pool is the parent-side orchestrator: it exports the database into
shared memory (:class:`~repro.parallel.shm.SharedSnapshot`), starts N
worker processes running :func:`~repro.parallel.worker.worker_main`,
and per batch (1) ships the snapshot epoch deltas plus each worker's
contiguous lane shards, (2) lets the parent execute scalar-only groups
while the workers run, and (3) merges shard results back in lane order
— which *is* TID order within a group — so conflict detection sees
exactly the arrays an in-process ``batched_exec`` run would produce.

Teardown is deterministic: engines own their pool via
``LTPGEngine.close()`` (or the engine's context manager), and a
module-level ``atexit`` guard sweeps anything still alive so an aborted
``pytest -x`` run leaks neither child processes nor ``/dev/shm``
segments.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import pickle
import time
import weakref
from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.errors import ConfigError, ParallelExecutionError
from repro.parallel.shm import SharedSnapshot
from repro.parallel.worker import worker_main
from repro.storage.database import Database
from repro.txn.batch_context import GroupLocals
from repro.txn.operations import interned_columns

_LIVE_POOLS: "weakref.WeakSet[WorkerPool]" = weakref.WeakSet()


def shutdown_all_pools() -> None:
    """Close every live pool (the ``atexit`` sweep; idempotent)."""
    for pool in list(_LIVE_POOLS):
        pool.close()


atexit.register(shutdown_all_pools)


def shard_sizes(num_lanes: int, num_workers: int) -> list[int]:
    """Contiguous, deterministic lane split: the first ``num_lanes %
    num_workers`` workers get one extra lane.  Zero-size shards (group
    smaller than the pool) are simply not dispatched."""
    base, rem = divmod(num_lanes, num_workers)
    return [base + (1 if w < rem else 0) for w in range(num_workers)]


def merge_shards(shards: Sequence[tuple], lane_offsets: Sequence[int]) -> tuple:
    """Concatenate shard results back into one group result.

    Shards arrive in lane order (worker 0 ran the lowest lanes), so op
    matrices and masks concatenate directly; locals re-key through
    :meth:`GroupLocals.concat_shards`; range predicates re-base their
    lane keys.  Returns ``(mat, counts, locals, ranges_by_lane,
    fallback, aborted)`` — the same shape ``BatchedContext.finalize``
    plus its masks produce for the whole group.
    """
    if len(shards) == 1:
        return shards[0]
    mats, counts, locs, ranges, fbs, abs_ = zip(*shards)
    num_lanes = sum(c.size for c in counts)
    merged_ranges: dict[int, list] = {}
    for shard_ranges, off in zip(ranges, lane_offsets):
        for lane, preds in shard_ranges.items():
            merged_ranges[lane + off] = preds
    return (
        np.vstack(mats),
        np.concatenate(counts),
        GroupLocals.concat_shards(list(locs), list(lane_offsets), num_lanes),
        merged_ranges,
        np.concatenate(fbs),
        np.concatenate(abs_),
    )


class WorkerPool:
    """N worker processes sharing one exported snapshot."""

    def __init__(
        self,
        database: Database,
        twins: dict[str, Any],
        num_workers: int,
        start_method: str | None = None,
        delayed_columns: frozenset[tuple[str, str]] = frozenset(),
        registry_version: int = -1,
    ):
        if num_workers <= 0:
            raise ConfigError("worker pool needs at least one worker")
        self.registry_version = registry_version
        self.num_workers = num_workers
        self.last_merge_s = 0.0
        self.last_shard_stats: list[tuple[int, int, int]] = []
        self._conns: list = []
        self._procs: list = []
        self._pending: list | None = None
        self._closed = False
        for name, twin in sorted(twins.items()):
            try:
                pickle.dumps(twin)
            except Exception as exc:
                raise ParallelExecutionError(
                    f"batched twin for procedure {name!r} is not picklable "
                    f"({exc}); parallel workers need module-level "
                    "BatchProcedure twins (closures cannot be shipped to "
                    "spawn-started processes)"
                ) from exc
        try:
            ctx = mp.get_context(start_method)
        except ValueError as exc:
            raise ConfigError(
                f"unknown multiprocessing start method {start_method!r}"
            ) from exc
        self.snapshot = SharedSnapshot(database)
        init = {
            "db_name": database.name,
            "columns": interned_columns(),
            "tables": self.snapshot.full_specs(),
            "twins": twins,
            "delayed_columns": tuple(sorted(delayed_columns)),
        }
        try:
            for w in range(num_workers):
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=worker_main,
                    args=(child_conn,),
                    name=f"ltpg-worker-{w}",
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                parent_conn.send(init)
                self._conns.append(parent_conn)
                self._procs.append(proc)
            for w, conn in enumerate(self._conns):
                try:
                    kind, payload = conn.recv()
                except (EOFError, OSError) as exc:
                    raise ParallelExecutionError(
                        f"worker {w} died during pool initialization"
                    ) from exc
                if kind != "ready":
                    raise ParallelExecutionError(
                        f"worker {w} failed to initialize: {payload!r}"
                    )
        except BaseException:
            self.close()
            raise
        _LIVE_POOLS.add(self)

    # -- per-batch protocol -------------------------------------------------
    def dispatch(
        self,
        groups: Sequence[tuple[str, list[tuple]]],
        splits: Sequence[Sequence[int]] | None = None,
    ) -> None:
        """Send this batch's work: ``groups`` is ``[(procedure_name,
        params_in_lane_order), ...]``.  Every worker receives the epoch
        deltas (even with no shards) so replicas stay in sync; shards
        are contiguous lane ranges per group — split evenly by default,
        or by ``splits[gi]`` (one size per worker, summing to the group's
        lane count) when the caller routes lanes by data ownership."""
        if self._closed:
            raise ParallelExecutionError("worker pool is closed")
        if self._pending is not None:
            raise ParallelExecutionError("previous dispatch not collected")
        deltas = self.snapshot.collect_deltas()
        tasks: list[list] = [[] for _ in range(self.num_workers)]
        pending = []
        for gi, (name, params) in enumerate(groups):
            if splits is None:
                sizes = shard_sizes(len(params), self.num_workers)
            else:
                sizes = list(splits[gi])
                if len(sizes) != self.num_workers or sum(sizes) != len(params):
                    raise ParallelExecutionError(
                        f"bad split for group {gi}: {sizes} does not cover "
                        f"{len(params)} lanes across {self.num_workers} workers"
                    )
            off = 0
            for w, size in enumerate(sizes):
                if size:
                    tasks[w].append((gi, name, params[off:off + size]))
                off += size
            pending.append(sizes)
        try:
            for conn, work in zip(self._conns, tasks):
                conn.send((deltas, work))
        except (BrokenPipeError, OSError) as exc:
            raise ParallelExecutionError(
                "worker pipe broke during dispatch (worker process died?)"
            ) from exc
        self._pending = pending

    def collect(self) -> list[tuple]:
        """Receive every worker's shard results and merge them back into
        per-group results, in the group order given to :meth:`dispatch`."""
        pending = self._pending
        if pending is None:
            raise ParallelExecutionError("collect() without a dispatch()")
        self._pending = None
        replies: list[dict[int, tuple]] = []
        dead: list[int] = []
        error: BaseException | None = None
        for w, conn in enumerate(self._conns):
            try:
                kind, payload = conn.recv()
            except (EOFError, OSError):
                dead.append(w)
                replies.append({})
                continue
            if kind == "err":
                if error is None:
                    error = payload
                replies.append({})
            else:
                replies.append(dict(payload))
        if dead:
            raise ParallelExecutionError(
                f"worker(s) {dead} died while executing a batch"
            )
        if error is not None:
            raise error
        t0 = time.perf_counter()
        merged = []
        stats: list[tuple[int, int, int]] = []
        for gi, sizes in enumerate(pending):
            shards = []
            offsets = []
            off = 0
            for w, size in enumerate(sizes):
                if size:
                    result = replies[w][gi]
                    shards.append(result)
                    offsets.append(off)
                    stats.append((w, size, int(result[1].sum())))
                off += size
            merged.append(merge_shards(shards, offsets))
        self.last_merge_s = time.perf_counter() - t0
        self.last_shard_stats = stats
        return merged

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        """Shut workers down, join them, and release the snapshot.
        Idempotent; also invoked by the ``atexit`` sweep."""
        if self._closed:
            return
        self._closed = True
        _LIVE_POOLS.discard(self)
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=10)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        self._conns = []
        self._procs = []
        snapshot = getattr(self, "snapshot", None)
        if snapshot is not None:
            snapshot.close()

    def __del__(self) -> None:
        # Last-resort teardown: an engine that drops its pool reference
        # without close() (e.g. a config swap rebuilding the pool) must
        # not leak worker processes or /dev/shm segments until atexit.
        try:
            self.close()
        except Exception:
            pass

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

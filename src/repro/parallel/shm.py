"""Shared-memory snapshot export for the process-parallel executor.

The execute phase only *reads* the snapshot (procedures buffer their
effects; mutation happens at write-back, in the parent).  That makes the
table columns safe to share: the parent exports every table's key array
and attribute columns into one ``multiprocessing.shared_memory`` segment
per table and *repoints its own arrays at the shared views*, so the
write-back scatters of subsequent batches mutate shared memory directly
and workers see the new snapshot without any copying.

What shared memory cannot carry is the Python-object side of a table —
the primary/secondary/ordered indexes.  Those are shipped whole at pool
start and then kept in sync with a per-batch *epoch delta* protocol
(:meth:`SharedSnapshot.collect_deltas`):

``("intern", names)``
    Column names interned by the parent since the last batch; workers
    intern them in the same order so the int64 column ids in op
    matrices agree across processes.
``("append", tid, num_rows)``
    The table gained rows since the last epoch.  Row payloads are
    already visible through shared memory, so the worker only replays
    the index maintenance: bulk-insert the new keys into the primary
    index and run ``index_appended`` over the new slots.
``("export", spec)``
    Structural change — the table grew past its exported capacity
    (``Table._grow`` reallocates with ``np.resize``, detaching the
    parent from the old segment), gained an index, or is new.  The
    parent re-exports into a fresh segment and ships a full spec,
    including pickled indexes.
"""

from __future__ import annotations

import itertools
import os
from multiprocessing import resource_tracker, shared_memory
from typing import Any

import numpy as np

from repro.storage.database import Database
from repro.storage.table import Table
from repro.txn.operations import (
    KEY_COLUMN,
    column_interner_size,
    intern_column,
    interned_columns,
)

#: Every segment name starts with this (visible as ``/dev/shm/ltpg_*``),
#: so tests can assert the suite leaves no segments behind.
SHM_PREFIX = "ltpg_"

_COUNTER = itertools.count()


def _new_segment(nbytes: int) -> shared_memory.SharedMemory:
    while True:
        name = f"{SHM_PREFIX}{os.getpid()}_{next(_COUNTER)}"
        try:
            return shared_memory.SharedMemory(
                create=True, size=max(nbytes, 8), name=name
            )
        except FileExistsError:
            continue


def _release(shm: shared_memory.SharedMemory, unlink: bool) -> None:
    try:
        shm.close()
    except BufferError:
        # A stray NumPy view still references the mapping; the name can
        # be removed regardless and the memory is reclaimed at exit.
        pass
    if unlink:
        try:
            shm.unlink()
        except FileNotFoundError:
            pass


def disable_shm_tracking() -> None:
    """Stop the resource tracker from tracking shared-memory attachments
    in *this* process.  Workers call it once before attaching: the
    parent owns every segment's lifetime, and (before Python 3.13's
    ``track=False``) a tracked worker attachment either spawns a
    worker-local tracker that unlinks the segment under the parent
    (spawn) or writes into the tracker shared with the parent,
    cancelling its registration (fork)."""
    orig = resource_tracker.register

    def register(name: str, rtype: str) -> None:
        if rtype != "shared_memory":
            orig(name, rtype)

    resource_tracker.register = register


def _index_sig(table: Table) -> tuple:
    return (tuple(sorted(table.secondary)), table.ordered is not None)


class _Seg:
    __slots__ = ("shm", "capacity", "rows", "columns", "arrays", "index_sig")

    def __init__(self, shm, capacity, rows, columns, arrays, index_sig):
        self.shm = shm
        self.capacity = capacity
        self.rows = rows
        self.columns = columns
        self.arrays = arrays
        self.index_sig = index_sig


class SharedSnapshot:
    """Parent-side manager of one database's shared-memory export."""

    def __init__(self, database: Database):
        self._db = database
        self._segs: dict[int, _Seg] = {}
        self._interner_sent = 0
        self._specs = [
            self._export(tid, table)
            for tid, table in enumerate(database._tables)
        ]
        self._interner_sent = column_interner_size()

    @staticmethod
    def _pre_intern(table: Table) -> None:
        # Workers adopt the parent's interner; assigning every schema
        # column (and the key pseudo-column) *before* snapshotting the
        # interner keeps first-use order deterministic in both processes.
        intern_column(KEY_COLUMN)
        for c in table.schema.columns:
            intern_column(c.name)

    def _export(self, tid: int, table: Table) -> dict[str, Any]:
        self._pre_intern(table)
        old = self._segs.get(tid)
        cols = list(table._columns)
        cap = table._capacity
        shm = _new_segment((1 + len(cols)) * cap * 8)
        base = np.frombuffer(shm.buf, dtype=np.int64)
        keys_view = base[:cap]
        np.copyto(keys_view, table._keys)
        table._keys = keys_view
        arrays = {KEY_COLUMN: keys_view}
        for i, cname in enumerate(cols):
            view = base[(i + 1) * cap:(i + 2) * cap]
            np.copyto(view, table._columns[cname])
            table._columns[cname] = view
            arrays[cname] = view
        self._segs[tid] = _Seg(
            shm, cap, table._num_rows, tuple(cols), arrays, _index_sig(table)
        )
        if old is not None:
            old.arrays = None
            _release(old.shm, unlink=True)
        return {
            "tid": tid,
            "shm": shm.name,
            "capacity": cap,
            "num_rows": table._num_rows,
            "schema": table.schema,
            "dense_limit": table._dense_limit,
            "columns": tuple(cols),
            "primary": table.primary,
            "secondary": table.secondary,
            "ordered": table.ordered,
        }

    def full_specs(self) -> list[dict[str, Any]]:
        """The init payload: one spec per table, in table-id order."""
        return self._specs

    def collect_deltas(self) -> list[tuple]:
        """What changed since the last epoch, for every worker."""
        deltas: list[tuple] = []
        for table in self._db._tables:
            self._pre_intern(table)
        names = interned_columns()
        if len(names) > self._interner_sent:
            deltas.append(("intern", names[self._interner_sent:]))
            self._interner_sent = len(names)
        for tid, table in enumerate(self._db._tables):
            seg = self._segs.get(tid)
            if (
                seg is None
                or table._capacity != seg.capacity
                or table._keys is not seg.arrays[KEY_COLUMN]
                or _index_sig(table) != seg.index_sig
            ):
                deltas.append(("export", self._export(tid, table)))
            elif table._num_rows != seg.rows:
                deltas.append(("append", tid, table._num_rows))
                seg.rows = table._num_rows
        return deltas

    def close(self) -> None:
        """Detach the parent from every segment (tables get private
        array copies again) and unlink the segments."""
        for tid, seg in list(self._segs.items()):
            if seg.arrays is not None and tid < len(self._db._tables):
                table = self._db._tables[tid]
                if table._keys is seg.arrays.get(KEY_COLUMN):
                    table._keys = np.array(table._keys)
                for cname in seg.columns:
                    if table._columns.get(cname) is seg.arrays.get(cname):
                        table._columns[cname] = np.array(table._columns[cname])
            seg.arrays = None
            _release(seg.shm, unlink=True)
        self._segs.clear()


# -- worker side -------------------------------------------------------------

def attach_table(
    db: Database,
    segs: dict[int, shared_memory.SharedMemory],
    spec: dict[str, Any],
) -> None:
    """Build (or re-bind) one worker-side table over a shared segment.

    The views are marked read-only: the execute phase never mutates the
    snapshot, and a stray write from a worker would corrupt the parent.
    """
    tid = spec["tid"]
    if tid == len(db._tables):
        table = db.create_table(spec["schema"], capacity=1)
    elif tid < len(db._tables):
        table = db._tables[tid]
    else:
        raise ValueError(f"table export out of order: tid {tid}")
    shm = shared_memory.SharedMemory(name=spec["shm"])
    cap = spec["capacity"]
    base = np.frombuffer(shm.buf, dtype=np.int64)
    base.flags.writeable = False
    table._keys = base[:cap]
    table._columns = {
        cname: base[(i + 1) * cap:(i + 2) * cap]
        for i, cname in enumerate(spec["columns"])
    }
    table._capacity = cap
    table._num_rows = spec["num_rows"]
    table._dense_limit = spec["dense_limit"]
    table.primary = spec["primary"]
    table.secondary = spec["secondary"]
    table.ordered = spec["ordered"]
    old = segs.pop(tid, None)
    if old is not None:
        _release(old, unlink=False)
    segs[tid] = shm


def replay_append(db: Database, tid: int, num_rows: int) -> None:
    """Catch a worker table up with rows the parent appended: the data
    is already visible through shared memory, so only the index
    maintenance replays (identical order to the parent's
    ``append_keys`` + ``index_appended``)."""
    table = db._tables[tid]
    old_n = table._num_rows
    if num_rows == old_n:
        return
    rows = np.arange(old_n, num_rows, dtype=np.int64)
    keys = table._keys[old_n:num_rows]
    table._num_rows = num_rows
    table.primary.bulk_insert(keys.tolist(), rows.tolist())
    table.index_appended(rows)


def detach_all(segs: dict[int, shared_memory.SharedMemory]) -> None:
    for shm in segs.values():
        _release(shm, unlink=False)
    segs.clear()

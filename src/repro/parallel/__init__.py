"""Process-parallel execute: shard batched procedure groups across a
persistent pool of worker processes reading the snapshot through
shared memory.

The host analog of the paper's multi-SM data parallelism (§IV): the
execute phase only reads the immutable batch snapshot and registers
accesses, so lanes can run anywhere — here, in OS processes sharing the
table columns zero-copy via ``multiprocessing.shared_memory``.  The
parent merges shard results in lane (TID) order before conflict
detection, keeping outcomes byte-identical for any worker count.

Enabled with ``LTPGConfig(parallel_workers=N, batched_exec=True)``.
"""

from repro.parallel.pool import (
    WorkerPool,
    merge_shards,
    shard_sizes,
    shutdown_all_pools,
)
from repro.parallel.shm import SHM_PREFIX, SharedSnapshot

__all__ = [
    "SHM_PREFIX",
    "SharedSnapshot",
    "WorkerPool",
    "merge_shards",
    "shard_sizes",
    "shutdown_all_pools",
]

"""Per-shard conflict registration with a single minima allocation.

The sharded engine gives "each shard its own conflict log" without N
copies of the registration tables: the global encoded key space
``base[table] + row * groups[table] + group`` partitions *by row
ownership*, so shard *s*'s log is simply the (disjoint) slice of keys
whose rows it owns.  :class:`ShardedConflictLog` realizes that by
routing every registration call through the partition map — each
per-owner subset is registered with its own ``atomicMin`` pass, exactly
as N independent per-shard logs would — while detection-phase min
queries stay global reads (the union of disjoint scatter-mins is
independent of how the input was split, so the minima arrays hold
byte-identical values to the unsharded log's).

Insert reservations route the same way by *key* ownership.  A
(table, key) pair has exactly one owner, so the winner-per-pair merge
never has to reconcile entries across shards; the cross-call override
semantics of :meth:`ConflictLog.register_inserts` are preserved within
each owner's slice.

This is the "read-set forwarding" half of the multi-home story: a
transaction executing at its coordinator registers reads/writes on
remote rows *at the remote row's owner slice*, so the owning shard's
log sees every access to its data regardless of where the transaction
ran.
"""

from __future__ import annotations

import numpy as np

from repro.core.conflict_log import ConflictLog
from repro.core.hotspot import TableHeat
from repro.core.split_flags import FlagGroups
from repro.gpusim.kernel import KernelContext
from repro.shard.partition import BoundPartition
from repro.storage.database import Database
from repro.xp import ArrayBackend


class ShardedConflictLog(ConflictLog):
    """A :class:`ConflictLog` whose registrations are routed per owning
    shard.  Results are byte-identical to the base log; the per-shard
    registration counters feed the occupancy metrics."""

    def __init__(
        self,
        database: Database,
        flags: FlagGroups,
        partition: BoundPartition,
        dynamic_buckets: bool = True,
        xp: ArrayBackend | None = None,
    ):
        super().__init__(database, flags, dynamic_buckets=dynamic_buckets, xp=xp)
        self.partition = partition
        self.shards = partition.shards
        #: registrations (reads + writes + inserts) per shard, this batch
        self.registrations_by_shard = np.zeros(self.shards, dtype=np.int64)

    def begin_batch(self, heats: dict[int, TableHeat]) -> None:
        super().begin_batch(heats)
        self.registrations_by_shard[:] = 0

    # -- ownership decode ----------------------------------------------------
    def _owners_of_encoded(
        self, keys: np.ndarray, table_ids: np.ndarray
    ) -> np.ndarray:
        """Owning shard per encoded conflict key: invert the encoding to
        a row slot, then apply the partition map.  Registered rows are
        always snapshot slots (registration precedes insert install),
        so the decode stays in range."""
        rows = (keys - self._base[table_ids]) // self._groups[table_ids]
        return self.partition.owner_cells(table_ids, rows)

    def _route(self, owners: np.ndarray):
        """Yield ``(shard, mask)`` for each shard with registrations,
        in fixed ascending shard order."""
        for s in range(self.shards):
            m = owners == s
            if m.any():
                yield s, m

    # -- routed registration -------------------------------------------------
    def register_reads(
        self, keys: np.ndarray, tids: np.ndarray, table_ids: np.ndarray,
        ctx: KernelContext | None = None,
    ) -> None:
        if keys.size == 0:
            return
        owners = self._owners_of_encoded(keys, table_ids)
        for s, m in self._route(owners):
            super().register_reads(keys[m], tids[m], table_ids[m], ctx)
            self.registrations_by_shard[s] += int(m.sum())

    def register_writes(
        self, keys: np.ndarray, tids: np.ndarray, table_ids: np.ndarray,
        ctx: KernelContext | None = None,
    ) -> None:
        if keys.size == 0:
            return
        owners = self._owners_of_encoded(keys, table_ids)
        for s, m in self._route(owners):
            super().register_writes(keys[m], tids[m], table_ids[m], ctx)
            self.registrations_by_shard[s] += int(m.sum())

    def register_inserts(
        self,
        table_ids: np.ndarray,
        insert_keys: np.ndarray,
        tids: np.ndarray,
        ctx: KernelContext | None = None,
    ) -> None:
        if insert_keys.size == 0:
            return
        owners = np.zeros(insert_keys.size, dtype=np.int64)
        for t in np.unique(table_ids):
            m = table_ids == t
            owners[m] = self.partition.owner_keys(int(t), insert_keys[m])
        for s, m in self._route(owners):
            super().register_inserts(table_ids[m], insert_keys[m], tids[m], ctx)
            self.registrations_by_shard[s] += int(m.sum())

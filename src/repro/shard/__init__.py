"""Multi-shard engine: partitioned conflict detection and write-back
with a deterministic cross-shard commit (see :mod:`repro.shard.engine`
for the full design and determinism argument)."""

from repro.shard.conflict import ShardedConflictLog
from repro.shard.engine import ShardedEngine, make_engine
from repro.shard.partition import (
    MOD,
    BoundPartition,
    PartitionSpec,
    TableRule,
    div_mod,
    resolve_spec,
)

__all__ = [
    "MOD",
    "BoundPartition",
    "PartitionSpec",
    "ShardedConflictLog",
    "ShardedEngine",
    "TableRule",
    "div_mod",
    "make_engine",
    "resolve_spec",
]

"""The N-shard engine: deterministic routing over one LTPG pipeline.

:class:`ShardedEngine` wraps an :class:`~repro.core.engine.LTPGEngine`
and partitions every stage of its batch pipeline by data ownership:

* **router** — each admitted transaction is classified from its
  parameters alone as single-home (all its keys on one shard) or
  multi-home (spanning shards), then the batch is laid out shard-major:
  shard 0's transactions first, then shard 1's, and so on.  Within a
  shard's segment, multi-home transactions lead in Calvin's
  deterministic order (:func:`repro.baselines.calvin.deterministic_order`
  — the cross-shard sequencer), followed by single-home ones in
  admission order.  A multi-home transaction executes at its
  *coordinator*: the smallest of its home shards.
* **execute** — with ``parallel_workers == shards``, the shard-major
  layout makes every procedure group's lanes shard-contiguous, so
  worker *w* of the process pool executes exactly shard *w*'s lanes
  (per-group split counts ride along with the dispatch).
* **conflict** — the engine's conflict log is swapped for a
  :class:`~repro.shard.conflict.ShardedConflictLog`: registrations are
  routed to the owning shard's slice of the key space (the read-set
  forwarding for multi-home transactions), detection reads stay global.
* **write-back** — committed write/add cells and delayed-update deltas
  are partitioned by row owner and applied shard by shard in fixed
  ascending order (each shard with its own
  :class:`~repro.core.delayed_update.DelayedUpdater`); insert installs
  remain a single pass in global ``(txn, seq)`` lexsort order — the
  deterministic cross-shard commit point for client-keyed inserts.

**Determinism argument.**  The reorder and the per-shard splits cannot
change outcomes: conflict verdicts depend only on (key, TID) minima,
which are insensitive to registration order and to how disjoint subsets
are split across calls; committed write cells are WAW-disjoint and adds
commute, so the fixed shard-order scatter produces the same snapshot;
and the canonical state digest orders rows by key, so insert slot
assignment cannot leak batch order.  Hence ``shards=N`` is
byte-identical to ``shards=1``, which is plain delegation to the inner
engine.  (Simulated *timings* for N > 1 differ — registrations arrive
as per-shard kernel sub-passes — but final states and per-transaction
outcomes do not.)

Counter-keyed TPC-C tables (orders, new_order, order_line, history)
take the default ``mod`` ownership rule: a single-home NewOrder still
*inserts* rows whose keys hash to other shards.  That is deliberate and
honest — those installs flow through the central deterministic insert
step above, and their conflict reservations are routed to the owning
slice like any other access.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.calvin import deterministic_order
from repro.core.config import LTPGConfig
from repro.core.delayed_update import DelayedUpdater
from repro.core.engine import BatchResult, LTPGEngine
from repro.core.stats import RunStats
from repro.gpusim.device import Device
from repro.shard.conflict import ShardedConflictLog
from repro.shard.partition import BoundPartition, PartitionSpec, resolve_spec
from repro.storage.database import Database
from repro.txn.batch import BatchScheduler
from repro.txn.procedures import ProcedureRegistry
from repro.txn.transaction import Transaction, TxnStatus


class ShardedEngine:
    """N engine shards over one database with deterministic routing.

    With ``config.shards == 1`` every call delegates untouched to the
    inner engine (bit-identical behavior, including timings).  Unknown
    attributes always delegate, so the wrapper is drop-in wherever an
    :class:`LTPGEngine` is expected.
    """

    def __init__(
        self,
        database: Database,
        procedures: ProcedureRegistry,
        config: LTPGConfig | None = None,
        device: Device | None = None,
        spec: PartitionSpec | None = None,
    ):
        config = config or LTPGConfig()
        self._inner = LTPGEngine(database, procedures, config, device=device)
        self.shards = config.shards
        self.partition: BoundPartition | None = None
        self._updaters: list[DelayedUpdater] | None = None
        if self.shards > 1:
            spec = spec or resolve_spec(config.shard_spec, database)
            self.partition = BoundPartition(spec, database, self.shards)
            self._inner.conflict_log = ShardedConflictLog(
                database,
                self._inner.flags,
                self.partition,
                dynamic_buckets=config.dynamic_buckets,
            )
            self._updaters = [
                DelayedUpdater(
                    database,
                    config.delayed_columns,
                    enabled=config.delayed_update,
                )
                for _ in range(self.shards)
            ]

    # -- delegation ----------------------------------------------------------
    def __getattr__(self, name: str):
        return getattr(self._inner, name)

    def close(self) -> None:
        self._inner.close()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- routing -------------------------------------------------------------
    def plan_batch(
        self, transactions: list[Transaction]
    ) -> tuple[list[int], np.ndarray, np.ndarray]:
        """Classify and order one batch.

        Returns ``(order, coordinators, multi_mask)`` where ``order``
        is the shard-major permutation (original indices) and the other
        two are per-original-index.  Pure function of parameters and
        TIDs — identical on every replay.
        """
        part = self.partition
        assert part is not None
        n = len(transactions)
        coord = np.zeros(n, dtype=np.int64)
        multi = np.zeros(n, dtype=bool)
        homes_by_txn = []
        for i, txn in enumerate(transactions):
            homes = part.classify(txn)
            homes_by_txn.append(homes)
            coord[i] = homes[0] if homes else 0
            multi[i] = len(homes) > 1
        order: list[int] = []
        pos = {id(t): i for i, t in enumerate(transactions)}
        for s in range(self.shards):
            seg_multi = [
                transactions[i]
                for i in range(n)
                if coord[i] == s and multi[i]
            ]
            # the Calvin sequencer: multi-home transactions commit in
            # the agreed deterministic order, ahead of the shard's
            # single-home segment
            order.extend(pos[id(t)] for t in deterministic_order(seg_multi))
            order.extend(
                i for i in range(n) if coord[i] == s and not multi[i]
            )
        return order, coord, multi

    # -- pipeline ------------------------------------------------------------
    def run_batch(self, transactions: list[Transaction]) -> BatchResult:
        inner = self._inner
        if self.shards == 1 or not transactions:
            return inner.run_batch(transactions)
        t0 = time.perf_counter_ns()
        order, coord, multi = self.plan_batch(transactions)
        ordered = [transactions[i] for i in order]
        shard_plan = coord[np.asarray(order, dtype=np.int64)]
        stall_ns = time.perf_counter_ns() - t0

        inner.shard_plan = shard_plan
        inner.shard_router = self.partition
        inner.shard_updaters = self._updaters
        inner.shard_order = np.asarray(order, dtype=np.int64)
        try:
            result = inner.run_batch(ordered)
        finally:
            inner.shard_plan = None
            inner.shard_router = None
            inner.shard_updaters = None
            inner.shard_order = None
        inner.last_host_phase_s["sequencer"] = stall_ns * 1e-9

        n = len(transactions)
        lanes = np.bincount(coord, minlength=self.shards)
        stats = result.stats
        stats.multi_home_fraction = float(multi.sum()) / n
        stats.shard_balance = float(lanes.max() / lanes.mean())
        stats.sequencer_stall_ns = int(stall_ns)
        if inner.metrics is not None:
            m = inner.metrics
            m.gauge("multi_home_fraction").set(stats.multi_home_fraction)
            m.gauge("shard_balance").set(stats.shard_balance)
            m.counter("sequencer.stall_ns").inc(stats.sequencer_stall_ns)
            lanes_hist = m.histogram("shard.lanes")
            for s in range(self.shards):
                lanes_hist.observe(f"s{s}", int(lanes[s]))

        # Statuses live on the transaction objects, so the result lists
        # rebuild in *admission* order — schedulers composing retries
        # across batches see exactly the reference engine's sequences.
        return BatchResult(
            stats=stats,
            committed=[
                t for t in transactions if t.status is TxnStatus.COMMITTED
            ],
            aborted=[t for t in transactions if t.status is TxnStatus.ABORTED],
            logic_aborted=[
                t for t in transactions if t.status is TxnStatus.LOGIC_ABORTED
            ],
            _witness_sets=result._witness_sets,
        )

    # -- drains (must route through this run_batch) ---------------------------
    def process(
        self,
        scheduler: BatchScheduler,
        max_batches: int | None = None,
    ) -> RunStats:
        """Drain a scheduler through the sharded pipeline (same contract
        as :meth:`LTPGEngine.process`)."""
        run = RunStats()
        batches = 0
        while scheduler.has_work():
            if max_batches is not None and batches >= max_batches:
                break
            batch = scheduler.next_batch()
            if not batch:
                batches += 1
                continue
            result = self.run_batch(batch)
            scheduler.requeue_aborted(result.aborted)
            run.add(result.stats)
            batches += 1
        return run

    def run_transactions(
        self, transactions: list[Transaction], max_batches: int = 1000
    ) -> RunStats:
        scheduler = BatchScheduler(
            self._inner.config.batch_size,
            retry_delay_batches=self._inner.config.effective_retry_delay,
        )
        scheduler.admit(transactions)
        return self.process(scheduler, max_batches=max_batches)


def make_engine(
    database: Database,
    procedures: ProcedureRegistry,
    config: LTPGConfig | None = None,
    device: Device | None = None,
):
    """Engine factory honoring ``config.shards``: the sharded wrapper
    for N > 1, the plain engine otherwise."""
    config = config or LTPGConfig()
    if config.shards > 1:
        return ShardedEngine(database, procedures, config, device=device)
    return LTPGEngine(database, procedures, config, device=device)

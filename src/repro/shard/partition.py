"""Partition specs: how rows and transactions map to engine shards.

A :class:`PartitionSpec` is a *workload-level* description — per-table
ownership rules plus a transaction classifier — and a
:class:`BoundPartition` is that spec resolved against a concrete
database and shard count.  Ownership is a pure function of a row's
primary key, so every pipeline stage (conflict registration, write-back
scatters, delayed-update merges) can route a cell to its owning shard
without any coordination, and the same function classifies a
transaction from its parameters alone:

* **single-home** — every key the transaction can touch lives on one
  shard; it executes entirely there, with no cross-shard traffic.
* **multi-home** — its key set spans shards; the sharded engine runs it
  at a deterministic coordinator (the smallest home shard) and
  sequences it with Calvin's deterministic order
  (:func:`repro.baselines.calvin.deterministic_order`).

Three rule forms cover the supported workloads:

* ``mod``      — ``key % shards`` (warehouse-keyed TPC-C tables, and
  the default for client-counter-keyed tables like orders/history).
* ``div_mod``  — ``(key // divisor) % shards`` for composite keys that
  embed a warehouse (district ``w*10+d``, customer, stock).
* ``block``    — contiguous key ranges: ``min(key // block, shards-1)``
  with ``block = ceil(initial_rows / shards)`` (SmallBank accounts,
  YCSB records); keys appended past the loaded range belong to the
  last shard.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.storage.database import Database


@dataclass(frozen=True)
class TableRule:
    """Ownership rule for one table's primary keys."""

    form: str  # "mod" | "div_mod" | "block"
    divisor: int = 1

    def __post_init__(self) -> None:
        if self.form not in ("mod", "div_mod", "block"):
            raise ConfigError(f"unknown partition rule form {self.form!r}")
        if self.divisor < 1:
            raise ConfigError("partition rule divisor must be >= 1")


MOD = TableRule("mod")


def div_mod(divisor: int) -> TableRule:
    return TableRule("div_mod", divisor)


@dataclass(frozen=True)
class PartitionSpec:
    """A workload's partition map.

    ``rules_for`` builds the per-table rules against a loaded database
    (some divisors depend on load-time sizes, e.g. TPC-C's stock keys
    embed ``num_items``); tables it does not name fall back to
    ``default``.  ``classify`` returns the sorted tuple of home shards
    a transaction's parameters reach.
    """

    name: str
    rules_for: Callable[[Database], dict[str, TableRule]]
    default: TableRule
    classify: Callable[..., tuple[int, ...]]


class BoundPartition:
    """A :class:`PartitionSpec` resolved against one database and a
    fixed shard count: vectorized key->owner and (table, row)->owner
    maps, shared by the router, the sharded conflict log, and the
    write-back partitioner."""

    def __init__(self, spec: PartitionSpec, database: Database, shards: int):
        if shards < 1:
            raise ConfigError("shard count must be >= 1")
        self.spec = spec
        self.database = database
        self.shards = shards
        rules = spec.rules_for(database)
        # per table id: (form, parameter) with block sizes fixed at
        # bind time — ownership must not drift as tables grow, or a
        # row would change shards mid-run.
        self._forms: list[str] = []
        self._params: list[int] = []
        for t in range(database.num_tables):
            table = database.table_by_id(t)
            rule = rules.get(table.name, spec.default)
            if rule.form == "block":
                block = -(-max(1, table.num_rows) // shards)  # ceil div
                self._forms.append("block")
                self._params.append(block)
            else:
                self._forms.append(rule.form)
                self._params.append(rule.divisor)

    # -- vectorized ownership ------------------------------------------------
    def owner_keys(self, table_id: int, keys: np.ndarray) -> np.ndarray:
        """Owning shard of each primary key of one table."""
        form = self._forms[table_id]
        param = self._params[table_id]
        keys = np.asarray(keys, dtype=np.int64)
        if form == "mod":
            return keys % self.shards
        if form == "div_mod":
            return (keys // param) % self.shards
        return np.minimum(keys // param, self.shards - 1)

    def owner_key(self, table_name: str, key: int) -> int:
        """Scalar ownership lookup (the classifier hot path)."""
        table_id = self.database.table_id(table_name)
        form = self._forms[table_id]
        param = self._params[table_id]
        if form == "mod":
            return int(key) % self.shards
        if form == "div_mod":
            return (int(key) // param) % self.shards
        return min(int(key) // param, self.shards - 1)

    def owner_cells(self, table_ids: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """Owning shard of each (table, row-slot) cell.  Row slots are
        snapshot slots (< the row count when the batch began), so the
        key gather is always in range."""
        owners = np.zeros(rows.size, dtype=np.int64)
        if rows.size == 0:
            return owners
        for t in np.unique(table_ids):
            m = table_ids == t
            keys = self.database.table_by_id(int(t)).keys_of_rows(rows[m])
            owners[m] = self.owner_keys(int(t), keys)
        return owners

    def classify(self, txn) -> tuple[int, ...]:
        """Sorted home-shard tuple of one transaction."""
        return self.spec.classify(txn, self)

    def profile(self) -> dict[str, list[int]]:
        """Per-table row counts by owning shard — the balance ledger
        the wallclock bench publishes."""
        return self.database.partition_profile(self.owner_keys, self.shards)


def resolve_spec(name: str, database: Database) -> PartitionSpec:
    """Look up a partition spec by config name; ``"auto"`` inspects the
    database's table names."""
    if name == "auto":
        tables = {database.table_by_id(t).name for t in range(database.num_tables)}
        if "warehouse" in tables:
            name = "tpcc"
        elif "smallbank" in tables:
            name = "smallbank"
        elif "usertable" in tables:
            name = "ycsb"
        else:
            raise ConfigError(
                "shard_spec='auto' could not recognize the workload from "
                f"table names {sorted(tables)}; pass an explicit spec "
                "('tpcc', 'ycsb', or 'smallbank')"
            )
    # Lazy imports: the workload modules import this module for the
    # rule/spec types, so the registry must not import them at load time.
    if name == "tpcc":
        from repro.workloads.tpcc.partition import tpcc_partition_spec

        return tpcc_partition_spec()
    if name == "ycsb":
        from repro.workloads.ycsb.generator import ycsb_partition_spec

        return ycsb_partition_spec()
    if name == "smallbank":
        from repro.workloads.smallbank import smallbank_partition_spec

        return smallbank_partition_spec()
    raise ConfigError(f"unknown shard_spec {name!r}")

"""``python -m repro.trace`` — see :mod:`repro.trace.cli`."""

import sys

from repro.trace.cli import main

if __name__ == "__main__":
    sys.exit(main())

"""Command-line driver: ``python -m repro.trace [options]``.

Runs one of the benchmark workloads with ``LTPGConfig.trace`` enabled
and writes the captured span tree as Chrome ``trace_event`` JSON — open
the file in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``
to see batch pipelining across streams.  Batches run through the
batch-to-batch pipeline by default so the h2d / compute / d2h legs land
on three distinct stream tracks (pass ``--no-pipeline`` for the
single-stream view).

Exit codes: ``0`` — trace captured and written; ``2`` — usage error.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.workload import WORKLOAD_NAMES, build_workload
from repro.core.pipeline import run_pipelined
from repro.core.stats import RunStats
from repro.trace.metrics import MetricsRegistry
from repro.trace.tracer import Tracer, validate_nesting
from repro.txn.batch import BatchScheduler

EXIT_OK = 0
EXIT_USAGE = 2

DEFAULT_BATCHES = 4
DEFAULT_BATCH_SIZE = 512


def capture(
    workload: str = "tpcc",
    batches: int = DEFAULT_BATCHES,
    batch_size: int = DEFAULT_BATCH_SIZE,
    seed: int = 7,
    pipelined: bool = True,
) -> tuple[Tracer, MetricsRegistry, RunStats]:
    """Run ``batches`` traced batches of a workload; returns the tracer,
    the populated metrics registry and the run's aggregate stats."""
    setup = build_workload(workload, seed=seed)
    engine = setup.engine(
        batch_size=batch_size, sanitize=False, trace=True, pipelined=pipelined
    )
    scheduler = BatchScheduler(
        batch_size, retry_delay_batches=engine.config.effective_retry_delay
    )
    scheduler.admit(setup.generator.make_batch(batches * batch_size))
    if pipelined:
        run = run_pipelined(engine, scheduler, max_batches=batches)
    else:
        run = engine.process(scheduler, max_batches=batches)
    assert engine.tracer is not None and engine.metrics is not None
    return engine.tracer, engine.metrics, run


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description=(
            "Capture a Chrome trace_event JSON trace (batch/phase/kernel "
            "spans over the simulated GPU clock) plus a metrics snapshot "
            "from a traced workload run."
        ),
    )
    parser.add_argument(
        "--workload",
        choices=WORKLOAD_NAMES,
        default="tpcc",
        help="workload to drive the engine with (default: tpcc)",
    )
    parser.add_argument(
        "--out",
        default="trace.json",
        help="trace_event JSON output path (default: trace.json)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        help="also write the metrics snapshot as JSON to this path",
    )
    parser.add_argument(
        "--batches",
        type=int,
        default=DEFAULT_BATCHES,
        help=f"batches to trace (default: {DEFAULT_BATCHES})",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=DEFAULT_BATCH_SIZE,
        help=f"transactions per batch (default: {DEFAULT_BATCH_SIZE})",
    )
    parser.add_argument(
        "--no-pipeline",
        action="store_true",
        help="run all work on one stream instead of the h2d/compute/d2h "
        "pipeline",
    )
    parser.add_argument("--seed", type=int, default=7)
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on usage errors and 0 on --help; preserve it.
        return int(exc.code or 0)
    if args.batches <= 0 or args.batch_size <= 0:
        print("error: --batches and --batch-size must be positive",
              file=sys.stderr)
        return EXIT_USAGE

    tracer, metrics, run = capture(
        workload=args.workload,
        batches=args.batches,
        batch_size=args.batch_size,
        seed=args.seed,
        pipelined=not args.no_pipeline,
    )
    problems = validate_nesting(tracer)
    if problems:  # defensive: monotone stream clocks should preclude this
        for problem in problems:
            print(f"warning: {problem}", file=sys.stderr)
    tracer.write(args.out)
    print(
        f"wrote {args.out}: {len(tracer.spans)} spans on "
        f"{len(tracer.tracks())} stream track(s), "
        f"{len(tracer.async_spans)} batch envelope(s), "
        f"{len(tracer.flows) // 2} flow arrow(s) "
        f"[{run.num_batches} batches, {run.total_committed} committed]"
    )
    if args.metrics_out:
        with open(args.metrics_out, "w") as fh:
            json.dump(metrics.snapshot(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.metrics_out}")
    print(metrics.render())
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())

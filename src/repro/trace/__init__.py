"""Structured tracing + metrics for the LTPG engine and GPU simulator.

Two halves:

* :mod:`repro.trace.tracer` — span-based tracing over the simulated
  clock (batch / phase / kernel / stream spans, flow arrows, counter
  series), exportable as Chrome ``trace_event`` JSON for Perfetto.
* :mod:`repro.trace.metrics` — a counter/gauge/histogram registry the
  engine populates with the signals the cost model already computes
  (atomic serialization, bucket load, warp divergence, abort reasons).

Enable both on an engine with ``LTPGConfig(trace=True)``; capture a
trace from the command line with::

    python -m repro.trace --workload tpcc --out trace.json

This module deliberately imports nothing above :mod:`repro.errors`, so
the simulator (:mod:`repro.gpusim`) can depend on it without cycles;
the CLI (:mod:`repro.trace.cli`), which drives whole workloads, is
imported only by ``python -m repro.trace``.
"""

from repro.trace.metrics import (
    Counter,
    Gauge,
    Histogram,
    LatencyDigest,
    MetricsRegistry,
)
from repro.trace.tracer import (
    BATCH_TRACK,
    AsyncSpan,
    CounterSample,
    FlowEvent,
    InstantEvent,
    Span,
    Tracer,
    validate_nesting,
)

__all__ = [
    "BATCH_TRACK",
    "AsyncSpan",
    "Counter",
    "CounterSample",
    "FlowEvent",
    "Gauge",
    "Histogram",
    "InstantEvent",
    "LatencyDigest",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "validate_nesting",
]

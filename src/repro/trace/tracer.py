"""Span-based tracing over the simulated device clock.

A :class:`Tracer` records what happened *when* in simulated time, as a
tree of spans per **track**.  A track is one timeline — usually a CUDA
stream (``stream0``, ``h2d``, ``compute``, ``d2h``), plus the virtual
``batches`` track the engine uses for whole-batch envelopes.  Within a
track, spans nest strictly: a span opened while another is open is its
child, and must close before its parent does (the simulator's monotone
per-stream clocks guarantee this; :func:`validate_nesting` checks it).

Besides sync spans the tracer records the other three Chrome
``trace_event`` flavours the pipeline visualisation needs:

* **async spans** — batch envelopes, which legitimately overlap under
  batch-to-batch pipelining (batch *n+1*'s h2d runs while batch *n*
  computes), so they cannot live on a sync track;
* **flow events** — one arrow per CUDA event from ``record_event`` to
  each ``wait_event``, making cross-stream ordering visible;
* **counter events** — per-batch series (commit rate, atomic
  serialization, ...) that Perfetto renders as counter tracks.

Export with :meth:`Tracer.to_chrome` / :meth:`Tracer.write`; the output
loads directly in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``.  Timestamps convert from simulated nanoseconds to
the format's microseconds at export time only — the in-memory model
stays in ns so tests can compare against stream clocks exactly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.errors import DeviceError

#: Track used by the engine for whole-batch (async) envelopes.
BATCH_TRACK = "batches"


@dataclass
class Span:
    """One closed span on a track's timeline."""

    name: str
    cat: str
    track: str
    start_ns: float
    end_ns: float
    #: nesting depth within the track (0 = top level)
    depth: int
    #: index of the parent span in ``Tracer.spans`` (-1 = top level)
    parent: int
    args: dict[str, Any] = field(default_factory=dict)

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns


@dataclass
class AsyncSpan:
    """A span that may overlap others on the same track (batch envelopes)."""

    name: str
    cat: str
    track: str
    id: int
    start_ns: float
    end_ns: float
    args: dict[str, Any] = field(default_factory=dict)

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns


@dataclass
class FlowEvent:
    """One endpoint of a cross-track dependency arrow."""

    name: str
    id: int
    track: str
    ts_ns: float
    phase: str  # "s" (start) | "f" (finish)


@dataclass
class InstantEvent:
    """A zero-duration marker (device syncs, epoch boundaries)."""

    name: str
    track: str
    ts_ns: float
    args: dict[str, Any] = field(default_factory=dict)


@dataclass
class CounterSample:
    """One sample of a named counter series."""

    name: str
    ts_ns: float
    values: dict[str, float]


class _Open:
    """An open span: its index into ``Tracer.spans``."""

    __slots__ = ("index",)

    def __init__(self, index: int):
        self.index = index


class Tracer:
    """Accumulates spans, flow arrows and counter samples.

    The tracer is clock-less: callers pass simulated timestamps read off
    the stream clocks, which keeps recorded traces bit-reproducible
    across identical runs (no host time ever leaks in).
    """

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.async_spans: list[AsyncSpan] = []
        self.flows: list[FlowEvent] = []
        self.instants: list[InstantEvent] = []
        self.counters: list[CounterSample] = []
        self._stacks: dict[str, list[_Open]] = {}
        self._next_flow_id = 0

    # -- sync spans -----------------------------------------------------
    def begin(
        self,
        name: str,
        track: str,
        start_ns: float,
        cat: str = "engine",
        **args: Any,
    ) -> None:
        """Open a span on ``track``; it becomes the parent of spans
        recorded on the track until the matching :meth:`end`."""
        stack = self._stacks.setdefault(track, [])
        placeholder = len(self.spans)
        self.spans.append(
            Span(name, cat, track, start_ns, start_ns,
                 depth=len(stack),
                 parent=stack[-1].index if stack else -1,
                 args=dict(args))
        )
        stack.append(_Open(placeholder))

    def end(self, track: str, end_ns: float) -> Span:
        """Close the innermost open span on ``track``."""
        stack = self._stacks.get(track)
        if not stack:
            raise DeviceError(f"no open span on track {track!r}")
        open_span = stack.pop()
        span = self.spans[open_span.index]
        if end_ns < span.start_ns:
            raise DeviceError(
                f"span {span.name!r} on {track!r} would end before it "
                f"starts ({end_ns} < {span.start_ns})"
            )
        span.end_ns = end_ns
        return span

    def complete(
        self,
        name: str,
        track: str,
        start_ns: float,
        duration_ns: float,
        cat: str = "kernel",
        args: dict[str, Any] | None = None,
    ) -> Span:
        """Record an already-finished span (kernels, DMA transfers).

        Nested under whatever span is currently open on the track.
        """
        stack = self._stacks.get(track, [])
        span = Span(
            name, cat, track, start_ns, start_ns + duration_ns,
            depth=len(stack),
            parent=stack[-1].index if stack else -1,
            args=dict(args or {}),
        )
        self.spans.append(span)
        return span

    # -- async spans (overlap allowed) ----------------------------------
    def async_span(
        self,
        name: str,
        id: int,
        start_ns: float,
        end_ns: float,
        track: str = BATCH_TRACK,
        cat: str = "batch",
        args: dict[str, Any] | None = None,
    ) -> AsyncSpan:
        span = AsyncSpan(name, cat, track, id, start_ns, end_ns,
                         dict(args or {}))
        self.async_spans.append(span)
        return span

    # -- flow arrows ------------------------------------------------------
    def flow_start(self, name: str, track: str, ts_ns: float) -> int:
        """Record the source of a dependency arrow; returns its id for
        the matching :meth:`flow_finish` calls."""
        flow_id = self._next_flow_id
        self._next_flow_id += 1
        self.flows.append(FlowEvent(name, flow_id, track, ts_ns, "s"))
        return flow_id

    def flow_finish(self, name: str, flow_id: int, track: str,
                    ts_ns: float) -> None:
        self.flows.append(FlowEvent(name, flow_id, track, ts_ns, "f"))

    # -- instants -----------------------------------------------------------
    def instant(self, name: str, track: str, ts_ns: float,
                **args: Any) -> None:
        self.instants.append(InstantEvent(name, track, ts_ns, dict(args)))

    # -- counters -----------------------------------------------------------
    def counter(self, name: str, ts_ns: float, **values: float) -> None:
        self.counters.append(CounterSample(name, ts_ns, dict(values)))

    # -- lifecycle -----------------------------------------------------------
    def open_depth(self, track: str) -> int:
        return len(self._stacks.get(track, []))

    def reset(self) -> None:
        self.spans.clear()
        self.async_spans.clear()
        self.flows.clear()
        self.instants.clear()
        self.counters.clear()
        self._stacks.clear()
        self._next_flow_id = 0

    # -- queries ---------------------------------------------------------
    def tracks(self) -> list[str]:
        """Every track that has at least one sync span, sorted."""
        return sorted({s.track for s in self.spans})

    def spans_on(self, track: str) -> list[Span]:
        return [s for s in self.spans if s.track == track]

    def total_ns(self, name: str, track: str | None = None) -> float:
        return sum(
            s.duration_ns
            for s in self.spans
            if s.name == name and (track is None or s.track == track)
        )

    # -- export ---------------------------------------------------------
    def to_chrome(self) -> dict[str, Any]:
        """The trace as a Chrome ``trace_event`` JSON object."""
        track_ids = {
            t: i
            for i, t in enumerate(
                sorted(
                    {s.track for s in self.spans}
                    | {s.track for s in self.async_spans}
                    | {f.track for f in self.flows}
                    | {e.track for e in self.instants}
                )
            )
        }
        events: list[dict[str, Any]] = []
        for track, tid in track_ids.items():
            events.append({
                "ph": "M", "name": "thread_name", "pid": 0, "tid": tid,
                "args": {"name": track},
            })
        for span in self.spans:
            events.append({
                "ph": "X",
                "name": span.name,
                "cat": span.cat,
                "pid": 0,
                "tid": track_ids[span.track],
                "ts": span.start_ns / 1e3,
                "dur": span.duration_ns / 1e3,
                "args": span.args,
            })
        for aspan in self.async_spans:
            common = {
                "name": aspan.name,
                "cat": aspan.cat,
                "pid": 0,
                "tid": track_ids[aspan.track],
                "id": aspan.id,
            }
            events.append(
                {**common, "ph": "b", "ts": aspan.start_ns / 1e3,
                 "args": aspan.args}
            )
            events.append({**common, "ph": "e", "ts": aspan.end_ns / 1e3})
        for sample in self.counters:
            events.append({
                "ph": "C",
                "name": sample.name,
                "pid": 0,
                "ts": sample.ts_ns / 1e3,
                "args": sample.values,
            })
        for inst in self.instants:
            events.append({
                "ph": "i",
                "name": inst.name,
                "cat": "marker",
                "pid": 0,
                "tid": track_ids[inst.track],
                "ts": inst.ts_ns / 1e3,
                "s": "t",  # thread-scoped instant
                "args": inst.args,
            })
        for flow in self.flows:
            events.append({
                "ph": flow.phase,
                "name": flow.name,
                "cat": "flow",
                "pid": 0,
                "tid": track_ids[flow.track],
                "ts": flow.ts_ns / 1e3,
                "id": flow.id,
                # arrows bind to the enclosing slice at the timestamp
                **({"bp": "e"} if flow.phase == "f" else {}),
            })
        return {"traceEvents": events, "displayTimeUnit": "ns"}

    def write(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_chrome(), fh, indent=1)
            fh.write("\n")


def validate_nesting(tracer: Tracer) -> list[str]:
    """Check the span-tree invariants; returns problem descriptions.

    Within a track, (i) every child span must lie inside its parent's
    interval and (ii) siblings at the same depth must not overlap.  An
    empty return means the trace is a proper forest per track.
    """
    problems: list[str] = []
    siblings: dict[tuple[str, int], list[Span]] = {}
    for span in tracer.spans:
        if span.parent >= 0:
            parent = tracer.spans[span.parent]
            if span.start_ns < parent.start_ns or span.end_ns > parent.end_ns:
                problems.append(
                    f"span {span.name!r} [{span.start_ns}, {span.end_ns}] "
                    f"escapes parent {parent.name!r} "
                    f"[{parent.start_ns}, {parent.end_ns}] on {span.track!r}"
                )
        siblings.setdefault((span.track, span.parent), []).append(span)
    for (track, _parent), group in siblings.items():
        group.sort(key=lambda s: (s.start_ns, s.end_ns))
        for left, right in zip(group, group[1:]):
            if right.start_ns < left.end_ns:
                problems.append(
                    f"siblings {left.name!r} and {right.name!r} overlap "
                    f"on {track!r}"
                )
    for track, stack in tracer._stacks.items():
        if stack:
            problems.append(
                f"track {track!r} has {len(stack)} span(s) left open"
            )
    return problems

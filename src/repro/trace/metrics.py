"""Counter / gauge / histogram registry for engine observability.

The simulator already *computes* the paper's diagnostic signals — atomic
serialization chains (§V-C, Table VII), warp divergence (§V-B),
conflict-log bucket pressure, abort reasons — but until now threw them
away after costing.  A :class:`MetricsRegistry` gives them a durable
home: the engine populates it per batch (when ``LTPGConfig.trace`` is
on) and the bench harness / trace CLI export :meth:`snapshot` as JSON.

Three instrument kinds, mirroring the usual metrics vocabulary:

* :class:`Counter` — monotone totals (atomic ops issued, serialized ops,
  divergent branches, committed transactions);
* :class:`Gauge` — last/extreme values (bucket load factor, occupancy,
  longest atomic chain seen);
* :class:`Histogram` — value -> count distributions over either numeric
  values (reschedule depth) or labels (abort reason).

Everything is plain Python ints/floats — deterministic, orderable, and
cheap enough that populating the registry never shows in the perf gate.
"""

from __future__ import annotations

from collections import Counter as _CounterDict
from typing import Any


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class Gauge:
    """A point-in-time value, with optional running extremes."""

    __slots__ = ("name", "value", "max", "min", "_samples", "_total")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.max = float("-inf")
        self.min = float("inf")
        self._samples = 0
        self._total = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.max = max(self.max, self.value)
        self.min = min(self.min, self.value)
        self._samples += 1
        self._total += self.value

    @property
    def mean(self) -> float:
        return self._total / self._samples if self._samples else 0.0


class Histogram:
    """A value -> count distribution (numeric values or string labels)."""

    __slots__ = ("name", "counts")

    def __init__(self, name: str):
        self.name = name
        self.counts: _CounterDict = _CounterDict()

    def observe(self, value: int | str, count: int = 1) -> None:
        if count < 0:
            raise ValueError(f"histogram {self.name!r} count must be >= 0")
        if count:
            self.counts[value] += count

    @property
    def total(self) -> int:
        return sum(self.counts.values())


class LatencyDigest:
    """Exact-value latency digest: every observed sample is kept, so
    percentiles are the true order statistics rather than bucket
    approximations — affordable because serve/bench runs observe at
    most a few hundred thousand samples, and required because the serve
    differential tests assert *byte-identical* percentile output across
    runs.  Uses the same nearest-rank definition as
    :meth:`repro.core.stats.RunStats.latency_percentile`."""

    __slots__ = ("name", "_values", "_sorted")

    def __init__(self, name: str = "latency"):
        self.name = name
        self._values: list[int] = []
        self._sorted: list[int] | None = None

    def observe(self, value_ns: int | float) -> None:
        self._values.append(int(value_ns))
        self._sorted = None

    def __len__(self) -> int:
        return len(self._values)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def mean(self) -> float:
        return sum(self._values) / len(self._values) if self._values else 0.0

    def percentile(self, p: float) -> int:
        """Nearest-rank percentile in the observed unit (p in [0, 100])."""
        if not 0 <= p <= 100:
            raise ValueError("percentile must be within [0, 100]")
        if not self._values:
            return 0
        if self._sorted is None:
            self._sorted = sorted(self._values)
        ordered = self._sorted
        rank = min(len(ordered) - 1, round(p / 100 * (len(ordered) - 1)))
        return ordered[rank]

    def summary(self) -> dict[str, Any]:
        """JSON-ready percentile block (ns unless the caller observed
        another unit)."""
        return {
            "count": self.count,
            "mean": round(self.mean, 3),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.percentile(100),
        }


class MetricsRegistry:
    """Named instruments, created on first use."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(name)
        return inst

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # -- export ---------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """A JSON-ready view: sorted, plain types only."""
        out: dict[str, Any] = {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: {
                    "last": g.value,
                    "min": g.min if g._samples else 0.0,
                    "max": g.max if g._samples else 0.0,
                    "mean": g.mean,
                }
                for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: {str(k): v for k, v in sorted(h.counts.items(),
                                                    key=lambda kv: str(kv[0]))}
                for name, h in sorted(self._histograms.items())
            },
        }
        return out

    def render(self) -> str:
        """A compact human-readable summary (CLI output)."""
        lines = ["metrics:"]
        snap = self.snapshot()
        for name, value in snap["counters"].items():
            lines.append(f"  {name} = {value}")
        for name, g in snap["gauges"].items():
            lines.append(
                f"  {name} = {g['last']:.4g} "
                f"(min {g['min']:.4g}, mean {g['mean']:.4g}, max {g['max']:.4g})"
            )
        for name, h in snap["histograms"].items():
            body = ", ".join(f"{k}: {v}" for k, v in h.items())
            lines.append(f"  {name} = {{{body}}}")
        return "\n".join(lines)

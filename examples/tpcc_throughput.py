"""TPC-C throughput across transaction mixes, plus the optimization
ablation — a miniature of the paper's Table II / Fig 6(b).

Run:  python examples/tpcc_throughput.py [scale]

``scale`` divides the paper's batch (16384) and item-table (100000)
sizes; default 16 keeps the run under a minute.
"""

from __future__ import annotations

import sys

from repro.bench.common import ltpg_config, scaled, tpcc_bench
from repro.bench.runner import steady_state_run
from repro.workloads.tpcc import TpccMix


def main(scale: float = 16.0) -> None:
    print(f"TPC-C on LTPG (1/{scale:g} of paper scale, 8 warehouses)\n")

    print(f"{'mix':>18}  {'throughput':>12}  {'commit rate':>11}  {'latency':>9}")
    for pct, label in [(100, "100% NewOrder"), (50, "50/50 mixed"), (0, "100% Payment")]:
        bench = tpcc_bench(8, neworder_pct=pct, scale=scale)
        engine = bench.engine(ltpg_config(bench.batch_size))
        r = steady_state_run(engine, bench.generator, bench.batch_size, 4)
        print(
            f"{label:>18}  {r.mtps:9.2f} M/s  {r.commit_rate:10.1%}  "
            f"{r.mean_latency_us:7.0f} us"
        )

    print("\nOptimization ablation (50/50 mix):")
    base_mtps = None
    for label, configure in [
        ("unenhanced", lambda c: c.without_optimizations()),
        ("all optimizations", lambda c: c),
    ]:
        bench = tpcc_bench(8, neworder_pct=50, scale=scale)
        config = configure(ltpg_config(bench.batch_size))
        engine = bench.engine(config)
        r = steady_state_run(engine, bench.generator, bench.batch_size, 4)
        if base_mtps is None:
            base_mtps = r.mtps
        print(
            f"  {label:>18}: {r.mtps:7.2f} M/s "
            f"({r.mtps / base_mtps:.2f}x), commit {r.commit_rate:.1%}"
        )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 16.0)

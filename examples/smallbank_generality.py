"""Generality: running a workload LTPG has never seen, with no
pre-declared read/write sets.

Run:  python examples/smallbank_generality.py

The paper's central claim against GaccO/GPUTx is that LTPG "can process
transactions directly without pre-processing", because deterministic
*optimistic* concurrency control discovers conflicts at run time.  This
example registers the six SmallBank procedures — conditional branches,
cross-account moves, logic aborts — and processes them straight away,
then sweeps account skew to show where optimism starts paying aborts.
"""

from __future__ import annotations

from repro.bench.runner import steady_state_run
from repro.core import LTPGConfig, LTPGEngine
from repro.workloads.smallbank import build_smallbank

ACCOUNTS = 20_000
BATCH = 2_048


def main() -> None:
    print(f"SmallBank: {ACCOUNTS:,} accounts, batch {BATCH}, six procedures\n")
    print(f"{'zipf alpha':>10}  {'throughput':>12}  {'commit rate':>11}  "
          f"{'logic aborts/batch':>18}")
    for alpha in (0.0, 0.5, 1.0, 1.5):
        db, registry, generator = build_smallbank(
            ACCOUNTS, zipf_alpha=alpha, seed=7
        )
        engine = LTPGEngine(db, registry, LTPGConfig(batch_size=BATCH))
        r = steady_state_run(engine, generator, BATCH, 4)
        logic = sum(b.logic_aborted for b in r.run.batches) / r.run.num_batches
        print(f"{alpha:>10.1f}  {r.mtps:9.2f} M/s  {r.commit_rate:10.1%}  "
              f"{logic:>18.1f}")

    print("\nNo read/write sets were declared anywhere: the engine learned")
    print("every conflict from the conflict log at run time (the paper's")
    print("versatility argument versus dependency-graph systems).")


if __name__ == "__main__":
    main()

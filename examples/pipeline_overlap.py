"""Batch-to-batch pipeline execution (paper SectionV-E).

Run:  python examples/pipeline_overlap.py

Processes the same stream of TPC-C batches serially and pipelined
(transfers of batch n+1 overlapping kernels of batch n on separate
simulated CUDA streams) and compares makespans.  Also shows the cost:
aborted transactions must wait two batches before retrying.
"""

from __future__ import annotations

from repro.bench.common import ltpg_config, tpcc_bench
from repro.bench.runner import steady_state_run
from repro.core.pipeline import pipelined

BATCHES = 12


def main() -> None:
    results = {}
    for mode in ("serial", "pipelined"):
        bench = tpcc_bench(8, neworder_pct=50, scale=16.0)
        config = ltpg_config(bench.batch_size, pipelined=(mode == "pipelined"))
        engine = bench.engine(config)
        if mode == "pipelined":
            with pipelined(engine):
                r = steady_state_run(engine, bench.generator, bench.batch_size, BATCHES)
        else:
            r = steady_state_run(engine, bench.generator, bench.batch_size, BATCHES)
        results[mode] = (engine.device.elapsed_ns(), r)

    serial_ns, serial_r = results["serial"]
    pipe_ns, pipe_r = results["pipelined"]
    print(f"{BATCHES} batches of {serial_r.run.batches[0].num_txns} transactions\n")
    print(f"serial    makespan: {serial_ns / 1e6:7.3f} ms  "
          f"({serial_r.tps / 1e6:.2f} M TPS)")
    print(f"pipelined makespan: {pipe_ns / 1e6:7.3f} ms  "
          f"({pipe_r.tps / 1e6:.2f} M TPS)")
    gain = serial_ns / pipe_ns - 1
    print(f"\noverlap gain: {gain:.1%}  (paper reports 10-15%)")
    print("trade-off: aborts retry two batches later "
          f"(retry delay = {pipe_r.run.batches and 2})")


if __name__ == "__main__":
    main()

"""Dynamic hash buckets under the hood: popularity detection and the
atomic-serialization chains they shorten (paper SectionV-C).

Run:  python examples/hotspot_buckets.py

Processes one hot TPC-C batch twice — with standard and with dynamic
buckets — and reports, straight from the engine's conflict log and the
simulator's counters, the per-table popularity verdicts (E = T/D), the
chosen bucket sizes, the longest atomic chain in the execute kernel,
and the resulting simulated phase time.
"""

from __future__ import annotations

import copy
import dataclasses

from repro.bench.common import ltpg_config
from repro.txn import assign_tids
from repro.workloads.tpcc import TpccMix, build_tpcc


def main() -> None:
    db, registry, generator = build_tpcc(
        warehouses=4, num_items=20_000, seed=7, mix=TpccMix.neworder_percentage(0)
    )
    batch = generator.make_batch(2_048)
    assign_tids(batch, 0)

    from repro.core import LTPGEngine

    for dynamic in (False, True):
        config = dataclasses.replace(
            ltpg_config(2_048), dynamic_buckets=dynamic
        )
        engine = LTPGEngine(db.copy(), registry, config)
        result = engine.run_batch([copy.deepcopy(t) for t in batch])

        label = "dynamic buckets" if dynamic else "standard buckets"
        print(f"== {label} ==")
        stats = engine.device.profiler.last_kernel_stats("execute")
        print(f"  execute-phase atomics: {stats.atomic_ops:,}, "
              f"longest same-slot chain: {stats.atomic_max_chain:,}")
        print(f"  execute phase: {result.stats.phase_ns['execute'] / 1e3:.1f} us, "
              f"batch latency: {result.stats.latency_ns / 1e3:.1f} us")
        if dynamic:
            print("  popularity verdicts (E = T/D):")
            for heat in engine.last_heats.values():
                marker = "HOT" if heat.is_hot else "   "
                print(
                    f"    {marker} {heat.table:>10}: E = {heat.frequency:8.2f} "
                    f"-> bucket size s_u = {heat.bucket_size}"
                )
            standard, large = engine.conflict_log.memory_report()
            total = standard + large
            print(f"  hash-table memory: large buckets "
                  f"{100 * large / total:.2f}% of {total / 1024:.0f} KiB")
        print()


if __name__ == "__main__":
    main()

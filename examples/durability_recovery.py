"""Durability: periodic snapshots, batch logs, and crash recovery.

Run:  python examples/durability_recovery.py

Processes TPC-C batches while taking periodic snapshots (the paper:
"database snapshots are saved regularly to the hard drive ... the CPU
also records each batch of transactions as logs"), then simulates a
crash and recovers by restoring the last snapshot and deterministically
replaying the logged batches.  The recovered state is byte-identical.
"""

from __future__ import annotations

from repro.bench.common import ltpg_config
from repro.core import LTPGEngine
from repro.storage import SnapshotManager, recover
from repro.txn import BatchScheduler
from repro.workloads.tpcc import build_tpcc

BATCH = 512
BATCHES = 10
SNAPSHOT_EVERY = 4


def main() -> None:
    db, registry, generator = build_tpcc(warehouses=2, num_items=5000, seed=3)
    config = ltpg_config(BATCH)
    engine = LTPGEngine(db, registry, config)
    scheduler = BatchScheduler(BATCH)
    snapshots = SnapshotManager(interval_batches=SNAPSHOT_EVERY)

    for i in range(BATCHES):
        snapshots.maybe_capture(db, i)
        scheduler.admit(generator.make_batch(BATCH - min(scheduler.backlog, BATCH)))
        batch = scheduler.next_batch()
        result = engine.run_batch(batch)
        scheduler.requeue_aborted(result.aborted)
        print(f"batch {i}: committed {result.stats.committed:4d}/"
              f"{result.stats.num_txns}, snapshots kept: {len(snapshots)}")

    pre_crash = db.state_digest()
    last = snapshots.latest
    print(f"\n-- crash -- (last snapshot after batch {last.batch_index}, "
          f"log holds {len(engine.batch_log)} batches)")

    recovered_engine, report = recover(
        last,
        engine.batch_log,
        lambda database: LTPGEngine(database, registry, config),
    )
    print(f"replayed {report.batches_replayed} batches "
          f"({report.transactions_replayed} transactions)")
    ok = report.final_digest == pre_crash
    print(f"recovered state identical to pre-crash state: {ok}")
    if not ok:
        raise SystemExit(1)


if __name__ == "__main__":
    main()

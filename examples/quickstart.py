"""Quickstart: define a schema, register procedures, process batches.

Run:  python examples/quickstart.py

Builds a small ticket-sales database, registers two stored procedures,
and pushes a batch of transactions through the LTPG engine, printing
commit statistics and the simulated GPU timing breakdown.
"""

from __future__ import annotations

import numpy as np

from repro.core import LTPGConfig, LTPGEngine
from repro.storage import Database, make_schema
from repro.txn import ProcedureRegistry, Transaction, assign_tids


def build_database() -> Database:
    db = Database("tickets")
    events = db.create_table(make_schema("events", "event_id", "seats_left", "sold"))
    events.bulk_load(
        np.arange(16),
        {"seats_left": np.full(16, 100), "sold": np.zeros(16, dtype=np.int64)},
    )
    db.create_table(make_schema("sales", "sale_id", "event_id", "quantity"))
    return db


def register_procedures(registry: ProcedureRegistry) -> None:
    @registry.register("buy")
    def buy(ctx, event_id, quantity, sale_id):
        """Buy tickets: check availability, decrement, record the sale."""
        left = ctx.read("events", event_id, "seats_left")
        if left < quantity:
            ctx.abort("sold out")
        ctx.write("events", event_id, "seats_left", left - quantity)
        ctx.add("events", event_id, "sold", quantity)
        ctx.insert("sales", sale_id, {"event_id": event_id, "quantity": quantity})

    @registry.register("check")
    def check(ctx, event_id):
        """Read-only availability check."""
        ctx.read("events", event_id, "seats_left")


def main() -> None:
    db = build_database()
    registry = ProcedureRegistry()
    register_procedures(registry)

    engine = LTPGEngine(db, registry, LTPGConfig(batch_size=64))

    rng = np.random.default_rng(7)
    batch = []
    for i in range(64):
        if rng.random() < 0.7:
            batch.append(Transaction("buy", (int(rng.integers(0, 16)), 2, 1000 + i)))
        else:
            batch.append(Transaction("check", (int(rng.integers(0, 16)),)))
    assign_tids(batch, 0)

    result = engine.run_batch(batch)
    stats = result.stats
    print(f"batch of {stats.num_txns}: committed {stats.committed}, "
          f"aborted {stats.aborted} (to retry), logic-aborted {stats.logic_aborted}")
    print(f"commit rate: {stats.commit_rate:.1%}")
    print(f"simulated batch latency: {stats.latency_ns / 1e3:.1f} us "
          f"(transfer {stats.transfer_ns / 1e3:.1f} us)")
    for phase, ns in stats.phase_ns.items():
        print(f"  {phase:>10}: {ns / 1e3:7.2f} us")
    print(f"abort reasons: {dict(stats.abort_reasons)}")

    # Re-run the aborted transactions in a second batch (they keep
    # their TIDs and therefore win any new conflicts).
    if result.aborted:
        second = engine.run_batch(result.aborted)
        print(f"retry batch: committed {second.stats.committed} of "
              f"{second.stats.num_txns}")

    total_sold = sum(
        engine.database.table("events").read(r, "sold") for r in range(16)
    )
    print(f"tickets sold in total: {total_sold}")


if __name__ == "__main__":
    main()

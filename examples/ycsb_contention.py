"""YCSB under extreme skew: how delayed commutative updates rescue an
update-heavy workload that plain deterministic OCC cannot sustain.

Run:  python examples/ycsb_contention.py

With the paper's Zipfian exponent (alpha = 2.5) roughly three quarters
of all key draws hit the single hottest record.  Plain read-modify-write
updates then allow only one commit per batch; routing updates through
LTPG's delayed-update path (commutative ADDs merged at write-back)
restores full throughput.  The example sweeps alpha to show where the
collapse begins.
"""

from __future__ import annotations

from repro.bench.runner import steady_state_run
from repro.core import LTPGConfig, LTPGEngine
from repro.workloads.ycsb import build_ycsb, ycsb_delayed_columns

RECORDS = 20_000
BATCH = 1_024


def run(workload: str, alpha: float, commutative: bool) -> tuple[float, float]:
    db, registry, gen = build_ycsb(
        RECORDS,
        workload=workload,
        zipf_alpha=alpha,
        seed=7,
        commutative_updates=commutative,
    )
    config = LTPGConfig(
        batch_size=BATCH,
        delayed_columns=ycsb_delayed_columns() if commutative else frozenset(),
        hot_tables=frozenset({"usertable"}),
    )
    engine = LTPGEngine(db, registry, config)
    r = steady_state_run(engine, gen, BATCH, 3)
    return r.mtps, r.commit_rate


def main() -> None:
    print(f"YCSB-A, {RECORDS:,} records, batch {BATCH}\n")
    print(f"{'alpha':>6}  {'plain RMW updates':>24}  {'delayed commutative':>24}")
    for alpha in (0.0, 0.8, 1.5, 2.5):
        plain = run("a", alpha, commutative=False)
        delayed = run("a", alpha, commutative=True)
        print(
            f"{alpha:>6.1f}  {plain[0]:8.2f} M/s @ {plain[1]:6.1%}"
            f"        {delayed[0]:8.2f} M/s @ {delayed[1]:6.1%}"
        )
    print(
        "\nAt alpha = 2.5 the hottest key absorbs ~75% of operations: "
        "plain OCC commits collapse, delayed updates do not."
    )


if __name__ == "__main__":
    main()

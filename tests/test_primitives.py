"""Device primitives: functional results + cost accounting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DeviceError
from repro.gpusim import Device, DeviceConfig, KernelContext, LaunchGeometry
from repro.gpusim.primitives import (
    device_histogram,
    device_prefix_sum,
    device_radix_sort,
    device_segmented_reduce,
)


def ctx(threads=64):
    return KernelContext("k", LaunchGeometry.for_threads(threads), DeviceConfig())


class TestPrefixSum:
    def test_result(self):
        assert list(device_prefix_sum([1, 2, 3, 4])) == [1, 3, 6, 10]

    def test_empty(self):
        assert device_prefix_sum([]).size == 0

    def test_cost_recorded(self):
        c = ctx()
        device_prefix_sum(np.ones(1024, dtype=np.int64), c)
        assert c.stats.coalesced_bytes > 0
        assert c.stats.instructions >= 1024

    def test_rejects_2d(self):
        with pytest.raises(DeviceError):
            device_prefix_sum(np.ones((2, 2)))


class TestRadixSort:
    def test_sorts(self):
        got = device_radix_sort([5, 1, 9, 1, -3])
        assert list(got) == [-3, 1, 1, 5, 9]

    def test_key_value_pairs(self):
        keys, vals = device_radix_sort([3, 1, 2], values=np.array([30, 10, 20]))
        assert list(keys) == [1, 2, 3]
        assert list(vals) == [10, 20, 30]

    def test_stability(self):
        keys, vals = device_radix_sort(
            [1, 1, 0], values=np.array([100, 200, 300])
        )
        assert list(vals) == [300, 100, 200]

    def test_cost_scales_with_key_bits(self):
        a, b = ctx(), ctx()
        data = np.arange(512)
        device_radix_sort(data, key_bits=16, ctx=a)
        device_radix_sort(data, key_bits=64, ctx=b)
        assert b.stats.coalesced_bytes > a.stats.coalesced_bytes

    def test_bad_inputs(self):
        with pytest.raises(DeviceError):
            device_radix_sort([1], key_bits=0)
        with pytest.raises(DeviceError):
            device_radix_sort([1, 2], values=np.array([1]))

    @given(st.lists(st.integers(-(2**40), 2**40), max_size=200))
    @settings(max_examples=25)
    def test_matches_sorted(self, keys):
        assert list(device_radix_sort(keys)) == sorted(keys)


class TestHistogram:
    def test_counts(self):
        counts = device_histogram([0, 1, 1, 5, 9], 4)
        # keys taken mod num_bins: 0,1,1,1,1
        assert list(counts) == [1, 4, 0, 0]

    def test_contention_recorded(self):
        c = ctx()
        device_histogram(np.zeros(100, dtype=np.int64), 16, c)
        assert c.stats.atomic_max_chain == 100

    def test_invalid_bins(self):
        with pytest.raises(DeviceError):
            device_histogram([1], 0)


class TestSegmentedReduce:
    def test_sums_per_segment(self):
        got = device_segmented_reduce([2, 1, 2, 1, 3], [10, 1, 20, 2, 5])
        assert got == {1: 3, 2: 30, 3: 5}

    def test_empty(self):
        assert device_segmented_reduce([], []) == {}

    def test_misaligned(self):
        with pytest.raises(DeviceError):
            device_segmented_reduce([1], [1, 2])

    def test_cost_recorded(self):
        c = ctx()
        device_segmented_reduce(np.zeros(64, dtype=np.int64), np.ones(64), c)
        assert c.stats.global_writes == 1
        assert c.stats.shared_accesses == 64


class TestBandwidthCosting:
    def test_coalesced_cheaper_than_scattered(self):
        """1 MiB of coalesced traffic must cost far less than the same
        element count of uncoalesced global reads."""
        from repro.gpusim import CostModel, KernelStats

        model = CostModel(DeviceConfig())
        n = 128 * 1024
        coalesced = KernelStats(threads=4096, coalesced_bytes=8 * n)
        scattered = KernelStats(threads=4096, global_reads=n)
        assert model.kernel_ns(coalesced) < model.kernel_ns(scattered)

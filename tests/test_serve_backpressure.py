"""Admission control, shed semantics, and fault containment.

Overload and failure are the serving layer's job to make *boring*:
typed rejections with actionable fields (never silent drops), flooding
tenants throttled without collateral damage, and an engine exception
failing exactly its own batch while the ingress keeps serving.
"""

from __future__ import annotations

import asyncio

import pytest
from helpers import StubEngine

from repro.errors import ReproError
from repro.serve.admission import (
    AdmissionController,
    TenantQuota,
    TokenBucket,
)
from repro.serve.clock import SimClock, run_simulation
from repro.serve.errors import (
    BatchExecutionError,
    IngressClosed,
    QueueFullRejected,
    ServeError,
    TenantThrottled,
    VirtualTimeDeadlock,
)
from repro.serve.orchestrator import Orchestrator
from repro.serve.policies import SizePolicy

pytestmark = pytest.mark.serve


# -- token bucket arithmetic (pure, no loop) ----------------------------


def test_token_bucket_exact_refill():
    bucket = TokenBucket(rate_per_s=1_000_000.0, burst=2.0)  # 1 token/us
    assert bucket.try_take(0)
    assert bucket.try_take(0)
    assert not bucket.try_take(0)  # burst exhausted
    assert bucket.try_take(1_000)  # exactly one refill interval later
    assert not bucket.try_take(1_000)
    # retry_after names the exact instant the next token exists
    wait = bucket.retry_after_ns(1_000)
    assert wait > 0
    assert not bucket.try_take(1_000 + wait - 1)
    assert bucket.try_take(1_000 + wait)


def test_token_bucket_never_exceeds_burst():
    bucket = TokenBucket(rate_per_s=1e9, burst=3.0)
    taken = sum(1 for _ in range(10) if bucket.try_take(10**12))
    assert taken == 3


# -- typed shedding -----------------------------------------------------


def test_queue_full_rejection_is_typed():
    """A bounded queue sheds with every field a client needs to react."""
    engine = StubEngine(batch_size=4, latency_ns=10_000)
    admission = AdmissionController(max_queue_depth=6)

    async def main():
        orch = Orchestrator(
            engine, policy=SizePolicy(4), admission=admission
        )
        async with orch:
            futures = [orch.post("noop", (i,)) for i in range(6)]
            with pytest.raises(QueueFullRejected) as exc_info:
                orch.post("noop", (99,), tenant="acme")
            await asyncio.sleep(0)
            return exc_info.value, futures

    exc, futures = run_simulation(main())
    assert exc.reason == "queue_full"
    assert exc.tenant == "acme"
    assert exc.queue_depth == 6
    assert exc.max_depth == 6
    assert isinstance(exc, ServeError)
    assert isinstance(exc, ReproError)
    # the shed request never got a future; the admitted six all resolve
    assert all(f.result().committed for f in futures)
    assert admission.shed_counts == {"queue_full": 1}


def test_token_bucket_isolates_flooding_tenant():
    """One tenant flooding past its quota is throttled; a well-behaved
    tenant on the same ingress sails through untouched."""
    engine = StubEngine(batch_size=8, latency_ns=0)
    admission = AdmissionController(
        max_queue_depth=10_000,
        default_quota=TenantQuota(rate_per_s=1e6, burst=4.0),
    )

    async def main():
        throttled = []
        good, flood = [], []
        async with Orchestrator(
            engine, policy=SizePolicy(8), admission=admission
        ) as orch:
            for i in range(40):
                # flooder submits 10x faster than its refill rate
                await orch.clock.sleep_ns(100)
                try:
                    flood.append(orch.post("noop", (i,), tenant="flood"))
                except TenantThrottled as exc:
                    throttled.append(exc)
                if i % 10 == 0:  # the polite tenant stays within quota
                    good.append(orch.post("noop", (1000 + i,), tenant="calm"))
        return throttled, good, flood

    throttled, good, flood = run_simulation(main())
    assert throttled, "the flooding tenant must get throttled"
    for exc in throttled:
        assert exc.reason == "tenant_throttled"
        assert exc.tenant == "flood"
        assert exc.retry_after_ns > 0
    # isolation: every polite-tenant request was admitted and committed
    assert len(good) == 4
    assert all(f.result().committed for f in good)
    # the flooder's *admitted* requests still complete normally
    assert all(f.result().committed for f in flood)
    assert admission.shed_counts["tenant_throttled"] == len(throttled)


def test_post_after_drain_raises_ingress_closed():
    engine = StubEngine(batch_size=2)

    async def main():
        orch = Orchestrator(engine, policy=SizePolicy(2))
        async with orch:
            fut = orch.post("noop", (0,))
        with pytest.raises(IngressClosed):
            orch.post("noop", (1,))
        return await fut

    response = run_simulation(main())
    assert response.committed


# -- fault containment --------------------------------------------------


class _ExplodingEngine(StubEngine):
    """Commits everything unless the batch contains a "boom" request —
    then the whole run_batch call raises, like a real engine fault."""

    def run_batch(self, batch):
        if any(t.procedure_name == "boom" for t in batch):
            self.batches.append([(t.procedure_name, t.tid) for t in batch])
            raise RuntimeError("device fault")
        return super().run_batch(batch)


def test_engine_exception_fails_batch_without_deadlock():
    """A mid-run engine exception must fail exactly the futures of the
    batch it killed — typed, cause preserved — and the loop must keep
    serving later batches (no deadlock, no poisoned queue)."""
    engine = _ExplodingEngine(batch_size=4)

    async def main():
        async with Orchestrator(engine, policy=SizePolicy(4)) as orch:
            first = [orch.post("noop", (i,)) for i in range(4)]
            await asyncio.sleep(0)
            doomed = [orch.post("boom" if i == 2 else "noop", (10 + i,))
                      for i in range(4)]
            await asyncio.sleep(0)
            after = [orch.post("noop", (20 + i,)) for i in range(4)]
            results = await asyncio.gather(
                *first, *doomed, *after, return_exceptions=True
            )
            return results, orch

    results, orch = run_simulation(main())
    first, doomed, after = results[:4], results[4:8], results[8:]
    assert all(r.committed for r in first)
    assert all(r.committed for r in after), "loop must survive the fault"
    for r in doomed:
        assert isinstance(r, BatchExecutionError)
        assert isinstance(r.cause, RuntimeError)
        assert r.batch_index == 1
    assert orch.metrics.counter("serve.batch_failures").value == 1
    assert orch.metrics.counter("serve.committed").value == 8


def test_virtual_deadlock_is_detected_not_hung():
    """A coroutine awaiting a future nothing will resolve raises
    VirtualTimeDeadlock instead of hanging the suite."""

    async def main():
        await asyncio.get_running_loop().create_future()

    with pytest.raises(VirtualTimeDeadlock):
        run_simulation(main())


def test_sim_clock_requires_running_loop():
    clock = SimClock()
    with pytest.raises(RuntimeError):
        clock.now_ns()

"""Command-line entry points: the bench driver and the validator."""

from __future__ import annotations

import pytest

from repro import validate
from repro.bench.__main__ import main as bench_main


class TestBenchCli:
    def test_table7_runs(self, capsys):
        rc = bench_main(["table7"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table VII" in out
        assert "wall]" in out

    def test_table8_with_scale(self, capsys):
        rc = bench_main(["table8", "--scale", "64"])
        assert rc == 0
        assert "memory occupancy" in capsys.readouterr().out

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            bench_main(["tableX"])

    def test_ablation_entry(self, capsys):
        rc = bench_main(["ablations", "--scale", "64", "--rounds", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "adaptive warp division" in out
        assert "retry delay" in out


class TestValidator:
    def test_full_validation_passes(self, capsys):
        rc = validate.main([])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("[PASS]") == 3
        assert "all checks passed" in out

    def test_report_formatting_on_failure(self):
        report = validate.ValidationReport()
        report.record("a", True)
        report.record("b", False, "broken")
        assert not report.passed
        text = report.format()
        assert "[FAIL] b (broken)" in text
        assert "VALIDATION FAILED" in text

    def test_individual_checks(self):
        report = validate.ValidationReport()
        validate.check_determinism(report, seed=3)
        validate.check_serializability(report, seed=4)
        assert report.passed

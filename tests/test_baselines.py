"""Baseline engines: protocol behaviour, cost-model sanity, and
cross-system agreement."""

from __future__ import annotations

import copy

import pytest

from helpers import build_bank, txn
from repro.baselines import (
    BASELINES,
    AriaEngine,
    BohmEngine,
    CalvinEngine,
    GaccoEngine,
    make_engine,
)
from repro.baselines.base import OpProfile
from repro.baselines.mvstore import BASE_TID, MultiVersionStore
from repro.errors import BenchmarkError
from repro.txn import BufferedContext, OpKind, TxnStatus, apply_local_sets
from repro.txn.operations import OpRecord


def make_batch(n=8, conflict=False):
    if conflict:
        txns = [txn("transfer", 0, 1, 1) for _ in range(n)]
    else:
        txns = [txn("transfer", 2 * i, 2 * i + 1, 1) for i in range(n)]
    for i, t in enumerate(txns):
        t.tid = i
    return txns


class TestRegistry:
    def test_all_eight_systems_present(self):
        assert set(BASELINES) == {
            "aria", "calvin", "bohm", "pwv", "dbx1000", "bamboo", "gputx", "gacco",
        }

    def test_make_engine_unknown(self):
        db, registry = build_bank()
        with pytest.raises(BenchmarkError):
            make_engine("oracle", db, registry)


class TestEverySystemFunctional:
    @pytest.mark.parametrize("name", sorted(BASELINES))
    def test_disjoint_batch_commits_and_has_cost(self, name):
        db, registry = build_bank(accounts=32)
        engine = make_engine(name, db, registry)
        stats = engine.run_batch(make_batch(8))
        assert stats.committed == 8
        assert stats.latency_ns > 0
        t = db.table("accounts")
        assert t.read(0, "balance") == 999
        assert t.read(1, "balance") == 1001

    @pytest.mark.parametrize("name", sorted(BASELINES))
    def test_final_state_is_serial_tid_order(self, name):
        db, registry = build_bank(accounts=8)
        reference = db.copy()
        engine = make_engine(name, db, registry)
        batch = make_batch(6, conflict=True)
        engine.run_batch(batch)
        # serial replay of whatever committed, in TID order
        for t in sorted(batch, key=lambda t: t.tid):
            if t.status is not TxnStatus.COMMITTED:
                continue
            ctx = BufferedContext(reference)
            registry.get(t.procedure_name)(ctx, *t.params)
            apply_local_sets(reference, ctx.local)
        assert reference.state_digest() == db.state_digest()

    @pytest.mark.parametrize("name", sorted(BASELINES))
    def test_logic_abort_counted(self, name):
        db, registry = build_bank()
        engine = make_engine(name, db, registry)
        batch = [txn("bad", 0)]
        batch[0].tid = 0
        stats = engine.run_batch(batch)
        assert stats.logic_aborted == 1
        assert db.table("accounts").read(0, "flags") == 0


class TestAria:
    def test_conflicting_writers_abort_and_retry(self):
        db, registry = build_bank()
        engine = AriaEngine(db, registry)
        batch = make_batch(4, conflict=True)
        stats = engine.run_batch(batch)
        assert stats.committed == 1
        assert stats.aborted == 3
        assert batch[0].status is TxnStatus.COMMITTED

    def test_run_transactions_drains_retries(self):
        db, registry = build_bank()
        engine = AriaEngine(db, registry)
        txns = [txn("transfer", 0, 1, 1) for _ in range(4)]
        run = engine.run_transactions(txns, batch_size=4, max_batches=20)
        assert all(t.is_final for t in txns)
        assert run.total_committed == 4
        assert db.table("accounts").read(0, "balance") == 996

    def test_reordering_commits_pure_readers(self):
        db, registry = build_bank()
        engine = AriaEngine(db, registry)
        batch = [txn("transfer", 0, 1, 1), txn("audit", 0, 1)]
        for i, t in enumerate(batch):
            t.tid = i
        stats = engine.run_batch(batch)
        assert stats.committed == 2

    def test_no_reordering_aborts_raw_readers(self):
        db, registry = build_bank()
        engine = AriaEngine(db, registry)
        engine.reorder = False
        batch = [txn("transfer", 0, 1, 1), txn("audit", 0, 1)]
        for i, t in enumerate(batch):
            t.tid = i
        stats = engine.run_batch(batch)
        assert stats.committed == 1
        assert batch[1].abort_reason == "raw"

    def test_matches_ltpg_row_level_commits(self):
        """Aria == LTPG with every GPU optimization disabled (both are
        deterministic OCC with reordering at row granularity)."""
        from repro.core import LTPGConfig, LTPGEngine
        import dataclasses

        txns = [txn("transfer", i % 5, (i + 2) % 5, 1) for i in range(20)]
        db_a, reg_a = build_bank()
        aria = AriaEngine(db_a, reg_a)
        batch_a = [copy.deepcopy(t) for t in txns]
        for i, t in enumerate(batch_a):
            t.tid = i
        aria.run_batch(batch_a)

        db_l, reg_l = build_bank()
        config = dataclasses.replace(
            LTPGConfig(batch_size=32).without_optimizations(),
            logical_reordering=True,
        )
        ltpg = LTPGEngine(db_l, reg_l, config)
        batch_l = [copy.deepcopy(t) for t in txns]
        for i, t in enumerate(batch_l):
            t.tid = i
        ltpg.run_batch(batch_l)

        assert [t.status for t in batch_a] == [t.status for t in batch_l]
        assert db_a.state_digest() == db_l.state_digest()


class TestCalvinSchedule:
    def test_contention_increases_makespan(self):
        db, registry = build_bank()
        low = CalvinEngine(db.copy(), registry).run_batch(make_batch(8))
        high = CalvinEngine(db.copy(), registry).run_batch(
            make_batch(8, conflict=True)
        )
        assert high.latency_ns > low.latency_ns


class TestBohm:
    def test_mvstore_visibility(self):
        store = MultiVersionStore()
        store.insert_placeholder(("t", 1), 5)
        store.insert_placeholder(("t", 1), 9)
        assert store.visible_tid(("t", 1), 4) == BASE_TID
        assert store.visible_tid(("t", 1), 6) == 5
        assert store.visible_tid(("t", 1), 100) == 9
        assert store.max_chain() == 2
        assert store.placeholder_count == 2

    def test_mvstore_one_version_per_txn(self):
        store = MultiVersionStore()
        store.insert_placeholder(("t", 1), 5)
        store.insert_placeholder(("t", 1), 5)
        assert store.total_versions() == 1

    def test_chain_fill_and_read(self):
        store = MultiVersionStore()
        chain = store.chain(("t", 2))
        chain.insert_placeholder(3)
        chain.fill(3, 42)
        assert chain.read(10) == (3, 42)
        assert chain.read(2) == (BASE_TID, None)

    def test_version_work_scales_cost(self):
        db, registry = build_bank()
        few = BohmEngine(db.copy(), registry).run_batch(make_batch(2))
        many = BohmEngine(db.copy(), registry).run_batch(make_batch(16))
        assert many.latency_ns > few.latency_ns


class TestGpuBaselines:
    def test_gputx_rounds_grow_with_contention(self):
        db, registry = build_bank()
        from repro.baselines import GpuTxEngine

        low = GpuTxEngine(db.copy(), registry).run_batch(make_batch(8))
        high = GpuTxEngine(db.copy(), registry).run_batch(
            make_batch(8, conflict=True)
        )
        assert high.latency_ns > low.latency_ns

    def test_gacco_exchange_ops_cheaper_than_writes(self):
        db, registry = build_bank()
        deposits = [txn("deposit", 0, 1) for _ in range(16)]  # commutative
        transfers = [txn("transfer", 0, 1, 1) for _ in range(16)]
        for i, t in enumerate(deposits):
            t.tid = i
        for i, t in enumerate(transfers):
            t.tid = i
        s_dep = GaccoEngine(db.copy(), registry).run_batch(deposits)
        s_tr = GaccoEngine(db.copy(), registry).run_batch(transfers)
        assert s_dep.latency_ns < s_tr.latency_ns
        assert s_dep.committed == 16  # no aborts in GaccO

    def test_gacco_reports_phases_and_transfer(self):
        db, registry = build_bank()
        stats = GaccoEngine(db, registry).run_batch(make_batch(4))
        assert set(stats.phase_ns) == {"preprocess", "execute", "transfer"}
        assert stats.transfer_ns > 0


class TestOpProfile:
    def test_one_writer_entry_per_txn_per_item(self):
        profile = OpProfile()
        op = OpRecord(OpKind.WRITE, 0, 5, "a", 1)
        profile.record(3, op)
        profile.record(3, op)  # same txn, same item: no new chain entry
        profile.record(4, op)
        assert profile.writers_per_item[(0, 5)] == [3, 4]
        assert profile.writes == 3
        assert profile.max_write_chain() == 2

    def test_contended_write_ops(self):
        profile = OpProfile()
        profile.record(1, OpRecord(OpKind.WRITE, 0, 5, "a", 1))
        profile.record(2, OpRecord(OpKind.WRITE, 0, 5, "a", 1))
        profile.record(3, OpRecord(OpKind.WRITE, 0, 9, "a", 1))
        assert profile.contended_write_ops() == 2

"""Differential tests: columnar op path vs the retained reference path.

``LTPGConfig.columnar_ops`` selects between the vectorized execute-phase
collection (NumPy over flat op arrays) and the seed's per-op Python
loop.  They are two implementations of the *same* algorithm, so every
observable — per-transaction statuses and abort reasons, the full
:class:`BatchStats` including simulated times, and the final database
state — must agree byte for byte.  These tests are the contract that
lets the wall-clock harness (``BENCH_wallclock.json``) claim its speedup
changes nothing but host time.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import build_bank
from repro.bench.common import ltpg_config, tpcc_bench
from repro.core import LTPGConfig, LTPGEngine
from repro.errors import TransactionError
from repro.txn import Transaction
from repro.txn.decompose import plan, plan_arrays
from repro.txn.operations import OpColumns
from repro.workloads.ycsb import build_ycsb


def _stats_snapshot(stats) -> dict:
    """Every BatchStats field, in comparable (plain) form."""
    return {
        "batch_index": stats.batch_index,
        "num_txns": stats.num_txns,
        "committed": stats.committed,
        "aborted": stats.aborted,
        "logic_aborted": stats.logic_aborted,
        "latency_ns": stats.latency_ns,
        "transfer_ns": stats.transfer_ns,
        "rwset_ns": stats.rwset_ns,
        "phase_ns": dict(stats.phase_ns),
        "committed_by_proc": dict(stats.committed_by_proc),
        "total_by_proc": dict(stats.total_by_proc),
        "abort_reasons": dict(stats.abort_reasons),
        "commit_attempts": dict(stats.commit_attempts),
        "registered_reads": stats.registered_reads,
        "registered_writes": stats.registered_writes,
        "max_atomic_chain": stats.max_atomic_chain,
    }


def _run_path(build_engine, make_batches, columnar: bool):
    """Run identical batches through one op path; return observables."""
    engine = build_engine(columnar)
    out = []
    for specs in make_batches():
        batch = [
            Transaction(name, params, tid=i)
            for i, (name, params) in enumerate(specs)
        ]
        result = engine.run_batch(batch)
        out.append(
            {
                "stats": _stats_snapshot(result.stats),
                "statuses": [t.status for t in batch],
                "abort_reasons": [t.abort_reason for t in batch],
                "committed_tids": sorted(t.tid for t in result.committed),
            }
        )
    out.append({"digest": engine.database.state_digest()})
    return out


def _assert_paths_agree(build_engine, make_batches):
    columnar = _run_path(build_engine, make_batches, columnar=True)
    reference = _run_path(build_engine, make_batches, columnar=False)
    assert columnar == reference


# ---------------------------------------------------------------------------
# TPC-C and YCSB (the acceptance workloads)
# ---------------------------------------------------------------------------
def _tpcc_builder(scale: float = 64.0, **config_overrides):
    def build_engine(columnar: bool):
        bench = tpcc_bench(warehouses=8, neworder_pct=50, scale=scale, seed=7)
        config = dataclasses.replace(
            ltpg_config(bench.batch_size),
            columnar_ops=columnar,
            **config_overrides,
        )
        build_engine.batch_size = bench.batch_size
        build_engine.generator = bench.generator
        return bench.engine(config)

    def make_batches(rounds: int = 3):
        # Each path builds its own bench from the same seed, so the
        # generator streams are identical; replay through run_batch specs.
        gen = build_engine.generator
        for _ in range(rounds):
            yield [(t.procedure_name, t.params) for t in gen.make_batch(build_engine.batch_size)]

    return build_engine, make_batches


def test_tpcc_5050_identical_stats_and_state():
    build_engine, make_batches = _tpcc_builder()
    _assert_paths_agree(build_engine, make_batches)


def test_tpcc_without_optimizations_identical():
    """Naive warp planning + no split flags / delayed updates / buckets:
    exercises plan_naive_arrays and the undecorated dedup path."""

    def build_engine(columnar: bool):
        bench = tpcc_bench(warehouses=8, neworder_pct=50, scale=64.0, seed=7)
        config = dataclasses.replace(
            ltpg_config(bench.batch_size).without_optimizations(),
            columnar_ops=columnar,
        )
        build_engine.batch_size = bench.batch_size
        build_engine.generator = bench.generator
        return bench.engine(config)

    def make_batches(rounds: int = 2):
        gen = build_engine.generator
        for _ in range(rounds):
            yield [(t.procedure_name, t.params) for t in gen.make_batch(build_engine.batch_size)]

    _assert_paths_agree(build_engine, make_batches)


def _ycsb_builder(workload: str, zipf_alpha: float, btree_scans: bool = False):
    def build_engine(columnar: bool):
        db, registry, generator = build_ycsb(
            num_records=2_000,
            workload=workload,
            zipf_alpha=zipf_alpha,
            seed=11,
            btree_scans=btree_scans,
        )
        build_engine.generator = generator
        return LTPGEngine(
            db, registry, LTPGConfig(batch_size=256, columnar_ops=columnar)
        )

    def make_batches(rounds: int = 3):
        gen = build_engine.generator
        for _ in range(rounds):
            yield [(t.procedure_name, t.params) for t in gen.make_batch(256)]

    return build_engine, make_batches


def test_ycsb_a_zipf25_identical_stats_and_state():
    build_engine, make_batches = _ycsb_builder("a", zipf_alpha=2.5)
    _assert_paths_agree(build_engine, make_batches)


def test_ycsb_e_btree_ranges_identical():
    """Range reads + inserts (phantom checks) agree across paths."""
    build_engine, make_batches = _ycsb_builder("e", zipf_alpha=0.9, btree_scans=True)
    _assert_paths_agree(build_engine, make_batches)


# ---------------------------------------------------------------------------
# Delayed-column misuse must fail identically
# ---------------------------------------------------------------------------
def _delayed_misuse_engine(columnar: bool) -> tuple[LTPGEngine, list[Transaction]]:
    db, registry = build_bank(accounts=8)

    @registry.register("misuse")
    def misuse(ctx, a):
        ctx.read("accounts", a, "balance")  # delayed column: ADD only

    config = LTPGConfig(
        batch_size=8,
        delayed_update=True,
        delayed_columns=frozenset({("accounts", "balance")}),
        columnar_ops=columnar,
    )
    batch = [
        Transaction("deposit", (1, 5), tid=0),
        Transaction("misuse", (2,), tid=1),
    ]
    return LTPGEngine(db, registry, config), batch


def test_delayed_misuse_raises_identically():
    errors = []
    for columnar in (True, False):
        engine, batch = _delayed_misuse_engine(columnar)
        with pytest.raises(TransactionError) as excinfo:
            engine.run_batch(batch)
        errors.append(str(excinfo.value))
    assert errors[0] == errors[1]
    assert "delayed-update managed" in errors[0]


# ---------------------------------------------------------------------------
# Hypothesis: random bank batches
# ---------------------------------------------------------------------------
@st.composite
def bank_batches(draw):
    n_batches = draw(st.integers(1, 3))
    batches = []
    for _ in range(n_batches):
        n = draw(st.integers(1, 24))
        specs = []
        for _ in range(n):
            kind = draw(
                st.sampled_from(
                    ["transfer", "deposit", "audit", "open_account", "bad"]
                )
            )
            a = draw(st.integers(0, 11))
            b = draw(st.integers(0, 11))
            if kind == "transfer":
                specs.append((kind, (a, (a + 1 + b) % 12, 1 + a)))
            elif kind == "deposit":
                specs.append((kind, (a, 1 + b)))
            elif kind == "audit":
                specs.append((kind, (a, b)))
            elif kind == "open_account":
                specs.append((kind, (100 + draw(st.integers(0, 5)), 7)))
            else:
                specs.append((kind, (a,)))
        batches.append(specs)
    return batches


@given(bank_batches())
@settings(max_examples=40, deadline=None)
def test_property_columnar_matches_reference_on_random_batches(batches):
    def build_engine(columnar: bool):
        db, registry = build_bank(accounts=12)
        config = LTPGConfig(batch_size=32, columnar_ops=columnar)
        return LTPGEngine(db, registry, config)

    _assert_paths_agree(build_engine, lambda: iter(batches))


# ---------------------------------------------------------------------------
# Warp planners: array twins produce the identical ExecutionPlan
# ---------------------------------------------------------------------------
class _FakeTxn:
    __slots__ = ("ops",)

    def __init__(self, ops: OpColumns):
        self.ops = ops


@given(
    st.lists(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 4)),
            max_size=12,
        ),
        max_size=20,
    ),
    st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_plan_arrays_matches_plan(per_txn_ops, grouped):
    txns = []
    kinds, tables, counts = [], [], []
    for ops in per_txn_ops:
        cols = OpColumns()
        for kind, table in ops:
            cols.append_op(kind, table, 0, 0, 0)
            kinds.append(kind)
            tables.append(table)
        counts.append(len(ops))
        txns.append(_FakeTxn(cols))
    reference = plan(txns, grouped)
    columnar = plan_arrays(
        np.asarray(kinds, dtype=np.int64),
        np.asarray(tables, dtype=np.int64),
        np.asarray(counts, dtype=np.int64),
        grouped,
    )
    assert columnar == reference

"""Differential tests for the multi-shard engine (:mod:`repro.shard`).

``shards=N`` must be *byte-identical* to ``shards=1`` (and to a plain
``LTPGEngine``) for every workload and shard count: per-transaction
statuses, abort reasons, op streams, and the final database digest.
(Simulated phase timings are exempt — sharded conflict registration
arrives as per-shard kernel sub-passes — which is exactly why these
tests pin the full outcome surface instead.)

Also covered here: the deterministic router's edge cases (all-multi-home
batches, empty shards, more shards than warehouses), the Calvin-style
sequencer, per-shard metrics, config validation, and the worker-pool
rebuild on a config swap (which used to leak ``/dev/shm`` segments).
"""

from __future__ import annotations

import dataclasses
import gc
import multiprocessing as mp
import os
import time

import numpy as np
import pytest

from repro.baselines.calvin import deterministic_order
from repro.core import LTPGConfig, LTPGEngine
from repro.errors import ConfigError
from repro.parallel import SHM_PREFIX
from repro.parallel.pool import WorkerPool
from repro.shard import (
    BoundPartition,
    ShardedEngine,
    TableRule,
    make_engine,
    resolve_spec,
)
from repro.txn import Transaction
from repro.workloads.smallbank import build_smallbank, smallbank_partition_spec
from repro.workloads.tpcc import (
    DELAYED_COLUMNS,
    SPLIT_COLUMNS,
    TpccMix,
    build_tpcc,
    tpcc_partition_spec,
)
from repro.workloads.ycsb import build_ycsb
from repro.workloads.ycsb.generator import SCAN_LENGTH, ycsb_delayed_columns

pytestmark = pytest.mark.sharded

SHARD_COUNTS = (1, 2, 4)

FULL_MIX = TpccMix(
    neworder=0.4, payment=0.3, orderstatus=0.1, stocklevel=0.1, delivery=0.1
)


def _shm_segments() -> list[str]:
    try:
        return [f for f in os.listdir("/dev/shm") if f.startswith(SHM_PREFIX)]
    except FileNotFoundError:  # non-Linux
        return []


def _observe(engine, batches):
    """Run ``batches`` (lists of (name, params) specs) and capture the
    outcome surface; closes the engine."""
    out = []
    with engine:
        for bi, specs in enumerate(batches):
            batch = [
                Transaction(n, p, tid=bi * 10_000 + i)
                for i, (n, p) in enumerate(specs)
            ]
            result = engine.run_batch(batch)
            out.append(
                {
                    "committed": result.stats.committed,
                    "aborted": result.stats.aborted,
                    "logic_aborted": result.stats.logic_aborted,
                    "statuses": [t.status for t in batch],
                    "reasons": [t.abort_reason for t in batch],
                    "ops": [t.ops.raw for t in batch],
                    "result_tids": (
                        [t.tid for t in result.committed],
                        [t.tid for t in result.aborted],
                        [t.tid for t in result.logic_aborted],
                    ),
                    "abort_reasons": dict(result.stats.abort_reasons),
                    "by_proc": dict(result.stats.committed_by_proc),
                    "digest": engine.database.state_digest(),
                }
            )
    return out


def _across_shard_counts(build, batches, counts=SHARD_COUNTS, **config_kwargs):
    """Assert a plain engine == make_engine(shards=n) for each n."""
    reference = _observe(build(dict(**config_kwargs)), batches)
    for shards in counts:
        engine = build(dict(shards=shards, **config_kwargs))
        assert _observe(engine, batches) == reference, (
            f"divergence at {shards} shards"
        )
    assert _shm_segments() == []


def _tpcc_build(config_kwargs):
    db, registry, _ = build_tpcc(
        warehouses=2, num_items=2000, mix=FULL_MIX, seed=7
    )
    config = LTPGConfig(
        batch_size=256,
        columnar_ops=True,
        batched_exec=True,
        delayed_update=True,
        delayed_columns=DELAYED_COLUMNS,
        split_flags=True,
        split_columns=SPLIT_COLUMNS,
        **config_kwargs,
    )
    return make_engine(db, registry, config)


def _tpcc_batches(n=3, size=256):
    _, _, gen = build_tpcc(warehouses=2, num_items=2000, mix=FULL_MIX, seed=7)
    return [
        [(t.procedure_name, t.params) for t in gen.make_batch(size)]
        for _ in range(n)
    ]


# ---------------------------------------------------------------------------
# Byte-identity sweep: all three workloads, shards in {1, 2, 4}
# ---------------------------------------------------------------------------
def test_tpcc_identical_across_shard_counts():
    # 4 shards > 2 warehouses: two shards own no warehouse at all
    _across_shard_counts(_tpcc_build, _tpcc_batches())


@pytest.mark.parametrize("workload", ["a", "e"])
def test_ycsb_identical_across_shard_counts(workload):
    kwargs = dict(
        num_records=2000, workload=workload, zipf_alpha=1.2, seed=5
    )
    _, _, gen = build_ycsb(**kwargs)
    batches = [
        [(t.procedure_name, t.params) for t in gen.make_batch(256)]
        for _ in range(3)
    ]

    def build(config_kwargs):
        db, registry, _ = build_ycsb(**kwargs)
        config = LTPGConfig(
            batch_size=256,
            columnar_ops=True,
            batched_exec=True,
            delayed_update=True,
            delayed_columns=ycsb_delayed_columns(),
            **config_kwargs,
        )
        return make_engine(db, registry, config)

    _across_shard_counts(build, batches)


def test_smallbank_identical_across_shard_counts():
    _, _, gen = build_smallbank(num_accounts=500, zipf_alpha=1.2, seed=3)
    batches = [
        [(t.procedure_name, t.params) for t in gen.make_batch(256)]
        for _ in range(3)
    ]

    def build(config_kwargs):
        db, registry, _ = build_smallbank(
            num_accounts=500, zipf_alpha=1.2, seed=3
        )
        config = LTPGConfig(
            batch_size=256, columnar_ops=True, batched_exec=True,
            **config_kwargs,
        )
        return make_engine(db, registry, config)

    _across_shard_counts(build, batches)


def test_sharded_with_matching_worker_pool_identical():
    """shards=2 + parallel_workers=2: worker w executes exactly shard
    w's lanes, and the result still matches the serial reference."""
    batches = _tpcc_batches(n=2, size=128)
    reference = _observe(_tpcc_build({}), batches)
    engine = _tpcc_build(dict(shards=2, parallel_workers=2))
    assert _observe(engine, batches) == reference
    assert _shm_segments() == []


def test_run_transactions_with_retries_identical():
    """High contention forces aborts and requeues: the scheduler
    composition across batches must match the unsharded engine."""

    def run(shards):
        db, registry, gen = build_smallbank(
            num_accounts=200, zipf_alpha=1.5, seed=11
        )
        config = LTPGConfig(
            batch_size=64, columnar_ops=True, batched_exec=True,
            shards=shards,
        )
        with make_engine(db, registry, config) as engine:
            txns = gen.make_batch(256)
            for i, t in enumerate(txns):
                t.tid = i
            run_stats = engine.run_transactions(txns)
        return (
            db.state_digest(),
            run_stats.total_committed,
            [t.status for t in txns],
            [(b.committed, b.aborted, b.logic_aborted) for b in run_stats.batches],
        )

    reference = run(1)
    for shards in (2, 4):
        assert run(shards) == reference


# ---------------------------------------------------------------------------
# Router edge cases
# ---------------------------------------------------------------------------
def test_all_multi_home_batch():
    """Every transaction crosses the shard boundary: the whole batch is
    sequenced Calvin-style and still matches the reference."""
    specs = [
        ("send_payment", (i, 499 - i, 5)) for i in range(100)
    ] + [
        ("amalgamate", (i, 400 + i)) for i in range(50)
    ]

    def build(config_kwargs):
        db, registry, _ = build_smallbank(num_accounts=500, seed=3)
        config = LTPGConfig(
            batch_size=256, columnar_ops=True, batched_exec=True,
            **config_kwargs,
        )
        return make_engine(db, registry, config)

    _across_shard_counts(build, [specs], counts=(2,))

    db, registry, _ = build_smallbank(num_accounts=500, seed=3)
    engine = make_engine(
        db, registry,
        LTPGConfig(batch_size=256, columnar_ops=True, batched_exec=True, shards=2),
    )
    batch = [Transaction(n, p, tid=i) for i, (n, p) in enumerate(specs)]
    result = engine.run_batch(batch)
    assert result.stats.multi_home_fraction == 1.0


def test_empty_shard_batch():
    """All transactions live on shard 0; shards 1-3 see zero lanes."""
    specs = [("deposit_checking", (i % 50, 7)) for i in range(64)]

    def build(config_kwargs):
        db, registry, _ = build_smallbank(num_accounts=500, seed=3)
        config = LTPGConfig(
            batch_size=64, columnar_ops=True, batched_exec=True,
            **config_kwargs,
        )
        return make_engine(db, registry, config)

    _across_shard_counts(build, [specs], counts=(4,))

    db, registry, _ = build_smallbank(num_accounts=500, seed=3)
    engine = make_engine(
        db, registry,
        LTPGConfig(batch_size=64, columnar_ops=True, batched_exec=True, shards=4),
    )
    batch = [Transaction(n, p, tid=i) for i, (n, p) in enumerate(specs)]
    result = engine.run_batch(batch)
    assert result.stats.multi_home_fraction == 0.0
    # 64 lanes on one of four shards: max/mean = 4
    assert result.stats.shard_balance == pytest.approx(4.0)


def test_tpcc_multi_home_payments_exercised():
    """TPC-C's 15% remote payments make the multi-home path real."""
    db, registry, gen = build_tpcc(
        warehouses=2, num_items=2000, mix=FULL_MIX, seed=7
    )
    config = LTPGConfig(
        batch_size=256, columnar_ops=True, batched_exec=True, shards=2
    )
    with make_engine(db, registry, config) as engine:
        fractions = []
        for b in range(3):
            batch = gen.make_batch(256)
            for i, t in enumerate(batch):
                t.tid = b * 1000 + i
            fractions.append(
                engine.run_batch(batch).stats.multi_home_fraction
            )
    assert max(fractions) > 0


def test_empty_batch_delegates():
    db, registry, _ = build_smallbank(num_accounts=100, seed=1)
    engine = make_engine(
        db, registry,
        LTPGConfig(batch_size=8, columnar_ops=True, batched_exec=True, shards=2),
    )
    result = engine.run_batch([])
    assert result.stats.num_txns == 0


def test_shards_one_is_plain_engine():
    db, registry, _ = build_smallbank(num_accounts=100, seed=1)
    engine = make_engine(db, registry, LTPGConfig(batch_size=8))
    assert isinstance(engine, LTPGEngine)
    assert not isinstance(engine, ShardedEngine)


# ---------------------------------------------------------------------------
# The partition map and the sequencer
# ---------------------------------------------------------------------------
def test_deterministic_order_is_stable_tid_sort():
    txns = [
        Transaction("balance", (i,), tid=tid)
        for i, tid in enumerate([5, 1, 3, 1, 2])
    ]
    ordered = deterministic_order(txns)
    assert [t.tid for t in ordered] == [1, 1, 2, 3, 5]
    # stable: the two tid=1 entries keep their admission order
    assert ordered[0].params[0] == 1 and ordered[1].params[0] == 3


def test_block_rule_clamps_appended_keys():
    db, _, _ = build_smallbank(num_accounts=100, seed=1)
    part = BoundPartition(smallbank_partition_spec(), db, 4)
    # 100 accounts, 4 shards: blocks of 25
    assert part.owner_key("smallbank", 0) == 0
    assert part.owner_key("smallbank", 24) == 0
    assert part.owner_key("smallbank", 25) == 1
    assert part.owner_key("smallbank", 99) == 3
    # keys appended past the loaded range stay on the last shard
    assert part.owner_key("smallbank", 100) == 3
    assert part.owner_key("smallbank", 10_000) == 3
    owners = part.owner_keys(0, np.array([0, 25, 50, 75, 99, 500]))
    assert owners.tolist() == [0, 1, 2, 3, 3, 3]


def test_tpcc_rules_recover_the_warehouse():
    db, _, _ = build_tpcc(warehouses=4, num_items=2000, seed=7)
    part = BoundPartition(tpcc_partition_spec(), db, 2)
    scale_items = db.table("item").num_rows
    for w in range(4):
        assert part.owner_key("warehouse", w) == w % 2
        assert part.owner_key("district", w * 10 + 3) == w % 2
        assert part.owner_key("customer", (w * 10 + 3) * 3000 + 17) == w % 2
        assert part.owner_key("stock", w * scale_items + 99) == w % 2
    profile = part.profile()
    assert profile["warehouse"] == [2, 2]
    assert profile["district"] == [20, 20]
    assert sum(profile["customer"]) == 4 * 10 * 3000


def test_tpcc_classify_remote_payment_is_multi_home():
    db, _, _ = build_tpcc(warehouses=4, num_items=2000, seed=7)
    part = BoundPartition(tpcc_partition_spec(), db, 4)
    local = Transaction("payment", (1, 0, (1 * 10 + 0) * 3000 + 5, 100, 0))
    remote = Transaction("payment", (1, 0, (2 * 10 + 0) * 3000 + 5, 100, 0))
    assert part.classify(local) == (1,)
    assert part.classify(remote) == (1, 2)
    unknown = Transaction("mystery", (0,))
    assert part.classify(unknown) == (0, 1, 2, 3)


def test_ycsb_classify_scan_spans_shards():
    db, _, _ = build_ycsb(num_records=2000, workload="e", seed=5)
    part = BoundPartition(resolve_spec("auto", db), db, 2)
    assert part.spec.name == "ycsb"
    # block = 1000; a scan straddling the boundary is multi-home
    boundary = 1000 - SCAN_LENGTH // 2
    txn = Transaction("ycsb_txn", (3, boundary))
    assert part.classify(txn) == (0, 1)
    assert part.classify(Transaction("ycsb_txn", (3, 0))) == (0,)
    assert part.classify(Transaction("ycsb_txn", (0, 1999, 1, 1500))) == (1,)


def test_resolve_spec_auto_detects_workloads():
    db, _, _ = build_tpcc(warehouses=1, num_items=2000, seed=7)
    assert resolve_spec("auto", db).name == "tpcc"
    db, _, _ = build_smallbank(num_accounts=10, seed=1)
    assert resolve_spec("auto", db).name == "smallbank"


def test_table_rule_validation():
    with pytest.raises(ConfigError, match="rule form"):
        TableRule("hash")
    with pytest.raises(ConfigError, match="divisor"):
        TableRule("div_mod", 0)


# ---------------------------------------------------------------------------
# Configuration validation
# ---------------------------------------------------------------------------
def test_zero_shards_raises():
    with pytest.raises(ConfigError, match="shards"):
        LTPGConfig(shards=0)


def test_shards_require_batched_exec():
    with pytest.raises(ConfigError, match="batched_exec"):
        LTPGConfig(shards=2)


def test_shards_must_match_worker_count():
    with pytest.raises(ConfigError, match="parallel_workers"):
        LTPGConfig(batched_exec=True, shards=2, parallel_workers=3)


def test_unknown_shard_spec_raises():
    with pytest.raises(ConfigError, match="shard_spec"):
        LTPGConfig(batched_exec=True, shards=2, shard_spec="hash")


# ---------------------------------------------------------------------------
# Per-shard observability
# ---------------------------------------------------------------------------
def test_sharded_metrics_surface():
    db, registry, gen = build_tpcc(
        warehouses=2, num_items=2000, mix=FULL_MIX, seed=7
    )
    config = LTPGConfig(
        batch_size=256, columnar_ops=True, batched_exec=True,
        shards=2, trace=True,
    )
    with make_engine(db, registry, config) as engine:
        batch = gen.make_batch(256)
        for i, t in enumerate(batch):
            t.tid = i
        result = engine.run_batch(batch)
        snap = engine.metrics.snapshot()
    assert 0 < result.stats.multi_home_fraction < 1
    assert result.stats.shard_balance >= 1.0
    assert result.stats.sequencer_stall_ns > 0
    assert snap["gauges"]["multi_home_fraction"]["last"] == pytest.approx(
        result.stats.multi_home_fraction
    )
    assert snap["gauges"]["shard_balance"]["last"] == pytest.approx(
        result.stats.shard_balance
    )
    assert snap["counters"]["sequencer.stall_ns"] > 0
    lanes = snap["histograms"]["shard.lanes"]
    assert set(lanes) == {"s0", "s1"}
    assert sum(lanes.values()) == 256
    assert engine.last_host_phase_s["sequencer"] > 0
    summary = engine.conflict_log.registrations_by_shard
    assert summary.sum() > 0


def test_metrics_summary_has_shard_block():
    from repro.core.stats import BatchStats, RunStats

    run = RunStats()
    run.add(
        BatchStats(
            0, 10, 10, 0,
            multi_home_fraction=0.2, shard_balance=1.5,
            sequencer_stall_ns=1000,
        )
    )
    block = run.metrics_summary()["shard"]
    assert block == {
        "mean_multi_home_fraction": 0.2,
        "max_balance": 1.5,
        "sequencer_stall_ns": 1000,
    }


# ---------------------------------------------------------------------------
# Pool rebuild on config swap (regression: leaked /dev/shm segments)
# ---------------------------------------------------------------------------
def _live_workers() -> list:
    return [p for p in mp.active_children() if p.name.startswith("ltpg-worker")]


def test_pool_rebuilt_on_worker_count_swap_without_leaks():
    """Swapping the config to a different worker count (a shard-count
    swap does exactly this) must rebuild the pool — closing the old
    one's processes and segments — not silently keep the stale pool."""
    db, registry, gen = build_smallbank(num_accounts=200, zipf_alpha=1.0, seed=1)
    config = LTPGConfig(batch_size=64, batched_exec=True, parallel_workers=2)
    engine = LTPGEngine(db, registry, config)

    def batch(b):
        out = gen.make_batch(64)
        for i, t in enumerate(out):
            t.tid = b * 1000 + i
        return out

    engine.run_batch(batch(0))
    assert len(_live_workers()) == 2
    first_segments = set(_shm_segments())
    assert first_segments

    engine.config = dataclasses.replace(config, parallel_workers=4)
    engine.run_batch(batch(1))
    assert len(_live_workers()) == 4
    # the old pool's segments are gone, not unioned with the new ones
    assert not (first_segments & set(_shm_segments()))

    engine.close()
    deadline = time.monotonic() + 10
    while _live_workers() and time.monotonic() < deadline:
        time.sleep(0.01)
    assert _live_workers() == []
    assert _shm_segments() == []


def test_dropped_pool_reference_is_collected():
    """A pool that loses its last reference without close() must clean
    up on garbage collection, not linger until atexit."""
    db, registry, _ = build_smallbank(num_accounts=100, seed=1)
    twins = {
        name: registry.get_batched(name) for name in registry.batched_names()
    }
    pool = WorkerPool(db, twins, num_workers=1)
    assert _shm_segments()
    del pool
    gc.collect()
    deadline = time.monotonic() + 10
    while _live_workers() and time.monotonic() < deadline:
        time.sleep(0.01)
    assert _live_workers() == []
    assert _shm_segments() == []


def test_no_shm_segments_leaked():
    assert _shm_segments() == []

"""Engine behaviour under the three memory modes."""

from __future__ import annotations

import dataclasses

import pytest

from helpers import build_bank, txn
from repro.core import LTPGConfig, LTPGEngine, MemoryMode
from repro.gpusim import Device, DeviceConfig


def engine_with(mode, device_bytes=None, accounts=256):
    db, registry = build_bank(accounts=accounts)
    cfg = DeviceConfig()
    if device_bytes is not None:
        cfg = dataclasses.replace(cfg, device_memory_bytes=device_bytes)
    engine = LTPGEngine(
        db,
        registry,
        LTPGConfig(batch_size=64, memory_mode=mode),
        Device(cfg),
    )
    return engine


def run_one(engine, start_tid=0, n=64):
    batch = [txn("transfer", i % 32, (i + 1) % 32, 1) for i in range(n)]
    for i, t in enumerate(batch):
        t.tid = start_tid + i
    return engine.run_batch(batch)


class TestZeroCopy:
    def test_zero_copy_cheaper_transfers_same_results(self):
        plain = engine_with(MemoryMode.DEVICE)
        zc = engine_with(MemoryMode.ZERO_COPY)
        r_plain = run_one(plain)
        r_zc = run_one(zc)
        assert r_zc.stats.committed == r_plain.stats.committed
        assert r_zc.stats.transfer_ns < r_plain.stats.transfer_ns
        assert zc.database.state_digest() == plain.database.state_digest()


class TestUnified:
    def test_unified_mode_pays_page_faults(self):
        resident = engine_with(MemoryMode.DEVICE)
        paged = engine_with(MemoryMode.UNIFIED, device_bytes=1 << 30)
        r_res = run_one(resident)
        r_pag = run_one(paged)
        assert r_pag.stats.phase_ns["execute"] > r_res.stats.phase_ns["execute"]
        assert r_pag.stats.committed == r_res.stats.committed

    def test_resident_pages_warm_across_batches(self):
        paged = engine_with(MemoryMode.UNIFIED, device_bytes=1 << 30)
        first = run_one(paged)
        second = run_one(paged, start_tid=1000)
        # same rows touched again: pages stay resident, faults vanish
        assert (
            second.stats.phase_ns["execute"] < first.stats.phase_ns["execute"]
        )

    def test_auto_resolves_to_unified_when_too_big(self):
        engine = engine_with(MemoryMode.AUTO, device_bytes=4096)
        assert engine.memory_plan.mode is MemoryMode.UNIFIED

    def test_auto_resolves_to_device_when_fits(self):
        engine = engine_with(MemoryMode.AUTO)
        assert engine.memory_plan.mode is MemoryMode.DEVICE
